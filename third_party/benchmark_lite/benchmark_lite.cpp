// benchmark_lite implementation.  Single TU, no dependencies beyond the
// C++ standard library and POSIX clocks.
//
// Timing model (matches google-benchmark): real time via CLOCK_MONOTONIC,
// CPU time via CLOCK_THREAD_CPUTIME_ID of the benchmarking thread.  Rate
// quantities (items/bytes per second, Counter::kIsRate) divide by CPU
// seconds, like the original.  Iteration counts are chosen by geometric
// probing until a run lasts at least --benchmark_min_time seconds, then
// every repetition re-runs that fixed count so repetitions are comparable.
#include "benchmark/benchmark.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace benchmark {
namespace {

double now_real() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double now_cpu() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct Flags {
  std::string out_path;
  std::string out_format = "json";  // only json is emitted
  std::string filter;
  int repetitions = 1;
  bool report_aggregates_only = false;
  double min_time = 0.5;
};

Flags g_flags;
std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> ctx;
  return ctx;
}

std::vector<internal::Benchmark*>& registry() {
  static std::vector<internal::Benchmark*> r;
  return r;
}

/// One measured run (a repetition) of one benchmark instance.
struct RunResult {
  std::string run_name;
  std::int64_t family_index = 0;
  std::int64_t instance_index = 0;
  std::int64_t repetition_index = 0;
  std::int64_t iterations = 0;
  double real_ns = 0.0;  // per-iteration
  double cpu_ns = 0.0;   // per-iteration
  // Derived rates and user counters, already resolved to reportable values.
  std::vector<std::pair<std::string, double>> extra;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

State::State(std::int64_t max_iterations, std::vector<std::int64_t> args)
    : max_iterations_(max_iterations), args_(std::move(args)) {}

std::int64_t State::range(std::size_t i) const {
  if (i >= args_.size()) {
    std::fprintf(stderr, "benchmark_lite: range(%zu) but only %zu args\n", i,
                 args_.size());
    std::abort();
  }
  return args_[i];
}

void State::start_run() {
  completed_ = 0;
  real_seconds_ = 0.0;
  cpu_seconds_ = 0.0;
  timing_ = true;
  real_mark_ = now_real();
  cpu_mark_ = now_cpu();
}

void State::finish_run() {
  if (timing_) {
    real_seconds_ += now_real() - real_mark_;
    cpu_seconds_ += now_cpu() - cpu_mark_;
    timing_ = false;
  }
  completed_ = max_iterations_;
}

void State::PauseTiming() {
  if (!timing_) return;
  real_seconds_ += now_real() - real_mark_;
  cpu_seconds_ += now_cpu() - cpu_mark_;
  timing_ = false;
}

void State::ResumeTiming() {
  if (timing_) return;
  timing_ = true;
  real_mark_ = now_real();
  cpu_mark_ = now_cpu();
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

namespace internal {

Benchmark::Benchmark(std::string name, Function* fn)
    : name_(std::move(name)), fn_(fn) {}

Benchmark* Benchmark::Arg(std::int64_t a) {
  instances_.push_back({a});
  return this;
}

Benchmark* Benchmark::UseRealTime() {
  use_real_time_ = true;
  return this;
}

Benchmark* RegisterBenchmarkInternal(const char* name, Function* fn) {
  auto* b = new Benchmark(name, fn);  // lives for the process, like gbench
  registry().push_back(b);
  return b;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Flag handling
// ---------------------------------------------------------------------------

namespace {

bool consume_flag(const char* arg, const char* name, std::string* value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  return false;
}

bool parse_bool(const std::string& v) {
  return v.empty() || v == "true" || v == "1" || v == "yes";
}

}  // namespace

void Initialize(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string v;
    if (consume_flag(argv[i], "--benchmark_out", &v)) {
      g_flags.out_path = v;
    } else if (consume_flag(argv[i], "--benchmark_out_format", &v)) {
      g_flags.out_format = v;
    } else if (consume_flag(argv[i], "--benchmark_filter", &v)) {
      g_flags.filter = v;
    } else if (consume_flag(argv[i], "--benchmark_repetitions", &v)) {
      g_flags.repetitions = std::max(1, std::atoi(v.c_str()));
    } else if (consume_flag(argv[i], "--benchmark_report_aggregates_only",
                            &v)) {
      g_flags.report_aggregates_only = parse_bool(v);
    } else if (consume_flag(argv[i], "--benchmark_min_time", &v)) {
      double t = std::atof(v.c_str());
      if (t > 0) g_flags.min_time = t;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 argv[0], argv[i]);
  }
  return argc > 1;
}

void AddCustomContext(const std::string& key, const std::string& value) {
  custom_context().emplace_back(key, value);
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

namespace {

std::string instance_name(const internal::Benchmark& b,
                          const std::vector<std::int64_t>& args) {
  std::string name = b.name();
  for (auto a : args) name += "/" + std::to_string(a);
  if (b.use_real_time()) name += "/real_time";
  return name;
}

RunResult run_once(const internal::Benchmark& b,
                   const std::vector<std::int64_t>& args,
                   std::int64_t iters) {
  State state(iters, args);
  b.fn()(state);
  RunResult r;
  r.iterations = iters;
  double di = static_cast<double>(iters);
  r.real_ns = state.real_seconds() * 1e9 / di;
  r.cpu_ns = state.cpu_seconds() * 1e9 / di;
  // UseRealTime(): rates divide by wall time — the work may run on worker
  // threads whose CPU time this thread's clock never sees.
  double rate_s = b.use_real_time() ? std::max(state.real_seconds(), 1e-12)
                                    : std::max(state.cpu_seconds(), 1e-12);
  if (state.items_processed() > 0) {
    r.extra.emplace_back(
        "items_per_second",
        static_cast<double>(state.items_processed()) / rate_s);
  }
  if (state.bytes_processed() > 0) {
    r.extra.emplace_back(
        "bytes_per_second",
        static_cast<double>(state.bytes_processed()) / rate_s);
  }
  for (const auto& [key, counter] : state.counters) {
    double v = counter.value;
    if (counter.flags & Counter::kIsRate) v /= rate_s;
    r.extra.emplace_back(key, v);
  }
  return r;
}

std::int64_t choose_iterations(const internal::Benchmark& b,
                               const std::vector<std::int64_t>& args) {
  std::int64_t iters = 1;
  for (;;) {
    State state(iters, args);
    b.fn()(state);
    double elapsed = state.real_seconds();
    if (elapsed >= g_flags.min_time || iters >= (std::int64_t{1} << 40)) {
      return iters;
    }
    // Geometric growth toward the target, overshooting slightly (gbench's
    // multiplier heuristic) so the loop converges in a few probes.
    double mult = 10.0;
    if (elapsed > 1e-9) {
      mult = std::clamp(1.4 * g_flags.min_time / elapsed, 2.0, 10.0);
    }
    iters = static_cast<std::int64_t>(static_cast<double>(iters) * mult) + 1;
  }
}

double aggregate(const std::vector<double>& xs, const std::string& how) {
  if (xs.empty()) return 0.0;
  if (how == "mean") {
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  }
  if (how == "median") {
    std::vector<double> v = xs;
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  }
  double mean = aggregate(xs, "mean");
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  double sd = xs.size() > 1
                  ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                  : 0.0;
  if (how == "stddev") return sd;
  // cv
  return mean != 0.0 ? sd / std::fabs(mean) : 0.0;
}

void write_json_entry(FILE* f, const RunResult& r, const std::string& run_type,
                      const std::string& aggregate_name, int repetitions,
                      bool* first) {
  if (!*first) std::fprintf(f, ",\n");
  *first = false;
  std::string name = r.run_name;
  if (!aggregate_name.empty()) name += "_" + aggregate_name;
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(name).c_str());
  std::fprintf(f, "      \"family_index\": %lld,\n",
               static_cast<long long>(r.family_index));
  std::fprintf(f, "      \"per_family_instance_index\": %lld,\n",
               static_cast<long long>(r.instance_index));
  std::fprintf(f, "      \"run_name\": \"%s\",\n",
               json_escape(r.run_name).c_str());
  std::fprintf(f, "      \"run_type\": \"%s\",\n", run_type.c_str());
  std::fprintf(f, "      \"repetitions\": %d,\n", repetitions);
  if (aggregate_name.empty()) {
    std::fprintf(f, "      \"repetition_index\": %lld,\n",
                 static_cast<long long>(r.repetition_index));
  } else {
    std::fprintf(f, "      \"aggregate_name\": \"%s\",\n",
                 aggregate_name.c_str());
    std::fprintf(f, "      \"aggregate_unit\": \"%s\",\n",
                 aggregate_name == "cv" ? "percentage" : "time");
  }
  std::fprintf(f, "      \"threads\": 1,\n");
  std::fprintf(f, "      \"iterations\": %lld,\n",
               static_cast<long long>(r.iterations));
  std::fprintf(f, "      \"real_time\": %s,\n", json_num(r.real_ns).c_str());
  std::fprintf(f, "      \"cpu_time\": %s,\n", json_num(r.cpu_ns).c_str());
  for (const auto& [key, value] : r.extra) {
    std::fprintf(f, "      \"%s\": %s,\n", json_escape(key).c_str(),
                 json_num(value).c_str());
  }
  std::fprintf(f, "      \"time_unit\": \"ns\"\n");
  std::fprintf(f, "    }");
}

void print_console(const RunResult& r, const std::string& suffix) {
  std::string name = r.run_name;
  if (!suffix.empty()) name += "_" + suffix;
  std::string extras;
  for (const auto& [key, value] : r.extra) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%.5g%s", key.c_str(), value,
                  key.find("per_second") != std::string::npos ||
                          key == "GFLOPS"
                      ? "/s"
                      : "");
    extras += buf;
  }
  std::printf("%-40s %12.0f ns %12.0f ns %10lld%s\n", name.c_str(), r.real_ns,
              r.cpu_ns, static_cast<long long>(r.iterations), extras.c_str());
}

void write_context(FILE* f) {
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
  char datebuf[64];
  std::time_t t = std::time(nullptr);
  std::tm tmv;
  localtime_r(&t, &tmv);
  std::strftime(datebuf, sizeof(datebuf), "%Y-%m-%dT%H:%M:%S%z", &tmv);
  std::fprintf(f, "  \"context\": {\n");
  std::fprintf(f, "    \"date\": \"%s\",\n", datebuf);
  std::fprintf(f, "    \"host_name\": \"%s\",\n", json_escape(host).c_str());
  std::fprintf(f, "    \"num_cpus\": %ld,\n", sysconf(_SC_NPROCESSORS_ONLN));
  std::fprintf(f, "    \"mhz_per_cpu\": 0,\n");
  std::fprintf(f, "    \"cpu_scaling_enabled\": false,\n");
  std::fprintf(f, "    \"caches\": [\n    ],\n");
  std::fprintf(f, "    \"load_avg\": [],\n");
  for (const auto& [key, value] : custom_context()) {
    std::fprintf(f, "    \"%s\": \"%s\",\n", json_escape(key).c_str(),
                 json_escape(value).c_str());
  }
  // Always "release": this TU is compiled -O2 -DNDEBUG regardless of the
  // enclosing build type (the whole point of vendoring — see README.md).
#ifdef NDEBUG
  std::fprintf(f, "    \"library_build_type\": \"release\"\n");
#else
  std::fprintf(f, "    \"library_build_type\": \"debug\"\n");
#endif
  std::fprintf(f, "  },\n");
}

}  // namespace

std::size_t RunSpecifiedBenchmarks() {
  std::regex filter(g_flags.filter.empty() ? std::string(".*")
                                           : g_flags.filter);
  // (family, instance, reps) for every matching instance, measured first so
  // the console report and the JSON file see identical results.
  std::vector<std::vector<RunResult>> all_reps;
  std::printf("%-40s %15s %15s %10s\n", "Benchmark", "Time", "CPU",
              "Iterations");
  std::printf("%s\n", std::string(86, '-').c_str());
  std::int64_t family = 0;
  for (const internal::Benchmark* b : registry()) {
    std::vector<std::vector<std::int64_t>> instances = b->instances();
    if (instances.empty()) instances.push_back({});
    std::int64_t instance = 0;
    for (const auto& args : instances) {
      std::string name = instance_name(*b, args);
      if (!std::regex_search(name, filter)) {
        ++instance;
        continue;
      }
      std::int64_t iters = choose_iterations(*b, args);
      std::vector<RunResult> reps;
      for (int rep = 0; rep < g_flags.repetitions; ++rep) {
        RunResult r = run_once(*b, args, iters);
        r.run_name = name;
        r.family_index = family;
        r.instance_index = instance;
        r.repetition_index = rep;
        reps.push_back(std::move(r));
        if (!g_flags.report_aggregates_only) print_console(reps.back(), "");
      }
      if (g_flags.repetitions > 1) {
        for (const char* how : {"mean", "median", "stddev", "cv"}) {
          RunResult agg = reps.front();
          agg.iterations = g_flags.repetitions;
          std::vector<double> real, cpu;
          for (const auto& r : reps) {
            real.push_back(r.real_ns);
            cpu.push_back(r.cpu_ns);
          }
          agg.real_ns = aggregate(real, how);
          agg.cpu_ns = aggregate(cpu, how);
          for (std::size_t e = 0; e < agg.extra.size(); ++e) {
            std::vector<double> vals;
            for (const auto& r : reps) vals.push_back(r.extra[e].second);
            agg.extra[e].second = aggregate(vals, how);
          }
          print_console(agg, how);
          agg.run_name = name;  // JSON writer appends the aggregate suffix
          reps.push_back(std::move(agg));
        }
      }
      all_reps.push_back(std::move(reps));
      ++instance;
    }
    ++family;
  }

  std::size_t reported = 0;
  FILE* f = nullptr;
  if (!g_flags.out_path.empty()) {
    f = std::fopen(g_flags.out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "benchmark_lite: cannot open %s\n",
                   g_flags.out_path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\n");
    write_context(f);
    std::fprintf(f, "  \"benchmarks\": [\n");
    bool first = true;
    for (const auto& reps : all_reps) {
      int n_iter_entries =
          static_cast<int>(reps.size()) - (g_flags.repetitions > 1 ? 4 : 0);
      const char* aggs[] = {"mean", "median", "stddev", "cv"};
      for (std::size_t i = 0; i < reps.size(); ++i) {
        bool is_agg = static_cast<int>(i) >= n_iter_entries;
        if (!is_agg && g_flags.report_aggregates_only &&
            g_flags.repetitions > 1) {
          continue;
        }
        write_json_entry(f, reps[i], is_agg ? "aggregate" : "iteration",
                         is_agg ? aggs[i - n_iter_entries] : "",
                         g_flags.repetitions, &first);
        ++reported;
      }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  } else {
    for (const auto& reps : all_reps) reported += reps.size();
  }
  return reported;
}

void Shutdown() {}

}  // namespace benchmark

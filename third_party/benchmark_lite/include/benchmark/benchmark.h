// benchmark_lite — API-compatible subset of google/benchmark.
//
// See third_party/benchmark_lite/README.md for scope and the list of
// intentional deviations.  The subset is exactly what bench/ uses:
//
//   BENCHMARK(fn)->Arg(a)->Arg(b);          registration + arg chaining
//   BENCHMARK(fn)->UseRealTime();           rates vs wall time, "/real_time"
//   for (auto _ : state) { ... }            timed iteration protocol
//   state.range(0) / iterations()           run parameters
//   state.SetItemsProcessed / SetBytesProcessed
//   state.PauseTiming() / ResumeTiming()
//   state.counters["X"] = Counter(v, Counter::kIsRate)
//   benchmark::Initialize / ReportUnrecognizedArguments /
//   benchmark::AddCustomContext / RunSpecifiedBenchmarks / Shutdown
//   benchmark::DoNotOptimize(expr)
//
// JSON output follows the google-benchmark schema: a "context" object
// (including custom context key/values and "library_build_type"), then a
// "benchmarks" array with per-repetition entries (run_type "iteration")
// and, when --benchmark_repetitions > 1, aggregate entries named
// "<run>_mean|_median|_stddev|_cv" (run_type "aggregate").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

class Counter {
 public:
  enum Flags {
    kDefaults = 0,
    /// Value is divided by elapsed CPU seconds when reported (real
    /// seconds if the benchmark chained UseRealTime()).
    kIsRate = 1 << 0,
  };

  double value = 0.0;
  Flags flags = kDefaults;

  Counter(double v = 0.0, Flags f = kDefaults) : value(v), flags(f) {}
  operator double() const { return value; }
};

using UserCounters = std::map<std::string, Counter>;

// ---------------------------------------------------------------------------
// State — the per-run handle passed to every benchmark function
// ---------------------------------------------------------------------------

class State {
 public:
  /// Planned-iteration loop.  begin() starts the timers; advancing past the
  /// final iteration stops them, so only the body of `for (auto _ : state)`
  /// is measured (minus Pause/Resume windows).
  struct iterator {
    State* parent;
    std::int64_t remaining;

    struct Value {};
    Value operator*() const { return {}; }
    iterator& operator++() {
      --remaining;
      return *this;
    }
    bool operator!=(const iterator& other) const {
      if (remaining != other.remaining) return true;
      parent->finish_run();
      return false;
    }
  };

  iterator begin() {
    start_run();
    return {this, max_iterations_};
  }
  iterator end() { return {this, 0}; }

  std::int64_t range(std::size_t i = 0) const;
  /// Iterations completed so far; after the loop, the total for this run.
  std::int64_t iterations() const { return completed_; }

  void SetItemsProcessed(std::int64_t n) { items_processed_ = n; }
  void SetBytesProcessed(std::int64_t n) { bytes_processed_ = n; }

  /// Excludes a window from the measured time.  Only valid while timing
  /// (i.e. inside the iteration loop).
  void PauseTiming();
  void ResumeTiming();

  UserCounters counters;

  // -- internal (used by the runner; not part of the public surface) --------
  State(std::int64_t max_iterations, std::vector<std::int64_t> args);
  double real_seconds() const { return real_seconds_; }
  double cpu_seconds() const { return cpu_seconds_; }
  std::int64_t items_processed() const { return items_processed_; }
  std::int64_t bytes_processed() const { return bytes_processed_; }

 private:
  void start_run();
  void finish_run();

  std::int64_t max_iterations_ = 0;
  std::int64_t completed_ = 0;
  std::vector<std::int64_t> args_;
  std::int64_t items_processed_ = 0;
  std::int64_t bytes_processed_ = 0;
  bool timing_ = false;
  double real_seconds_ = 0.0;
  double cpu_seconds_ = 0.0;
  double real_mark_ = 0.0;  // segment start stamps while timing
  double cpu_mark_ = 0.0;
};

using Function = void(State&);

namespace internal {

/// Registration handle returned by BENCHMARK(); ->Arg() appends one
/// single-argument instance ("name/arg").  With no Arg() calls the
/// benchmark runs once with no argument.
class Benchmark {
 public:
  Benchmark(std::string name, Function* fn);
  Benchmark* Arg(std::int64_t a);
  /// Report rates (items/bytes per second, Counter::kIsRate) against wall
  /// time instead of the benchmarking thread's CPU time, and suffix the
  /// instance name "/real_time" (google-benchmark parity).  Essential for
  /// benchmarks whose work runs on worker threads while the registering
  /// thread blocks — its CPU clock barely advances there.
  Benchmark* UseRealTime();

  const std::string& name() const { return name_; }
  Function* fn() const { return fn_; }
  bool use_real_time() const { return use_real_time_; }
  const std::vector<std::vector<std::int64_t>>& instances() const {
    return instances_;
  }

 private:
  std::string name_;
  Function* fn_;
  bool use_real_time_ = false;
  std::vector<std::vector<std::int64_t>> instances_;
};

Benchmark* RegisterBenchmarkInternal(const char* name, Function* fn);

}  // namespace internal

// ---------------------------------------------------------------------------
// Harness entry points
// ---------------------------------------------------------------------------

/// Parses and removes recognized --benchmark_* flags from argv.
void Initialize(int* argc, char** argv);

/// Prints any argv entries left after Initialize(); true when any remain.
bool ReportUnrecognizedArguments(int argc, char** argv);

/// Stamps an extra key into the JSON "context" object.
void AddCustomContext(const std::string& key, const std::string& value);

/// Runs every registered benchmark matching --benchmark_filter; returns the
/// number of runs reported.
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

// ---------------------------------------------------------------------------
// DoNotOptimize — compiler barrier keeping `value` alive
// ---------------------------------------------------------------------------

template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

}  // namespace benchmark

#define BENCHMARK_LITE_CONCAT2(a, b) a##b
#define BENCHMARK_LITE_CONCAT(a, b) BENCHMARK_LITE_CONCAT2(a, b)

#define BENCHMARK(fn)                                                 \
  static ::benchmark::internal::Benchmark* BENCHMARK_LITE_CONCAT(     \
      benchmark_lite_reg_, __LINE__) [[maybe_unused]] =               \
      ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

// Federated next-word prediction — the paper's Gboard-style motivating
// scenario: many "speakers", each with their own vocabulary habits,
// collaboratively training one language model without sharing text.
//
//   $ ./next_word_lstm [roles=30] [iters=30]
//
// After federated training, the example queries the global model with a few
// held-out word windows and shows its top prediction vs the ground truth.
#include <cstdio>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "nn/loss.h"
#include "util/config.h"

using namespace cmfl;

namespace {

// Human-readable names for the synthetic vocabulary: topic words are
// "t<topic>w<idx>", function words are "f<idx>".
std::string token_name(int token, const data::SynthTextSpec& spec) {
  const int topic_words =
      static_cast<int>(spec.topics * spec.words_per_topic);
  if (token < topic_words) {
    return "t" + std::to_string(token / static_cast<int>(spec.words_per_topic)) +
           "w" + std::to_string(token % static_cast<int>(spec.words_per_topic));
  }
  return "f" + std::to_string(token - topic_words);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);

  fl::NwpLstmSpec spec;
  spec.text.roles = static_cast<std::size_t>(cfg.get_int("roles", 30));
  spec.text.words_per_role = 90;
  spec.text.seq_len = 6;
  spec.text.topics = 4;
  spec.text.words_per_topic = 8;
  spec.text.function_words = 16;
  spec.text.dominant_topic_weight = 3.0;
  spec.lm.embed_dim = 12;
  spec.lm.hidden_dim = 24;

  fl::SimulationOptions opt;
  opt.local_epochs = 2;
  opt.batch_size = 2;
  opt.learning_rate = core::Schedule::constant(0.8);
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 30));
  opt.eval_every = 5;

  fl::Workload w = fl::make_nwp_lstm_workload(spec);
  std::printf("workload: %s\n\n", w.description.c_str());
  fl::FederatedSimulation sim(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(
          cfg.get_double("threshold", 0.49))),
      w.evaluator, opt);
  const fl::SimulationResult r = sim.run();

  for (const auto& rec : r.history) {
    if (rec.evaluated()) {
      std::printf("iter %2zu: uploads %2zu, next-word accuracy %.3f\n",
                  rec.iteration, rec.uploads, rec.accuracy);
    }
  }

  // Rebuild the corpus with the same seed and query the trained model on a
  // few windows.
  util::Rng rng(spec.seed);
  const data::RoleCorpus corpus = data::make_synth_text(spec.text, rng);
  nn::LstmLmSpec lm = spec.lm;
  lm.vocab = corpus.dataset.vocab;
  nn::LstmLm model(lm);
  util::Rng init_rng(1);
  model.init_params(init_rng);
  model.set_params(r.final_params);

  std::printf("\nsample predictions from the trained global model:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t window = (i * 137) % corpus.dataset.size();
    nn::SeqBatch batch;
    std::vector<int> label;
    std::vector<std::size_t> idx = {window};
    corpus.dataset.gather(idx, batch, label);
    const tensor::Matrix logits = model.predict(batch);
    const int top1 = nn::argmax_rows(logits)[0];
    std::printf("  [");
    for (std::size_t t = 0; t < batch.seq_len; ++t) {
      std::printf("%s%s", t ? " " : "",
                  token_name(batch.tokens[t], spec.text).c_str());
    }
    std::printf("] -> truth %s, predicted %s%s\n",
                token_name(label[0], spec.text).c_str(),
                token_name(top1, spec.text).c_str(),
                top1 == label[0] ? "  (hit)" : "");
  }
  std::printf("\nfinal next-word accuracy: %.3f, uploads: %zu\n",
              r.final_accuracy, r.total_rounds);
  return 0;
}

// General experiment driver: run any workload × filter × schedule
// combination from the command line and optionally export the full trace
// as CSV for plotting.
//
//   $ ./run_experiment workload=digits_cnn scheme=cmfl threshold=0.46 \
//         iters=40 out=/tmp/trace.csv
//
// Keys:
//   workload   digits_mlp | digits_cnn | nwp_lstm        (default digits_mlp)
//   scheme     vanilla | gaia | cmfl                     (default cmfl)
//   threshold  filter threshold base                     (default 0.45)
//   schedule   constant | inv_sqrt | inv_pow:<p>         (default constant)
//   clients, iters, epochs, batch, lr, seed, compressor, participation
//   out        CSV path for the per-iteration trace      (optional)
#include <cstdio>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/trace_io.h"
#include "fl/workloads.h"
#include "util/config.h"

using namespace cmfl;

namespace {

core::Schedule parse_schedule(const std::string& kind, double base) {
  if (kind == "constant") return core::Schedule::constant(base);
  if (kind == "inv_sqrt") return core::Schedule::inv_sqrt(base);
  const auto colon = kind.find(':');
  if (colon != std::string::npos && kind.substr(0, colon) == "inv_pow") {
    return core::Schedule::inv_pow(base, std::stod(kind.substr(colon + 1)));
  }
  throw std::invalid_argument("unknown schedule '" + kind + "'");
}

fl::Workload build_workload(const std::string& name,
                            const util::Config& cfg) {
  const auto clients =
      static_cast<std::size_t>(cfg.get_int("clients", 30));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  if (name == "digits_mlp") {
    fl::DigitsMlpSpec spec;
    spec.clients = clients;
    spec.train_samples = clients * 30;
    spec.test_samples = 300;
    spec.hidden = {32};
    spec.digits.image_size = 12;
    spec.digits.noise_stddev = 0.25f;
    spec.digits.noise_density = 0.15f;
    spec.seed = seed;
    return fl::make_digits_mlp_workload(spec);
  }
  if (name == "digits_cnn") {
    fl::DigitsCnnSpec spec;
    spec.clients = clients;
    spec.train_samples = clients * 30;
    spec.test_samples = 300;
    spec.cnn.image_size = 12;
    spec.cnn.conv1_filters = 4;
    spec.cnn.conv2_filters = 8;
    spec.cnn.fc_width = 32;
    spec.digits.image_size = 12;
    spec.digits.noise_stddev = 0.25f;
    spec.digits.noise_density = 0.15f;
    spec.seed = seed;
    return fl::make_digits_cnn_workload(spec);
  }
  if (name == "nwp_lstm") {
    fl::NwpLstmSpec spec;
    spec.text.roles = clients;
    spec.text.words_per_role = 90;
    spec.text.seq_len = 6;
    spec.text.topics = 4;
    spec.text.words_per_topic = 8;
    spec.text.function_words = 16;
    spec.text.dominant_topic_weight = 3.0;
    spec.text.outlier_fraction = 0.2;
    spec.lm.embed_dim = 12;
    spec.lm.hidden_dim = 24;
    spec.seed = seed;
    return fl::make_nwp_lstm_workload(spec);
  }
  throw std::invalid_argument("unknown workload '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto cfg = util::Config::from_args(argc, argv);
    const std::string workload_name =
        cfg.get_string("workload", "digits_mlp");
    const std::string scheme = cfg.get_string("scheme", "cmfl");

    fl::Workload w = build_workload(workload_name, cfg);
    std::printf("workload: %s\n", w.description.c_str());

    fl::SimulationOptions opt;
    opt.local_epochs = cfg.get_int("epochs", 4);
    opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 2));
    opt.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.3));
    opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 40));
    opt.eval_every = static_cast<std::size_t>(cfg.get_int("eval_every", 2));
    opt.codec.spec = cfg.get_string("codec", cfg.get_string("compressor", "dense"));
    opt.participation = cfg.get_double("participation", 1.0);

    const core::Schedule threshold = parse_schedule(
        cfg.get_string("schedule", "constant"),
        cfg.get_double("threshold", 0.45));

    fl::FederatedSimulation sim(std::move(w.clients),
                                core::make_filter(scheme, threshold),
                                w.evaluator, opt);
    const fl::SimulationResult r = sim.run();

    std::printf(
        "scheme=%s threshold=%s -> uploads=%zu, uplink=%llu bytes, final "
        "accuracy=%.3f\n",
        scheme.c_str(), threshold.describe().c_str(), r.total_rounds,
        static_cast<unsigned long long>(r.uploaded_bytes),
        r.final_accuracy);

    const std::string out = cfg.get_string("out", "");
    if (!out.empty()) {
      fl::write_trace_csv_file(out, r);
      std::printf("trace written to %s\n", out.c_str());
    }
    for (const auto& key : cfg.unused_keys()) {
      std::fprintf(stderr, "warning: unknown key '%s'\n", key.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

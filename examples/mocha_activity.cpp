// Federated multi-task learning on human-activity data (the paper's §V-B
// scenario): every phone is its own *task* with a personal model, tasks are
// coupled through a learned relationship matrix (MOCHA), and CMFL filters
// the irrelevant task updates.
//
//   $ ./mocha_activity [clients=50] [iters=60] [threshold=0.5]
//
// Prints the accuracy trajectory with and without CMFL, and then the
// outlier analysis: which clients were eliminated most, and how that
// correlates with the planted heavy-shift outliers.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/filter.h"
#include "data/synth_har.h"
#include "mtl/mtl_simulation.h"
#include "util/config.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);

  util::Rng rng(7);
  data::SynthHarSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 50));
  spec.features = 48;
  spec.min_samples = 30;
  spec.max_samples = 80;
  spec.outlier_fraction = 0.25;
  spec.outlier_label_flip = 0.6;
  data::HarData har = data::make_synth_har(spec, rng);

  mtl::MtlOptions opt;
  opt.local_epochs = 5;
  opt.batch_size = 4;
  opt.learning_rate = 0.02f;
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 60));
  opt.eval_every = 10;
  opt.lambda = 0.1;
  opt.omega_every = 10;
  opt.seed = 11;

  std::printf("tasks: %zu (of which %zu planted outliers)\n\n", spec.clients,
              static_cast<std::size_t>(std::count(har.is_outlier.begin(),
                                                  har.is_outlier.end(), true)));

  mtl::MtlSimulation plain(&har.dataset, har.partition,
                           std::make_unique<core::AcceptAllFilter>(), opt);
  const fl::SimulationResult base = plain.run();

  mtl::MtlSimulation filtered(
      &har.dataset, har.partition,
      std::make_unique<core::CmflFilter>(
          core::Schedule::constant(cfg.get_double("threshold", 0.45))),
      opt);
  const fl::SimulationResult cmfl = filtered.run();

  std::printf("scheme      | uploads | final accuracy\n");
  std::printf("MOCHA       | %7zu | %.4f\n", base.total_rounds,
              base.final_accuracy);
  std::printf("MOCHA+CMFL  | %7zu | %.4f\n\n", cmfl.total_rounds,
              cmfl.final_accuracy);

  // Outlier analysis: sort clients by elimination count.
  std::vector<std::size_t> order(spec.clients);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cmfl.eliminations_per_client[a] > cmfl.eliminations_per_client[b];
  });
  std::printf("most-eliminated tasks (top 10):\n");
  std::printf("task | eliminations | planted outlier?\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, spec.clients); ++i) {
    const std::size_t k = order[i];
    std::printf("%4zu | %12zu | %s\n", k, cmfl.eliminations_per_client[k],
                har.is_outlier[k] ? "yes" : "no");
  }
  std::printf(
      "\nCMFL's relevance check surfaces the heavy-shift clients without "
      "ever inspecting their raw data — only their update directions.\n");
  return 0;
}

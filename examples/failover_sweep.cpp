// Master-failover sweep over the replicated control plane.
//
// Runs the digits-MLP workload against a 3-replica master (DESIGN.md §14)
// and demonstrates the headline guarantee: killing the current leader
// mid-round — at progressively nastier points in the round — never changes
// what the cluster learns.  Every crashed run finishes with the same final
// parameter vector, bit for bit, as the fault-free single-master baseline;
// only the failover accounting (elections, re-broadcast bytes, control
// traffic) grows.
//
// The sweep prints one row per crash schedule (the final row is a crash-
// *restart*: the killed leader recovers from its durable WAL + snapshot,
// DESIGN.md §15, and rejoins as a follower):
//   crash-round    round whose leader is killed (- = no crash)
//   after-replies  replies the doomed leader accepts before dying
//   elections      Raft elections held across the run
//   log-entries    replicated control-plane log entries
//   snapshots      InstallSnapshot transfers (log compaction catch-ups)
//   restarts       crash-restart recoveries completed from storage
//   wal-KiB        WAL bytes covered by an fsync (durable rows only)
//   replay         log entries replayed from the WAL at restarts
//   ctl-KiB        Raft traffic between replicas (wall-clock coupled)
//   retx-bytes     data-plane re-broadcast/re-upload bytes
//   params==base   bit-identity of the final model vs. the baseline
//
//   $ ./failover_sweep [workers=6] [iters=10] [timeout_ms=500] [seed=99]
//                      [storage=/tmp/cmfl_failover_wal]
#include <cstdio>
#include <string>

#include "core/filter.h"
#include "fl/workloads.h"
#include "net/cluster.h"
#include "util/config.h"

using namespace cmfl;

namespace {

fl::DigitsMlpSpec workload_spec(std::size_t workers) {
  fl::DigitsMlpSpec spec;
  spec.clients = workers;
  spec.train_samples = 30 * workers;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 5;
  return spec;
}

net::ClusterResult run_once(const fl::DigitsMlpSpec& spec,
                            const net::ClusterOptions& opt) {
  fl::Workload w = fl::make_digits_mlp_workload(spec);
  net::FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w.evaluator, opt);
  return cluster.run();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const auto workers = static_cast<std::size_t>(cfg.get_int("workers", 6));
  const auto iters = static_cast<std::size_t>(cfg.get_int("iters", 10));
  const double timeout_s = cfg.get_double("timeout_ms", 500.0) / 1000.0;
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 99));
  const std::string storage =
      cfg.get_string("storage", "/tmp/cmfl_failover_wal");

  const fl::DigitsMlpSpec spec = workload_spec(workers);
  net::ClusterOptions base;
  base.fl.local_epochs = 2;
  base.fl.batch_size = 5;
  base.fl.learning_rate = core::Schedule::constant(0.1);
  base.fl.max_iterations = iters;
  base.fl.eval_every = 5;

  std::printf(
      "failover sweep: %zu workers, %zu iterations, 3 master replicas\n\n",
      workers, iters);

  // The reference trajectory comes from the plain single-master cluster:
  // replication itself must be invisible, so every replicated run below is
  // compared against this.
  const net::ClusterResult baseline = run_once(spec, base);

  net::ClusterOptions repl = base;
  repl.replication.replicas = 3;
  repl.replication.seed = seed;

  struct Row {
    const char* label;
    long crash_round;     // -1 = fault-free
    std::uint32_t after;  // replies accepted before the kill
    bool restart;         // true: crash-restart from durable storage
  };
  const Row rows[] = {
      {"-", -1, 0, false},
      {"2", 2, 0, false},  // right after the broadcast, before any reply
      {"mid", static_cast<long>(iters / 2), 2, false},  // mid-round
      {"last",
       static_cast<long>(iters > 1 ? iters - 1 : 1),
       static_cast<std::uint32_t>(workers > 0 ? workers - 1 : 0), false},
      // Crash-restart: the round-(iters/2) leader dies after two replies,
      // then recovers from its WAL + snapshot and rejoins mid-run.
      {"mid+restart", static_cast<long>(iters / 2), 2, true},
  };

  std::printf(
      "crash-round  after-replies  elections  log-entries  snapshots  "
      "restarts  wal-KiB  replay  ctl-KiB  retx-bytes  params==base\n");
  for (const Row& row : rows) {
    net::ClusterOptions opt = repl;
    if (row.crash_round >= 0) {
      if (row.restart) {
        opt.replication.storage_dir = storage;
        opt.fault.replica_restart.push_back(
            {static_cast<std::uint64_t>(row.crash_round), row.after, 50.0,
             net::StorageFault::kNone});
      } else {
        opt.fault.leader_crash.push_back(
            {static_cast<std::uint64_t>(row.crash_round), row.after});
      }
      opt.recovery.round_timeout_s = timeout_s;
      opt.recovery.max_attempts = 12;
    }
    const net::ClusterResult r = run_once(spec, opt);
    const bool identical = r.sim.final_params == baseline.sim.final_params;
    std::printf(
        "%11s  %13u  %9llu  %11llu  %9llu  %8llu  %7.1f  %6llu  %7.1f  "
        "%10llu  %s\n",
        row.label, row.after,
        static_cast<unsigned long long>(r.faults.elections_held),
        static_cast<unsigned long long>(r.faults.log_entries_replicated),
        static_cast<unsigned long long>(r.faults.snapshot_transfers),
        static_cast<unsigned long long>(r.faults.replica_restarts),
        static_cast<double>(r.faults.wal_bytes_fsynced) / 1024.0,
        static_cast<unsigned long long>(r.faults.wal_replay_entries),
        static_cast<double>(r.control_plane_bytes) / 1024.0,
        static_cast<unsigned long long>(r.uplink_retransmitted_bytes +
                                        r.downlink_retransmitted_bytes),
        identical ? "yes" : "NO");
  }

  std::printf(
      "\nevery row must say yes: failover replays the committed round "
      "state, it never re-trains or re-aggregates differently.\n");
  return 0;
}

// Byzantine adversary sweep: attacker fraction x defense matrix.
//
// For each attacker fraction and each attack, runs the federated simulation
// under four defenses and tabulates final accuracy, uploads, server-side
// rejections, and quarantined clients:
//
//   mean      — vanilla uniform mean, validation off (the undefended
//               baseline; garbage attackers destroy it outright)
//   validate  — uniform mean behind the update validator (non-finite and
//               norm-exploded updates rejected, repeat offenders
//               quarantined)
//   median    — coordinate-wise median + validator
//   cmfl      — CMFL's relevance filter (paper §V-C): attackers' updates
//               fail the sign-agreement relevance test and are eliminated
//               client-side, before any bytes cross the wire
//
// The headline result mirrors the paper's outlier experiment: the relevance
// filter alone suppresses sign-flip and garbage attackers as a side effect
// of its communication test, while robust aggregation covers the attacks
// that stay relevant-looking (e.g. scale).
//
// The default horizon (10 iterations) is the descent phase, where the
// relevance filter's defense is cleanest; at long horizons a *constant*
// threshold starts eliminating converged honest clients too (their
// relevance decays towards 0.5) — try iters=30 to see that regime.
//
//   $ ./adversary_sweep [clients=20] [iters=10] [dim=16] [seed=7]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/adversary.h"
#include "fl/convex_testbed.h"
#include "fl/simulation.h"
#include "util/config.h"

using namespace cmfl;

namespace {

struct Defense {
  const char* name;
  fl::Aggregation aggregation;
  bool validate;
  bool cmfl_filter;
};

constexpr Defense kDefenses[] = {
    {"mean", fl::Aggregation::kUniformMean, false, false},
    {"validate", fl::Aggregation::kUniformMean, true, false},
    {"median", fl::Aggregation::kMedian, true, false},
    {"cmfl", fl::Aggregation::kUniformMean, true, true},
};

struct SweepConfig {
  std::size_t clients;
  std::size_t iters;
  std::size_t dim;
  std::uint64_t seed;
};

fl::SimulationResult run_once(const SweepConfig& cfg,
                              const fl::AdversarySpec& adv, double fraction,
                              const Defense& defense) {
  fl::ConvexTestbedSpec spec;
  spec.clients = cfg.clients;
  spec.dim = cfg.dim;
  spec.center_spread = 0.25;
  spec.outlier_fraction = 0.0;
  spec.gradient_noise = 0.05;
  spec.local_steps = 4;
  spec.start_offset = 3.0;  // start far from x*: honest updates align
  spec.seed = cfg.seed;
  fl::ConvexWorkload w = fl::make_convex_workload(spec);
  fl::apply_adversaries(w.clients, adv, fraction);

  fl::SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = cfg.iters;
  opt.eval_every = cfg.iters;  // evaluate once, at the end
  opt.aggregation = defense.aggregation;
  if (!defense.validate) {
    opt.validation.reject_nonfinite = false;
    opt.validation.quarantine_after = 0;
  }

  std::unique_ptr<core::UpdateFilter> filter;
  if (defense.cmfl_filter) {
    filter = std::make_unique<core::CmflFilter>(core::Schedule::constant(0.5));
  } else {
    filter = std::make_unique<core::AcceptAllFilter>();
  }
  fl::FederatedSimulation sim(std::move(w.clients), std::move(filter),
                              w.evaluator, opt);
  return sim.run();
}

bool finite_params(const fl::SimulationResult& r) {
  for (const float p : r.final_params) {
    if (!std::isfinite(p)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg_args = util::Config::from_args(argc, argv);
  SweepConfig cfg;
  cfg.clients = static_cast<std::size_t>(cfg_args.get_int("clients", 20));
  cfg.iters = static_cast<std::size_t>(cfg_args.get_int("iters", 10));
  cfg.dim = static_cast<std::size_t>(cfg_args.get_int("dim", 16));
  cfg.seed = static_cast<std::uint64_t>(cfg_args.get_int("seed", 7));

  const fl::SimulationResult clean =
      run_once(cfg, {}, 0.0, kDefenses[0]);
  std::printf(
      "adversary sweep: %zu clients, %zu iterations, convex testbed "
      "(clean accuracy %.3f)\n",
      cfg.clients, cfg.iters, clean.final_accuracy);

  for (const auto attack :
       {fl::Attack::kSignFlip, fl::Attack::kScale, fl::Attack::kGarbage,
        fl::Attack::kFreeRider, fl::Attack::kLabelFlip}) {
    std::printf("\n=== attack: %s ===\n", fl::attack_name(attack).c_str());
    std::printf("frac  defense   final-acc  uploads  rejected  quarantined\n");
    for (const double fraction : {0.2, 0.4}) {
      for (const Defense& defense : kDefenses) {
        fl::AdversarySpec adv;
        adv.attack = attack;
        adv.seed = cfg.seed + 1;
        const fl::SimulationResult r =
            run_once(cfg, adv, fraction, defense);
        char acc[32];
        if (finite_params(r)) {
          std::snprintf(acc, sizeof acc, "%9.3f", r.final_accuracy);
        } else {
          std::snprintf(acc, sizeof acc, "%9s", "diverged");
        }
        std::printf("%.2f  %-8s  %s  %7llu  %8llu  %11zu\n", fraction,
                    defense.name, acc,
                    static_cast<unsigned long long>(r.total_rounds),
                    static_cast<unsigned long long>(
                        r.validation.total_rejected()),
                    r.validation.quarantined_count());
      }
    }
  }
  std::printf(
      "\nnotes: 'diverged' = non-finite final parameters (the undefended "
      "mean under garbage);\n"
      "uploads = updates that crossed the wire (cmfl eliminates "
      "client-side); rejected/quarantined are server-side.\n");
  return 0;
}

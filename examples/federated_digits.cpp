// Federated image classification with the digits CNN — the paper's MNIST
// scenario at laptop scale, with a live view of what CMFL is doing.
//
//   $ ./federated_digits [clients=40] [iters=30] [threshold=0.46]
//
// Trains the two-conv-layer CNN across non-IID clients (each holding 1-2
// digit classes) with the CMFL filter, and prints a per-round trace:
// how many clients uploaded, the mean relevance, and the test accuracy —
// the "jagged but cheap" convergence the paper describes.
#include <cstdio>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "util/config.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);

  fl::DigitsCnnSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 40));
  spec.train_samples = spec.clients * 30;
  spec.test_samples = 300;
  spec.cnn.image_size = 12;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 32;
  spec.digits.image_size = 12;
  spec.digits.noise_stddev = 0.25f;
  spec.digits.noise_density = 0.15f;

  fl::SimulationOptions opt;
  opt.local_epochs = 4;
  opt.batch_size = 2;
  opt.learning_rate = core::Schedule::inv_sqrt(0.15);
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 30));
  opt.eval_every = 1;

  const double threshold = cfg.get_double("threshold", 0.46);
  fl::Workload w = fl::make_digits_cnn_workload(spec);
  std::printf("workload: %s\n", w.description.c_str());
  std::printf("CMFL threshold: %.2f (constant)\n\n", threshold);

  fl::FederatedSimulation sim(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(threshold)),
      w.evaluator, opt);
  const fl::SimulationResult r = sim.run();

  std::printf("iter | uploads/%zu | mean relevance | accuracy\n",
              spec.clients);
  for (const auto& rec : r.history) {
    std::printf("%4zu | %10zu | %14.3f | %s\n", rec.iteration, rec.uploads,
                rec.mean_score,
                rec.evaluated()
                    ? (std::to_string(rec.accuracy).substr(0, 5)).c_str()
                    : "-");
  }

  std::size_t eliminated = 0;
  for (std::size_t e : r.eliminations_per_client) eliminated += e;
  std::printf(
      "\ntotal uploads: %zu of %zu possible (%.0f%% of the uplink traffic "
      "eliminated)\nfinal accuracy: %.3f\n",
      r.total_rounds, r.total_rounds + eliminated,
      100.0 * static_cast<double>(eliminated) /
          static_cast<double>(r.total_rounds + eliminated),
      r.final_accuracy);
  return 0;
}

// Fault-injection sweep over the cluster emulation.
//
// Part 1 sweeps the frame-drop rate on every link (with a little corruption
// and duplication mixed in) while recovery runs at quorum 1.0.  The
// headline property: the learning trajectory — and the final parameter
// vector, bit for bit — is identical to the fault-free baseline at every
// drop rate; only the retransmission/byte accounting grows.  That is the
// "exactly-once training per round" guarantee of the sequence-numbered
// protocol (DESIGN.md §9).
//
// Part 2 demonstrates the degraded regime: a third of the workers crash
// mid-run and quorum 0.5 plus staleness suspicion keeps the survivors
// training.
//
//   $ ./fault_sweep [workers=6] [iters=10] [timeout_ms=200] [seed=99]
#include <cstdio>

#include "core/filter.h"
#include "fl/workloads.h"
#include "net/cluster.h"
#include "util/config.h"

using namespace cmfl;

namespace {

fl::DigitsMlpSpec workload_spec(std::size_t workers) {
  fl::DigitsMlpSpec spec;
  spec.clients = workers;
  spec.train_samples = 30 * workers;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 5;
  return spec;
}

net::ClusterResult run_once(const fl::DigitsMlpSpec& spec,
                            const net::ClusterOptions& opt) {
  fl::Workload w = fl::make_digits_mlp_workload(spec);
  net::FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w.evaluator, opt);
  return cluster.run();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const auto workers = static_cast<std::size_t>(cfg.get_int("workers", 6));
  const auto iters = static_cast<std::size_t>(cfg.get_int("iters", 10));
  const double timeout_s = cfg.get_double("timeout_ms", 200.0) / 1000.0;
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 99));

  const fl::DigitsMlpSpec spec = workload_spec(workers);
  net::ClusterOptions base;
  base.fl.local_epochs = 2;
  base.fl.batch_size = 5;
  base.fl.learning_rate = core::Schedule::constant(0.1);
  base.fl.max_iterations = iters;
  base.fl.eval_every = 5;

  std::printf("fault sweep: %zu workers, %zu iterations, CMFL filter\n\n",
              workers, iters);
  const net::ClusterResult baseline = run_once(spec, base);

  std::printf(
      "drop  retransmits  dropped  corrupt  redundant  retx-bytes  "
      "timeout-rounds  final-acc  params==baseline\n");
  for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
    net::ClusterOptions opt = base;
    if (drop > 0.0) {
      opt.fault.seed = seed;
      opt.fault.downlink = {.drop_prob = drop, .corrupt_prob = 0.05,
                            .duplicate_prob = 0.05};
      opt.fault.uplink = {.drop_prob = drop, .corrupt_prob = 0.05,
                          .duplicate_prob = 0.05};
      opt.recovery.round_timeout_s = timeout_s;
      opt.recovery.backoff = 1.5;
      opt.recovery.max_attempts = 12;
      opt.recovery.quorum = 1.0;
    }
    const net::ClusterResult r = run_once(spec, opt);
    const bool identical = r.sim.final_params == baseline.sim.final_params;
    std::printf(
        "%.2f  %11llu  %7llu  %7llu  %9llu  %10llu  %14llu  %9.3f  %s\n",
        drop, static_cast<unsigned long long>(r.faults.retransmits),
        static_cast<unsigned long long>(r.faults.frames_dropped),
        static_cast<unsigned long long>(r.faults.frames_corrupted),
        static_cast<unsigned long long>(r.faults.redundant_frames),
        static_cast<unsigned long long>(r.uplink_retransmitted_bytes +
                                        r.downlink_retransmitted_bytes),
        static_cast<unsigned long long>(r.faults.timed_out_rounds),
        r.sim.final_accuracy, identical ? "yes" : "NO");
  }

  // --- Crash-stop + quorum demonstration ---
  const std::uint64_t crash_iter = iters / 2 + 1;
  net::ClusterOptions crash_opt = base;
  crash_opt.fault.seed = seed;
  for (std::size_t k = 0; k < workers / 3; ++k) {
    crash_opt.fault.crash_at_iteration[k] = crash_iter;
  }
  crash_opt.recovery.round_timeout_s = timeout_s;
  crash_opt.recovery.quorum = 0.5;
  crash_opt.recovery.max_attempts = 4;
  crash_opt.recovery.suspect_after_stale_rounds = 2;
  const net::ClusterResult crashed = run_once(spec, crash_opt);

  std::printf("\ncrash-stop demo: %zu of %zu workers die at iteration %llu "
              "(quorum 0.5, suspect after 2 stale rounds)\n",
              workers / 3, workers,
              static_cast<unsigned long long>(crash_iter));
  std::printf("  declared crashed    :");
  for (const auto k : crashed.faults.crashed_workers) {
    std::printf(" %u", k);
  }
  std::printf("\n  quorum rounds       : %llu\n",
              static_cast<unsigned long long>(crashed.faults.quorum_rounds));
  std::printf("  final accuracy      : %.3f (fault-free baseline %.3f)\n",
              crashed.sim.final_accuracy, baseline.sim.final_accuracy);

  // Control-plane counters are part of every FaultReport; without
  // replication they must all read zero (see failover_sweep for the
  // replicated runs that exercise them).
  std::printf("\ncontrol plane (single master — all zero by construction)\n");
  std::printf("  elections held      : %llu\n",
              static_cast<unsigned long long>(crashed.faults.elections_held));
  std::printf("  leader crashes      : %llu\n",
              static_cast<unsigned long long>(crashed.faults.leader_crashes));
  std::printf(
      "  log entries repl.   : %llu\n",
      static_cast<unsigned long long>(crashed.faults.log_entries_replicated));
  std::printf(
      "  snapshot transfers  : %llu\n",
      static_cast<unsigned long long>(crashed.faults.snapshot_transfers));
  std::printf(
      "  leader redirects    : %llu\n",
      static_cast<unsigned long long>(crashed.faults.leader_redirects));
  return 0;
}

// Codec x CMFL-threshold sweep on the convex testbed: the two
// communication-savings axes and their product, measured in uplink bytes
// to a target accuracy.
//
// CMFL cuts the *number* of uploads per round (relevance filtering); an
// update codec cuts the *bits per* upload (sign / stochastic quantization /
// top-k / shared codebook).  The axes are independent, so their savings
// multiply: the grid below reports bytes-to-target for every
// (threshold, codec) cell and the headline checks that the best combined
// cell strictly beats both single-axis bests.
//
// The testbed is the Theorem-1 quadratic population (exact optimum,
// closed-form loss), with a slice of clients training through heavy
// zero-mean gradient noise: their updates are mostly irrelevant in the
// paper's sense, so relevance filtering has something real to win.
// Thresholds follow the slowly decaying schedule v_t = v0/t^p (Theorem 1
// remark 2).  Accuracy = 1/(1 + |f(x) - f(x*)|), so `target` is a
// closed-form optimality-gap threshold.  A best cell only qualifies for
// the headline if its *final* accuracy also holds the target (the
// sustained-accuracy rule of fl::best_run_index) — transiently touching
// the target and then drifting off does not count.  Every run is seeded —
// same seed, same table, bit for bit.
//
//   $ ./codec_sweep [clients=60] [dim=256] [iters=80] [target=0.9]
//                   [lr=0.1] [spread=0.1] [noisy=0.3] [noisy_noise=2.0]
//                   [t1=0.6] [t2=0.7] [t3=0.8] [decay_pow=0.05] [seed=42]
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/convex_testbed.h"
#include "fl/simulation.h"
#include "util/config.h"
#include "util/rng.h"
#include "util/table.h"

using namespace cmfl;

namespace {

std::string fmt_bytes(const std::optional<std::uint64_t>& v) {
  return v ? util::fmt_count(static_cast<long long>(*v)) : "not reached";
}

std::string fmt_saving(const std::optional<double>& v) {
  return v ? util::fmt(*v, 2) + "x" : "-";
}

/// Baseline bytes / cell bytes; nullopt when the cell never hit the target.
std::optional<double> saving_vs(const std::optional<std::uint64_t>& baseline,
                                const std::optional<std::uint64_t>& cell) {
  if (!baseline || !cell || *cell == 0) return std::nullopt;
  return static_cast<double>(*baseline) / static_cast<double>(*cell);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const double target = cfg.get_double("target", 0.9);

  fl::ConvexTestbedSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 60));
  spec.dim = static_cast<std::size_t>(cfg.get_int("dim", 256));
  spec.outlier_fraction = 0.0;  // irrelevance comes from noise, see below
  spec.center_spread = cfg.get_double("spread", 0.1);
  spec.gradient_noise = cfg.get_double("noise", 0.05);
  spec.local_steps = 5;
  spec.start_offset = 2.0;  // descent regime: honest clients agree on sign
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));

  // A fraction of clients train through heavy zero-mean gradient noise —
  // their centers (and therefore the exact optimum) are unchanged, but
  // their per-round updates are mostly noise, i.e. irrelevant in exactly
  // the paper's sense (Fig. 6: a small slice of clients holds most
  // eliminations).  CMFL can win bytes here; on an all-honest population
  // there is nothing to filter.
  const double noisy_fraction = cfg.get_double("noisy", 0.3);
  const double noisy_noise = cfg.get_double("noisy_noise", 2.0);

  fl::SimulationOptions base;
  base.local_epochs = 1;
  base.batch_size = 1;
  base.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.1));
  base.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 80));
  base.eval_every = 1;

  // The paper's protocol per axis: test a set of thresholds, keep the best.
  // v0 = 0 is the vanilla column.  Aggressive thresholds can starve a
  // codec'd run (the filter judges relevance against the *decoded* global
  // estimate, so codec noise feeds back into the relevance signal) — the
  // grid makes that visible instead of hiding it behind one hand-picked
  // threshold.
  const std::vector<double> thresholds = {0.0, cfg.get_double("t1", 0.6),
                                          cfg.get_double("t2", 0.7),
                                          cfg.get_double("t3", 0.8)};
  const std::vector<std::string> codecs = {"dense", "sign", "quant:8",
                                           "topk:0.05", "codebook:16,8"};

  std::printf("codec x CMFL sweep: convex testbed, %zu clients, dim %zu, "
              "target accuracy %.2f (seed %llu)\n\n",
              spec.clients, spec.dim, target,
              static_cast<unsigned long long>(spec.seed));

  auto run_cell = [&](double v0, const std::string& codec) {
    fl::ConvexWorkload w = fl::make_convex_workload(spec);
    // Rebuild the clients on the same centers (so w.evaluator stays exact)
    // with the noisy slice mixed in.
    const auto& centers = w.testbed->centers();
    const auto noisy_count =
        static_cast<std::size_t>(noisy_fraction * spec.clients);
    std::vector<std::unique_ptr<fl::FlClient>> clients;
    clients.reserve(centers.size());
    for (std::size_t k = 0; k < centers.size(); ++k) {
      const double noise = k < noisy_count ? noisy_noise : spec.gradient_noise;
      clients.push_back(std::make_unique<fl::ConvexClient>(
          centers[k], spec.local_steps, noise,
          util::Rng(spec.seed * 7919 + k),
          static_cast<float>(spec.start_offset)));
    }
    auto opt = base;
    opt.codec.spec = codec;
    // Theorem 1 wants a decaying threshold; a slow decay v_t = v0/t^p
    // (remark 2: diverse schedules converge) keeps v_t between the noisy
    // slice's relevance and the honest descent band for the whole approach
    // to the target, then keeps shrinking so nobody is starved near the
    // optimum.
    const double decay_pow = cfg.get_double("decay_pow", 0.05);
    const core::Schedule threshold =
        v0 > 0.0 ? core::Schedule::inv_pow(v0, decay_pow)
                 : core::Schedule::constant(0.0);
    const std::string scheme = v0 > 0.0 ? "cmfl" : "vanilla";
    fl::FederatedSimulation sim(std::move(clients),
                                core::make_filter(scheme, threshold),
                                w.evaluator, opt);
    return sim.run();
  };

  // Every saving is measured against the (vanilla, dense) corner; each
  // axis (and the product) gets its best cell over the grid.
  std::optional<std::uint64_t> baseline_bytes;
  std::optional<std::uint64_t> cmfl_only_bytes;   // best (cmfl, dense)
  std::optional<std::uint64_t> best_codec_bytes;  // best (vanilla, codec)
  std::optional<std::uint64_t> best_combo_bytes;  // best (cmfl, codec)
  std::string cmfl_only_name, best_codec_name, best_combo_name;

  util::Table table({"v0", "codec", "uploads", "uplink bytes",
                     "bytes to target", "saving", "final acc"});
  for (const double v0 : thresholds) {
    for (const auto& codec : codecs) {
      const auto r = run_cell(v0, codec);
      // Sustained-accuracy rule: a cell qualifies only if it still holds
      // the target at the end of the run (cf. fl::best_run_index).
      const auto bytes = r.final_accuracy >= target
                             ? r.bytes_to_accuracy(target)
                             : std::nullopt;
      const bool is_dense = codec == "dense";
      if (v0 == 0.0 && is_dense) baseline_bytes = bytes;
      if (v0 > 0.0 && is_dense && bytes &&
          (!cmfl_only_bytes || *bytes < *cmfl_only_bytes)) {
        cmfl_only_bytes = bytes;
        cmfl_only_name = "v0=" + util::fmt(v0, 2);
      }
      if (v0 == 0.0 && !is_dense && bytes &&
          (!best_codec_bytes || *bytes < *best_codec_bytes)) {
        best_codec_bytes = bytes;
        best_codec_name = codec;
      }
      if (v0 > 0.0 && !is_dense && bytes &&
          (!best_combo_bytes || *bytes < *best_combo_bytes)) {
        best_combo_bytes = bytes;
        best_combo_name = codec + " @ v0=" + util::fmt(v0, 2);
      }
      table.add_row({util::fmt(v0, 2), codec,
                     util::fmt_count(static_cast<long long>(r.total_rounds)),
                     util::fmt_count(static_cast<long long>(r.uploaded_bytes)),
                     fmt_bytes(bytes),
                     fmt_saving(saving_vs(baseline_bytes, bytes)),
                     util::fmt(r.final_accuracy, 3)});
    }
  }
  table.print(std::cout);

  const auto cmfl_saving = saving_vs(baseline_bytes, cmfl_only_bytes);
  const auto codec_saving = saving_vs(baseline_bytes, best_codec_bytes);
  const auto combo_saving = saving_vs(baseline_bytes, best_combo_bytes);
  std::printf("\nbytes-to-target savings vs (vanilla, dense), best cell per "
              "axis:\n");
  std::printf("  CMFL alone   (%-22s): %s\n", cmfl_only_name.c_str(),
              fmt_saving(cmfl_saving).c_str());
  std::printf("  codec alone  (%-22s): %s\n", best_codec_name.c_str(),
              fmt_saving(codec_saving).c_str());
  std::printf("  CMFL x codec (%-22s): %s\n", best_combo_name.c_str(),
              fmt_saving(combo_saving).c_str());

  const bool multiplies = cmfl_saving && codec_saving && combo_saving &&
                          *combo_saving > *cmfl_saving &&
                          *combo_saving > *codec_saving;
  std::printf("\ncombined strictly beats both single axes: %s\n",
              multiplies ? "yes" : "NO");

  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unknown config key '%s'\n", key.c_str());
  }
  return multiplies ? 0 : 1;
}

// Lazy materialization at six-figure population scale (DESIGN.md §11).
//
// Drives a 100,000-device virtual convex population through
// sched::RoundEngine at several cohort sizes and prints the resident-client
// accounting: peak resident clients tracks the per-round cohort plus the
// warm pool, never the population — the property that makes six-figure
// simulated deployments affordable on one machine.
//
// Each run also reports process peak RSS (getrusage ru_maxrss), warm-pool
// eviction counts and work-steal events, and takes the sharded-ingest and
// work-stealing knobs:
//
//   ./scale_sweep                      # 100k devices, cohorts 64/256/1024
//   ./scale_sweep devices=250000 samples=128,512 mode=async iters=8
//   ./scale_sweep million=1 shards=8 parallel=1   # 1M-device round
#include <sys/resource.h>

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/filter.h"
#include "core/threshold.h"
#include "fl/convex_testbed.h"
#include "sched/population.h"
#include "sched/round_engine.h"
#include "util/config.h"
#include "util/table.h"

using namespace cmfl;

namespace {

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto comma = csv.find(',', pos);
    const auto item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) sizes.push_back(std::stoul(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (sizes.empty()) {
    throw std::invalid_argument("samples= needs a comma-separated list");
  }
  return sizes;
}

/// Process peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);

  // million=1: the headline configuration — one round over a 1,000,000
  // device population, proving memory stays ∝ cohort at seven figures.
  const bool million = cfg.get_int("million", 0) != 0;

  fl::VirtualConvexSpec wspec;
  wspec.devices = static_cast<std::uint64_t>(
      cfg.get_int64("devices", million ? 1000000 : 100000));
  wspec.dim = static_cast<std::size_t>(cfg.get_int("dim", 16));
  wspec.local_steps = cfg.get_int("local_steps", 2);
  wspec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));

  sched::PopulationSpec pspec;
  pspec.devices = wspec.devices;
  pspec.mean_on_fraction = cfg.get_double("on_fraction", 0.7);
  pspec.duty_period_rounds = cfg.get_double("duty_period", 16.0);
  pspec.dropout_mid_round = cfg.get_double("dropout", 0.02);
  pspec.max_resident = static_cast<std::size_t>(cfg.get_int("resident", 32));
  pspec.seed = wspec.seed ^ 0x5EEDULL;

  fl::SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.1));
  opt.max_iterations =
      static_cast<std::size_t>(cfg.get_int("iters", million ? 1 : 6));
  opt.eval_every = static_cast<std::size_t>(
      cfg.get_int("eval_every", million ? 1 : 3));
  opt.seed = wspec.seed;
  opt.parallel = cfg.get_int("parallel", million ? 1 : 0) != 0;
  opt.sharding.shards =
      static_cast<std::size_t>(cfg.get_int("shards", million ? 8 : 0));
  opt.schedule.mode =
      sched::parse_round_mode(cfg.get_string("mode", "overselect"));
  opt.schedule.selection = sched::Selection::kAvailabilityAware;

  const auto samples = parse_sizes(
      cfg.get_string("samples", million ? "1024" : "64,256,1024"));
  const double threshold = cfg.get_double("threshold", 0.45);

  std::printf("population: %llu virtual devices, dim %zu, mode %s, "
              "warm pool %zu, shards %zu, parallel %d\n\n",
              static_cast<unsigned long long>(wspec.devices), wspec.dim,
              sched::round_mode_name(opt.schedule.mode).c_str(),
              pspec.max_resident, opt.sharding.shards, opt.parallel ? 1 : 0);

  util::Table table({"cohort", "peak_resident", "resident_bound",
                     "materializations", "evictions", "steals", "invited",
                     "reported", "final_acc", "uploaded_MB", "peak_rss_MB",
                     "pop_fraction"});
  for (const auto sample : samples) {
    auto run_opt = opt;
    run_opt.schedule.sample_size = sample;
    run_opt.schedule.async_buffer = sample > 4 ? sample / 4 : 1;

    auto workload = fl::make_virtual_convex(wspec);
    sched::Population population(pspec, workload.factory);
    sched::RoundEngine engine(
        population,
        core::make_filter("cmfl", core::Schedule::constant(threshold)),
        workload.evaluator, run_opt);
    const auto result = engine.run();

    // Resident clients can never exceed one cohort in flight plus the warm
    // pool (async mode overlaps cohorts, bounded by sample_size in flight).
    const std::size_t bound = sample + pspec.max_resident;
    table.add_row(
        {util::fmt_count(static_cast<long long>(sample)),
         util::fmt_count(
             static_cast<long long>(result.sched.peak_resident_clients)),
         util::fmt_count(static_cast<long long>(bound)),
         util::fmt_count(static_cast<long long>(result.sched.materializations)),
         util::fmt_count(static_cast<long long>(result.sched.evictions)),
         util::fmt_count(static_cast<long long>(result.sched.steals)),
         util::fmt_count(static_cast<long long>(result.sched.invited)),
         util::fmt_count(static_cast<long long>(result.sched.reported)),
         util::fmt(result.sim.final_accuracy, 4),
         util::fmt(static_cast<double>(result.sim.uploaded_bytes) /
                       (1024.0 * 1024.0),
                   2),
         util::fmt(peak_rss_mib(), 1),
         util::fmt(static_cast<double>(result.sched.peak_resident_clients) /
                       static_cast<double>(wspec.devices),
                   5)});
  }
  table.print(std::cout);
  std::printf("\npeak resident client state scales with the sampled cohort "
              "(pop_fraction << 1), not the population.\n");

  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unknown config key '%s'\n", key.c_str());
  }
  return 0;
}

// Quickstart: federated training with CMFL in ~40 lines.
//
//   $ ./quickstart
//
// Builds a small non-IID image workload (20 clients), trains it three ways
// (vanilla FL, Gaia, CMFL), and prints the communication/accuracy outcome.
// This is the smallest end-to-end use of the public API:
//
//   1. make a Workload (datasets + clients + evaluator),
//   2. pick an UpdateFilter (the CMFL contribution lives here),
//   3. run FederatedSimulation and read the SimulationResult.
#include <cstdio>

#include "core/filter.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "fl/workloads.h"

using namespace cmfl;

int main() {
  // 1. A ready-made workload: synthetic digit images, label-sorted into 20
  //    non-IID clients, plus a server-side test set.
  fl::DigitsMlpSpec workload_spec;
  workload_spec.clients = 20;
  workload_spec.train_samples = 800;
  workload_spec.test_samples = 200;
  workload_spec.hidden = {32};

  // 2. Shared training hyper-parameters (paper notation: E, B, η_t).
  fl::SimulationOptions options;
  options.local_epochs = 4;                                   // E
  options.batch_size = 2;                                     // B
  options.learning_rate = core::Schedule::inv_sqrt(0.25);     // η_t = η0/√t
  options.max_iterations = 40;
  options.eval_every = 2;

  std::printf("scheme   | uploads | final accuracy\n");
  std::printf("---------+---------+---------------\n");
  for (const char* scheme : {"vanilla", "gaia", "cmfl"}) {
    // 3. The filter is the only thing that changes between schemes.  CMFL
    //    uploads an update only if enough of its parameters move in the
    //    same direction as the previous global update (Eq. 9).
    const core::Schedule threshold =
        std::string(scheme) == "gaia" ? core::Schedule::constant(0.05)
                                      : core::Schedule::constant(0.44);
    fl::Workload w = fl::make_digits_mlp_workload(workload_spec);
    fl::FederatedSimulation sim(std::move(w.clients),
                                core::make_filter(scheme, threshold),
                                w.evaluator, options);
    const fl::SimulationResult result = sim.run();
    std::printf("%-8s | %7zu | %.3f\n", scheme, result.total_rounds,
                result.final_accuracy);
  }
  std::printf(
      "\nCMFL reaches comparable accuracy while uploading fewer updates —\n"
      "each skipped upload is one client-round of mobile bandwidth saved.\n");
  return 0;
}

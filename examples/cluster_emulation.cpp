// Master/worker cluster emulation — the paper's EC2 deployment in one
// process.  Workers run on real threads and talk to the master through a
// byte-exact wire protocol; every frame is counted, so the printed network
// footprint is exactly what a real deployment would upload.
//
//   $ ./cluster_emulation [workers=30] [iters=15]
#include <cstdio>

#include "core/filter.h"
#include "fl/workloads.h"
#include "net/cluster.h"
#include "util/config.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);

  fl::NwpLstmSpec spec;
  spec.text.roles = static_cast<std::size_t>(cfg.get_int("workers", 30));
  spec.text.words_per_role = 90;
  spec.text.seq_len = 6;
  spec.text.topics = 4;
  spec.text.words_per_topic = 8;
  spec.text.function_words = 16;
  spec.text.dominant_topic_weight = 3.0;
  spec.lm.embed_dim = 12;
  spec.lm.hidden_dim = 24;

  net::ClusterOptions opt;
  opt.fl.local_epochs = 2;
  opt.fl.batch_size = 2;
  opt.fl.learning_rate = core::Schedule::constant(0.8);
  opt.fl.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 15));
  opt.fl.eval_every = 5;
  // Edge-uplink model: 8 Mbit/s up, 32 Mbit/s down, 50 ms latency.
  opt.uplink = {0.05, 1.0e6};
  opt.downlink = {0.05, 4.0e6};

  fl::Workload w = fl::make_nwp_lstm_workload(spec);
  std::printf("cluster: 1 master + %zu workers, %s\n\n", spec.text.roles,
              w.description.c_str());

  // The slowly decaying threshold tracks the relevance band over the run
  // (same setting as the fig7 bench).
  net::FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::inv_pow(
          cfg.get_double("threshold", 0.55), 0.02)),
      w.evaluator, opt);
  const net::ClusterResult r = cluster.run();

  for (const auto& p : r.footprint) {
    std::printf("iter %3zu: accuracy %.3f, cumulative uplink %8llu bytes\n",
                p.iteration, p.accuracy,
                static_cast<unsigned long long>(p.uplink_bytes));
  }
  std::printf("\nwire totals:\n");
  std::printf("  full update uploads : %llu frames\n",
              static_cast<unsigned long long>(r.upload_messages));
  std::printf("  elimination notices : %llu frames (tiny status messages)\n",
              static_cast<unsigned long long>(r.elimination_messages));
  std::printf("  uplink              : %llu bytes\n",
              static_cast<unsigned long long>(r.uplink_bytes));
  std::printf("  downlink            : %llu bytes\n",
              static_cast<unsigned long long>(r.downlink_bytes));
  std::printf("  simulated transfer  : %.1f s over an 8 Mbit/s edge uplink\n",
              r.simulated_transfer_seconds);
  std::printf("  final accuracy      : %.3f\n", r.sim.final_accuracy);
  return 0;
}

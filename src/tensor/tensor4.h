// 4-D tensor in NCHW layout for the convolutional substrate.
//
// Conv2D/MaxPool operate on mini-batches of feature maps; Tensor4 is a thin
// shape-carrying wrapper over a contiguous float buffer, with checked and
// unchecked accessors mirroring Matrix.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::tensor {

class Tensor4 {
 public:
  Tensor4() = default;

  /// n × c × h × w tensor, zero-initialized.
  Tensor4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

  std::size_t n() const noexcept { return dims_[0]; }
  std::size_t c() const noexcept { return dims_[1]; }
  std::size_t h() const noexcept { return dims_[2]; }
  std::size_t w() const noexcept { return dims_[3]; }
  std::size_t size() const noexcept { return data_.size(); }

  float& at(std::size_t in, std::size_t ic, std::size_t ih,
            std::size_t iw) noexcept {
    return data_[offset(in, ic, ih, iw)];
  }
  float at(std::size_t in, std::size_t ic, std::size_t ih,
           std::size_t iw) const noexcept {
    return data_[offset(in, ic, ih, iw)];
  }

  /// Contiguous h×w plane for sample `in`, channel `ic`.
  std::span<float> plane(std::size_t in, std::size_t ic) noexcept {
    return {data_.data() + offset(in, ic, 0, 0), dims_[2] * dims_[3]};
  }
  std::span<const float> plane(std::size_t in, std::size_t ic) const noexcept {
    return {data_.data() + offset(in, ic, 0, 0), dims_[2] * dims_[3]};
  }

  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  void zero();

  bool same_shape(const Tensor4& other) const noexcept {
    return dims_ == other.dims_;
  }

 private:
  std::size_t offset(std::size_t in, std::size_t ic, std::size_t ih,
                     std::size_t iw) const noexcept {
    return ((in * dims_[1] + ic) * dims_[2] + ih) * dims_[3] + iw;
  }

  std::array<std::size_t, 4> dims_{0, 0, 0, 0};
  std::vector<float> data_;
};

}  // namespace cmfl::tensor

// Internal SIMD backends for the fast kernel tier (kernels.h Tier::kFast).
//
// Everything here is an implementation detail of kernels.cpp: the public
// kernel entry points dispatch to these AVX2/FMA routines when the fast tier
// is active, and fall back to the bit-exact blocked kernels otherwise.  The
// routines are compiled with per-function target attributes
// (`__attribute__((target("avx2,fma")))`), so the translation unit builds
// with the portable baseline flags and the vector code paths are only ever
// *executed* after cpu_has_avx2_fma() confirms hardware support at runtime.
// On non-x86 targets (or non-GCC/Clang toolchains) CMFL_SIMD_X86 is 0 and
// none of these symbols exist; kernels.cpp then resolves every dispatch to
// the exact tier.
//
// Accuracy contract (DESIGN.md §13): the GEMM/aggregation routines keep the
// exact tier's per-element k-increasing accumulation order wherever SIMD
// lanes map to *independent* output elements (gemm_nn/gemm_nn_acc/gemm_tn,
// add_col_sums row-major, scaled_sum, weighted_sum) — the only difference is
// fused multiply-add contraction (one rounding per tap instead of two).
// Routines that reduce *within* a vector register (gemm_nt, gemv, the
// strided add_col_sums) additionally reorder the sum into 8 partial lanes.
// Both effects are covered by the standard forward-error bound
// |fast − exact| ≤ 2·γ_k·Σ_j |a_ij|·|b_jk| with γ_k = k·ε/(1−k·ε), which the
// equivalence tests in tests/test_tensor_simd.cpp enforce.
//
// Determinism contract: every routine's per-element operation sequence
// depends only on (k, n) — never on the row range [i0, i1) — so disjoint row
// ranges compose bitwise and pool-sharded results are identical for any
// thread count, exactly like the exact tier.  The SignPack routines perform
// no float arithmetic at all (pure IEEE-754 bit classification) and are
// bit-for-bit equal to the scalar packing on every input including ±0,
// denormals, NaN and ±inf.
#pragma once

#include <cstddef>
#include <cstdint>

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CMFL_SIMD_X86 1
#else
#define CMFL_SIMD_X86 0
#endif

namespace cmfl::tensor::simd {

#if CMFL_SIMD_X86

/// Runtime CPU check for the fast tier (AVX2 + FMA3).
bool cpu_has_avx2_fma() noexcept;

// --- GEMM (row-major, fully packed; callers zero-fill for the non-acc
// forms and handle shape validation) ---

/// c[m×n] += a[m×k]·b[k×n], rows [i0, i1).  4×16 register tile, k-increasing
/// per element, FMA-contracted.
void gemm_nn_acc_avx2(const float* a, const float* b, float* c, std::size_t k,
                      std::size_t n, std::size_t i0, std::size_t i1);

/// c[m×n] += a[k×m]ᵀ·b[k×n], rows [i0, i1) of c.
void gemm_tn_acc_avx2(const float* a, const float* b, float* c, std::size_t m,
                      std::size_t k, std::size_t n, std::size_t i0,
                      std::size_t i1);

/// c[m×n] = a[m×k]·b[n×k]ᵀ, rows [i0, i1).  8-lane float FMA accumulators
/// per dot product (reduction reordered vs the double-accumulating exact
/// kernel; tolerance-gated).
void gemm_nt_avx2(const float* a, const float* b, float* c, std::size_t k,
                  std::size_t n, std::size_t i0, std::size_t i1);

/// y[m] = a[m×n]·x[n], rows [i0, i1).  8-lane float FMA accumulators.
void gemv_avx2(const float* a, const float* x, float* y, std::size_t n,
               std::size_t i0, std::size_t i1);

// --- Column sums (bias gradients) ---

/// acc[c] += Σ_r m[r·row_stride + c], contiguous columns.  Lanes map to
/// independent accumulators, so this is bit-identical to the scalar loop.
void add_col_sums_rowmajor_avx2(const float* m, std::size_t rows,
                                std::size_t cols, std::size_t row_stride,
                                float* acc);

/// acc[c] += Σ_r m[c·col_stride + r], contiguous rows (row_stride == 1 in
/// the kernels.h convention).  8 partial lanes per column, then a horizontal
/// reduce — reordered, tolerance-gated.
void add_col_sums_colwise_avx2(const float* m, std::size_t rows,
                               std::size_t cols, std::size_t col_stride,
                               float* acc);

// --- Fused server aggregation ---

/// out[i] = scale·Σ_k xs[k][i] (lane-independent adds + one multiply:
/// bit-identical to the exact tier).
void scaled_sum_avx2(const float* const* xs, std::size_t count, float scale,
                     float* out, std::size_t d);

/// out[i] = Σ_k w[k]·xs[k][i] (FMA-contracted, k-increasing per element).
void weighted_sum_avx2(const float* const* xs, const float* w,
                       std::size_t count, float* out, std::size_t d);

// --- SignPack (pure bit classification; exactly equal to scalar) ---

/// Packs `words` full 64-lane chunks of v into (negative, nonzero) words.
/// The caller packs any 0<lanes<64 tail word with the scalar path.
void signpack_words_avx2(const float* v, std::size_t words, std::uint64_t* neg,
                         std::uint64_t* nz);

/// Mixed-form match over `words` full 64-lane chunks of x against a cached
/// pack of y; returns the popcount of agreeing sign classes.  The caller
/// handles the tail word.
std::size_t count_matches_words_avx2(const float* x, const std::uint64_t* negy,
                                     const std::uint64_t* nzy,
                                     std::size_t words);

/// Pack-vs-pack match over `words` whole words (hardware popcount).
std::size_t count_matches_packed_popcnt(const std::uint64_t* negx,
                                        const std::uint64_t* nzx,
                                        const std::uint64_t* negy,
                                        const std::uint64_t* nzy,
                                        std::size_t words);

#endif  // CMFL_SIMD_X86

}  // namespace cmfl::tensor::simd

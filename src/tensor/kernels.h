// High-throughput kernel layer.
//
// Two hot paths dominate everything the paper measures: GEMM inside local
// training (Dense/Conv2d/LSTM) and the CMFL relevance check e(u, ū) that
// every client evaluates against the same global update each iteration.
// This header provides
//
//   * cache-blocked, register-tiled GEMM kernels (gemm_nn / gemm_tn /
//     gemm_nt / gemv) plus the naive seed implementations (*_ref) kept for
//     equivalence tests and old-vs-new benchmarks,
//   * an optional ThreadPool-parallel row partition used by the Matrix-level
//     wrappers and Conv2d when the work exceeds a flop threshold,
//   * SignPack — a bit-packed three-way-sign representation that turns the
//     branchy O(d) sign-agreement scan into XOR/AND + popcount over 64-bit
//     words,
//   * fused scaled-accumulate kernels for server aggregation (axpy fusion
//     instead of accumulate-then-scale).
//
// Determinism contract: every kernel accumulates each output element in the
// same floating-point order as the naive seed loop (k strictly increasing),
// and the parallel path partitions output *rows* so each element is computed
// by exactly one thread with the serial per-row kernel.  Results are
// therefore bit-identical whether threading is on or off, and independent of
// thread count.  No atomics touch float accumulation.
//
// Tiers (DESIGN.md §13): the kernels above are the *bit-exact* tier — the
// reference float trajectory every golden digest pins.  A second *fast* tier
// (AVX2/FMA, kernels_simd.cpp) reaches much higher throughput by fusing
// multiply-adds and, for dot-product-shaped kernels, reducing in 8 partial
// lanes; it is numerically equivalent within a documented ULP bound but not
// bit-identical.  Both tiers keep the determinism contract: a forced tier
// plus a seed yields bit-identical results across runs and thread counts.
// Dispatch happens inside every public kernel according to set_tier():
// kAuto (the default) resolves to kFast when the binary was built with SIMD
// support and the CPU reports AVX2+FMA, and to kExact otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace cmfl::util {
class ThreadPool;
}

namespace cmfl::tensor {

namespace kernels {

// ---------------------------------------------------------------------------
// Tier selection
// ---------------------------------------------------------------------------

/// Which implementation every public kernel dispatches to.
enum class Tier {
  kAuto,   ///< kFast when compiled in and the CPU supports it, else kExact.
  kExact,  ///< Bit-exact blocked kernels (the golden-trajectory reference).
  kFast,   ///< AVX2/FMA vector kernels (ULP-bounded, not bit-identical).
};

/// Forces a tier (tests/benches) or restores kAuto.  Forcing kFast on a
/// machine without AVX2+FMA silently resolves to kExact — the fast tier is
/// never emulated.  Not thread-safe against in-flight kernels; set it at
/// startup or between dispatches, like set_max_threads().
void set_tier(Tier t) noexcept;

/// The raw setting (kAuto until someone forces a tier).
Tier tier() noexcept;

/// The tier dispatches actually use: kExact or kFast, never kAuto.
Tier active_tier() noexcept;

/// True when the binary carries the AVX2/FMA backends (x86-64, GCC/Clang).
bool fast_tier_compiled() noexcept;

/// True when fast_tier_compiled() and the CPU reports AVX2 and FMA3.
bool fast_tier_available() noexcept;

/// Short provenance stamp for benchmark JSON: "avx2-fma" when the fast tier
/// is available on this host, "scalar" otherwise.
const char* simd_level() noexcept;

// ---------------------------------------------------------------------------
// Threading configuration
// ---------------------------------------------------------------------------

/// Maximum worker threads the kernel layer may use.  0 (the default) means
/// the CMFL_THREADS environment override when set, else hardware
/// concurrency; 1 disables the parallel path entirely.  The shared pool is
/// created lazily on first parallel dispatch and transparently rebuilt when
/// the effective setting changes, so benches and tests may re-pin thread
/// counts mid-process — just never concurrently with an in-flight kernel.
void set_max_threads(std::size_t n);
std::size_t max_threads() noexcept;

/// Worker count parsed from the CMFL_THREADS environment variable (cached at
/// first use), or 0 when unset/invalid.  Honored whenever max_threads() is 0
/// (the auto default), so CI and bench scripts can pin thread counts
/// reproducibly without code changes.
std::size_t env_max_threads() noexcept;

/// Shared lazily-created pool, or nullptr when the effective setting is 1.
util::ThreadPool* pool();

/// Minimum multiply-accumulate count before a kernel shards rows across the
/// pool.  Below this, threading overhead exceeds the win (models in the
/// tier-1 tests stay comfortably under it and run serial).
inline constexpr std::size_t kParallelMacThreshold = std::size_t{1} << 22;

/// True when a (rows, total_macs) dispatch should shard across the pool:
/// rows >= 2, total_macs >= kParallelMacThreshold, and the pool has >= 2
/// workers.  The pool is only (lazily) created once the thresholds pass.
bool parallel_rows_active(std::size_t rows, std::size_t total_macs);

/// Pool-sharded row partition used by parallel_rows once active; fn may be a
/// cheap reference wrapper — it is invoked synchronously before returning.
void parallel_rows_dispatch(
    std::size_t rows, const std::function<void(std::size_t, std::size_t)>& fn);

/// Runs fn(row_begin, row_end) over a fixed contiguous partition of
/// [0, rows).  Serial (one direct call covering everything — no type
/// erasure, no heap) when the pool is unavailable, rows < 2, or
/// total_macs < kParallelMacThreshold.  The partition depends only on
/// (rows, pool size) — never on load.  The serial fast path is what keeps
/// the training hot path allocation-free: wrapping a capturing lambda in
/// std::function would heap-allocate on every call, and the parallel path
/// avoids the same by type-erasing a std::reference_wrapper (which fits the
/// small-buffer optimization).
template <typename Fn>
void parallel_rows(std::size_t rows, std::size_t total_macs, Fn&& fn) {
  if (!parallel_rows_active(rows, total_macs)) {
    fn(0, rows);
    return;
  }
  parallel_rows_dispatch(
      rows, std::function<void(std::size_t, std::size_t)>(std::ref(fn)));
}

// ---------------------------------------------------------------------------
// GEMM kernels (row-major, fully packed: lda == k etc.)
//
// Each kernel overwrites the output rows [i0, i1) and only reads/writes
// those rows, so callers may invoke disjoint row ranges concurrently.
// ---------------------------------------------------------------------------

/// c[m×n] = a[m×k] · b[k×n], rows [i0, i1).
void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1);

/// c[m×n] += a[m×k] · b[k×n], rows [i0, i1) — gemm_nn without the zero-fill
/// prologue, so each output element accumulates k-increasing on top of the
/// value already in c.  Used by the im2col Conv2d forward, where c is
/// preloaded with the bias: the per-element op sequence (bias, then taps in
/// k order) reproduces the naive conv loop bit-for-bit.
void gemm_nn_acc(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, std::size_t i0, std::size_t i1);

/// acc[col] += Σ_row m[row·row_stride + col·col_stride], each accumulator
/// updated with row strictly increasing — the exact order of the scalar
/// bias-gradient loops (Dense, Lstm: row-major batch×cols with
/// row_stride = cols, col_stride = 1; im2col Conv2d: per-sample gradient
/// viewed out_c-major with row_stride = 1, col_stride = pixels).
void add_col_sums(const float* m, std::size_t rows, std::size_t cols,
                  std::size_t row_stride, std::size_t col_stride,
                  std::span<float> acc);

/// c[m×n] = a[k×m]ᵀ · b[k×n], rows [i0, i1) of c (columns of a).
void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1);

/// c[m×n] = a[m×k] · b[n×k]ᵀ, rows [i0, i1).  Double accumulation per
/// element (matches the seed kernel used by gradient checking).
void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1);

/// y[m] = a[m×n] · x[n], rows [i0, i1).  Double accumulation.
void gemv(const float* a, const float* x, float* y, std::size_t m,
          std::size_t n, std::size_t i0, std::size_t i1);

// Naive seed implementations, kept verbatim for equivalence tests and the
// old-vs-new benchmark baseline.
void gemm_nn_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);
void gemm_tn_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);
void gemm_nt_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);
void gemv_ref(const float* a, const float* x, float* y, std::size_t m,
              std::size_t n);

// ---------------------------------------------------------------------------
// Fused server aggregation (single pass over the output, L1-blocked)
// ---------------------------------------------------------------------------

/// out[i] = scale · Σ_k xs[k][i].  Per-element accumulation order is k
/// increasing followed by one multiply — the exact op sequence of the
/// seed's accumulate-then-scale, fused into one pass over `out`.
/// Sizes must match (std::invalid_argument otherwise).
void scaled_sum(std::span<const std::span<const float>> xs, float scale,
                std::span<float> out);

/// out[i] = Σ_k w[k] · xs[k][i] — the sample-weighted FedAvg aggregate,
/// same op sequence as the seed's per-client axpy loop.
void weighted_sum(std::span<const std::span<const float>> xs,
                  std::span<const float> w, std::span<float> out);

// Range-sliced forms for the sharded aggregation pipeline.  Each writes only
// out[lo, hi) and reads only that range of every input.  Both tiers compute
// every output element with an op sequence that depends only on the element
// index (k-increasing adds, fused multiply-adds in the fast tier), so a
// range call is bit-identical to the same elements of the full-vector call —
// disjoint ranges may therefore run on different shard threads and the
// concatenated result matches the single-master aggregate byte-for-byte at
// any shard count.  Requires lo <= hi <= out.size().

/// out[i] = scale · Σ_k xs[k][i] for i in [lo, hi).
void scaled_sum_range(std::span<const std::span<const float>> xs, float scale,
                      std::span<float> out, std::size_t lo, std::size_t hi);

/// out[i] = Σ_k w[k] · xs[k][i] for i in [lo, hi).
void weighted_sum_range(std::span<const std::span<const float>> xs,
                        std::span<const float> w, std::span<float> out,
                        std::size_t lo, std::size_t hi);

}  // namespace kernels

// ---------------------------------------------------------------------------
// SignPack — bit-packed three-way sign of a float vector
// ---------------------------------------------------------------------------
//
// Per element, two bits across two parallel word arrays:
//   nonzero bit = (v > 0) || (v < 0)   — false for ±0 and NaN,
//   negative bit = (v < 0)             — meaningful only where nonzero.
// This encodes exactly the three-way sign() convention of vector_ops.h
// (±0, denormal, and NaN semantics preserved bit-for-bit), so packed
// matching is exactly equal to the scalar count_sign_matches.
//
// Packing is a process-local cache (the server packs ū once per broadcast
// and reuses it across all N clients); nothing about the wire format or the
// protocol changes.
class SignPack {
 public:
  SignPack() = default;
  explicit SignPack(std::span<const float> v) { assign(v); }

  /// Re-packs `v`, reusing capacity.
  void assign(std::span<const float> v);

  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// True iff every packed element has three-way sign 0.
  bool all_zero() const noexcept;

  std::span<const std::uint64_t> negative_words() const noexcept {
    return neg_;
  }
  std::span<const std::uint64_t> nonzero_words() const noexcept { return nz_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> neg_;
  std::vector<std::uint64_t> nz_;
};

/// Word-parallel equivalent of count_sign_matches(x, y) on two packs.
/// Throws std::invalid_argument on size mismatch.
std::size_t count_sign_matches(const SignPack& x, const SignPack& y);

/// Mixed form: packs x one 64-lane chunk at a time (no allocation) and
/// matches against the cached pack of y.
std::size_t count_sign_matches(std::span<const float> x, const SignPack& y);

/// Range form for sharded relevance scoring: matches of x[lo, hi) against the
/// same element range of the cached pack y.  `x` spans the full vector
/// (x.size() == y.size()); lo must be a multiple of 64 so the range starts on
/// a pack-word boundary, and hi must be a multiple of 64 or y.size().  Sign
/// matching is an exact integer count, so summing disjoint ranges that cover
/// [0, size) equals the full-vector count exactly — the per-shard scores
/// fan in to the single-master relevance score with no rounding concerns.
/// Throws std::invalid_argument on size mismatch or misaligned bounds.
std::size_t count_sign_matches_range(std::span<const float> x,
                                     const SignPack& y, std::size_t lo,
                                     std::size_t hi);

}  // namespace cmfl::tensor

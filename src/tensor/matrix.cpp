#include "tensor/matrix.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cmfl::tensor {

namespace {
[[noreturn]] void shape_error(const char* what) {
  throw std::invalid_argument(std::string("Matrix: shape mismatch in ") + what);
}
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size " +
                                std::to_string(data_.size()) +
                                " does not match " + std::to_string(rows_) +
                                "x" + std::to_string(cols_));
  }
}

float& Matrix::checked_at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::checked_at");
  return at(r, c);
}

float Matrix::checked_at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::checked_at");
  return at(r, c);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    shape_error("matmul");
  }
  out.zero();
  // ikj loop order keeps the inner loop contiguous over b and out rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto out_row = out.row(i);
    auto a_row = a.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a_row[k];
      if (aik == 0.0f) continue;
      auto b_row = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows() || out.rows() != a.cols() ||
      out.cols() != b.cols()) {
    shape_error("matmul_tn");
  }
  out.zero();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    auto a_row = a.row(k);
    auto b_row = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = a_row[i];
      if (aki == 0.0f) continue;
      auto out_row = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols() || out.rows() != a.rows() ||
      out.cols() != b.rows()) {
    shape_error("matmul_nt");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto a_row = a.row(i);
    auto out_row = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      auto b_row = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a_row[k]) * static_cast<double>(b_row[k]);
      }
      out_row[j] = static_cast<float>(acc);
    }
  }
}

void matvec(const Matrix& a, std::span<const float> x, std::span<float> y) {
  if (x.size() != a.cols() || y.size() != a.rows()) shape_error("matvec");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc += static_cast<double>(row[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<float>(acc);
  }
}

void matvec_t(const Matrix& a, std::span<const float> x, std::span<float> y) {
  if (x.size() != a.rows() || y.size() != a.cols()) shape_error("matvec_t");
  std::fill(y.begin(), y.end(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  if (bias.size() != m.cols()) shape_error("add_row_bias");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void accumulate(Matrix& accum, const Matrix& m) {
  if (!accum.same_shape(m)) shape_error("accumulate");
  auto dst = accum.flat();
  auto src = m.flat();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

}  // namespace cmfl::tensor

#include "tensor/matrix.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "tensor/kernels.h"

namespace cmfl::tensor {

namespace {
[[noreturn]] void shape_error(const char* what) {
  throw std::invalid_argument(std::string("Matrix: shape mismatch in ") + what);
}
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size " +
                                std::to_string(data_.size()) +
                                " does not match " + std::to_string(rows_) +
                                "x" + std::to_string(cols_));
  }
}

float& Matrix::checked_at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::checked_at");
  return at(r, c);
}

float Matrix::checked_at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::checked_at");
  return at(r, c);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

// The Matrix-level wrappers validate shapes, then dispatch to the blocked
// kernels in kernels.cpp, sharding output rows across the kernel pool when
// the work is large enough (see kernels.h for the determinism contract).

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    shape_error("matmul");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  kernels::parallel_rows(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    kernels::gemm_nn(a.flat().data(), b.flat().data(), out.flat().data(), m, k,
                     n, i0, i1);
  });
}

void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows() || out.rows() != a.cols() ||
      out.cols() != b.cols()) {
    shape_error("matmul_tn");
  }
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  kernels::parallel_rows(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    kernels::gemm_tn(a.flat().data(), b.flat().data(), out.flat().data(), m, k,
                     n, i0, i1);
  });
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols() || out.rows() != a.rows() ||
      out.cols() != b.rows()) {
    shape_error("matmul_nt");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  kernels::parallel_rows(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    kernels::gemm_nt(a.flat().data(), b.flat().data(), out.flat().data(), m, k,
                     n, i0, i1);
  });
}

void matvec(const Matrix& a, std::span<const float> x, std::span<float> y) {
  if (x.size() != a.cols() || y.size() != a.rows()) shape_error("matvec");
  const std::size_t m = a.rows(), n = a.cols();
  kernels::parallel_rows(m, m * n, [&](std::size_t i0, std::size_t i1) {
    kernels::gemv(a.flat().data(), x.data(), y.data(), m, n, i0, i1);
  });
}

void matvec_t(const Matrix& a, std::span<const float> x, std::span<float> y) {
  if (x.size() != a.rows() || y.size() != a.cols()) shape_error("matvec_t");
  std::fill(y.begin(), y.end(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  if (bias.size() != m.cols()) shape_error("add_row_bias");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void accumulate(Matrix& accum, const Matrix& m) {
  if (!accum.same_shape(m)) shape_error("accumulate");
  auto dst = accum.flat();
  auto src = m.flat();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void add_col_sums(const Matrix& m, std::span<float> acc) {
  if (acc.size() != m.cols()) shape_error("add_col_sums");
  kernels::add_col_sums(m.flat().data(), m.rows(), m.cols(), m.cols(), 1, acc);
}

}  // namespace cmfl::tensor

#include "tensor/init.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::tensor {

void xavier_uniform(std::span<float> w, std::size_t fan_in,
                    std::size_t fan_out, util::Rng& rng) {
  if (fan_in + fan_out == 0) {
    throw std::invalid_argument("xavier_uniform: zero fan");
  }
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w) v = rng.uniform_f(-a, a);
}

void he_normal(std::span<float> w, std::size_t fan_in, util::Rng& rng) {
  if (fan_in == 0) throw std::invalid_argument("he_normal: zero fan_in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (float& v : w) v = rng.normal_f(0.0f, stddev);
}

void gaussian(std::span<float> w, float stddev, util::Rng& rng) {
  for (float& v : w) v = rng.normal_f(0.0f, stddev);
}

}  // namespace cmfl::tensor

// Weight initialization schemes.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.h"

namespace cmfl::tensor {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suits tanh/sigmoid layers (the LSTM gates).
void xavier_uniform(std::span<float> w, std::size_t fan_in,
                    std::size_t fan_out, util::Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)).  Suits ReLU layers.
void he_normal(std::span<float> w, std::size_t fan_in, util::Rng& rng);

/// N(0, stddev).
void gaussian(std::span<float> w, float stddev, util::Rng& rng);

}  // namespace cmfl::tensor

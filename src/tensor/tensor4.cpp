#include "tensor/tensor4.h"

#include <algorithm>

namespace cmfl::tensor {

Tensor4::Tensor4(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    : dims_{n, c, h, w}, data_(n * c * h * w, 0.0f) {}

void Tensor4::zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

}  // namespace cmfl::tensor

#include "tensor/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmfl::tensor {

namespace {
void check_same_size(std::size_t a, std::size_t b, const char* what) {
  if (a != b) {
    throw std::invalid_argument(std::string(what) + ": size mismatch (" +
                                std::to_string(a) + " vs " +
                                std::to_string(b) + ")");
  }
}
}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check_same_size(x.size(), y.size(), "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void copy(std::span<const float> x, std::span<float> y) {
  check_same_size(x.size(), y.size(), "copy");
  std::copy(x.begin(), x.end(), y.begin());
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

void fill(std::span<float> x, float value) {
  std::fill(x.begin(), x.end(), value);
}

double dot(std::span<const float> x, std::span<const float> y) {
  check_same_size(x.size(), y.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double norm2(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

double norm1(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += std::fabs(static_cast<double>(v));
  return acc;
}

double norm_inf(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc = std::max(acc, std::fabs(static_cast<double>(v)));
  return acc;
}

void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z) {
  check_same_size(x.size(), y.size(), "sub");
  check_same_size(x.size(), z.size(), "sub");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
}

void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) {
  check_same_size(x.size(), y.size(), "add");
  check_same_size(x.size(), z.size(), "add");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
}

std::size_t count_sign_matches(std::span<const float> x,
                               std::span<const float> y) {
  check_same_size(x.size(), y.size(), "count_sign_matches");
  std::size_t matches = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    matches += static_cast<std::size_t>(sign(x[i]) == sign(y[i]));
  }
  return matches;
}

void clip(std::span<float> x, float limit) {
  if (!(limit > 0.0f)) {
    throw std::invalid_argument("clip: limit must be positive");
  }
  for (float& v : x) v = std::clamp(v, -limit, limit);
}

double mean(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

}  // namespace cmfl::tensor

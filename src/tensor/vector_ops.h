// Flat-vector kernels.
//
// Client updates, global updates, and flattened model parameters are all
// plain std::vector<float>.  These free functions are the numeric substrate
// shared by the nn stack (SGD, losses) and the CMFL core (relevance and
// significance metrics operate on flat update vectors).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::tensor {

/// y += alpha * x.  Sizes must match (std::invalid_argument otherwise).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise y = x.
void copy(std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(std::span<float> x, float alpha);

/// Sets every element to `value`.
void fill(std::span<float> x, float value);

/// Dot product (accumulated in double for stability).
double dot(std::span<const float> x, std::span<const float> y);

/// Euclidean (L2) norm, accumulated in double.
double norm2(std::span<const float> x);

/// L1 norm.
double norm1(std::span<const float> x);

/// Max-abs (L-inf) norm.
double norm_inf(std::span<const float> x);

/// Elementwise difference z = x - y.
void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z);

/// Elementwise sum z = x + y.
void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z);

/// Three-way sign: -1, 0, +1.  The CMFL relevance measure (Eq. 9) counts
/// matching signs; treating exact zero as its own class is the convention
/// documented in DESIGN.md §6.
inline int sign(float v) noexcept { return (v > 0.0f) - (v < 0.0f); }

/// Number of positions where x and y have the same three-way sign.
/// Sizes must match.
std::size_t count_sign_matches(std::span<const float> x,
                               std::span<const float> y);

/// Clips every element into [-limit, limit]; limit must be positive.
void clip(std::span<float> x, float limit);

/// Returns the mean of the elements (0 for an empty span).
double mean(std::span<const float> x);

}  // namespace cmfl::tensor

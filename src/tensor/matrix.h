// Dense row-major matrix with the handful of BLAS-like kernels the nn and
// mtl substrates need.  Value type is float; accumulations happen in double
// where it matters for gradient checking.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::tensor {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix taking ownership of `data` (size must be rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  float& checked_at(std::size_t r, std::size_t c);
  float checked_at(std::size_t r, std::size_t c) const;

  std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  /// Reshapes to rows × cols, reusing the existing heap buffer whenever its
  /// capacity suffices (the training hot path resizes every workspace to the
  /// same shape each step, so steady-state resizes never allocate).  Element
  /// values are unspecified after a resize — callers must fully overwrite
  /// (or zero()) the matrix before reading it.
  void resize(std::size_t rows, std::size_t cols);

  void fill(float value);
  void zero() { fill(0.0f); }

  Matrix transposed() const;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b.  Shapes: (m×k) * (k×n) -> (m×n).  Throws on mismatch.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = aᵀ * b.  Shapes: (k×m)ᵀ * (k×n) -> (m×n).
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bᵀ.  Shapes: (m×k) * (n×k)ᵀ -> (m×n).
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out);

/// y = A * x (gemv).  A is (m×n), x has n entries, y has m.
void matvec(const Matrix& a, std::span<const float> x, std::span<float> y);

/// y = Aᵀ * x.  A is (m×n), x has m entries, y has n.
void matvec_t(const Matrix& a, std::span<const float> x, std::span<float> y);

/// Adds `bias` (length cols) to every row of `m`.
void add_row_bias(Matrix& m, std::span<const float> bias);

/// accum += m (shape-checked).
void accumulate(Matrix& accum, const Matrix& m);

/// acc[c] += Σ_r m(r, c), each column accumulated with r strictly
/// increasing — the exact order of the scalar bias-gradient loops this
/// kernel replaces (Dense::backward, Lstm gate biases, and the im2col
/// Conv2d bias gradient via the strided kernels:: form).  `acc` must have
/// m.cols() entries.
void add_col_sums(const Matrix& m, std::span<float> acc);

}  // namespace cmfl::tensor

// AVX2/FMA backends for the fast kernel tier.  See kernels_simd.h for the
// accuracy and determinism contracts and kernels.cpp for the dispatch.
//
// Every routine is compiled via a per-function target attribute, so this
// file builds with the portable baseline flags of the rest of cmfl_tensor;
// nothing here may run before kernels.cpp has checked cpu_has_avx2_fma().
#include "tensor/kernels_simd.h"

#if CMFL_SIMD_X86

#include <immintrin.h>

namespace cmfl::tensor::simd {

bool cpu_has_avx2_fma() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

namespace {

// k-block: the active A/B panel strip stays cache-resident while a register
// tile accumulates a full block of taps without touching c memory.
constexpr std::size_t kKC = 256;

__attribute__((target("avx2"), always_inline)) inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// Shared 4-row j-strip accumulator: c[r][j0..j0+15] += Σ_kk a_r(kk)·b[kk][j].
// `a_at(r, kk)` abstracts the A layout difference between NN (row-major) and
// TN (column-major) so both share the register tile.  Eight ymm accumulators
// live across the whole k-block; per element the taps land k-increasing with
// one FMA rounding each.
#define CMFL_DEFINE_GEMM_ACC_TILE(NAME, A_AT)                                  \
  __attribute__((target("avx2,fma"))) void NAME(                               \
      const float* a, const float* b, float* c, std::size_t m, std::size_t k, \
      std::size_t n, std::size_t i0, std::size_t i1) {                         \
    (void)m;                                                                   \
    for (std::size_t kc = 0; kc < k; kc += kKC) {                              \
      const std::size_t k1 = kc + (k - kc < kKC ? k - kc : kKC);               \
      std::size_t i = i0;                                                      \
      for (; i + 4 <= i1; i += 4) {                                            \
        float* c0 = c + (i + 0) * n;                                           \
        float* c1 = c + (i + 1) * n;                                           \
        float* c2 = c + (i + 2) * n;                                           \
        float* c3 = c + (i + 3) * n;                                           \
        std::size_t j = 0;                                                     \
        for (; j + 16 <= n; j += 16) {                                         \
          __m256 acc00 = _mm256_loadu_ps(c0 + j);                              \
          __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);                          \
          __m256 acc10 = _mm256_loadu_ps(c1 + j);                              \
          __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);                          \
          __m256 acc20 = _mm256_loadu_ps(c2 + j);                              \
          __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);                          \
          __m256 acc30 = _mm256_loadu_ps(c3 + j);                              \
          __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);                          \
          for (std::size_t kk = kc; kk < k1; ++kk) {                           \
            const float* br = b + kk * n + j;                                  \
            const __m256 b0 = _mm256_loadu_ps(br);                             \
            const __m256 b1 = _mm256_loadu_ps(br + 8);                         \
            __m256 av;                                                         \
            av = _mm256_set1_ps(A_AT(0, kk));                                  \
            acc00 = _mm256_fmadd_ps(av, b0, acc00);                            \
            acc01 = _mm256_fmadd_ps(av, b1, acc01);                            \
            av = _mm256_set1_ps(A_AT(1, kk));                                  \
            acc10 = _mm256_fmadd_ps(av, b0, acc10);                            \
            acc11 = _mm256_fmadd_ps(av, b1, acc11);                            \
            av = _mm256_set1_ps(A_AT(2, kk));                                  \
            acc20 = _mm256_fmadd_ps(av, b0, acc20);                            \
            acc21 = _mm256_fmadd_ps(av, b1, acc21);                            \
            av = _mm256_set1_ps(A_AT(3, kk));                                  \
            acc30 = _mm256_fmadd_ps(av, b0, acc30);                            \
            acc31 = _mm256_fmadd_ps(av, b1, acc31);                            \
          }                                                                    \
          _mm256_storeu_ps(c0 + j, acc00);                                     \
          _mm256_storeu_ps(c0 + j + 8, acc01);                                 \
          _mm256_storeu_ps(c1 + j, acc10);                                     \
          _mm256_storeu_ps(c1 + j + 8, acc11);                                 \
          _mm256_storeu_ps(c2 + j, acc20);                                     \
          _mm256_storeu_ps(c2 + j + 8, acc21);                                 \
          _mm256_storeu_ps(c3 + j, acc30);                                     \
          _mm256_storeu_ps(c3 + j + 8, acc31);                                 \
        }                                                                      \
        for (; j + 8 <= n; j += 8) {                                           \
          __m256 q0 = _mm256_loadu_ps(c0 + j);                                 \
          __m256 q1 = _mm256_loadu_ps(c1 + j);                                 \
          __m256 q2 = _mm256_loadu_ps(c2 + j);                                 \
          __m256 q3 = _mm256_loadu_ps(c3 + j);                                 \
          for (std::size_t kk = kc; kk < k1; ++kk) {                           \
            const __m256 bv = _mm256_loadu_ps(b + kk * n + j);                 \
            q0 = _mm256_fmadd_ps(_mm256_set1_ps(A_AT(0, kk)), bv, q0);         \
            q1 = _mm256_fmadd_ps(_mm256_set1_ps(A_AT(1, kk)), bv, q1);         \
            q2 = _mm256_fmadd_ps(_mm256_set1_ps(A_AT(2, kk)), bv, q2);         \
            q3 = _mm256_fmadd_ps(_mm256_set1_ps(A_AT(3, kk)), bv, q3);         \
          }                                                                    \
          _mm256_storeu_ps(c0 + j, q0);                                        \
          _mm256_storeu_ps(c1 + j, q1);                                        \
          _mm256_storeu_ps(c2 + j, q2);                                        \
          _mm256_storeu_ps(c3 + j, q3);                                        \
        }                                                                      \
        for (; j < n; ++j) {                                                   \
          float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];                \
          for (std::size_t kk = kc; kk < k1; ++kk) {                           \
            const float bv = b[kk * n + j];                                    \
            s0 = __builtin_fmaf(A_AT(0, kk), bv, s0);                          \
            s1 = __builtin_fmaf(A_AT(1, kk), bv, s1);                          \
            s2 = __builtin_fmaf(A_AT(2, kk), bv, s2);                          \
            s3 = __builtin_fmaf(A_AT(3, kk), bv, s3);                          \
          }                                                                    \
          c0[j] = s0;                                                          \
          c1[j] = s1;                                                          \
          c2[j] = s2;                                                          \
          c3[j] = s3;                                                          \
        }                                                                      \
      }                                                                        \
      for (; i < i1; ++i) {                                                    \
        float* cr = c + i * n;                                                 \
        std::size_t j = 0;                                                     \
        for (; j + 8 <= n; j += 8) {                                           \
          __m256 acc = _mm256_loadu_ps(cr + j);                                \
          for (std::size_t kk = kc; kk < k1; ++kk) {                           \
            acc = _mm256_fmadd_ps(_mm256_set1_ps(A_AT(0, kk)),                 \
                                  _mm256_loadu_ps(b + kk * n + j), acc);       \
          }                                                                    \
          _mm256_storeu_ps(cr + j, acc);                                       \
        }                                                                      \
        for (; j < n; ++j) {                                                   \
          float s = cr[j];                                                     \
          for (std::size_t kk = kc; kk < k1; ++kk) {                           \
            s = __builtin_fmaf(A_AT(0, kk), b[kk * n + j], s);                 \
          }                                                                    \
          cr[j] = s;                                                           \
        }                                                                      \
      }                                                                        \
    }                                                                          \
  }

}  // namespace

// NN: a is row-major m×k; tile row r tap kk sits at a[(i+r)*k + kk].
#define CMFL_A_NN(r, kk) a[(i + (r)) * k + (kk)]
// TN: a is k×m; tile row r tap kk sits at a[(kk)*m + i + r].
#define CMFL_A_TN(r, kk) a[(kk)*m + i + (r)]

namespace {
CMFL_DEFINE_GEMM_ACC_TILE(gemm_nn_acc_tile, CMFL_A_NN)
CMFL_DEFINE_GEMM_ACC_TILE(gemm_tn_acc_tile, CMFL_A_TN)
}  // namespace

#undef CMFL_A_NN
#undef CMFL_A_TN
#undef CMFL_DEFINE_GEMM_ACC_TILE

void gemm_nn_acc_avx2(const float* a, const float* b, float* c, std::size_t k,
                      std::size_t n, std::size_t i0, std::size_t i1) {
  gemm_nn_acc_tile(a, b, c, 0, k, n, i0, i1);
}

void gemm_tn_acc_avx2(const float* a, const float* b, float* c, std::size_t m,
                      std::size_t k, std::size_t n, std::size_t i0,
                      std::size_t i1) {
  gemm_tn_acc_tile(a, b, c, m, k, n, i0, i1);
}

__attribute__((target("avx2,fma"))) void gemm_nt_avx2(
    const float* a, const float* b, float* c, std::size_t k, std::size_t n,
    std::size_t i0, std::size_t i1) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
      __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 bv = _mm256_loadu_ps(br + kk);
        s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a0 + kk), bv, s0);
        s1 = _mm256_fmadd_ps(_mm256_loadu_ps(a1 + kk), bv, s1);
        s2 = _mm256_fmadd_ps(_mm256_loadu_ps(a2 + kk), bv, s2);
        s3 = _mm256_fmadd_ps(_mm256_loadu_ps(a3 + kk), bv, s3);
      }
      float r0 = hsum8(s0), r1 = hsum8(s1), r2 = hsum8(s2), r3 = hsum8(s3);
      for (; kk < k; ++kk) {
        const float bv = br[kk];
        r0 = __builtin_fmaf(a0[kk], bv, r0);
        r1 = __builtin_fmaf(a1[kk], bv, r1);
        r2 = __builtin_fmaf(a2[kk], bv, r2);
        r3 = __builtin_fmaf(a3[kk], bv, r3);
      }
      c[(i + 0) * n + j] = r0;
      c[(i + 1) * n + j] = r1;
      c[(i + 2) * n + j] = r2;
      c[(i + 3) * n + j] = r3;
    }
  }
  for (; i < i1; ++i) {
    const float* ar = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      __m256 s = _mm256_setzero_ps();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        s = _mm256_fmadd_ps(_mm256_loadu_ps(ar + kk), _mm256_loadu_ps(br + kk),
                            s);
      }
      float r = hsum8(s);
      for (; kk < k; ++kk) r = __builtin_fmaf(ar[kk], br[kk], r);
      c[i * n + j] = r;
    }
  }
}

__attribute__((target("avx2,fma"))) void gemv_avx2(const float* a,
                                                   const float* x, float* y,
                                                   std::size_t n,
                                                   std::size_t i0,
                                                   std::size_t i1) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + (i + 0) * n;
    const float* a1 = a + (i + 1) * n;
    const float* a2 = a + (i + 2) * n;
    const float* a3 = a + (i + 3) * n;
    __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
    __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xv = _mm256_loadu_ps(x + j);
      s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a0 + j), xv, s0);
      s1 = _mm256_fmadd_ps(_mm256_loadu_ps(a1 + j), xv, s1);
      s2 = _mm256_fmadd_ps(_mm256_loadu_ps(a2 + j), xv, s2);
      s3 = _mm256_fmadd_ps(_mm256_loadu_ps(a3 + j), xv, s3);
    }
    float r0 = hsum8(s0), r1 = hsum8(s1), r2 = hsum8(s2), r3 = hsum8(s3);
    for (; j < n; ++j) {
      const float xv = x[j];
      r0 = __builtin_fmaf(a0[j], xv, r0);
      r1 = __builtin_fmaf(a1[j], xv, r1);
      r2 = __builtin_fmaf(a2[j], xv, r2);
      r3 = __builtin_fmaf(a3[j], xv, r3);
    }
    y[i + 0] = r0;
    y[i + 1] = r1;
    y[i + 2] = r2;
    y[i + 3] = r3;
  }
  for (; i < i1; ++i) {
    const float* ar = a + i * n;
    __m256 s = _mm256_setzero_ps();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      s = _mm256_fmadd_ps(_mm256_loadu_ps(ar + j), _mm256_loadu_ps(x + j), s);
    }
    float r = hsum8(s);
    for (; j < n; ++j) r = __builtin_fmaf(ar[j], x[j], r);
    y[i] = r;
  }
}

__attribute__((target("avx2"))) void add_col_sums_rowmajor_avx2(
    const float* m, std::size_t rows, std::size_t cols, std::size_t row_stride,
    float* acc) {
  // Lanes are independent per-column accumulators; each sees its rows in
  // increasing order — bit-identical to the scalar loop.
  for (std::size_t r = 0; r < rows; ++r) {
    const float* mr = m + r * row_stride;
    std::size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(
          acc + c, _mm256_add_ps(_mm256_loadu_ps(acc + c),
                                 _mm256_loadu_ps(mr + c)));
    }
    for (; c < cols; ++c) acc[c] += mr[c];
  }
}

__attribute__((target("avx2"))) void add_col_sums_colwise_avx2(
    const float* m, std::size_t rows, std::size_t cols, std::size_t col_stride,
    float* acc) {
  for (std::size_t c = 0; c < cols; ++c) {
    const float* mc = m + c * col_stride;
    __m256 s8 = _mm256_setzero_ps();
    std::size_t r = 0;
    for (; r + 8 <= rows; r += 8) {
      s8 = _mm256_add_ps(s8, _mm256_loadu_ps(mc + r));
    }
    float s = hsum8(s8);
    for (; r < rows; ++r) s += mc[r];
    acc[c] += s;
  }
}

namespace {
constexpr std::size_t kAggBlock = 1024;  // floats; one block stays in L1
}

__attribute__((target("avx2"))) void scaled_sum_avx2(const float* const* xs,
                                                     std::size_t count,
                                                     float scale, float* out,
                                                     std::size_t d) {
  const __m256 sv = _mm256_set1_ps(scale);
  for (std::size_t b0 = 0; b0 < d; b0 += kAggBlock) {
    const std::size_t b1 = b0 + (d - b0 < kAggBlock ? d - b0 : kAggBlock);
    for (std::size_t i = b0; i < b1; ++i) out[i] = 0.0f;
    for (std::size_t kx = 0; kx < count; ++kx) {
      const float* xp = xs[kx];
      std::size_t i = b0;
      for (; i + 8 <= b1; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i),
                                                _mm256_loadu_ps(xp + i)));
      }
      for (; i < b1; ++i) out[i] += xp[i];
    }
    std::size_t i = b0;
    for (; i + 8 <= b1; i += 8) {
      _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(out + i), sv));
    }
    for (; i < b1; ++i) out[i] *= scale;
  }
}

__attribute__((target("avx2,fma"))) void weighted_sum_avx2(
    const float* const* xs, const float* w, std::size_t count, float* out,
    std::size_t d) {
  for (std::size_t b0 = 0; b0 < d; b0 += kAggBlock) {
    const std::size_t b1 = b0 + (d - b0 < kAggBlock ? d - b0 : kAggBlock);
    for (std::size_t i = b0; i < b1; ++i) out[i] = 0.0f;
    for (std::size_t kx = 0; kx < count; ++kx) {
      const float* xp = xs[kx];
      const __m256 wv = _mm256_set1_ps(w[kx]);
      std::size_t i = b0;
      for (; i + 8 <= b1; i += 8) {
        _mm256_storeu_ps(out + i,
                         _mm256_fmadd_ps(wv, _mm256_loadu_ps(xp + i),
                                         _mm256_loadu_ps(out + i)));
      }
      for (; i < b1; ++i) out[i] = __builtin_fmaf(w[kx], xp[i], out[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// SignPack — branch-free IEEE-754 bit classification, 8 lanes at a time.
//
// Per lane: negative = sign bit (NaN keeps its payload sign, matching the
// scalar bits>>31); nonzero = magnitude in [1, 0x7F800000] — zero for ±0,
// excluded for NaN (magnitude > inf), included for ±inf and denormals.  All
// magnitudes fit a positive int32, so signed compares implement the unsigned
// range check exactly.
// ---------------------------------------------------------------------------

namespace {

// Packs 8 lanes into (neg, nz) 8-bit groups via movemask over the sign bits
// of the classification masks.
__attribute__((target("avx2"), always_inline)) inline void classify8(
    const float* v, unsigned& negbits, unsigned& nzbits) {
  const __m256 f = _mm256_loadu_ps(v);
  negbits = static_cast<unsigned>(_mm256_movemask_ps(f));
  const __m256i bits = _mm256_castps_si256(f);
  const __m256i mag = _mm256_and_si256(bits, _mm256_set1_epi32(0x7FFFFFFF));
  const __m256i gt0 = _mm256_cmpgt_epi32(mag, _mm256_setzero_si256());
  const __m256i gt_inf =
      _mm256_cmpgt_epi32(mag, _mm256_set1_epi32(0x7F800000));
  const __m256i nzm = _mm256_andnot_si256(gt_inf, gt0);
  nzbits =
      static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(nzm)));
}

__attribute__((target("avx2"), always_inline)) inline void pack_word64(
    const float* v, std::uint64_t& neg, std::uint64_t& nz) {
  std::uint64_t ng = 0, z = 0;
  for (std::size_t g = 0; g < 8; ++g) {
    unsigned negbits, nzbits;
    classify8(v + 8 * g, negbits, nzbits);
    ng |= static_cast<std::uint64_t>(negbits) << (8 * g);
    z |= static_cast<std::uint64_t>(nzbits) << (8 * g);
  }
  neg = ng;
  nz = z;
}

inline std::uint64_t match_word(std::uint64_t negx, std::uint64_t nzx,
                                std::uint64_t negy, std::uint64_t nzy) {
  return (nzx & nzy & ~(negx ^ negy)) | (~nzx & ~nzy);
}

}  // namespace

__attribute__((target("avx2"))) void signpack_words_avx2(const float* v,
                                                         std::size_t words,
                                                         std::uint64_t* neg,
                                                         std::uint64_t* nz) {
  for (std::size_t w = 0; w < words; ++w) {
    pack_word64(v + w * 64, neg[w], nz[w]);
  }
}

__attribute__((target("avx2,popcnt"))) std::size_t count_matches_words_avx2(
    const float* x, const std::uint64_t* negy, const std::uint64_t* nzy,
    std::size_t words) {
  std::size_t matches = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t negx, nzx;
    pack_word64(x + w * 64, negx, nzx);
    matches += static_cast<std::size_t>(
        __builtin_popcountll(match_word(negx, nzx, negy[w], nzy[w])));
  }
  return matches;
}

__attribute__((target("popcnt"))) std::size_t count_matches_packed_popcnt(
    const std::uint64_t* negx, const std::uint64_t* nzx,
    const std::uint64_t* negy, const std::uint64_t* nzy, std::size_t words) {
  std::size_t matches = 0;
  for (std::size_t w = 0; w < words; ++w) {
    matches += static_cast<std::size_t>(
        __builtin_popcountll(match_word(negx[w], nzx[w], negy[w], nzy[w])));
  }
  return matches;
}

}  // namespace cmfl::tensor::simd

#endif  // CMFL_SIMD_X86

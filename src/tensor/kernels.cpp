#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "tensor/kernels_simd.h"
#include "util/thread_pool.h"

namespace cmfl::tensor {

namespace kernels {

// ---------------------------------------------------------------------------
// Tier selection
// ---------------------------------------------------------------------------

namespace {

std::atomic<Tier> g_tier{Tier::kAuto};

/// True when the current dispatch should take the AVX2/FMA backend.
inline bool use_fast() noexcept {
#if CMFL_SIMD_X86
  return active_tier() == Tier::kFast;
#else
  return false;
#endif
}

}  // namespace

void set_tier(Tier t) noexcept { g_tier.store(t); }

Tier tier() noexcept { return g_tier.load(); }

bool fast_tier_compiled() noexcept { return CMFL_SIMD_X86 != 0; }

bool fast_tier_available() noexcept {
#if CMFL_SIMD_X86
  static const bool ok = simd::cpu_has_avx2_fma();
  return ok;
#else
  return false;
#endif
}

Tier active_tier() noexcept {
  const Tier t = g_tier.load();
  if (t == Tier::kExact) return Tier::kExact;
  // kAuto and kFast both resolve against hardware support; kFast is never
  // emulated on machines without AVX2+FMA.
  return fast_tier_available() ? Tier::kFast : Tier::kExact;
}

const char* simd_level() noexcept {
  return fast_tier_available() ? "avx2-fma" : "scalar";
}

// ---------------------------------------------------------------------------
// Threading configuration
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::size_t> g_max_threads{0};  // 0 = env override / hw conc.

std::mutex g_pool_mutex;
std::unique_ptr<util::ThreadPool> g_pool;
std::size_t g_pool_built_for = 0;  // effective setting the pool was built for

/// The worker-count setting dispatches resolve: explicit set_max_threads()
/// wins, then the CMFL_THREADS environment override, then 0 (hardware
/// concurrency, resolved inside ThreadPool).
std::size_t effective_threads() noexcept {
  const std::size_t n = g_max_threads.load();
  return n != 0 ? n : env_max_threads();
}

void check_same_size(std::size_t a, std::size_t b, const char* what) {
  if (a != b) {
    throw std::invalid_argument(std::string(what) + ": size mismatch (" +
                                std::to_string(a) + " vs " +
                                std::to_string(b) + ")");
  }
}

}  // namespace

void set_max_threads(std::size_t n) { g_max_threads.store(n); }

std::size_t max_threads() noexcept { return g_max_threads.load(); }

std::size_t env_max_threads() noexcept {
  static const std::size_t cached = []() noexcept -> std::size_t {
    const char* s = std::getenv("CMFL_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    // Reject trailing garbage, zero, and absurd counts; 0 means "unset".
    if (end == s || *end != '\0' || v == 0 || v > 4096) return 0;
    return static_cast<std::size_t>(v);
  }();
  return cached;
}

util::ThreadPool* pool() {
  const std::size_t want = effective_threads();
  if (want == 1) return nullptr;
  // Rebuilt (pending tasks drain first — the destructor joins) whenever the
  // effective setting changed since the last dispatch, so benches can record
  // single- and multi-threaded rows in one process.  Callers must not change
  // the setting concurrently with an in-flight kernel.
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool_built_for != want) {
    g_pool.reset();
    g_pool = std::make_unique<util::ThreadPool>(want);
    g_pool_built_for = want;
  }
  return g_pool.get();
}

bool parallel_rows_active(std::size_t rows, std::size_t total_macs) {
  if (rows < 2 || total_macs < kParallelMacThreshold) return false;
  util::ThreadPool* p = pool();
  return p != nullptr && p->size() >= 2;
}

void parallel_rows_dispatch(
    std::size_t rows, const std::function<void(std::size_t, std::size_t)>& fn) {
  util::ThreadPool* p = pool();
  const std::size_t chunks = std::min(rows, p->size());
  p->parallel_for(chunks, [&](std::size_t c) {
    // Fixed partition: chunk c owns rows [c*rows/chunks, (c+1)*rows/chunks).
    const std::size_t begin = c * rows / chunks;
    const std::size_t end = (c + 1) * rows / chunks;
    if (begin < end) fn(begin, end);
  });
}

// ---------------------------------------------------------------------------
// Blocked / register-tiled GEMM
//
// Tiling constants: MR output rows share each streamed B row (register
// reuse); KC keeps the active A panel resident in L1; NC keeps the active
// B/C panels inside L2.  Loop nests are arranged so each output element
// still accumulates over k in strictly increasing order (see header).
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMR = 4;    // rows per register tile
constexpr std::size_t kKC = 128;  // k-block
constexpr std::size_t kNC = 1024; // j-block (floats)

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, std::size_t /*m*/,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    std::fill(c + i * n, c + (i + 1) * n, 0.0f);
  }
#if CMFL_SIMD_X86
  if (use_fast()) {
    simd::gemm_nn_acc_avx2(a, b, c, k, n, i0, i1);
    return;
  }
#endif
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t jn = std::min(kNC, n - jc);
    for (std::size_t kc = 0; kc < k; kc += kKC) {
      const std::size_t kn = std::min(kKC, k - kc);
      std::size_t i = i0;
      for (; i + kMR <= i1; i += kMR) {
        float* __restrict__ c0 = c + (i + 0) * n + jc;
        float* __restrict__ c1 = c + (i + 1) * n + jc;
        float* __restrict__ c2 = c + (i + 2) * n + jc;
        float* __restrict__ c3 = c + (i + 3) * n + jc;
        for (std::size_t kk = kc; kk < kc + kn; ++kk) {
          const float a0 = a[(i + 0) * k + kk];
          const float a1 = a[(i + 1) * k + kk];
          const float a2 = a[(i + 2) * k + kk];
          const float a3 = a[(i + 3) * k + kk];
          const float* __restrict__ br = b + kk * n + jc;
          for (std::size_t j = 0; j < jn; ++j) {
            const float bv = br[j];
            c0[j] += a0 * bv;
            c1[j] += a1 * bv;
            c2[j] += a2 * bv;
            c3[j] += a3 * bv;
          }
        }
      }
      for (; i < i1; ++i) {
        float* __restrict__ cr = c + i * n + jc;
        for (std::size_t kk = kc; kk < kc + kn; ++kk) {
          const float ai = a[i * k + kk];
          const float* __restrict__ br = b + kk * n + jc;
          for (std::size_t j = 0; j < jn; ++j) cr[j] += ai * br[j];
        }
      }
    }
  }
}

void gemm_nn_acc(const float* a, const float* b, float* c, std::size_t /*m*/,
                 std::size_t k, std::size_t n, std::size_t i0, std::size_t i1) {
  // gemm_nn minus the zero-fill: identical blocked loop nest, so each output
  // element still sees its k taps in strictly increasing order — just seeded
  // from the caller-provided c values instead of 0.
#if CMFL_SIMD_X86
  if (use_fast()) {
    simd::gemm_nn_acc_avx2(a, b, c, k, n, i0, i1);
    return;
  }
#endif
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t jn = std::min(kNC, n - jc);
    for (std::size_t kc = 0; kc < k; kc += kKC) {
      const std::size_t kn = std::min(kKC, k - kc);
      std::size_t i = i0;
      for (; i + kMR <= i1; i += kMR) {
        float* __restrict__ c0 = c + (i + 0) * n + jc;
        float* __restrict__ c1 = c + (i + 1) * n + jc;
        float* __restrict__ c2 = c + (i + 2) * n + jc;
        float* __restrict__ c3 = c + (i + 3) * n + jc;
        for (std::size_t kk = kc; kk < kc + kn; ++kk) {
          const float a0 = a[(i + 0) * k + kk];
          const float a1 = a[(i + 1) * k + kk];
          const float a2 = a[(i + 2) * k + kk];
          const float a3 = a[(i + 3) * k + kk];
          const float* __restrict__ br = b + kk * n + jc;
          for (std::size_t j = 0; j < jn; ++j) {
            const float bv = br[j];
            c0[j] += a0 * bv;
            c1[j] += a1 * bv;
            c2[j] += a2 * bv;
            c3[j] += a3 * bv;
          }
        }
      }
      for (; i < i1; ++i) {
        float* __restrict__ cr = c + i * n + jc;
        for (std::size_t kk = kc; kk < kc + kn; ++kk) {
          const float ai = a[i * k + kk];
          const float* __restrict__ br = b + kk * n + jc;
          for (std::size_t j = 0; j < jn; ++j) cr[j] += ai * br[j];
        }
      }
    }
  }
}

void add_col_sums(const float* m, std::size_t rows, std::size_t cols,
                  std::size_t row_stride, std::size_t col_stride,
                  std::span<float> acc) {
  check_same_size(acc.size(), cols, "add_col_sums");
#if CMFL_SIMD_X86
  if (use_fast()) {
    if (col_stride == 1) {
      // Lanes are independent per-column accumulators: bit-identical.
      simd::add_col_sums_rowmajor_avx2(m, rows, cols, row_stride, acc.data());
      return;
    }
    if (row_stride == 1) {
      // Contiguous per-column reduce in 8 partial lanes (ULP-bounded).
      simd::add_col_sums_colwise_avx2(m, rows, cols, col_stride, acc.data());
      return;
    }
    // Doubly-strided layouts (unused today) fall through to the scalar loop.
  }
#endif
  if (col_stride == 1) {
    // Row-major contiguous layout: stream whole rows (r outer) so every
    // accumulator still sees its rows in increasing order.
    for (std::size_t r = 0; r < rows; ++r) {
      const float* mr = m + r * row_stride;
      for (std::size_t c = 0; c < cols; ++c) acc[c] += mr[c];
    }
    return;
  }
  // Strided columns: a per-column register accumulator walks rows in
  // increasing order — the same per-accumulator sequence as above.
  for (std::size_t c = 0; c < cols; ++c) {
    const float* mc = m + c * col_stride;
    float s = acc[c];
    for (std::size_t r = 0; r < rows; ++r) s += mc[r * row_stride];
    acc[c] = s;
  }
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    std::fill(c + i * n, c + (i + 1) * n, 0.0f);
  }
#if CMFL_SIMD_X86
  if (use_fast()) {
    simd::gemm_tn_acc_avx2(a, b, c, m, k, n, i0, i1);
    return;
  }
#endif
  // a is (k×m): element (kk, i) sits at a[kk*m + i].
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t jn = std::min(kNC, n - jc);
    std::size_t i = i0;
    for (; i + kMR <= i1; i += kMR) {
      float* __restrict__ c0 = c + (i + 0) * n + jc;
      float* __restrict__ c1 = c + (i + 1) * n + jc;
      float* __restrict__ c2 = c + (i + 2) * n + jc;
      float* __restrict__ c3 = c + (i + 3) * n + jc;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* ar = a + kk * m + i;
        const float a0 = ar[0], a1 = ar[1], a2 = ar[2], a3 = ar[3];
        const float* __restrict__ br = b + kk * n + jc;
        for (std::size_t j = 0; j < jn; ++j) {
          const float bv = br[j];
          c0[j] += a0 * bv;
          c1[j] += a1 * bv;
          c2[j] += a2 * bv;
          c3[j] += a3 * bv;
        }
      }
    }
    for (; i < i1; ++i) {
      float* __restrict__ cr = c + i * n + jc;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float ai = a[kk * m + i];
        const float* __restrict__ br = b + kk * n + jc;
        for (std::size_t j = 0; j < jn; ++j) cr[j] += ai * br[j];
      }
    }
  }
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t /*m*/,
             std::size_t k, std::size_t n, std::size_t i0, std::size_t i1) {
#if CMFL_SIMD_X86
  if (use_fast()) {
    simd::gemm_nt_avx2(a, b, c, k, n, i0, i1);
    return;
  }
#endif
  // Row-dot kernel: a 2×2 register tile of double accumulators reuses each
  // loaded a/b element twice while keeping per-element k order intact.
  std::size_t i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av0 = a0[kk], av1 = a1[kk];
        const double bv0 = b0[kk], bv1 = b1[kk];
        s00 += av0 * bv0;
        s01 += av0 * bv1;
        s10 += av1 * bv0;
        s11 += av1 * bv1;
      }
      c[(i + 0) * n + j + 0] = static_cast<float>(s00);
      c[(i + 0) * n + j + 1] = static_cast<float>(s01);
      c[(i + 1) * n + j + 0] = static_cast<float>(s10);
      c[(i + 1) * n + j + 1] = static_cast<float>(s11);
    }
    for (; j < n; ++j) {
      const float* b0 = b + j * k;
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double bv = b0[kk];
        s0 += static_cast<double>(a0[kk]) * bv;
        s1 += static_cast<double>(a1[kk]) * bv;
      }
      c[(i + 0) * n + j] = static_cast<float>(s0);
      c[(i + 1) * n + j] = static_cast<float>(s1);
    }
  }
  for (; i < i1; ++i) {
    const float* ar = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(ar[kk]) * static_cast<double>(br[kk]);
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void gemv(const float* a, const float* x, float* y, std::size_t /*m*/,
          std::size_t n, std::size_t i0, std::size_t i1) {
#if CMFL_SIMD_X86
  if (use_fast()) {
    simd::gemv_avx2(a, x, y, n, i0, i1);
    return;
  }
#endif
  std::size_t i = i0;
  for (; i + kMR <= i1; i += kMR) {
    const float* a0 = a + (i + 0) * n;
    const float* a1 = a + (i + 1) * n;
    const float* a2 = a + (i + 2) * n;
    const float* a3 = a + (i + 3) * n;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xv = x[j];
      s0 += a0[j] * xv;
      s1 += a1[j] * xv;
      s2 += a2[j] * xv;
      s3 += a3[j] * xv;
    }
    y[i + 0] = static_cast<float>(s0);
    y[i + 1] = static_cast<float>(s1);
    y[i + 2] = static_cast<float>(s2);
    y[i + 3] = static_cast<float>(s3);
  }
  for (; i < i1; ++i) {
    const float* ar = a + i * n;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      s += static_cast<double>(ar[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<float>(s);
  }
}

// ---------------------------------------------------------------------------
// Naive seed kernels (reference for tests and the old-path benchmark)
// ---------------------------------------------------------------------------

void gemm_nn_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  std::fill(c, c + m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    float* cr = c + i * n;
    const float* ar = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = ar[kk];
      if (aik == 0.0f) continue;
      const float* br = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += aik * br[j];
    }
  }
}

void gemm_tn_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  std::fill(c, c + m * n, 0.0f);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* ar = a + kk * m;
    const float* br = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = ar[i];
      if (aki == 0.0f) continue;
      float* cr = c + i * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += aki * br[j];
    }
  }
}

void gemm_nt_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ar = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(ar[kk]) * static_cast<double>(br[kk]);
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void gemv_ref(const float* a, const float* x, float* y, std::size_t m,
              std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ar = a + i * n;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      s += static_cast<double>(ar[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<float>(s);
  }
}

// ---------------------------------------------------------------------------
// Fused server aggregation
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kAggBlock = 1024;  // floats; one block stays in L1
}

namespace {

#if CMFL_SIMD_X86
/// Raw data pointers (offset by `lo` floats) for the SIMD aggregation
/// backends.  Aggregation runs server-side (not in the allocation-free
/// client training step), so a small heap vector per call is fine.
std::vector<const float*> view_pointers(
    std::span<const std::span<const float>> xs, std::size_t lo) {
  std::vector<const float*> ps;
  ps.reserve(xs.size());
  for (const auto& x : xs) ps.push_back(x.data() + lo);
  return ps;
}
#endif

void check_range(std::size_t lo, std::size_t hi, std::size_t size,
                 const char* what) {
  if (lo > hi || hi > size) {
    throw std::invalid_argument(std::string(what) + ": bad range");
  }
}

}  // namespace

void scaled_sum_range(std::span<const std::span<const float>> xs, float scale,
                      std::span<float> out, std::size_t lo, std::size_t hi) {
  for (const auto& x : xs) check_same_size(x.size(), out.size(), "scaled_sum");
  check_range(lo, hi, out.size(), "scaled_sum_range");
#if CMFL_SIMD_X86
  if (use_fast()) {
    const auto ps = view_pointers(xs, lo);
    // Lane-independent adds in the exact client order plus one multiply:
    // bit-identical to the exact tier (and the seed's accumulate-then-scale).
    // Every element's op sequence is position-independent, so the offset
    // call equals the same elements of the full-vector call.
    simd::scaled_sum_avx2(ps.data(), ps.size(), scale, out.data() + lo,
                          hi - lo);
    return;
  }
#endif
  for (std::size_t b0 = lo; b0 < hi; b0 += kAggBlock) {
    const std::size_t b1 = std::min(hi, b0 + kAggBlock);
    std::fill(out.begin() + b0, out.begin() + b1, 0.0f);
    for (const auto& x : xs) {
      const float* xp = x.data();
      for (std::size_t i = b0; i < b1; ++i) out[i] += xp[i];
    }
    for (std::size_t i = b0; i < b1; ++i) out[i] *= scale;
  }
}

void scaled_sum(std::span<const std::span<const float>> xs, float scale,
                std::span<float> out) {
  scaled_sum_range(xs, scale, out, 0, out.size());
}

void weighted_sum_range(std::span<const std::span<const float>> xs,
                        std::span<const float> w, std::span<float> out,
                        std::size_t lo, std::size_t hi) {
  check_same_size(xs.size(), w.size(), "weighted_sum");
  for (const auto& x : xs) {
    check_same_size(x.size(), out.size(), "weighted_sum");
  }
  check_range(lo, hi, out.size(), "weighted_sum_range");
#if CMFL_SIMD_X86
  if (use_fast()) {
    const auto ps = view_pointers(xs, lo);
    simd::weighted_sum_avx2(ps.data(), w.data(), ps.size(), out.data() + lo,
                            hi - lo);
    return;
  }
#endif
  for (std::size_t b0 = lo; b0 < hi; b0 += kAggBlock) {
    const std::size_t b1 = std::min(hi, b0 + kAggBlock);
    std::fill(out.begin() + b0, out.begin() + b1, 0.0f);
    for (std::size_t kx = 0; kx < xs.size(); ++kx) {
      const float* xp = xs[kx].data();
      const float wk = w[kx];
      for (std::size_t i = b0; i < b1; ++i) out[i] += wk * xp[i];
    }
  }
}

void weighted_sum(std::span<const std::span<const float>> xs,
                  std::span<const float> w, std::span<float> out) {
  weighted_sum_range(xs, w, out, 0, out.size());
}

}  // namespace kernels

// ---------------------------------------------------------------------------
// SignPack
// ---------------------------------------------------------------------------

namespace {

inline std::uint64_t tail_mask(std::size_t n) {
  const std::size_t rem = n % 64;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

/// Folds 8 contiguous 0/1 bytes into bits 0..7 (byte g -> bit g).  The
/// multiply scatters byte g to bit 56+g with no carry collisions; the shift
/// collects them.
inline std::uint64_t pack8(const std::uint8_t* b) {
  std::uint64_t x;
  std::memcpy(&x, b, 8);
  return (x * 0x0102040810204080ULL) >> 56;
}

/// Packs up to 64 lanes starting at v into (negative, nonzero) words.
/// Branch-free via the IEEE-754 layout: the sign is the top bit, and the
/// three-way sign is nonzero exactly when the magnitude bits lie in
/// (0, 0x7F800000] — zero for ±0, above for NaN (so NaN packs as class 0,
/// matching (f > 0) || (f < 0)).  Two passes so the compare loop stays
/// vectorizable: class bytes first, then bytes folded into the two words.
inline void pack_chunk(const float* v, std::size_t lanes, std::uint64_t& neg,
                       std::uint64_t& nz) {
  std::uint8_t negb[64], nzb[64];
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto bits = std::bit_cast<std::uint32_t>(v[l]);
    const std::uint32_t mag = bits & 0x7FFFFFFFu;
    negb[l] = static_cast<std::uint8_t>(bits >> 31);
    nzb[l] = static_cast<std::uint8_t>(mag - 1u < 0x7F800000u);
  }
  if (lanes == 64) {
    std::uint64_t ng = 0, z = 0;
    for (std::size_t g = 0; g < 8; ++g) {
      ng |= pack8(negb + 8 * g) << (8 * g);
      z |= pack8(nzb + 8 * g) << (8 * g);
    }
    neg = ng;
    nz = z;
    return;
  }
  std::uint64_t ng = 0, z = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    ng |= static_cast<std::uint64_t>(negb[l]) << l;
    z |= static_cast<std::uint64_t>(nzb[l]) << l;
  }
  neg = ng;
  nz = z;
}

/// Bits where the three-way sign classes agree: both nonzero with equal
/// negative bits, or both zero.
inline std::uint64_t match_word(std::uint64_t negx, std::uint64_t nzx,
                                std::uint64_t negy, std::uint64_t nzy) {
  return (nzx & nzy & ~(negx ^ negy)) | (~nzx & ~nzy);
}

}  // namespace

namespace {

/// SIMD backends are pure bit classification (no float arithmetic), so the
/// fast SignPack path is bit-for-bit equal to the scalar one on every input;
/// tier forcing still selects the implementation for testability.
inline bool signpack_use_fast() noexcept {
#if CMFL_SIMD_X86
  return kernels::active_tier() == kernels::Tier::kFast;
#else
  return false;
#endif
}

}  // namespace

void SignPack::assign(std::span<const float> v) {
  n_ = v.size();
  const std::size_t words = (n_ + 63) / 64;
  neg_.assign(words, 0);
  nz_.assign(words, 0);
  std::size_t w = 0;
#if CMFL_SIMD_X86
  if (signpack_use_fast()) {
    const std::size_t full = n_ / 64;
    simd::signpack_words_avx2(v.data(), full, neg_.data(), nz_.data());
    w = full;  // any partial tail word packs below with the scalar path
  }
#endif
  for (; w < words; ++w) {
    const std::size_t base = w * 64;
    pack_chunk(v.data() + base, std::min<std::size_t>(64, n_ - base), neg_[w],
               nz_[w]);
  }
}

bool SignPack::all_zero() const noexcept {
  for (std::uint64_t w : nz_) {
    if (w != 0) return false;
  }
  return true;
}

std::size_t count_sign_matches(const SignPack& x, const SignPack& y) {
  kernels::check_same_size(x.size(), y.size(), "count_sign_matches(pack)");
  if (x.size() == 0) return 0;
  const auto negx = x.negative_words(), negy = y.negative_words();
  const auto nzx = x.nonzero_words(), nzy = y.nonzero_words();
  const std::size_t words = nzx.size();
  std::size_t matches = 0;
#if CMFL_SIMD_X86
  if (signpack_use_fast()) {
    // Hardware-popcount sweep over every full word; the tail word below is
    // shared with the scalar path (identical bits either way).
    matches = simd::count_matches_packed_popcnt(negx.data(), nzx.data(),
                                                negy.data(), nzy.data(),
                                                words - 1);
    matches += static_cast<std::size_t>(
        std::popcount(match_word(negx[words - 1], nzx[words - 1],
                                 negy[words - 1], nzy[words - 1]) &
                      tail_mask(x.size())));
    return matches;
  }
#endif
  for (std::size_t w = 0; w + 1 < words; ++w) {
    matches += static_cast<std::size_t>(
        std::popcount(match_word(negx[w], nzx[w], negy[w], nzy[w])));
  }
  matches += static_cast<std::size_t>(
      std::popcount(match_word(negx[words - 1], nzx[words - 1], negy[words - 1],
                               nzy[words - 1]) &
                    tail_mask(x.size())));
  return matches;
}

std::size_t count_sign_matches(std::span<const float> x, const SignPack& y) {
  kernels::check_same_size(x.size(), y.size(), "count_sign_matches(pack)");
  if (x.empty()) return 0;
  const auto negy = y.negative_words();
  const auto nzy = y.nonzero_words();
  const std::size_t words = nzy.size();
  std::size_t matches = 0;
  std::size_t w = 0;
#if CMFL_SIMD_X86
  if (signpack_use_fast()) {
    const std::size_t full = x.size() / 64;
    matches = simd::count_matches_words_avx2(x.data(), negy.data(), nzy.data(),
                                             full);
    w = full;  // the partial tail word (if any) runs through the scalar path
  }
#endif
  for (; w < words; ++w) {
    const std::size_t base = w * 64;
    const std::size_t lanes = std::min<std::size_t>(64, x.size() - base);
    std::uint64_t negx, nzx;
    pack_chunk(x.data() + base, lanes, negx, nzx);
    std::uint64_t m = match_word(negx, nzx, negy[w], nzy[w]);
    if (lanes < 64) m &= (std::uint64_t{1} << lanes) - 1;
    matches += static_cast<std::size_t>(std::popcount(m));
  }
  return matches;
}

std::size_t count_sign_matches_range(std::span<const float> x,
                                     const SignPack& y, std::size_t lo,
                                     std::size_t hi) {
  kernels::check_same_size(x.size(), y.size(), "count_sign_matches_range");
  if (lo > hi || hi > y.size()) {
    throw std::invalid_argument("count_sign_matches_range: bad range");
  }
  if (lo % 64 != 0 || (hi % 64 != 0 && hi != y.size())) {
    throw std::invalid_argument(
        "count_sign_matches_range: bounds must be 64-aligned (or hi == size)");
  }
  if (lo == hi) return 0;
  const auto negy = y.negative_words();
  const auto nzy = y.nonzero_words();
  const std::size_t w0 = lo / 64;
  const std::size_t w1 = (hi + 63) / 64;
  std::size_t matches = 0;
  std::size_t w = w0;
#if CMFL_SIMD_X86
  if (signpack_use_fast()) {
    // Full 64-lane words inside [lo, hi) run the vector sweep; the partial
    // tail word (only possible when hi == size) runs the scalar path below —
    // the same word split the full-vector mixed form uses.
    const std::size_t full = w0 + (hi - lo) / 64;
    matches = simd::count_matches_words_avx2(x.data() + lo, negy.data() + w0,
                                             nzy.data() + w0, full - w0);
    w = full;
  }
#endif
  for (; w < w1; ++w) {
    const std::size_t base = w * 64;
    const std::size_t lanes = std::min<std::size_t>(64, hi - base);
    std::uint64_t negx, nzx;
    pack_chunk(x.data() + base, lanes, negx, nzx);
    std::uint64_t m = match_word(negx, nzx, negy[w], nzy[w]);
    if (lanes < 64) m &= (std::uint64_t{1} << lanes) - 1;
    matches += static_cast<std::size_t>(std::popcount(m));
  }
  return matches;
}

}  // namespace cmfl::tensor

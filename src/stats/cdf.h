// Empirical CDF helpers.
//
// Figures 1, 3, and 6 of the paper are CDF plots (model divergence, ΔUpdate,
// outlier-vs-non-outlier divergence).  Cdf stores a sorted sample and can be
// queried for F(x), quantiles, and a downsampled plot series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cmfl::stats {

class Cdf {
 public:
  /// Builds the empirical CDF of `samples` (copied and sorted).
  /// Throws std::invalid_argument if samples is empty.
  explicit Cdf(std::vector<double> samples);

  std::size_t count() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }

  /// F(x) = fraction of samples <= x.
  double fraction_at_or_below(double x) const;

  /// Inverse CDF: smallest sample s with F(s) >= q, q in [0, 1].
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  /// Emits `points` (x, F(x)) pairs evenly spaced over the sample index —
  /// the series a plotting tool would consume to redraw the paper's figure.
  struct Point {
    double x;
    double fraction;
  };
  std::vector<Point> plot_series(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cmfl::stats

#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmfl::stats {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("Cdf: need at least one sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_or_below(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Cdf::quantile: q must be in [0,1]");
  }
  if (q == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

std::vector<Cdf::Point> Cdf::plot_series(std::size_t points) const {
  if (points == 0) return {};
  points = std::min(points, sorted_.size());
  std::vector<Point> series;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Last sample of each of `points` equal slices of the sorted data.
    const std::size_t idx = ((i + 1) * sorted_.size()) / points - 1;
    series.push_back({sorted_[idx], static_cast<double>(idx + 1) /
                                        static_cast<double>(sorted_.size())});
  }
  return series;
}

}  // namespace cmfl::stats

#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace cmfl::stats {

void Running::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Running::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

}  // namespace cmfl::stats

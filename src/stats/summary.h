// Streaming summary statistics (Welford) and small descriptive helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::stats {

/// Numerically stable running mean/variance accumulator.
class Running {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Population variance; 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span (0 for empty).
double mean_of(std::span<const double> xs) noexcept;

}  // namespace cmfl::stats

#include "sched/work_pool.h"

#include <algorithm>
#include <limits>

namespace cmfl::sched {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    start_cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void WorkStealingPool::worker_loop(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++active_;
    }
    work(self);
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::work(std::size_t self) {
  const std::function<void(std::size_t)>* job;
  {
    std::lock_guard lock(mu_);
    job = job_;
  }
  Slot& own = *slots_[self];
  const std::size_t nslots = slots_.size();
  for (;;) {
    std::size_t i = kNone;
    {
      std::lock_guard lock(own.mu);
      if (own.lo < own.hi) i = own.lo++;
    }
    if (i == kNone) {
      // Own slice drained: steal the back half of the first victim (scanning
      // from our right neighbor) that still holds work.  Locking per victim
      // keeps the scan race-free; misses are cheap because a drained run
      // exits after one full scan.
      bool stole = false;
      for (std::size_t d = 1; d < nslots && !stole; ++d) {
        Slot& victim = *slots_[(self + d) % nslots];
        std::size_t lo = 0, hi = 0;
        {
          std::lock_guard lock(victim.mu);
          const std::size_t r = victim.hi - victim.lo;
          if (r == 0) continue;
          const std::size_t take = (r + 1) / 2;
          lo = victim.hi - take;
          hi = victim.hi;
          victim.hi = lo;
        }
        {
          std::lock_guard lock(own.mu);
          own.lo = lo;
          own.hi = hi;
        }
        steals_.fetch_add(1, std::memory_order_relaxed);
        stole = true;
      }
      if (!stole) return;  // every remaining job is already executing
      continue;
    }
    try {
      (*job)(i);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      --remaining_;
    }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::run(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard lock(mu_);
    if (job_ != nullptr) {
      throw std::logic_error("WorkStealingPool::run is not reentrant");
    }
    // Initial deal: contiguous near-equal slices, caller owns slot 0.  Slot
    // writes happen under each slot's mutex so workers (which also lock
    // before reading) observe them without data races.
    const std::size_t nslots = slots_.size();
    const std::size_t chunk = n / nslots;
    const std::size_t extra = n % nslots;
    std::size_t next = 0;
    for (std::size_t t = 0; t < nslots; ++t) {
      const std::size_t len = chunk + (t < extra ? 1 : 0);
      std::lock_guard slot_lock(slots_[t]->mu);
      slots_[t]->lo = next;
      slots_[t]->hi = next + len;
      next += len;
    }
    job_ = &fn;
    remaining_ = n;
    error_ = nullptr;
    ++generation_;
    start_cv_.notify_all();
  }

  work(0);

  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0 && active_ == 0; });
    job_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

std::uint64_t WorkStealingPool::steals() const noexcept {
  return steals_.load(std::memory_order_relaxed);
}

}  // namespace cmfl::sched

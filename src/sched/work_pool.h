// Work-stealing assignment pool for client training jobs.
//
// The previous cohort walk dealt each worker thread a fixed contiguous
// slice of the cohort (ThreadPool::parallel_for).  With a population's
// log-normal speed spread, one slow virtual client then idles an entire
// thread's remaining slice while the other workers finish and wait.  This
// pool keeps the fixed contiguous deal as the *initial* assignment — the
// common case touches only the owner's own slot — but lets a worker that
// drains its slice steal the back half of a neighbor's remaining slice
// (scanning rightward from itself), so stragglers cost their own job, not
// their whole slice.
//
// The shape follows the classic parameter-server WorkloadPool: per-worker
// mutex-protected {lo, hi} ranges (no lock-free deque needed — the lock is
// uncontended except at steal time), owner pops from the front, thieves
// steal half from the back.  Determinism: jobs are independent (each client
// owns its RNG stream) and every index runs exactly once, so results are
// identical to the serial loop regardless of which thread ran what; only
// the steals() counter is timing-dependent (a process-lifetime observation,
// reported but never checkpointed — DESIGN.md §17).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cmfl::sched {

class WorkStealingPool {
 public:
  /// Spawns workers so that run() executes on `threads` threads total
  /// (including the calling thread).  0 = hardware concurrency.
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Executing threads per run(), including the caller.
  std::size_t threads() const noexcept { return slots_.size(); }

  /// Runs fn(i) exactly once for every i in [0, n), dealing contiguous
  /// index ranges to all threads and work-stealing the stragglers' tails.
  /// Blocks until every index completed; the caller participates.  The
  /// first exception thrown by any job is rethrown here after the barrier
  /// (remaining jobs still run).  Not reentrant.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Total successful steal events since construction (timing-dependent).
  std::uint64_t steals() const noexcept;

 private:
  /// One thread's dealt range.  Padded: owner pops lo on every job while
  /// thieves scan hi — a shared cache line would put the pop on the hot
  /// path of every other worker's steal scan.
  struct alignas(64) Slot {
    std::mutex mu;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  void work(std::size_t self);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::size_t remaining_ = 0;  // jobs not yet completed in this run
  std::size_t active_ = 0;     // workers currently inside work()
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace cmfl::sched

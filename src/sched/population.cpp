#include "sched/population.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

namespace cmfl::sched {

namespace {

// Salts separating the independent per-device trait streams.
constexpr std::uint64_t kSaltSpeed = 0x73706565;       // "spee"
constexpr std::uint64_t kSaltDuty = 0x64757479;        // "duty"
constexpr std::uint64_t kSaltAvail = 0x61766169;       // "avai"
constexpr std::uint64_t kSaltDropout = 0x64726f70;     // "drop"
constexpr std::uint64_t kSaltJitter = 0x6a697474;      // "jitt"

/// Caller-supplied release seqs are offset into their own ordering domain so
/// they always sort after auto-sequenced releases of the same fresh run
/// (setup probes evict before cohort clients, matching the legacy order).
constexpr std::uint64_t kDeferredSeqBase = 1ULL << 48;

std::uint64_t mix3(std::uint64_t seed, std::uint64_t device,
                   std::uint64_t salt) {
  util::SplitMix64 sm(seed ^ (device * 0x9e3779b97f4a7c15ULL) ^
                      (salt * 0xbf58476d1ce4e5b9ULL));
  sm.next();  // decorrelate nearby (device, salt) pairs
  return sm.next();
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Standard normal from two independent unit hashes (Box–Muller).
double hashed_normal(double u1, double u2) {
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

void PopulationSpec::validate() const {
  if (devices == 0) {
    throw std::invalid_argument("PopulationSpec: devices must be positive");
  }
  if (mean_on_fraction <= 0.0 || mean_on_fraction > 1.0) {
    throw std::invalid_argument(
        "PopulationSpec: mean_on_fraction must lie in (0, 1]");
  }
  if (dropout_mid_round < 0.0 || dropout_mid_round >= 1.0) {
    throw std::invalid_argument(
        "PopulationSpec: dropout_mid_round must lie in [0, 1)");
  }
  if (duty_period_rounds < 0.0 || latency_base_s <= 0.0 ||
      latency_log_sigma < 0.0 || latency_jitter < 0.0) {
    throw std::invalid_argument("PopulationSpec: negative model knob");
  }
}

Population::Population(const PopulationSpec& spec, ClientFactory factory)
    : spec_(spec), factory_(std::move(factory)) {
  spec_.validate();
  if (!factory_) {
    throw std::invalid_argument("Population: null client factory");
  }
}

double Population::unit_hash(std::uint64_t device, std::uint64_t salt) const {
  return to_unit(mix3(spec_.seed, device, salt));
}

bool Population::available(std::uint64_t device, std::uint64_t round) const {
  if (spec_.mean_on_fraction >= 1.0) return true;
  if (spec_.duty_period_rounds > 0.0) {
    // Device-specific deterministic duty cycle: period in
    // [0.75, 1.25]·duty_period_rounds, device-specific phase, on for
    // mean_on_fraction of each period.
    const double u1 = unit_hash(device, kSaltDuty);
    const double u2 = unit_hash(device, kSaltDuty + 1);
    const auto period = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(
               std::llround(spec_.duty_period_rounds * (0.75 + 0.5 * u1))));
    const auto on_len = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(
            std::llround(spec_.mean_on_fraction *
                         static_cast<double>(period))),
        1, period - 1);
    const auto phase = static_cast<std::uint64_t>(
        u2 * static_cast<double>(period));
    return (round + phase) % period < on_len;
  }
  // Independent per-(device, round) churn.
  return to_unit(mix3(spec_.seed, device ^ (round * 0x94d049bb133111ebULL),
                      kSaltAvail)) < spec_.mean_on_fraction;
}

bool Population::drops_mid_round(std::uint64_t device,
                                 std::uint64_t round) const {
  if (spec_.dropout_mid_round <= 0.0) return false;
  return to_unit(mix3(spec_.seed, device ^ (round * 0xd6e8feb86659fd93ULL),
                      kSaltDropout)) < spec_.dropout_mid_round;
}

double Population::speed_factor(std::uint64_t device) const {
  if (spec_.latency_log_sigma <= 0.0) return 1.0;
  const double n = hashed_normal(unit_hash(device, kSaltSpeed),
                                 unit_hash(device, kSaltSpeed + 1));
  return std::exp(spec_.latency_log_sigma * n);
}

double Population::draw_latency(std::uint64_t device,
                                std::uint64_t invite_seq) const {
  double jitter = 1.0;
  if (spec_.latency_jitter > 0.0) {
    const std::uint64_t k = device ^ (invite_seq * 0xda942042e4dd58b5ULL);
    const double n =
        hashed_normal(to_unit(mix3(spec_.seed, k, kSaltJitter)),
                      to_unit(mix3(spec_.seed, k, kSaltJitter + 1)));
    jitter = std::exp(spec_.latency_jitter * n);
  }
  return spec_.latency_base_s * speed_factor(device) * jitter;
}

std::vector<std::uint64_t> Population::sample(
    std::uint64_t round, std::size_t count, Selection selection,
    util::Rng& rng, const std::function<bool(std::uint64_t)>& excluded) const {
  const bool need_available = selection == Selection::kAvailabilityAware;
  const auto eligible = [&](std::uint64_t id) {
    if (excluded && excluded(id)) return false;
    return !need_available || available(id, round);
  };

  std::vector<std::uint64_t> picked;
  if (count == 0) return picked;
  picked.reserve(count);
  std::unordered_set<std::uint64_t> seen;

  // Rejection sampling: cheap while count << devices (the production
  // regime).  A bounded attempt budget guards against a nearly exhausted
  // or nearly all-offline population, after which a deterministic linear
  // scan from a random start collects whatever is left.
  const std::uint64_t budget =
      64 + 16 * static_cast<std::uint64_t>(count);
  for (std::uint64_t attempt = 0;
       attempt < budget && picked.size() < count; ++attempt) {
    const std::uint64_t id = rng.uniform_index(spec_.devices);
    if (seen.contains(id) || !eligible(id)) continue;
    seen.insert(id);
    picked.push_back(id);
  }
  if (picked.size() < count) {
    const std::uint64_t start = rng.uniform_index(spec_.devices);
    for (std::uint64_t i = 0; i < spec_.devices && picked.size() < count;
         ++i) {
      const std::uint64_t id = (start + i) % spec_.devices;
      if (seen.contains(id) || !eligible(id)) continue;
      seen.insert(id);
      picked.push_back(id);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

fl::FlClient& Population::acquire(std::uint64_t device) {
  if (device >= spec_.devices) {
    throw std::invalid_argument("Population::acquire: device out of range");
  }
  std::vector<std::uint64_t> saved;
  bool has_saved = false;
  {
    std::lock_guard lock(mu_);
    auto it = resident_.find(device);
    if (it != resident_.end()) {
      Resident& r = it->second;
      if (r.in_use) {
        throw std::logic_error("Population::acquire: device already acquired");
      }
      warm_.erase({r.warm_seq, device});
      r.in_use = true;
      return *r.client;
    }
    // Reserve the slot with a placeholder and materialize outside the lock,
    // so concurrent workers overlap factory work (model construction, state
    // restore) instead of serializing on the pool.  A concurrent acquire of
    // the same device sees the in_use placeholder and throws, exactly like
    // a double acquire of a materialized client.
    if (const auto s = saved_state_.find(device); s != saved_state_.end()) {
      saved = std::move(s->second);
      has_saved = true;
      saved_state_.erase(s);
    }
    Resident placeholder;
    placeholder.in_use = true;
    resident_.emplace(device, std::move(placeholder));
    ++materializations_;
    peak_resident_ = std::max(peak_resident_, resident_.size());
  }

  std::unique_ptr<fl::FlClient> client;
  try {
    client = factory_(device);
    if (!client) {
      throw std::runtime_error("Population: factory returned null client");
    }
    if (has_saved) client->restore_mutable_state(saved);
  } catch (...) {
    std::lock_guard lock(mu_);
    if (has_saved) saved_state_[device] = std::move(saved);
    resident_.erase(device);
    --materializations_;
    throw;
  }

  std::lock_guard lock(mu_);
  Resident& r = resident_.find(device)->second;
  r.client = std::move(client);
  return *r.client;
}

void Population::release(std::uint64_t device) {
  std::lock_guard lock(mu_);
  // Auto-sequence: strictly increasing per release, so eviction order is
  // exactly the legacy FIFO release order for single-threaded callers.
  release_locked(device, release_seq_);
  while (warm_.size() > spec_.max_resident) evict_lowest_locked();
}

void Population::release(std::uint64_t device, std::uint64_t seq) {
  if (seq >= kDeferredSeqBase) {
    throw std::invalid_argument("Population::release: seq out of range");
  }
  std::lock_guard lock(mu_);
  release_locked(device, kDeferredSeqBase + seq);
}

void Population::release_locked(std::uint64_t device, std::uint64_t seq) {
  auto it = resident_.find(device);
  if (it == resident_.end() || !it->second.in_use ||
      it->second.client == nullptr) {
    throw std::logic_error("Population::release: device not acquired");
  }
  if (!warm_.emplace(std::pair{seq, device}, device).second) {
    throw std::logic_error("Population::release: duplicate sequence number");
  }
  it->second.in_use = false;
  it->second.warm_seq = seq;
  release_seq_ = std::max(release_seq_, seq) + 1;
}

void Population::trim_warm() {
  std::lock_guard lock(mu_);
  while (warm_.size() > spec_.max_resident) evict_lowest_locked();
}

void Population::evict_lowest_locked() {
  const auto first = warm_.begin();
  const std::uint64_t device = first->second;
  warm_.erase(first);
  auto it = resident_.find(device);
  std::vector<std::uint64_t> state = it->second.client->mutable_state();
  if (!state.empty()) saved_state_[device] = std::move(state);
  resident_.erase(it);
  ++evictions_;
}

std::size_t Population::resident() const {
  std::lock_guard lock(mu_);
  return resident_.size();
}

std::size_t Population::peak_resident() const {
  std::lock_guard lock(mu_);
  return peak_resident_;
}

std::uint64_t Population::materializations() const {
  std::lock_guard lock(mu_);
  return materializations_;
}

std::uint64_t Population::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

std::vector<std::uint64_t> Population::state_words() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> entries;
  entries.reserve(saved_state_.size() + resident_.size());
  for (const auto& [id, words] : saved_state_) entries.emplace_back(id, words);
  for (const auto& [id, r] : resident_) {
    if (r.in_use) {
      throw std::logic_error(
          "Population::state_words: a client is still acquired");
    }
    entries.emplace_back(id, r.client->mutable_state());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint64_t> words;
  words.push_back(entries.size());
  for (const auto& [id, state] : entries) {
    words.push_back(id);
    words.push_back(state.size());
    words.insert(words.end(), state.begin(), state.end());
  }
  return words;
}

void Population::restore_state_words(std::span<const std::uint64_t> words) {
  std::lock_guard lock(mu_);
  for (const auto& [id, r] : resident_) {
    (void)id;
    if (r.in_use) {
      throw std::logic_error(
          "Population::restore_state_words: a client is still acquired");
    }
  }
  std::size_t pos = 0;
  const auto take = [&]() {
    if (pos >= words.size()) {
      throw std::invalid_argument(
          "Population::restore_state_words: truncated blob");
    }
    return words[pos++];
  };
  const std::uint64_t count = take();
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> restored;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = take();
    const std::uint64_t n = take();
    if (n > words.size() - pos) {
      throw std::invalid_argument(
          "Population::restore_state_words: state exceeds blob");
    }
    restored[id].assign(words.begin() + static_cast<std::ptrdiff_t>(pos),
                        words.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
  }
  if (pos != words.size()) {
    throw std::invalid_argument(
        "Population::restore_state_words: trailing words");
  }
  resident_.clear();
  warm_.clear();
  saved_state_ = std::move(restored);
}

}  // namespace cmfl::sched

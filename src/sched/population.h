// A seeded population of virtual devices with availability churn and lazy
// client materialization.
//
// The paper trains 30–142 always-on clients; a production deployment serves
// six-figure device populations where most devices are offline at any
// moment and a sampled cohort is all the server ever talks to.  Population
// models exactly that regime while staying bit-deterministic:
//
//   * Per-device traits (speed factor, on/off duty cycle, per-round
//     availability, mid-round dropout) are *stateless* functions of
//     (seed, device id, round) — hashing, not stored state — so a 100k
//     population costs no per-device memory until a device is touched.
//   * Clients are materialized on demand through a ClientFactory and
//     released after use.  A bounded LRU pool keeps recently used clients
//     warm; evicted clients persist only their mutable_state() words (a few
//     u64s), so peak resident client state is proportional to the per-round
//     cohort, not the population.
//   * Everything observable is reproducible from PopulationSpec::seed; the
//     sparse device-state map plus the caller's RNG is all a checkpoint
//     needs (state_words()/restore_state_words()).
//
// The factory must be deterministic: client(id) must construct an identical
// client (same shard, same initial weights, same RNG seed) every time it is
// called — Population restores the saved mutable state on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "fl/client.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace cmfl::sched {

using ClientFactory =
    std::function<std::unique_ptr<fl::FlClient>(std::uint64_t device_id)>;

struct PopulationSpec {
  /// Virtual device count (may be far larger than ever materialized).
  std::uint64_t devices = 0;

  // --- Availability churn ---
  /// Expected fraction of rounds a device is available.  1.0 = always on.
  double mean_on_fraction = 1.0;
  /// > 0: each device follows a deterministic on/off duty cycle of roughly
  /// this many rounds per period (device-specific period and phase), being
  /// on for mean_on_fraction of it.  0: availability is an independent
  /// per-(device, round) draw with probability mean_on_fraction.
  double duty_period_rounds = 0.0;
  /// Probability that a selected device drops mid-round: it trains (the
  /// energy is spent) but never reports.
  double dropout_mid_round = 0.0;

  // --- Virtual latency model (drives deadlines and async arrival order) ---
  /// Median round latency (download + train + upload) of a unit-speed
  /// device, in virtual seconds.
  double latency_base_s = 1.0;
  /// Log-normal spread of the static per-device speed factor.
  double latency_log_sigma = 0.5;
  /// Log-normal per-invitation jitter on top of the device speed.
  double latency_jitter = 0.2;

  /// Released clients kept warm before eviction (0 = evict on release;
  /// peak resident then equals the largest simultaneously-acquired cohort).
  std::size_t max_resident = 0;

  std::uint64_t seed = 2024;

  void validate() const;
};

class Population {
 public:
  /// Throws std::invalid_argument on an empty population, a null factory,
  /// or out-of-range spec knobs.
  Population(const PopulationSpec& spec, ClientFactory factory);

  std::uint64_t size() const noexcept { return spec_.devices; }
  const PopulationSpec& spec() const noexcept { return spec_; }

  // --- Stateless, seeded device traits ---
  bool available(std::uint64_t device, std::uint64_t round) const;
  bool drops_mid_round(std::uint64_t device, std::uint64_t round) const;
  /// Static per-device speed multiplier (log-normal around 1).
  double speed_factor(std::uint64_t device) const;
  /// Virtual seconds between inviting `device` and its report arriving;
  /// `invite_seq` individualizes the jitter per invitation.
  double draw_latency(std::uint64_t device, std::uint64_t invite_seq) const;

  // --- Cohort sampling ---
  /// Samples up to `count` distinct device ids for `round` (sorted
  /// ascending), drawing from `rng`.  kUniform draws over all devices —
  /// including currently unavailable ones; kAvailabilityAware only over
  /// devices with available(id, round).  Devices for which `excluded`
  /// returns true (already in flight, quarantined) are never picked.
  std::vector<std::uint64_t> sample(
      std::uint64_t round, std::size_t count, Selection selection,
      util::Rng& rng,
      const std::function<bool(std::uint64_t)>& excluded = nullptr) const;

  // --- Lazy client materialization ---
  /// Materializes (or revives) the device's client and marks it in use.
  /// Throws std::logic_error if the device is already acquired.
  fl::FlClient& acquire(std::uint64_t device);
  /// Returns an acquired client to the warm pool; beyond
  /// spec().max_resident the least-recently-used warm client is destroyed,
  /// keeping only its mutable_state() words.
  void release(std::uint64_t device);

  std::size_t resident() const noexcept { return resident_.size(); }
  std::size_t peak_resident() const noexcept { return peak_resident_; }
  std::uint64_t materializations() const noexcept { return materializations_; }

  // --- Checkpointing ---
  /// Flattens the sparse device-state map (saved states of evicted devices
  /// plus the live states of resident ones) into opaque u64 words, sorted
  /// by device id.  Throws std::logic_error while any client is acquired.
  std::vector<std::uint64_t> state_words() const;
  /// Restores a map captured by state_words(), dropping all resident
  /// clients first.  Throws std::invalid_argument on a malformed blob and
  /// std::logic_error while any client is acquired.
  void restore_state_words(std::span<const std::uint64_t> words);

 private:
  struct Resident {
    std::unique_ptr<fl::FlClient> client;
    bool in_use = false;
    /// Position in lru_ when !in_use.
    std::list<std::uint64_t>::iterator lru_pos;
  };

  /// Uniform double in [0, 1), pure in (seed, device, salt).
  double unit_hash(std::uint64_t device, std::uint64_t salt) const;
  void evict_one();

  PopulationSpec spec_;
  ClientFactory factory_;
  std::unordered_map<std::uint64_t, Resident> resident_;
  /// Warm (released) residents, least recently used first.
  std::list<std::uint64_t> lru_;
  /// mutable_state() words of devices whose client was evicted.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> saved_state_;
  std::size_t peak_resident_ = 0;
  std::uint64_t materializations_ = 0;
};

}  // namespace cmfl::sched

// A seeded population of virtual devices with availability churn and lazy
// client materialization.
//
// The paper trains 30–142 always-on clients; a production deployment serves
// six-figure device populations where most devices are offline at any
// moment and a sampled cohort is all the server ever talks to.  Population
// models exactly that regime while staying bit-deterministic:
//
//   * Per-device traits (speed factor, on/off duty cycle, per-round
//     availability, mid-round dropout) are *stateless* functions of
//     (seed, device id, round) — hashing, not stored state — so a 100k
//     population costs no per-device memory until a device is touched.
//   * Clients are materialized on demand through a ClientFactory and
//     released after use.  A bounded LRU pool keeps recently used clients
//     warm; evicted clients persist only their mutable_state() words (a few
//     u64s), so peak resident client state is proportional to the per-round
//     cohort, not the population.
//   * Everything observable is reproducible from PopulationSpec::seed; the
//     sparse device-state map plus the caller's RNG is all a checkpoint
//     needs (state_words()/restore_state_words()).
//
// The factory must be deterministic: client(id) must construct an identical
// client (same shard, same initial weights, same RNG seed) every time it is
// called — Population restores the saved mutable state on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "fl/client.h"
#include "sched/schedule.h"
#include "util/rng.h"

namespace cmfl::sched {

using ClientFactory =
    std::function<std::unique_ptr<fl::FlClient>(std::uint64_t device_id)>;

struct PopulationSpec {
  /// Virtual device count (may be far larger than ever materialized).
  std::uint64_t devices = 0;

  // --- Availability churn ---
  /// Expected fraction of rounds a device is available.  1.0 = always on.
  double mean_on_fraction = 1.0;
  /// > 0: each device follows a deterministic on/off duty cycle of roughly
  /// this many rounds per period (device-specific period and phase), being
  /// on for mean_on_fraction of it.  0: availability is an independent
  /// per-(device, round) draw with probability mean_on_fraction.
  double duty_period_rounds = 0.0;
  /// Probability that a selected device drops mid-round: it trains (the
  /// energy is spent) but never reports.
  double dropout_mid_round = 0.0;

  // --- Virtual latency model (drives deadlines and async arrival order) ---
  /// Median round latency (download + train + upload) of a unit-speed
  /// device, in virtual seconds.
  double latency_base_s = 1.0;
  /// Log-normal spread of the static per-device speed factor.
  double latency_log_sigma = 0.5;
  /// Log-normal per-invitation jitter on top of the device speed.
  double latency_jitter = 0.2;

  /// Released clients kept warm before eviction (0 = evict on release;
  /// peak resident then equals the largest simultaneously-acquired cohort).
  std::size_t max_resident = 0;

  std::uint64_t seed = 2024;

  void validate() const;
};

class Population {
 public:
  /// Throws std::invalid_argument on an empty population, a null factory,
  /// or out-of-range spec knobs.
  Population(const PopulationSpec& spec, ClientFactory factory);

  std::uint64_t size() const noexcept { return spec_.devices; }
  const PopulationSpec& spec() const noexcept { return spec_; }

  // --- Stateless, seeded device traits ---
  bool available(std::uint64_t device, std::uint64_t round) const;
  bool drops_mid_round(std::uint64_t device, std::uint64_t round) const;
  /// Static per-device speed multiplier (log-normal around 1).
  double speed_factor(std::uint64_t device) const;
  /// Virtual seconds between inviting `device` and its report arriving;
  /// `invite_seq` individualizes the jitter per invitation.
  double draw_latency(std::uint64_t device, std::uint64_t invite_seq) const;

  // --- Cohort sampling ---
  /// Samples up to `count` distinct device ids for `round` (sorted
  /// ascending), drawing from `rng`.  kUniform draws over all devices —
  /// including currently unavailable ones; kAvailabilityAware only over
  /// devices with available(id, round).  Devices for which `excluded`
  /// returns true (already in flight, quarantined) are never picked.
  std::vector<std::uint64_t> sample(
      std::uint64_t round, std::size_t count, Selection selection,
      util::Rng& rng,
      const std::function<bool(std::uint64_t)>& excluded = nullptr) const;

  // --- Lazy client materialization ---
  //
  // Thread safety: acquire / release / trim_warm may be called from
  // concurrent worker threads (the work-stealing training pool).  The
  // factory runs *outside* the pool lock — a placeholder reserves the slot
  // first — so materialization of different devices overlaps while the
  // bookkeeping stays serialized.  Determinism: eviction order is governed
  // by caller-supplied logical sequence numbers, not wall-clock release
  // order, so which clients stay warm is a pure function of the schedule
  // regardless of thread interleaving (DESIGN.md §17).

  /// Materializes (or revives) the device's client and marks it in use.
  /// Throws std::logic_error if the device is already acquired.
  fl::FlClient& acquire(std::uint64_t device);
  /// Returns an acquired client to the warm pool; beyond
  /// spec().max_resident the warm client with the lowest sequence number is
  /// destroyed immediately, keeping only its mutable_state() words.  (The
  /// internal auto-sequence increases per release, so single-threaded
  /// callers get exactly the legacy FIFO/LRU behavior.)
  void release(std::uint64_t device);
  /// Deferred form for concurrent phases: parks the client in the warm pool
  /// under the caller's logical sequence number (the invitation counter —
  /// globally increasing, unique per acquisition) WITHOUT evicting anything.
  /// Eviction happens at the next trim_warm() barrier, in ascending
  /// (seq, device) order — the exact set and order the serial path would
  /// have evicted — so mid-phase warm hits and the post-phase pool are
  /// interleaving-free.  Caller seqs live in their own ordering domain
  /// *above* every auto-sequenced release(device) (seq must be < 2^48), so
  /// setup-time probe releases always evict before cohort releases.
  void release(std::uint64_t device, std::uint64_t seq);
  /// Phase barrier: evicts lowest-seq warm clients until at most
  /// spec().max_resident remain.  Call after every concurrent train phase
  /// (no acquisitions may be in flight concurrently with the trim).
  void trim_warm();

  std::size_t resident() const;
  std::size_t peak_resident() const;
  std::uint64_t materializations() const;
  /// Warm clients destroyed (state spilled to the sparse map) so far — the
  /// measured half of the memory-∝-cohort claim.
  std::uint64_t evictions() const;

  // --- Checkpointing ---
  /// Flattens the sparse device-state map (saved states of evicted devices
  /// plus the live states of resident ones) into opaque u64 words, sorted
  /// by device id.  Throws std::logic_error while any client is acquired.
  std::vector<std::uint64_t> state_words() const;
  /// Restores a map captured by state_words(), dropping all resident
  /// clients first.  Throws std::invalid_argument on a malformed blob and
  /// std::logic_error while any client is acquired.
  void restore_state_words(std::span<const std::uint64_t> words);

 private:
  struct Resident {
    std::unique_ptr<fl::FlClient> client;  // null while materializing
    bool in_use = false;
    /// Key in warm_ when !in_use.
    std::uint64_t warm_seq = 0;
  };

  /// Uniform double in [0, 1), pure in (seed, device, salt).
  double unit_hash(std::uint64_t device, std::uint64_t salt) const;
  void release_locked(std::uint64_t device, std::uint64_t seq);
  void evict_lowest_locked();

  PopulationSpec spec_;
  ClientFactory factory_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Resident> resident_;
  /// Warm (released) residents keyed by (logical release sequence, device);
  /// eviction consumes ascending keys, so the order is
  /// interleaving-independent, and the device component keeps keys unique
  /// even when auto and caller sequence domains are mixed across runs (a
  /// device is warm at most once).
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> warm_;
  /// Auto-sequence for the legacy release(device) overload; also advanced
  /// past caller seqs so the two overloads can be mixed.
  std::uint64_t release_seq_ = 0;
  /// mutable_state() words of devices whose client was evicted.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> saved_state_;
  std::size_t peak_resident_ = 0;
  std::uint64_t materializations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cmfl::sched

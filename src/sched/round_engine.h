// The device-population round runtime: Algorithm 1 re-hosted on a
// sched::Population, with production-scale round semantics.
//
// RoundEngine sits between the workloads and the trainer layer: where
// fl::FederatedSimulation drives a fixed vector of always-on clients, the
// engine drives a (possibly 100k+) population of churning virtual devices
// through one of three round modes (sched::RoundMode):
//
//   * kSync        — classic synchronous rounds over a sampled cohort.
//   * kOverSelect  — invite more than needed, commit on the first K
//                    reporters (virtual-latency order, optional deadline),
//                    discard stragglers — the round shape production FL
//                    systems use to bound tail latency.
//   * kBufferedAsync — FedBuff-style: devices report whenever they finish;
//                    the server aggregates once `async_buffer` uploads are
//                    buffered, weighting each by (1+staleness)^-γ.
//
// CMFL under staleness: each device computes its relevance score against
// the (x, ū) pair it was actually sent — in async mode that is the ū of the
// model version it trained on, not the version current at arrival — and
// every aggregated round records the staleness distribution
// (IterationRecord::staleness_mean/max), so benches can show where
// relevance-based filtering degrades or holds as rounds desynchronize.
//
// Time is virtual (Population's seeded latency model), so every mode is
// bit-deterministic for a fixed seed; local training runs on a
// work-stealing pool when SimulationOptions::parallel is set (clients are
// materialized inside the jobs and parked back under their invitation
// sequence, so the warm pool evolves identically to the serial walk —
// DESIGN.md §17), and upload screening plus aggregation fan out across
// SimulationOptions::sharding aggregator shards when enabled, bit-identical
// to the single-master path.  Runs checkpoint and resume bit-identically
// through fl::TrainerCheckpoint (v4 adds the per-shard ingest counters),
// including the in-flight report queue of a buffered-async run.  See
// DESIGN.md §11 and §17.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "codec/codec.h"
#include "core/filter.h"
#include "fl/simulation.h"
#include "sched/population.h"
#include "sched/schedule.h"

namespace cmfl::sched {

/// Scheduling outcomes beyond what SimulationResult already records.
struct ScheduleReport {
  std::uint64_t invited = 0;   // invitations issued (incl. wasted ones)
  std::uint64_t reported = 0;  // reports that reached the server in time
  std::uint64_t unavailable_invited = 0;  // invited while offline (kUniform)
  std::uint64_t mid_round_dropouts = 0;   // trained but never reported
  std::uint64_t discarded_stragglers = 0; // reported after commit/deadline
  std::uint64_t stale_discarded = 0;      // async: beyond max_staleness
  // Lazy-materialization accounting (process lifetime, not checkpointed).
  std::uint64_t materializations = 0;
  std::size_t peak_resident_clients = 0;
  /// Warm-pool evictions — the measured half of memory ∝ cohort (process
  /// lifetime, not checkpointed).
  std::uint64_t evictions = 0;
  /// Work-stealing pool steal events — timing-dependent, reported for
  /// observability, never checkpointed (DESIGN.md §17).
  std::uint64_t steals = 0;
};

struct EngineResult {
  fl::SimulationResult sim;
  ScheduleReport sched;
};

class RoundEngine {
 public:
  /// `population` must outlive the engine and have no acquired clients.
  /// The filter decides uploads exactly as in FederatedSimulation; the
  /// evaluator runs the server-side test pass.  Updates cross the virtual
  /// wire through the configured codec (options.codec): per-device codec
  /// objects are materialized lazily on a device's first upload, every
  /// encode/decode runs on the engine thread (bytes and codec streams are
  /// therefore independent of the thread count), and the sparse per-device
  /// codec state is checkpointed so resume stays bit-identical in all
  /// three round modes.
  ///
  /// Honoured SimulationOptions fields: local_epochs, batch_size,
  /// learning_rate, max_iterations (rounds in sync/over-select mode,
  /// aggregations in async mode), target_accuracy, eval_every, min_uploads
  /// (sync/over-select), estimator_ema, parallel, codec, aggregation /
  /// robust_aggregation / validation, seed, checkpoint_every /
  /// checkpoint_path, and `schedule` — everything else is either
  /// per-client (participation: superseded by schedule.sample_size) or
  /// unsupported here (capture_client_params).
  RoundEngine(Population& population,
              std::unique_ptr<core::UpdateFilter> filter,
              fl::GlobalEvaluator evaluator,
              const fl::SimulationOptions& options);

  /// Initializes the global model from device 0's freshly materialized
  /// parameters (all devices then synchronize on their first broadcast).
  EngineResult run();

  /// Continues a checkpointed engine run (same population spec, factory
  /// and options).  Bit-identical to the uninterrupted run, including a
  /// buffered-async run's in-flight reports.  Throws std::invalid_argument
  /// when the checkpoint does not fit (dimension/population mismatch or a
  /// non-engine checkpoint).
  EngineResult resume(const fl::TrainerCheckpoint& checkpoint);

  std::size_t param_count() const noexcept { return dim_; }

 private:
  struct Ctx;      // per-run mutable state (round_engine.cpp)
  struct Trained;  // one device's training outcome (round_engine.cpp)

  EngineResult run_internal(const fl::TrainerCheckpoint* resume_from);
  void run_sync_rounds(Ctx& ctx);
  void run_buffered_async(Ctx& ctx);
  /// Materializes, trains and releases `devices` (already invited;
  /// `seqs[i]` is device i's invitation sequence number, `round` indexes
  /// the availability/dropout streams, `filter_iteration` the threshold
  /// schedule).  Parallel across devices when options_.parallel.
  std::vector<Trained> train_cohort(Ctx& ctx,
                                    const std::vector<std::uint64_t>& devices,
                                    const std::vector<std::uint64_t>& seqs,
                                    std::uint64_t round,
                                    std::size_t filter_iteration, float lr);
  /// Screens `views` (uploaded by `devices`), aggregates the accepted ones
  /// and applies the result to the global model.  `raw_weights` are
  /// pre-normalization per-upload weights, consulted when the rule is
  /// kSampleWeighted or (`staleness_weighted` and kUniformMean); robust
  /// rules ignore them by construction.
  void commit_uploads(Ctx& ctx, const std::vector<std::size_t>& devices,
                      const std::vector<std::span<const float>>& views,
                      const std::vector<double>& raw_weights,
                      bool staleness_weighted, fl::IterationRecord& rec);
  fl::TrainerCheckpoint snapshot(Ctx& ctx, std::uint64_t iteration);
  /// Lazily materializes device `device`'s codec (seeded
  /// codec.seed_salt + device).
  codec::UpdateCodec& codec_for(Ctx& ctx, std::uint64_t device);
  /// Encodes one upload through the device's codec, replaces `update` with
  /// the decoded reconstruction, and returns the encoded wire size.  Dense
  /// fast path: leaves the update untouched and prices it at
  /// upload_wire_bytes_.
  std::uint64_t encode_upload(Ctx& ctx, std::uint64_t device,
                              std::vector<float>& update);

  Population& population_;
  std::unique_ptr<core::UpdateFilter> filter_;
  fl::GlobalEvaluator evaluator_;
  fl::SimulationOptions options_;
  std::size_t dim_ = 0;
  bool use_codec_ = false;  // false: dense fast path, no codec objects
  std::uint64_t upload_wire_bytes_ = 0;  // exact bytes of one dense upload
};

}  // namespace cmfl::sched

#include "sched/round_engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "codec/codec.h"
#include "core/estimator.h"
#include "fl/checkpoint.h"
#include "fl/shard.h"
#include "sched/work_pool.h"
#include "tensor/kernels.h"
#include "tensor/vector_ops.h"

namespace cmfl::sched {

namespace {

// fl::SchedInFlightReport::kind values.
constexpr std::uint8_t kKindElimination = 0;
constexpr std::uint8_t kKindUpload = 1;
constexpr std::uint8_t kKindDropout = 2;

/// Min-heap order on (arrival, device): earliest report pops first, device
/// id breaking virtual-time ties deterministically.
bool heap_later(const fl::SchedInFlightReport& a,
                const fl::SchedInFlightReport& b) {
  if (a.arrival != b.arrival) return a.arrival > b.arrival;
  return a.device > b.device;
}

}  // namespace

/// One invited device's training outcome, before the round decides what to
/// do with it (commit, discard as straggler, lose to a mid-round dropout).
struct RoundEngine::Trained {
  std::uint64_t device = 0;
  double latency = 0.0;  // virtual seconds from invitation to report
  bool dropped = false;  // trained but never reports
  core::FilterDecision decision;
  double train_loss = 0.0;
  std::uint64_t local_samples = 0;
  std::vector<float> update;
};

struct RoundEngine::Ctx {
  core::GlobalUpdateEstimator estimator;
  fl::UpdateValidator validator;
  util::Rng engine_rng;
  std::unique_ptr<WorkStealingPool> pool;
  // Sharded ingest + aggregation pipeline (options.sharding); null keeps
  // the legacy single-master path.
  std::unique_ptr<fl::ShardedAggregator> shards;

  std::vector<float> global;
  std::vector<float> prev_global_update;
  fl::SimulationResult sim;
  ScheduleReport sched;
  std::size_t cumulative_rounds = 0;
  std::uint64_t invite_counter = 0;

  // Buffered-async state (version doubles as the aggregation count).
  std::uint64_t version = 0;
  double virtual_now = 0.0;
  std::vector<fl::SchedInFlightReport> heap;  // std::*_heap via heap_later
  std::unordered_set<std::uint64_t> in_flight;

  // Sync-mode resume point; async resumes from `version` instead.
  std::uint64_t start_round = 1;

  // Per-device codecs, materialized on a device's first upload (an ordered
  // map so snapshots serialize the sparse state sorted by device id).
  // Every encode/decode runs on the engine thread — never inside the
  // parallel train_cohort — so byte counts and codec streams are
  // independent of the thread count.
  std::map<std::uint64_t, std::unique_ptr<codec::UpdateCodec>> codecs;

  // Shared read-only by every client's relevance check within a broadcast.
  tensor::SignPack estimate_pack;

  Ctx(std::size_t dim, std::uint64_t devices,
      const fl::SimulationOptions& options)
      : estimator(dim, options.estimator_ema),
        validator(static_cast<std::size_t>(devices), options.validation),
        engine_rng(options.seed) {}
};

RoundEngine::RoundEngine(Population& population,
                         std::unique_ptr<core::UpdateFilter> filter,
                         fl::GlobalEvaluator evaluator,
                         const fl::SimulationOptions& options)
    : population_(population),
      filter_(std::move(filter)),
      evaluator_(std::move(evaluator)),
      options_(options) {
  if (!filter_) {
    throw std::invalid_argument("RoundEngine: null filter");
  }
  if (!evaluator_) {
    throw std::invalid_argument("RoundEngine: null evaluator");
  }
  if (options_.max_iterations == 0) {
    throw std::invalid_argument("RoundEngine: max_iterations must be positive");
  }
  options_.schedule.validate();
  if (options_.schedule.sample_size > population_.size()) {
    throw std::invalid_argument(
        "RoundEngine: schedule.sample_size exceeds the population");
  }
  // Validate the codec spec eagerly (typos must not fail mid-run); codec
  // objects themselves are materialized per device on first upload.
  codec::make_update_codec(options_.codec.spec, options_.codec.seed_salt);
  use_codec_ = !codec::is_dense_spec(options_.codec.spec);
  if (options_.capture_client_params) {
    throw std::invalid_argument(
        "RoundEngine: capture_client_params needs the in-process "
        "FederatedSimulation");
  }

  fl::FlClient& probe = population_.acquire(0);
  dim_ = probe.param_count();
  population_.release(0);
  // Exact wire footprint of one dense upload — the dense codec's size
  // depends only on the dimension, so one probe encode prices every upload
  // on the dense fast path.
  codec::DenseCodec dense;
  upload_wire_bytes_ = dense.encode(std::vector<float>(dim_)).wire_bytes();
}

codec::UpdateCodec& RoundEngine::codec_for(Ctx& ctx, std::uint64_t device) {
  auto& slot = ctx.codecs[device];
  if (!slot) {
    slot = codec::make_update_codec(options_.codec.spec,
                                    options_.codec.seed_salt + device);
  }
  return *slot;
}

std::uint64_t RoundEngine::encode_upload(Ctx& ctx, std::uint64_t device,
                                         std::vector<float>& update) {
  if (!use_codec_) return upload_wire_bytes_;
  codec::UpdateCodec& codec = codec_for(ctx, device);
  const codec::EncodedUpdate enc = codec.encode(update);
  // The server aggregates the reconstruction — exactly what a real wire
  // transfer would deliver.
  update = codec.decode(enc.payload);
  return enc.wire_bytes();
}

EngineResult RoundEngine::run() { return run_internal(nullptr); }

EngineResult RoundEngine::resume(const fl::TrainerCheckpoint& checkpoint) {
  return run_internal(&checkpoint);
}

EngineResult RoundEngine::run_internal(
    const fl::TrainerCheckpoint* resume_from) {
  Ctx ctx(dim_, population_.size(), options_);
  const auto devices = static_cast<std::size_t>(population_.size());
  ctx.sim.eliminations_per_client.assign(devices, 0);
  ctx.sim.uploads_per_client.assign(devices, 0);
  ctx.sim.history.reserve(options_.max_iterations);
  if (options_.parallel) {
    ctx.pool = std::make_unique<WorkStealingPool>();
  }
  if (options_.sharding.enabled()) {
    ctx.shards = std::make_unique<fl::ShardedAggregator>(dim_,
                                                         options_.sharding);
  }

  ctx.global.resize(dim_);
  {
    fl::FlClient& c0 = population_.acquire(0);
    c0.get_params(ctx.global);
    population_.release(0);
  }

  if (resume_from != nullptr) {
    const fl::TrainerCheckpoint& ck = *resume_from;
    if (ck.sched.engaged == 0) {
      throw std::invalid_argument(
          "RoundEngine: checkpoint was not written by a scheduler run");
    }
    if (ck.global_params.size() != dim_) {
      throw std::invalid_argument(
          "RoundEngine: checkpoint parameter dimension mismatch");
    }
    if (ck.eliminations_per_client.size() != devices ||
        ck.uploads_per_client.size() != devices) {
      throw std::invalid_argument(
          "RoundEngine: checkpoint population size mismatch");
    }
    ctx.global = ck.global_params;
    ctx.estimator.restore(ck.estimator_estimate, ck.estimator_observed);
    ctx.validator.restore(ck.validation);
    ctx.prev_global_update = ck.prev_global_update;
    ctx.cumulative_rounds = static_cast<std::size_t>(ck.cumulative_rounds);
    ctx.sim.uploaded_bytes = ck.uploaded_bytes;
    ctx.sim.history = ck.history;
    for (std::size_t k = 0; k < devices; ++k) {
      ctx.sim.eliminations_per_client[k] =
          static_cast<std::size_t>(ck.eliminations_per_client[k]);
      ctx.sim.uploads_per_client[k] =
          static_cast<std::size_t>(ck.uploads_per_client[k]);
    }
    util::restore_rng_state(ctx.engine_rng, ck.sched.engine_rng);
    ctx.invite_counter = ck.sched.invite_counter;
    ctx.version = ck.sched.version;
    ctx.virtual_now = ck.sched.virtual_now;
    ctx.heap = ck.sched.in_flight;  // snapshotted verbatim: still a heap
    for (const auto& f : ctx.heap) ctx.in_flight.insert(f.device);
    population_.restore_state_words(ck.sched.population_state);
    ctx.sched.invited = ck.sched.invited;
    ctx.sched.reported = ck.sched.reported;
    ctx.sched.unavailable_invited = ck.sched.unavailable_invited;
    ctx.sched.mid_round_dropouts = ck.sched.mid_round_dropouts;
    ctx.sched.discarded_stragglers = ck.sched.discarded_stragglers;
    ctx.sched.stale_discarded = ck.sched.stale_discarded;
    if (ck.sched.codec_devices.size() != ck.sched.codec_state.size()) {
      throw std::invalid_argument(
          "RoundEngine: checkpoint codec device/state count mismatch");
    }
    for (std::size_t i = 0; i < ck.sched.codec_devices.size(); ++i) {
      codec_for(ctx, ck.sched.codec_devices[i])
          .restore_mutable_state(ck.sched.codec_state[i]);
    }
    if (!ck.sched.shard_stats.empty()) {
      if (!ctx.shards) {
        throw std::invalid_argument(
            "RoundEngine: checkpoint has shard stats but sharding is "
            "disabled");
      }
      // Validates the count against options_.sharding.shards, so a resume
      // under a different shard count fails loudly instead of mis-merging.
      ctx.shards->restore_stats_words(ck.sched.shard_stats);
    }
    ctx.start_round = ck.iteration + 1;
  }

  if (options_.schedule.mode == RoundMode::kBufferedAsync) {
    run_buffered_async(ctx);
  } else {
    run_sync_rounds(ctx);
  }

  ctx.sim.total_rounds = ctx.cumulative_rounds;
  ctx.sim.final_params = std::move(ctx.global);
  ctx.sim.validation = ctx.validator.report();
  for (auto it = ctx.sim.history.rbegin(); it != ctx.sim.history.rend();
       ++it) {
    if (!std::isnan(it->accuracy)) {
      ctx.sim.final_accuracy = it->accuracy;
      break;
    }
  }
  ctx.sched.materializations = population_.materializations();
  ctx.sched.peak_resident_clients = population_.peak_resident();
  ctx.sched.evictions = population_.evictions();
  ctx.sched.steals = ctx.pool ? ctx.pool->steals() : 0;
  return {std::move(ctx.sim), ctx.sched};
}

std::vector<RoundEngine::Trained> RoundEngine::train_cohort(
    Ctx& ctx, const std::vector<std::uint64_t>& devices,
    const std::vector<std::uint64_t>& seqs, std::uint64_t round,
    std::size_t filter_iteration, float lr) {
  std::vector<Trained> out(devices.size());
  if (devices.empty()) return out;

  core::FilterContext fctx;
  fctx.global_model = ctx.global;
  fctx.estimated_global_update = ctx.estimator.estimate();
  ctx.estimate_pack.assign(fctx.estimated_global_update);
  fctx.estimated_global_update_pack = &ctx.estimate_pack;
  fctx.iteration = filter_iteration;

  // Each job materializes its own client (Population runs the factory
  // outside its lock, so materializations overlap), trains, and parks the
  // client back in the warm pool under the device's invitation sequence.
  // Releases defer eviction to the trim barrier below, which evicts in
  // ascending (seq, device) order — invitation sequences increase in
  // device order within a round, so the warm pool after the phase is the
  // one the serial walk would have left, regardless of which thread ran
  // what.  Peak resident client state is therefore bounded by the cohort
  // size plus the warm pool, never the population.
  const auto train_one = [&](std::size_t i) {
    Trained& r = out[i];
    r.device = devices[i];
    r.latency = population_.draw_latency(r.device, seqs[i]);
    r.dropped = population_.drops_mid_round(r.device, round);
    fl::FlClient& c = population_.acquire(devices[i]);
    c.set_params(ctx.global);
    r.train_loss =
        c.train_local(options_.local_epochs, options_.batch_size, lr);
    r.local_samples = c.local_samples();
    r.update.resize(dim_);
    c.get_params(r.update);
    // u = trained local params − broadcast global params.
    for (std::size_t j = 0; j < dim_; ++j) r.update[j] -= ctx.global[j];
    r.decision = filter_->decide(r.update, fctx);
    population_.release(devices[i], seqs[i]);
  };
  if (ctx.pool && devices.size() > 1) {
    ctx.pool->run(devices.size(), train_one);
  } else {
    for (std::size_t i = 0; i < devices.size(); ++i) train_one(i);
  }
  population_.trim_warm();
  return out;
}

void RoundEngine::commit_uploads(Ctx& ctx,
                                 const std::vector<std::size_t>& devices,
                                 const std::vector<std::span<const float>>&
                                     views,
                                 const std::vector<double>& raw_weights,
                                 bool staleness_weighted,
                                 fl::IterationRecord& rec) {
  // Sharded path: the per-upload structural scalars (finiteness, exact L2
  // norm) are computed concurrently on the shard workers and collected in
  // index order, so screening sees exactly what the serial scan produces.
  std::vector<fl::UpdateValidator::UploadScalars> pre;
  if (ctx.shards) {
    ctx.shards->begin_batch(views.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      ctx.shards->submit_update(
          i, views[i], nullptr,
          static_cast<std::uint64_t>(views[i].size() * sizeof(float)));
    }
    std::vector<fl::ShardedAggregator::UploadResult> results =
        ctx.shards->collect(views.size());
    pre.reserve(results.size());
    for (fl::ShardedAggregator::UploadResult& r : results) {
      if (r.error) std::rethrow_exception(r.error);
      pre.push_back(r.scalars);
    }
  }
  const std::vector<fl::Verdict> verdicts =
      ctx.shards ? ctx.validator.screen_round(devices, pre)
                 : ctx.validator.screen_round(devices, views);
  std::vector<std::size_t> accepted;
  accepted.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (verdicts[i] == fl::Verdict::kAccept) {
      accepted.push_back(i);
    } else {
      ++rec.rejected;
    }
  }
  if (accepted.empty()) return;

  fl::Aggregation rule = options_.aggregation;
  const bool weighted =
      rule == fl::Aggregation::kSampleWeighted ||
      (staleness_weighted && rule == fl::Aggregation::kUniformMean);
  std::vector<float> weights;
  if (weighted) {
    if (raw_weights.size() != views.size()) {
      throw std::logic_error("RoundEngine: missing per-upload weights");
    }
    rule = fl::Aggregation::kSampleWeighted;
    double total = 0.0;
    for (std::size_t i : accepted) total += raw_weights[i];
    weights.reserve(accepted.size());
    for (std::size_t i : accepted) {
      weights.push_back(static_cast<float>(raw_weights[i] / total));
    }
  }
  std::vector<std::span<const float>> accepted_views;
  accepted_views.reserve(accepted.size());
  for (std::size_t i : accepted) accepted_views.push_back(views[i]);

  std::vector<float> global_update(dim_);
  if (ctx.shards) {
    // The clipped rule's cross-upload plan reuses the scalar-pass norms
    // (same serial accumulation — bit-identical to recomputing them).
    std::vector<double> norms;
    if (rule == fl::Aggregation::kNormClippedMean) {
      norms.reserve(accepted.size());
      for (std::size_t i : accepted) norms.push_back(pre[i].norm);
    }
    ctx.shards->aggregate(rule, accepted_views, weights,
                          options_.robust_aggregation, norms, global_update);
  } else {
    fl::aggregate_updates(rule, accepted_views, weights,
                          options_.robust_aggregation, global_update);
  }
  tensor::add(ctx.global, global_update, ctx.global);
  if (!ctx.prev_global_update.empty()) {
    rec.delta_update = core::normalized_update_difference(
        ctx.prev_global_update, global_update);
  }
  ctx.estimator.observe(global_update);
  ctx.prev_global_update = std::move(global_update);
}

fl::TrainerCheckpoint RoundEngine::snapshot(Ctx& ctx,
                                            std::uint64_t iteration) {
  fl::TrainerCheckpoint ck;
  ck.iteration = iteration;
  ck.global_params = ctx.global;
  const std::span<const float> est = ctx.estimator.estimate();
  ck.estimator_estimate.assign(est.begin(), est.end());
  ck.estimator_observed = ctx.estimator.has_observation();
  ck.prev_global_update = ctx.prev_global_update;
  ck.cumulative_rounds = ctx.cumulative_rounds;
  ck.uploaded_bytes = ctx.sim.uploaded_bytes;
  ck.history = ctx.sim.history;
  ck.eliminations_per_client.assign(ctx.sim.eliminations_per_client.begin(),
                                    ctx.sim.eliminations_per_client.end());
  ck.uploads_per_client.assign(ctx.sim.uploads_per_client.begin(),
                               ctx.sim.uploads_per_client.end());
  ck.validation = ctx.validator.report();

  fl::SchedulerCheckpoint& s = ck.sched;
  s.engaged = 1;
  s.version = ctx.version;
  s.virtual_now = ctx.virtual_now;
  s.invite_counter = ctx.invite_counter;
  s.engine_rng = util::rng_state_words(ctx.engine_rng);
  s.in_flight = ctx.heap;
  s.population_state = population_.state_words();
  s.invited = ctx.sched.invited;
  s.reported = ctx.sched.reported;
  s.unavailable_invited = ctx.sched.unavailable_invited;
  s.mid_round_dropouts = ctx.sched.mid_round_dropouts;
  s.discarded_stragglers = ctx.sched.discarded_stragglers;
  s.stale_discarded = ctx.sched.stale_discarded;
  for (const auto& [device, codec] : ctx.codecs) {  // map: sorted by device
    s.codec_devices.push_back(device);
    s.codec_state.push_back(codec->mutable_state());
  }
  // Shard counters are deterministic (index-mod-S routing), so a resumed
  // run reports the same ingest totals as an uninterrupted one.
  if (ctx.shards) s.shard_stats = ctx.shards->stats_words();
  return ck;
}

void RoundEngine::run_sync_rounds(Ctx& ctx) {
  const ScheduleOptions& sch = options_.schedule;
  const bool over_select = sch.mode == RoundMode::kOverSelect;
  const auto quarantined = [&](std::uint64_t id) {
    return ctx.validator.quarantined(static_cast<std::size_t>(id));
  };

  for (std::uint64_t t = ctx.start_round; t <= options_.max_iterations; ++t) {
    const auto lr = static_cast<float>(options_.learning_rate.at(t));

    // --- Invitations: draw this round's cohort from the population ---
    std::vector<std::uint64_t> invited;
    if (sch.sample_size == 0) {
      // Full participation (kSync): enumerate, skipping the quarantined.
      invited.reserve(static_cast<std::size_t>(population_.size()));
      for (std::uint64_t id = 0; id < population_.size(); ++id) {
        if (!quarantined(id)) invited.push_back(id);
      }
    } else {
      invited = population_.sample(t, sch.sample_size, sch.selection,
                                   ctx.engine_rng, quarantined);
    }

    // kUniform selection may waste invitations on offline devices; the
    // availability-aware policy never does (nor does it waste the seq —
    // but the counter advances either way so both policies stay seeded
    // identically per invitation).
    std::vector<std::uint64_t> active;
    std::vector<std::uint64_t> seqs;
    active.reserve(invited.size());
    seqs.reserve(invited.size());
    for (const std::uint64_t id : invited) {
      ++ctx.sched.invited;
      const std::uint64_t seq = ctx.invite_counter++;
      if (!population_.available(id, t)) {
        ++ctx.sched.unavailable_invited;
        continue;  // never trains, never reports
      }
      active.push_back(id);
      seqs.push_back(seq);
    }

    std::vector<Trained> trained = train_cohort(ctx, active, seqs, t, t, lr);

    // Mid-round dropouts spent the energy (their RNG streams advanced)
    // but their report never reaches the server.
    std::vector<Trained*> reports;
    reports.reserve(trained.size());
    for (Trained& r : trained) {
      if (r.dropped) {
        ++ctx.sched.mid_round_dropouts;
        continue;
      }
      reports.push_back(&r);
    }

    if (over_select) {
      // Commit on the first K reporters in virtual-arrival order,
      // optionally bounded by the round deadline; the rest are stragglers.
      std::sort(reports.begin(), reports.end(),
                [](const Trained* a, const Trained* b) {
                  if (a->latency != b->latency) return a->latency < b->latency;
                  return a->device < b->device;
                });
      std::size_t in_time = reports.size();
      if (sch.round_deadline_s > 0.0) {
        in_time = 0;
        while (in_time < reports.size() &&
               reports[in_time]->latency <= sch.round_deadline_s) {
          ++in_time;
        }
      }
      const std::size_t keep =
          std::min(in_time, sch.resolved_target_reports());
      // A straggler's upload still crossed the uplink — the device cannot
      // know the round already committed — so its bytes are real cost (and
      // its codec state advances) even though its update never reaches the
      // aggregator.
      for (std::size_t i = keep; i < reports.size(); ++i) {
        ++ctx.sched.discarded_stragglers;
        if (reports[i]->decision.upload) {
          ++ctx.sim.uploads_per_client[reports[i]->device];
          ctx.sim.uploaded_bytes +=
              encode_upload(ctx, reports[i]->device, reports[i]->update);
        }
      }
      reports.resize(keep);
      // The server processes the committed batch in device order — the
      // same deterministic order the synchronous path uses.
      std::sort(reports.begin(), reports.end(),
                [](const Trained* a, const Trained* b) {
                  return a->device < b->device;
                });
    }

    fl::IterationRecord rec;
    rec.iteration = static_cast<std::size_t>(t);
    rec.participants = reports.size();
    ctx.sched.reported += reports.size();

    // --- Collect relevant updates S_t over the committed reports ---
    std::vector<Trained*> uploads;
    uploads.reserve(reports.size());
    for (Trained* r : reports) {
      if (r->decision.upload) {
        uploads.push_back(r);
      } else {
        ++ctx.sim.eliminations_per_client[r->device];
      }
    }
    if (uploads.empty() && options_.min_uploads > 0 && !reports.empty()) {
      std::vector<Trained*> order = reports;
      std::sort(order.begin(), order.end(),
                [](const Trained* a, const Trained* b) {
                  return a->decision.score > b->decision.score;
                });
      const std::size_t forced = std::min(options_.min_uploads, order.size());
      for (std::size_t i = 0; i < forced; ++i) {
        uploads.push_back(order[i]);
        --ctx.sim.eliminations_per_client[order[i]->device];
      }
    }

    rec.uploads = uploads.size();
    ctx.cumulative_rounds += uploads.size();
    rec.cumulative_rounds = ctx.cumulative_rounds;
    if (!reports.empty()) {
      double score_sum = 0.0;
      double loss_sum = 0.0;
      for (const Trained* r : reports) {
        score_sum += r->decision.score;
        loss_sum += r->train_loss;
      }
      rec.mean_score = score_sum / static_cast<double>(reports.size());
      rec.mean_train_loss = loss_sum / static_cast<double>(reports.size());
    }

    // --- GlobalOptimization over the committed uploads ---
    // Encodes run here on the engine thread, in committed (device) order;
    // the aggregator sees the decoded reconstructions.
    for (Trained* r : uploads) {
      ++ctx.sim.uploads_per_client[r->device];
      ctx.sim.uploaded_bytes += encode_upload(ctx, r->device, r->update);
    }
    if (!uploads.empty()) {
      std::vector<std::size_t> devices;
      std::vector<std::span<const float>> views;
      std::vector<double> raw_weights;
      devices.reserve(uploads.size());
      views.reserve(uploads.size());
      for (const Trained* r : uploads) {
        devices.push_back(static_cast<std::size_t>(r->device));
        views.emplace_back(r->update);
      }
      if (options_.aggregation == fl::Aggregation::kSampleWeighted) {
        raw_weights.reserve(uploads.size());
        for (const Trained* r : uploads) {
          raw_weights.push_back(static_cast<double>(r->local_samples));
        }
      }
      commit_uploads(ctx, devices, views, raw_weights,
                     /*staleness_weighted=*/false, rec);
    }
    rec.cumulative_upload_bytes = ctx.sim.uploaded_bytes;

    // --- Periodic evaluation and checkpointing ---
    const bool last = t == options_.max_iterations;
    bool stop_at_target = false;
    if (options_.eval_every > 0 &&
        (t % options_.eval_every == 0 || last)) {
      const nn::EvalResult eval = evaluator_(ctx.global);
      rec.accuracy = eval.accuracy;
      rec.loss = eval.loss;
      stop_at_target = options_.target_accuracy > 0.0 &&
                       std::isfinite(eval.loss) &&
                       eval.accuracy >= options_.target_accuracy;
    }
    ctx.sim.history.push_back(rec);

    if (options_.checkpoint_every > 0 && !options_.checkpoint_path.empty() &&
        (t % options_.checkpoint_every == 0 || last || stop_at_target)) {
      fl::save_checkpoint_file(options_.checkpoint_path, snapshot(ctx, t));
    }
    if (stop_at_target) break;
  }
}

void RoundEngine::run_buffered_async(Ctx& ctx) {
  const ScheduleOptions& sch = options_.schedule;

  // Per-aggregation accumulators.  All zero whenever a checkpoint is
  // written: snapshots happen only immediately after an aggregation, so
  // none of this transient state needs to live in the checkpoint.
  std::vector<fl::SchedInFlightReport> buffer;
  std::size_t arrivals = 0;         // reports since the last aggregation
  std::size_t uploads_arrived = 0;  // including stale-discarded ones
  double score_sum = 0.0;
  double loss_sum = 0.0;

  // Invites + eagerly trains replacements until sample_size devices are in
  // flight (or the eligible population is exhausted).  Training happens at
  // invitation on the *current* (x, ū): the report carries the model
  // version it trained against — versioned-ū CMFL semantics — and its
  // relevance score is fixed then, exactly as a real device that computes
  // its check before a slow upload.
  const auto flush_invites = [&]() {
    std::unordered_set<std::uint64_t> wasted;  // offline picks this flush
    const auto lr =
        static_cast<float>(options_.learning_rate.at(ctx.version + 1));
    const auto excluded = [&](std::uint64_t id) {
      return ctx.in_flight.contains(id) || wasted.contains(id) ||
             ctx.validator.quarantined(static_cast<std::size_t>(id));
    };
    while (ctx.in_flight.size() < sch.sample_size) {
      const std::size_t need = sch.sample_size - ctx.in_flight.size();
      const std::vector<std::uint64_t> picked = population_.sample(
          ctx.version + 1, need, sch.selection, ctx.engine_rng, excluded);
      if (picked.empty()) return;  // eligible population exhausted
      std::vector<std::uint64_t> active;
      std::vector<std::uint64_t> seqs;
      active.reserve(picked.size());
      seqs.reserve(picked.size());
      for (const std::uint64_t id : picked) {
        ++ctx.sched.invited;
        const std::uint64_t seq = ctx.invite_counter++;
        if (!population_.available(id, ctx.version + 1)) {
          ++ctx.sched.unavailable_invited;
          wasted.insert(id);  // don't re-pick it within this flush
          continue;
        }
        active.push_back(id);
        seqs.push_back(seq);
      }
      std::vector<Trained> trained = train_cohort(
          ctx, active, seqs, ctx.version + 1, ctx.version + 1, lr);
      for (Trained& r : trained) {
        fl::SchedInFlightReport f;
        f.device = r.device;
        f.version = ctx.version;
        f.arrival = ctx.virtual_now + r.latency;
        f.score = r.decision.score;
        f.train_loss = r.train_loss;
        f.local_samples = r.local_samples;
        if (r.dropped) {
          f.kind = kKindDropout;
        } else if (r.decision.upload) {
          f.kind = kKindUpload;
          // Encode when the report enters flight (the device transmits as
          // soon as it finishes): the codec state advances exactly once per
          // upload, the in-flight report carries the decoded reconstruction
          // plus its real wire size, and a checkpoint taken while the
          // report is airborne resumes without re-encoding.
          f.wire_bytes = encode_upload(ctx, r.device, r.update);
          f.update = std::move(r.update);
        } else {
          f.kind = kKindElimination;
        }
        ctx.in_flight.insert(f.device);
        ctx.heap.push_back(std::move(f));
        std::push_heap(ctx.heap.begin(), ctx.heap.end(), heap_later);
      }
    }
  };

  // Checkpoints are written *before* the post-aggregation invite flush, so
  // a fresh run and a resumed one start identically: both flush here with
  // the same RNG, clock and population state.  (Snapshotting after the
  // flush would make a run killed at its final iteration — which never
  // flushes — write a different checkpoint than the uninterrupted run's
  // mid-run one, breaking the bit-identity invariant.)
  flush_invites();

  while (ctx.version < options_.max_iterations && !ctx.heap.empty()) {
    std::pop_heap(ctx.heap.begin(), ctx.heap.end(), heap_later);
    fl::SchedInFlightReport e = std::move(ctx.heap.back());
    ctx.heap.pop_back();
    ctx.virtual_now = e.arrival;
    ctx.in_flight.erase(e.device);

    switch (e.kind) {
      case kKindDropout:
        ++ctx.sched.mid_round_dropouts;
        break;
      case kKindElimination:
        ++ctx.sched.reported;
        ++ctx.sim.eliminations_per_client[static_cast<std::size_t>(e.device)];
        ++arrivals;
        score_sum += e.score;
        loss_sum += e.train_loss;
        break;
      case kKindUpload: {
        ++ctx.sched.reported;
        ++arrivals;
        score_sum += e.score;
        loss_sum += e.train_loss;
        ++uploads_arrived;
        ++ctx.sim.uploads_per_client[static_cast<std::size_t>(e.device)];
        ctx.sim.uploaded_bytes += e.wire_bytes;
        const std::uint64_t staleness = ctx.version - e.version;
        if (sch.max_staleness > 0 && staleness > sch.max_staleness) {
          ++ctx.sched.stale_discarded;  // arrived too late to be useful
        } else {
          buffer.push_back(std::move(e));
        }
        break;
      }
      default:
        throw std::logic_error("RoundEngine: unknown in-flight report kind");
    }

    if (buffer.size() >= sch.async_buffer) {
      // --- One buffered-async "round": aggregate, advance the version ---
      ++ctx.version;
      const std::uint64_t v = ctx.version;
      fl::IterationRecord rec;
      rec.iteration = static_cast<std::size_t>(v);
      rec.uploads = uploads_arrived;
      rec.participants = arrivals;
      ctx.cumulative_rounds += uploads_arrived;
      rec.cumulative_rounds = ctx.cumulative_rounds;
      if (arrivals > 0) {
        rec.mean_score = score_sum / static_cast<double>(arrivals);
        rec.mean_train_loss = loss_sum / static_cast<double>(arrivals);
      }

      std::vector<std::size_t> devices;
      std::vector<std::span<const float>> views;
      std::vector<double> raw_weights;
      devices.reserve(buffer.size());
      views.reserve(buffer.size());
      raw_weights.reserve(buffer.size());
      double stale_sum = 0.0;
      std::size_t stale_max = 0;
      for (const fl::SchedInFlightReport& f : buffer) {
        devices.push_back(static_cast<std::size_t>(f.device));
        views.emplace_back(f.update);
        const std::uint64_t s = (v - 1) - f.version;
        stale_sum += static_cast<double>(s);
        stale_max = std::max(stale_max, static_cast<std::size_t>(s));
        double w = std::pow(1.0 + static_cast<double>(s),
                            -sch.staleness_exponent);
        if (options_.aggregation == fl::Aggregation::kSampleWeighted) {
          w *= static_cast<double>(f.local_samples);
        }
        raw_weights.push_back(w);
      }
      rec.staleness_mean = stale_sum / static_cast<double>(buffer.size());
      rec.staleness_max = stale_max;
      commit_uploads(ctx, devices, views, raw_weights,
                     /*staleness_weighted=*/true, rec);
      rec.cumulative_upload_bytes = ctx.sim.uploaded_bytes;

      buffer.clear();
      arrivals = 0;
      uploads_arrived = 0;
      score_sum = 0.0;
      loss_sum = 0.0;

      const bool last = v == options_.max_iterations;
      bool stop_at_target = false;
      if (options_.eval_every > 0 &&
          (v % options_.eval_every == 0 || last)) {
        const nn::EvalResult eval = evaluator_(ctx.global);
        rec.accuracy = eval.accuracy;
        rec.loss = eval.loss;
        stop_at_target = options_.target_accuracy > 0.0 &&
                         std::isfinite(eval.loss) &&
                         eval.accuracy >= options_.target_accuracy;
      }
      ctx.sim.history.push_back(rec);

      if (options_.checkpoint_every > 0 &&
          !options_.checkpoint_path.empty() &&
          (v % options_.checkpoint_every == 0 || last || stop_at_target)) {
        fl::save_checkpoint_file(options_.checkpoint_path, snapshot(ctx, v));
      }
      if (stop_at_target) break;
      if (!last) flush_invites();
    } else if (ctx.heap.empty()) {
      // The cohort drained without filling the buffer (eliminations or
      // dropouts all round) — replace it so progress continues.
      flush_invites();
    }
  }
}

}  // namespace cmfl::sched

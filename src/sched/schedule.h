// Scheduling policy knobs for the device-population round runtime.
//
// This header is pure data — enums and an options struct with no
// dependencies beyond the standard library — so fl/simulation.h can embed a
// ScheduleOptions in SimulationOptions without linking the sched library.
// The machinery that interprets these options (sched::Population,
// sched::RoundEngine) lives in the cmfl_sched library, which links cmfl_fl,
// not the other way around.  See DESIGN.md §11.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace cmfl::sched {

/// How a round commits.
enum class RoundMode {
  /// Classic synchronous FL (the paper's Algorithm 1): every invited and
  /// available device trains and reports before the round commits.
  kSync,
  /// Production-style over-selection: invite more devices than needed,
  /// commit on the first `target_reports` reporters (optionally bounded by
  /// a virtual deadline), and discard the stragglers' late reports.
  kOverSelect,
  /// FedBuff-style buffered asynchrony: devices report whenever they
  /// finish; the server aggregates once `async_buffer` uploads are
  /// buffered, applying staleness-discounted weights.
  kBufferedAsync,
};

/// How the per-round cohort is drawn from the population.
enum class Selection {
  /// Sample uniformly over *all* devices.  Invitations to devices that are
  /// currently unavailable are wasted (they never report) — the naive
  /// baseline a production scheduler improves on.
  kUniform,
  /// Sample uniformly over the devices available this round (the "check-in
  /// pool" model of production FL systems).
  kAvailabilityAware,
};

struct ScheduleOptions {
  RoundMode mode = RoundMode::kSync;
  Selection selection = Selection::kUniform;

  /// Devices invited per round (kSync / kOverSelect) or kept in flight
  /// concurrently (kBufferedAsync).  0 = every device (kSync only; the
  /// other modes need an explicit cohort size).
  ///
  /// Also honoured by fl::FederatedSimulation as an absolute-count
  /// alternative to the fractional SimulationOptions::participation.
  std::size_t sample_size = 0;

  /// kOverSelect: commit the round once this many reports arrived; the
  /// remaining invited devices are stragglers whose reports are discarded.
  /// 0 derives K = ceil(sample_size / over_select_factor).
  std::size_t target_reports = 0;

  /// kOverSelect with target_reports == 0: invite sample_size devices and
  /// keep sample_size / over_select_factor of them.
  double over_select_factor = 1.3;

  /// kOverSelect: virtual per-round deadline in seconds; reports arriving
  /// later are discarded even if fewer than target_reports arrived in time
  /// (0 = no deadline, the first-K rule alone decides).
  double round_deadline_s = 0.0;

  /// kBufferedAsync: aggregate once this many uploads are buffered
  /// (FedBuff's K).
  std::size_t async_buffer = 10;

  /// kBufferedAsync: discard uploads whose staleness (model versions the
  /// server advanced between invitation and arrival) exceeds this
  /// (0 = keep all).
  std::size_t max_staleness = 0;

  /// kBufferedAsync: a buffered update invited at version v and aggregated
  /// at version V is weighted by (1 + V - v)^-staleness_exponent.
  double staleness_exponent = 0.5;

  /// Throws std::invalid_argument on an inconsistent combination.
  void validate() const {
    if (mode != RoundMode::kSync && sample_size == 0) {
      throw std::invalid_argument(
          "ScheduleOptions: over-selection and buffered-async modes need an "
          "explicit sample_size");
    }
    if (over_select_factor < 1.0) {
      throw std::invalid_argument(
          "ScheduleOptions: over_select_factor must be >= 1");
    }
    if (mode == RoundMode::kOverSelect && target_reports > sample_size) {
      throw std::invalid_argument(
          "ScheduleOptions: target_reports exceeds sample_size");
    }
    if (mode == RoundMode::kBufferedAsync && async_buffer == 0) {
      throw std::invalid_argument(
          "ScheduleOptions: async_buffer must be positive");
    }
    if (mode == RoundMode::kBufferedAsync && async_buffer > sample_size) {
      throw std::invalid_argument(
          "ScheduleOptions: async_buffer exceeds the in-flight sample_size "
          "(the buffer could never fill)");
    }
    if (round_deadline_s < 0.0 || staleness_exponent < 0.0) {
      throw std::invalid_argument("ScheduleOptions: negative knob");
    }
  }

  /// The over-selection keep count K this configuration resolves to.
  std::size_t resolved_target_reports() const {
    if (target_reports > 0) return target_reports;
    const auto k = static_cast<std::size_t>(
        static_cast<double>(sample_size) / over_select_factor);
    return k > 0 ? k : 1;
  }
};

inline std::string round_mode_name(RoundMode mode) {
  switch (mode) {
    case RoundMode::kSync: return "sync";
    case RoundMode::kOverSelect: return "overselect";
    case RoundMode::kBufferedAsync: return "async";
  }
  return "unknown";
}

inline RoundMode parse_round_mode(const std::string& name) {
  if (name == "sync") return RoundMode::kSync;
  if (name == "overselect") return RoundMode::kOverSelect;
  if (name == "async") return RoundMode::kBufferedAsync;
  throw std::invalid_argument("parse_round_mode: unknown mode '" + name +
                              "' (sync | overselect | async)");
}

inline std::string selection_name(Selection s) {
  return s == Selection::kUniform ? "uniform" : "available";
}

inline Selection parse_selection(const std::string& name) {
  if (name == "uniform") return Selection::kUniform;
  if (name == "available") return Selection::kAvailabilityAware;
  throw std::invalid_argument("parse_selection: unknown policy '" + name +
                              "' (uniform | available)");
}

}  // namespace cmfl::sched

#include "fl/client.h"

#include <stdexcept>

namespace cmfl::fl {

void FlClient::restore_mutable_state(std::span<const std::uint64_t> state) {
  if (!state.empty()) {
    throw std::invalid_argument(
        "FlClient: state blob for a stateless client");
  }
}

DenseClient::DenseClient(nn::FeedForward model,
                         const data::DenseDataset* dataset,
                         std::vector<std::size_t> shard, util::Rng rng)
    : model_(std::move(model)),
      dataset_(dataset),
      shard_(std::move(shard)),
      rng_(rng) {
  if (dataset_ == nullptr) {
    throw std::invalid_argument("DenseClient: null dataset");
  }
  if (shard_.empty()) {
    throw std::invalid_argument("DenseClient: empty shard");
  }
}

void DenseClient::set_params(std::span<const float> params) {
  model_.set_params(params);
}

void DenseClient::get_params(std::span<float> out) {
  model_.get_params(out);
}

double DenseClient::train_local(int epochs, std::size_t batch_size,
                                float lr) {
  if (epochs <= 0) {
    throw std::invalid_argument("DenseClient: epochs must be positive");
  }
  data::Batcher batcher(shard_, batch_size);
  tensor::Matrix bx;
  std::vector<int> by;
  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (const auto& batch : batcher.epoch(rng_)) {
      dataset_->gather(batch, bx, by);
      loss_sum += model_.train_batch(bx, by, lr);
      ++batches;
      ++lifetime_steps_;
    }
    last_epoch_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

std::vector<std::uint64_t> DenseClient::mutable_state() const {
  return util::rng_state_words(rng_);
}

void DenseClient::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

SequenceClient::SequenceClient(nn::LstmLm model,
                               const data::SequenceDataset* dataset,
                               std::vector<std::size_t> shard, util::Rng rng)
    : model_(std::move(model)),
      dataset_(dataset),
      shard_(std::move(shard)),
      rng_(rng) {
  if (dataset_ == nullptr) {
    throw std::invalid_argument("SequenceClient: null dataset");
  }
  if (shard_.empty()) {
    throw std::invalid_argument("SequenceClient: empty shard");
  }
}

void SequenceClient::set_params(std::span<const float> params) {
  model_.set_params(params);
}

void SequenceClient::get_params(std::span<float> out) {
  model_.get_params(out);
}

double SequenceClient::train_local(int epochs, std::size_t batch_size,
                                   float lr) {
  if (epochs <= 0) {
    throw std::invalid_argument("SequenceClient: epochs must be positive");
  }
  data::Batcher batcher(shard_, batch_size);
  nn::SeqBatch bx;
  std::vector<int> by;
  double last_epoch_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (const auto& batch : batcher.epoch(rng_)) {
      dataset_->gather(batch, bx, by);
      loss_sum += model_.train_batch(bx, by, lr);
      ++batches;
      ++lifetime_steps_;
    }
    last_epoch_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

std::vector<std::uint64_t> SequenceClient::mutable_state() const {
  return util::rng_state_words(rng_);
}

void SequenceClient::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

}  // namespace cmfl::fl

#include "fl/divergence.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::fl {

namespace {
std::vector<double> divergence_impl(
    std::span<const float> global,
    const std::vector<std::vector<float>>& client_params,
    const std::vector<bool>* mask, bool include, double eps) {
  if (client_params.empty()) {
    throw std::invalid_argument("normalized_model_divergence: no clients");
  }
  std::size_t participants = 0;
  for (std::size_t k = 0; k < client_params.size(); ++k) {
    if (mask && (*mask)[k] != include) continue;
    if (client_params[k].size() != global.size()) {
      throw std::invalid_argument(
          "normalized_model_divergence: parameter size mismatch");
    }
    ++participants;
  }
  if (participants == 0) {
    throw std::invalid_argument(
        "normalized_model_divergence: empty client subset");
  }
  if (mask && mask->size() != client_params.size()) {
    throw std::invalid_argument(
        "normalized_model_divergence: mask size mismatch");
  }

  std::vector<double> divergences;
  divergences.reserve(global.size());
  for (std::size_t j = 0; j < global.size(); ++j) {
    const double xbar = global[j];
    if (std::fabs(xbar) < eps) continue;
    double acc = 0.0;
    for (std::size_t k = 0; k < client_params.size(); ++k) {
      if (mask && (*mask)[k] != include) continue;
      acc += std::fabs((static_cast<double>(client_params[k][j]) - xbar) /
                       xbar);
    }
    divergences.push_back(acc / static_cast<double>(participants));
  }
  return divergences;
}
}  // namespace

std::vector<double> normalized_model_divergence(
    std::span<const float> global,
    const std::vector<std::vector<float>>& client_params, double eps) {
  return divergence_impl(global, client_params, nullptr, true, eps);
}

std::vector<double> normalized_model_divergence_subset(
    std::span<const float> global,
    const std::vector<std::vector<float>>& client_params,
    const std::vector<bool>& mask, bool include, double eps) {
  return divergence_impl(global, client_params, &mask, include, eps);
}

}  // namespace cmfl::fl

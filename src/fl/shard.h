// Sharded parameter-server aggregation pipeline.
//
// One master thread used to serialize every upload: decode, validity scan,
// relevance score, and the robust-aggregation pass all ran back to back on
// the coordinator.  This module range-partitions the flat parameter vector
// across S aggregator shards, each owning a worker thread and a
// finely-locked MPSC ingest queue, so an upload burst from an over-selected
// cohort is processed concurrently:
//
//   * upload-parallel scalar pass — each arriving upload is handed to shard
//     (index mod S), whose worker decodes it (caller-supplied job) and
//     computes the structural scalars screening needs: finiteness, the
//     serial double-accumulation L2 norm, and optionally the CMFL
//     sign-agreement count against the broadcast estimate;
//   * range-parallel apply pass — aggregate() fans the per-coordinate work
//     of aggregate_updates out as one job per shard over that shard's
//     [lo, hi) slice of the output vector.
//
// Determinism contract (DESIGN.md §17): results are bit-identical to the
// single-master path at any shard count and any thread interleaving.
//   - Scalar results are stored by upload index and collected in index
//     order, so screening sees exactly the sequence the serial path saw;
//     each scalar is computed by the exact serial helper on the full vector
//     (full-vector reductions are never range-split — double addition is not
//     associative).
//   - The apply pass writes disjoint ranges with kernels whose per-element
//     op sequence depends only on the element index, so the concatenation of
//     shard outputs equals the full-vector call byte-for-byte
//     (aggregate_updates_range; the clipped rule's cross-upload plan runs
//     once on the coordinator from the scalar-pass norms).
//   - Sign-agreement counts are exact integers; per-shard partials sum to
//     the full-vector count with no rounding concerns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fl/robust_agg.h"
#include "tensor/kernels.h"

namespace cmfl::fl {

/// Sharding knobs, embedded in SimulationOptions / ClusterOptions.
struct ShardOptions {
  /// Aggregator shard count.  0 (the default) keeps the legacy
  /// single-master path untouched; S >= 1 routes ingest and aggregation
  /// through S shard threads (S = 1 exercises the pipeline with one shard —
  /// useful for isolating pipeline overhead, still bit-identical).
  std::size_t shards = 0;

  bool enabled() const noexcept { return shards > 0; }
};

/// Half-open slice [lo, hi) of the flat parameter vector owned by one shard.
struct ShardRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const noexcept { return hi - lo; }
};

/// Range-partitions [0, dim) into `shards` contiguous slices whose interior
/// boundaries are multiples of 64 floats, so every slice starts on a
/// SignPack word boundary and AVX2 blocks split cleanly.  Each ideal cut
/// dim·(s+1)/S is rounded down to the previous 64-float boundary, so slice
/// sizes differ by at most 128 elements (two rounding errors); trailing
/// shards may be empty when dim < 64·shards.  Throws std::invalid_argument
/// when shards == 0.
std::vector<ShardRange> shard_partition(std::size_t dim, std::size_t shards);

/// Per-shard ingest counters, checkpointed with the scheduler state so a
/// resumed run reports the same totals as an uninterrupted one.
struct ShardStats {
  std::uint64_t uploads = 0;      ///< scalar-pass jobs this shard processed
  std::uint64_t range_passes = 0; ///< range-apply jobs this shard processed
  std::uint64_t bytes = 0;        ///< wire bytes of uploads this shard ingested

  bool operator==(const ShardStats&) const = default;
};

/// S range-partitioned aggregator shards with worker threads and MPSC
/// ingest queues.  One instance per engine/cluster run; submit/collect and
/// aggregate are driven by the coordinator thread (single consumer), while
/// submissions may come from any thread (multiple producers).
class ShardedAggregator {
 public:
  /// What the scalar pass produces for one upload.
  struct UploadResult {
    UpdateValidator::UploadScalars scalars;  ///< finite + full-vector L2 norm
    std::size_t sign_matches = 0;  ///< vs the estimate pack (0 when none)
    std::exception_ptr error;      ///< set when the job threw (e.g. decode)
  };

  /// Job run on a shard worker: decode/score one upload and return its
  /// scalars.  Anything it throws is captured into UploadResult::error.
  using UploadJob = std::function<UploadResult()>;

  /// Spawns `options.shards` worker threads (>= 1 required) over a
  /// dim-sized parameter vector.
  ShardedAggregator(std::size_t dim, const ShardOptions& options);
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  std::size_t shards() const noexcept { return shards_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  const std::vector<ShardRange>& partition() const noexcept { return ranges_; }

  /// Prepares result storage for a round of up to `capacity` uploads and
  /// resets the completion counters.  Must not be called with jobs in
  /// flight (call sites sit at round boundaries, which are barriers).
  void begin_batch(std::size_t capacity);

  /// Enqueues `job` for upload `index` (< the begin_batch capacity) on
  /// shard (index mod S).  `wire_bytes` feeds that shard's byte counter.
  void submit(std::size_t index, std::uint64_t wire_bytes, UploadJob job);

  /// Convenience submit for an already-decoded update held in stable
  /// memory: scalars via the exact serial helpers, plus the sign-agreement
  /// count against `estimate` when non-null.
  void submit_update(std::size_t index, std::span<const float> update,
                     const tensor::SignPack* estimate,
                     std::uint64_t wire_bytes);

  /// Barrier: waits until the first `count` submitted jobs of this batch
  /// completed and returns their results in index order (count must equal
  /// the number submitted since begin_batch).
  std::vector<UploadResult> collect(std::size_t count);

  /// Range-parallel aggregate_updates: each shard applies its slice via
  /// aggregate_updates_range, bit-identical to the serial call.  `norms`
  /// is required for kNormClippedMean (full-vector norms in update order —
  /// exactly what the scalar pass produced); pass empty otherwise.  Blocks
  /// until all shards finish; rethrows the first shard error.
  void aggregate(Aggregation rule,
                 std::span<const std::span<const float>> updates,
                 std::span<const float> weights,
                 const RobustAggOptions& options, std::span<const double> norms,
                 std::span<float> out);

  /// Range-parallel CMFL relevance score of one vector against a packed
  /// estimate: per-shard count_sign_matches_range partials summed in shard
  /// order (exact integers — equals the full-vector count).
  std::size_t count_sign_matches(std::span<const float> v,
                                 const tensor::SignPack& estimate);

  /// Per-shard counters (quiesced read: call between rounds).
  std::vector<ShardStats> stats() const;

  /// Checkpoint encoding: [uploads, range_passes, bytes] per shard, in
  /// shard order.  restore throws std::invalid_argument on a word count
  /// that is not 3 · shards().
  std::vector<std::uint64_t> stats_words() const;
  void restore_stats_words(std::span<const std::uint64_t> words);

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> jobs;
    bool stop = false;
    ShardStats stats;  // worker-owned; coordinator reads only when quiesced
  };

  void worker(Shard& shard);
  void enqueue(std::size_t shard_index, std::function<void()> fn);
  /// Runs one job per shard and blocks until all complete; rethrows the
  /// first error by shard index.
  void run_on_all_shards(
      const std::function<void(std::size_t shard_index)>& fn);

  std::size_t dim_;
  std::vector<ShardRange> ranges_;
  // deque: Shard is neither movable nor copyable; deque constructs in place
  // and never relocates.
  std::deque<Shard> shards_;
  std::vector<std::thread> threads_;

  // Scalar-pass batch state.  results_ is sized by begin_batch before any
  // submit, so workers store to disjoint, stable slots.
  std::vector<UploadResult> results_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace cmfl::fl

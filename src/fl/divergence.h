// Normalized Model Divergence (paper Eq. 7):
//
//   d_j = (1/D) Σ_k | (x_{j,k} − x̄_j) / x̄_j |
//
// measures, per trained parameter, how far client-side models drift from
// the global model.  Figures 1 and 6 are CDFs of d_j.
#pragma once

#include <span>
#include <vector>

namespace cmfl::fl {

/// Computes d_j for every parameter.  `client_params[k]` is client k's local
/// parameter vector; all must match `global`'s length.  Parameters with
/// |x̄_j| < eps are skipped (their normalized divergence is unbounded noise);
/// the returned vector contains only the computed entries.
std::vector<double> normalized_model_divergence(
    std::span<const float> global,
    const std::vector<std::vector<float>>& client_params, double eps = 1e-6);

/// Same, restricted to the clients selected by `mask[k] == include` — used
/// by Fig. 6 to compare outlier vs non-outlier populations.
std::vector<double> normalized_model_divergence_subset(
    std::span<const float> global,
    const std::vector<std::vector<float>>& client_params,
    const std::vector<bool>& mask, bool include, double eps = 1e-6);

}  // namespace cmfl::fl

#include "fl/simulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "codec/codec.h"
#include "fl/checkpoint.h"
#include "tensor/kernels.h"
#include "tensor/vector_ops.h"

namespace cmfl::fl {

std::optional<std::size_t> SimulationResult::rounds_to_accuracy(
    double a) const {
  for (const auto& rec : history) {
    if (rec.evaluated() && rec.accuracy >= a) return rec.cumulative_rounds;
  }
  return std::nullopt;
}

std::optional<std::size_t> SimulationResult::iterations_to_accuracy(
    double a) const {
  for (const auto& rec : history) {
    if (rec.evaluated() && rec.accuracy >= a) return rec.iteration;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> SimulationResult::bytes_to_accuracy(
    double a) const {
  for (const auto& rec : history) {
    if (rec.evaluated() && rec.accuracy >= a) {
      return rec.cumulative_upload_bytes;
    }
  }
  return std::nullopt;
}

FederatedSimulation::FederatedSimulation(
    std::vector<std::unique_ptr<FlClient>> clients,
    std::unique_ptr<core::UpdateFilter> filter, GlobalEvaluator evaluator,
    const SimulationOptions& options)
    : clients_(std::move(clients)),
      filter_(std::move(filter)),
      evaluator_(std::move(evaluator)),
      options_(options) {
  if (clients_.empty()) {
    throw std::invalid_argument("FederatedSimulation: no clients");
  }
  if (!filter_) {
    throw std::invalid_argument("FederatedSimulation: null filter");
  }
  if (!evaluator_) {
    throw std::invalid_argument("FederatedSimulation: null evaluator");
  }
  if (options_.max_iterations == 0) {
    throw std::invalid_argument(
        "FederatedSimulation: max_iterations must be positive");
  }
  options_.schedule.validate();
  // Validate the codec spec eagerly: a typo must fail at construction, not
  // miles into a run on the first upload.
  codec::make_update_codec(options_.codec.spec, options_.codec.seed_salt);
  if (options_.schedule.mode != sched::RoundMode::kSync) {
    throw std::invalid_argument(
        "FederatedSimulation: only schedule.mode == kSync runs in-process; "
        "over-selection and buffered-async rounds need sched::RoundEngine");
  }
  dim_ = clients_.front()->param_count();
  for (const auto& c : clients_) {
    if (c->param_count() != dim_) {
      throw std::invalid_argument(
          "FederatedSimulation: clients disagree on parameter count");
    }
  }
}

SimulationResult FederatedSimulation::run() { return run_internal(nullptr); }

SimulationResult FederatedSimulation::resume(
    const TrainerCheckpoint& checkpoint) {
  return run_internal(&checkpoint);
}

SimulationResult FederatedSimulation::run_internal(
    const TrainerCheckpoint* resume_from) {
  const std::size_t num_clients = clients_.size();
  std::vector<float> global(dim_);
  clients_.front()->get_params(global);

  core::GlobalUpdateEstimator estimator(dim_, options_.estimator_ema);
  UpdateValidator validator(num_clients, options_.validation);
  SimulationResult result;
  result.eliminations_per_client.assign(num_clients, 0);
  result.uploads_per_client.assign(num_clients, 0);
  result.history.reserve(options_.max_iterations);

  // Per-client scratch buffers reused across iterations.  Update buffers
  // are sized lazily on a client's first participation, so a mostly-idle
  // population (small sample_size / participation) costs memory only for
  // the clients that actually train.
  std::vector<std::vector<float>> updates(num_clients);
  std::vector<core::FilterDecision> decisions(num_clients);
  std::vector<double> train_losses(num_clients, 0.0);

  std::unique_ptr<util::ThreadPool> pool;
  if (options_.parallel && num_clients > 1) {
    pool = std::make_unique<util::ThreadPool>();
  }

  // Per-client codecs (stateful: RNG streams, error-feedback residuals,
  // codebook caches), materialized on first upload.  Construction draws
  // nothing from any stream, so lazy materialization is bit-identical to
  // eager.
  std::vector<std::unique_ptr<codec::UpdateCodec>> codecs(num_clients);
  const auto codec_for = [&](std::size_t k) -> codec::UpdateCodec& {
    if (!codecs[k]) {
      codecs[k] = codec::make_update_codec(options_.codec.spec,
                                           options_.codec.seed_salt + k);
    }
    return *codecs[k];
  };

  std::vector<float> prev_global_update;
  std::size_t cumulative_rounds = 0;
  util::Rng server_rng(options_.seed);
  if (options_.participation <= 0.0 || options_.participation > 1.0) {
    throw std::invalid_argument(
        "FederatedSimulation: participation must be in (0, 1]");
  }

  std::size_t start_t = 1;
  if (resume_from != nullptr) {
    const TrainerCheckpoint& ck = *resume_from;
    if (ck.global_params.size() != dim_) {
      throw std::invalid_argument(
          "FederatedSimulation: checkpoint parameter dimension mismatch");
    }
    if (ck.client_state.size() != num_clients ||
        ck.compressor_state.size() != num_clients ||
        ck.eliminations_per_client.size() != num_clients ||
        ck.uploads_per_client.size() != num_clients) {
      throw std::invalid_argument(
          "FederatedSimulation: checkpoint client count mismatch");
    }
    global = ck.global_params;
    estimator.restore(ck.estimator_estimate, ck.estimator_observed);
    validator.restore(ck.validation);
    prev_global_update = ck.prev_global_update;
    cumulative_rounds = static_cast<std::size_t>(ck.cumulative_rounds);
    result.uploaded_bytes = ck.uploaded_bytes;
    result.history = ck.history;
    for (std::size_t k = 0; k < num_clients; ++k) {
      result.eliminations_per_client[k] =
          static_cast<std::size_t>(ck.eliminations_per_client[k]);
      result.uploads_per_client[k] =
          static_cast<std::size_t>(ck.uploads_per_client[k]);
      clients_[k]->restore_mutable_state(ck.client_state[k]);
      codec_for(k).restore_mutable_state(ck.compressor_state[k]);
    }
    util::restore_rng_state(server_rng, ck.server_rng);
    start_t = static_cast<std::size_t>(ck.iteration) + 1;
  }

  // Captures every piece of state the loop mutates, so a resumed run
  // replays the remaining iterations bit-identically.
  const auto snapshot = [&](std::size_t t) {
    TrainerCheckpoint ck;
    ck.iteration = t;
    ck.global_params = global;
    const std::span<const float> est = estimator.estimate();
    ck.estimator_estimate.assign(est.begin(), est.end());
    ck.estimator_observed = estimator.has_observation();
    ck.prev_global_update = prev_global_update;
    ck.cumulative_rounds = cumulative_rounds;
    ck.uploaded_bytes = result.uploaded_bytes;
    ck.history = result.history;
    ck.eliminations_per_client.assign(result.eliminations_per_client.begin(),
                                      result.eliminations_per_client.end());
    ck.uploads_per_client.assign(result.uploads_per_client.begin(),
                                 result.uploads_per_client.end());
    ck.server_rng = util::rng_state_words(server_rng);
    ck.validation = validator.report();
    ck.client_state.reserve(num_clients);
    ck.compressor_state.reserve(num_clients);
    for (std::size_t k = 0; k < num_clients; ++k) {
      ck.client_state.push_back(clients_[k]->mutable_state());
      ck.compressor_state.push_back(codec_for(k).mutable_state());
    }
    return ck;
  };

  // Bit-packed signs of ū, rebuilt once per broadcast and shared read-only
  // by every client's relevance check (tensor::SignPack in kernels.h).
  tensor::SignPack estimate_pack;

  for (std::size_t t = start_t; t <= options_.max_iterations; ++t) {
    const auto lr = static_cast<float>(options_.learning_rate.at(t));
    core::FilterContext ctx;
    ctx.global_model = global;
    ctx.estimated_global_update = estimator.estimate();
    estimate_pack.assign(ctx.estimated_global_update);
    ctx.estimated_global_update_pack = &estimate_pack;
    ctx.iteration = t;

    // --- Client sampling (FedAvg's C; 1.0 = the paper's full sync) ---
    // Quarantined clients are excluded before sampling: the server no
    // longer broadcasts to or trains them.
    std::vector<std::size_t> participants;
    participants.reserve(num_clients);
    for (std::size_t k = 0; k < num_clients; ++k) {
      if (!validator.quarantined(k)) participants.push_back(k);
    }
    if (participants.empty()) break;  // every client quarantined
    if (options_.schedule.sample_size > 0) {
      // Absolute per-round cohort size (sched::ScheduleOptions).
      if (options_.schedule.sample_size < participants.size()) {
        server_rng.shuffle(participants);
        participants.resize(options_.schedule.sample_size);
        std::sort(participants.begin(), participants.end());
      }
    } else if (options_.participation < 1.0) {
      server_rng.shuffle(participants);
      const auto count = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.participation *
                                      static_cast<double>(num_clients)));
      participants.resize(std::min(count, participants.size()));
      std::sort(participants.begin(), participants.end());
    }

    // --- LocalUpdate on every participating client (Alg. 1, 10-16) ---
    // Only the sampled participants touch their model or data: an
    // unsampled client runs no local training, is never asked for a filter
    // decision, and its scratch buffer is never even allocated (see the
    // per-client step-counter regression test in test_fl_simulation.cpp).
    auto train_one = [&](std::size_t p) {
      const std::size_t k = participants[p];
      updates[k].resize(dim_);
      clients_[k]->set_params(global);
      train_losses[k] = clients_[k]->train_local(
          options_.local_epochs, options_.batch_size, lr);
      auto& u = updates[k];
      clients_[k]->get_params(u);
      // u_{k,t} = trained local params − broadcast global params.
      for (std::size_t i = 0; i < dim_; ++i) u[i] -= global[i];
      decisions[k] = filter_->decide(u, ctx);
    };
    if (pool) {
      pool->parallel_for(participants.size(), train_one);
    } else {
      for (std::size_t p = 0; p < participants.size(); ++p) train_one(p);
    }

    // Snapshot the clients' local models while `global` is still x_{t-1}
    // (the local model is x_{t-1} + u_{k,t}).  Overwritten every iteration
    // so the result holds the final round's snapshot.
    if (options_.capture_client_params && participants.size() == num_clients) {
      result.client_params.resize(num_clients);
      for (std::size_t k = 0; k < num_clients; ++k) {
        result.client_params[k].resize(dim_);
        tensor::add(global, updates[k], result.client_params[k]);
      }
    }

    // --- Collect relevant updates S_t ---
    std::vector<std::size_t> uploaded;
    for (std::size_t k : participants) {
      if (decisions[k].upload) {
        uploaded.push_back(k);
      } else {
        ++result.eliminations_per_client[k];
      }
    }
    if (uploaded.empty() && options_.min_uploads > 0) {
      // Force the highest-scoring participants to upload so the round is
      // not wasted entirely; their eliminations are rolled back.
      std::vector<std::size_t> order = participants;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return decisions[a].score > decisions[b].score;
      });
      const std::size_t forced =
          std::min(options_.min_uploads, order.size());
      for (std::size_t i = 0; i < forced; ++i) {
        uploaded.push_back(order[i]);
        --result.eliminations_per_client[order[i]];
      }
    }

    IterationRecord rec;
    rec.iteration = t;
    rec.uploads = uploaded.size();
    rec.participants = participants.size();
    cumulative_rounds += uploaded.size();
    rec.cumulative_rounds = cumulative_rounds;
    double score_sum = 0.0;
    for (std::size_t k : participants) score_sum += decisions[k].score;
    rec.mean_score = score_sum / static_cast<double>(participants.size());
    double loss_sum = 0.0;
    for (std::size_t k : participants) loss_sum += train_losses[k];
    rec.mean_train_loss =
        loss_sum / static_cast<double>(participants.size());

    // --- GlobalOptimization (Algorithm 1, lines 7-9) ---
    for (std::size_t k : uploaded) ++result.uploads_per_client[k];
    if (!uploaded.empty()) {
      // Encode exactly what crosses the wire; the server aggregates the
      // reconstructions.
      for (std::size_t k : uploaded) {
        codec::UpdateCodec& codec = codec_for(k);
        const codec::EncodedUpdate enc = codec.encode(updates[k]);
        result.uploaded_bytes += enc.wire_bytes();
        updates[k] = codec.decode(enc.payload);
      }
      // Server-side validation screens what was *received* — the decoded
      // reconstruction, which is exactly what would reach the model.
      std::vector<std::span<const float>> received;
      received.reserve(uploaded.size());
      for (std::size_t k : uploaded) received.emplace_back(updates[k]);
      const std::vector<Verdict> verdicts =
          validator.screen_round(uploaded, received);
      std::vector<std::size_t> accepted;
      accepted.reserve(uploaded.size());
      for (std::size_t i = 0; i < uploaded.size(); ++i) {
        if (verdicts[i] == Verdict::kAccept) {
          accepted.push_back(uploaded[i]);
        } else {
          ++rec.rejected;
        }
      }

      if (!accepted.empty()) {
        std::vector<float> global_update(dim_);
        std::vector<std::span<const float>> views;
        views.reserve(accepted.size());
        for (std::size_t k : accepted) views.emplace_back(updates[k]);
        std::vector<float> weights;
        if (options_.aggregation == Aggregation::kSampleWeighted) {
          double total_weight = 0.0;
          for (std::size_t k : accepted) {
            total_weight += static_cast<double>(clients_[k]->local_samples());
          }
          weights.reserve(accepted.size());
          for (std::size_t k : accepted) {
            weights.push_back(static_cast<float>(
                static_cast<double>(clients_[k]->local_samples()) /
                total_weight));
          }
        }
        aggregate_updates(options_.aggregation, views, weights,
                          options_.robust_aggregation, global_update);
        tensor::add(global, global_update, global);

        if (!prev_global_update.empty()) {
          rec.delta_update = core::normalized_update_difference(
              prev_global_update, global_update);
        }
        prev_global_update = global_update;
        estimator.observe(global_update);
      }
    }
    rec.cumulative_upload_bytes = result.uploaded_bytes;

    // --- Periodic evaluation ---
    const bool last_iteration = t == options_.max_iterations;
    bool stop_at_target = false;
    if (options_.eval_every > 0 &&
        (t % options_.eval_every == 0 || last_iteration)) {
      const nn::EvalResult eval = evaluator_(global);
      rec.accuracy = eval.accuracy;
      rec.loss = eval.loss;
      // A round with a non-finite loss never satisfies the target: the
      // model may be numerically diverged despite a plausible accuracy.
      stop_at_target = options_.target_accuracy > 0.0 &&
                       std::isfinite(eval.loss) &&
                       eval.accuracy >= options_.target_accuracy;
    }
    result.history.push_back(rec);

    if (options_.checkpoint_every > 0 && !options_.checkpoint_path.empty() &&
        (t % options_.checkpoint_every == 0 || last_iteration ||
         stop_at_target)) {
      save_checkpoint_file(options_.checkpoint_path, snapshot(t));
    }
    if (stop_at_target) break;
  }

  // Final bookkeeping.
  result.total_rounds = cumulative_rounds;
  result.final_params = std::move(global);
  result.validation = validator.report();
  for (auto it = result.history.rbegin(); it != result.history.rend(); ++it) {
    if (!std::isnan(it->accuracy)) {
      result.final_accuracy = it->accuracy;
      break;
    }
  }
  return result;
}

}  // namespace cmfl::fl

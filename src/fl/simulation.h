// The synchronous federated training loop (paper Algorithm 1).
//
// Each iteration: broadcast (x_{t-1}, ū_{t-1}) → every client trains locally
// → clients self-filter their updates via an UpdateFilter → the server
// validates the received updates (fl/robust_agg.h), aggregates the accepted
// ones into ū_t, and applies it.  The simulation records everything the
// paper's figures need: per-iteration upload counts (communication rounds,
// Eq. 4), filter scores (Fig. 2), ΔUpdate (Fig. 3), per-client elimination
// counts (Fig. 6), and periodic test accuracy (Figs. 4, 5, 7).
//
// Runs can checkpoint their full state every `checkpoint_every` iterations
// (fl/checkpoint.h) and later resume() bit-identically — the resumed
// trajectory matches the uninterrupted one exactly.
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "codec/codec.h"
#include "core/estimator.h"
#include "core/filter.h"
#include "core/threshold.h"
#include "fl/client.h"
#include "fl/robust_agg.h"
#include "fl/shard.h"
#include "nn/model.h"
#include "sched/schedule.h"
#include "util/thread_pool.h"

namespace cmfl::fl {

struct TrainerCheckpoint;  // fl/checkpoint.h

struct SimulationOptions {
  int local_epochs = 4;              // E in the paper
  std::size_t batch_size = 2;        // B in the paper
  core::Schedule learning_rate = core::Schedule::inv_sqrt(0.05);
  std::size_t max_iterations = 200;
  /// Stop early once test accuracy reaches this value (<= 0 disables).
  /// Rounds whose evaluation produced a non-finite loss never trigger the
  /// early stop: a diverged model can score a spuriously "good" accuracy on
  /// a small test set while being numerically destroyed.
  double target_accuracy = 0.0;
  /// Evaluate the global model every `eval_every` iterations (and at the
  /// final iteration).
  std::size_t eval_every = 5;
  /// If every client filters itself out, force the `min_uploads` clients
  /// with the highest scores to upload anyway.  The default 0 is the
  /// paper's semantics: an empty S_t leaves the model unchanged that round
  /// (this is exactly the Gaia stagnation failure mode §III-B describes).
  std::size_t min_uploads = 0;
  /// EMA decay for the global-update estimator (0 = the paper's
  /// previous-update estimate).
  double estimator_ema = 0.0;
  /// Train clients in parallel (deterministic either way).
  bool parallel = true;
  /// Capture every client's post-training local parameters at the end of
  /// the run (needed for the normalized-model-divergence analysis, Fig. 1).
  bool capture_client_params = false;
  /// Update codec applied to *uploaded* updates (see codec/codec.h for the
  /// spec grammar: "dense", "sign[:<chunk>]", "quant:<bits>",
  /// "topk:<k-or-fraction>", "codebook:<k>[,<refresh>]",
  /// "subsample:<keep>", "structured:<density>"; legacy aliases "float32"
  /// and "quantize8" still parse).  Codecs compose with any filter — the
  /// orthogonality the paper claims in §I.
  codec::CodecOptions codec;
  /// Server aggregation rule (fl/robust_agg.h).
  Aggregation aggregation = Aggregation::kUniformMean;
  /// Knobs of the robust aggregation rules (trim fraction, clip radius).
  RobustAggOptions robust_aggregation;
  /// Server-side admission rules for received updates.  Defaults reject
  /// non-finite updates and quarantine repeat offenders — non-finite values
  /// must never reach the model.
  ValidationPolicy validation;
  /// FedAvg's C: the fraction of clients sampled to participate each round
  /// (1.0 = full participation, the paper's synchronous scheme).
  /// Non-participants neither train nor count as communication.
  double participation = 1.0;
  /// Scheduling policy (src/sched).  FederatedSimulation itself honours
  /// only schedule.sample_size (an absolute per-round cohort size that
  /// overrides the fractional `participation` when positive) and requires
  /// schedule.mode == kSync; over-selection deadlines, availability churn
  /// and buffered-async rounds run through sched::RoundEngine, which takes
  /// the full SimulationOptions including this field.
  sched::ScheduleOptions schedule;
  /// Sharded parameter-server aggregation (fl/shard.h).  shards == 0 keeps
  /// the legacy single-master path; S >= 1 routes upload screening and the
  /// robust-aggregation pass through S range-partitioned shard threads —
  /// bit-identical trajectories either way.  Honoured by sched::RoundEngine
  /// and the net cluster (FederatedSimulation itself is single-threaded on
  /// the server side and ignores it).
  ShardOptions sharding;
  /// Seed for server-side randomness (client sampling).
  std::uint64_t seed = 1234;
  /// Write a crash-consistent checkpoint to `checkpoint_path` every
  /// `checkpoint_every` completed iterations (0 disables).  Each write
  /// atomically replaces the previous checkpoint.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
};

struct IterationRecord {
  std::size_t iteration = 0;       // t, 1-based
  std::size_t uploads = 0;         // r_t = |S_t|, updates *received*
  /// Clients whose answer was counted this round: the sampled participants
  /// in the simulation, the workers whose reply arrived before the round
  /// committed in the (possibly faulty, quorum-gated) cluster.
  std::size_t participants = 0;
  /// Received updates the server's validator refused to aggregate this
  /// round (non-finite, norm-exploded, or from a quarantined sender).
  /// Counted within `uploads`: a rejected update still crossed the wire.
  std::size_t rejected = 0;
  std::size_t cumulative_rounds = 0;  // Φ up to and including t
  /// Cumulative uplink bytes of all uploaded (possibly compressed) updates
  /// up to and including t — the byte-valued Φ that makes compression ×
  /// CMFL × scheduling comparisons apples-to-apples (fl::saving_bytes).
  std::uint64_t cumulative_upload_bytes = 0;
  double mean_score = 0.0;         // mean filter score across clients
  double mean_train_loss = 0.0;
  double delta_update = 0.0;       // Eq. 8 vs the previous global update
  /// Staleness distribution of the updates aggregated this round (model
  /// versions the server advanced between a client's broadcast and its
  /// aggregation).  Always 0 in synchronous modes; populated by
  /// sched::RoundEngine's buffered-async rounds.
  double staleness_mean = 0.0;
  std::size_t staleness_max = 0;
  /// Test metrics; NaN when this iteration was not evaluated.
  double accuracy = std::numeric_limits<double>::quiet_NaN();
  double loss = std::numeric_limits<double>::quiet_NaN();

  /// True when this iteration ran a test pass.  Both metrics are checked:
  /// a diverged model can legitimately produce a NaN loss alongside a
  /// finite accuracy (or vice versa), and such a round *was* evaluated.
  bool evaluated() const noexcept {
    return !std::isnan(accuracy) || !std::isnan(loss);
  }
};

struct SimulationResult {
  std::vector<IterationRecord> history;
  std::vector<std::size_t> eliminations_per_client;
  /// Per-client count of updates that crossed the uplink (the complement of
  /// eliminations_per_client) — what Fig.-6-style outlier analysis needs
  /// from a saved trace.
  std::vector<std::size_t> uploads_per_client;
  std::vector<float> final_params;
  /// Per-client local parameters after the final local training pass; empty
  /// unless SimulationOptions::capture_client_params was set.
  std::vector<std::vector<float>> client_params;
  /// Exact uplink bytes of all uploaded (possibly compressed) updates.
  std::uint64_t uploaded_bytes = 0;
  double final_accuracy = 0.0;
  std::size_t total_rounds = 0;  // Φ over the whole run
  /// Server-side validation outcome: reject counters and which clients
  /// ended the run quarantined.
  ValidationReport validation;

  /// Accumulated communication rounds when test accuracy first reached `a`
  /// (Eq. 4 evaluated at the first eval point with accuracy >= a);
  /// std::nullopt if never reached.
  std::optional<std::size_t> rounds_to_accuracy(double a) const;

  /// Iteration index when accuracy first reached `a`.
  std::optional<std::size_t> iterations_to_accuracy(double a) const;

  /// Cumulative uplink bytes when test accuracy first reached `a` (the
  /// byte-valued analogue of rounds_to_accuracy); std::nullopt if never
  /// reached.
  std::optional<std::uint64_t> bytes_to_accuracy(double a) const;
};

/// Evaluates the global parameter vector on the server-side test set.
using GlobalEvaluator = std::function<nn::EvalResult(std::span<const float>)>;

class FederatedSimulation {
 public:
  /// All clients must share one parameter dimensionality.  `filter` decides
  /// uploads; `evaluator` runs the server-side test pass.
  FederatedSimulation(std::vector<std::unique_ptr<FlClient>> clients,
                      std::unique_ptr<core::UpdateFilter> filter,
                      GlobalEvaluator evaluator,
                      const SimulationOptions& options);

  /// Initializes the global model from client 0's current parameters (all
  /// clients are then synchronized on the first broadcast).
  SimulationResult run();

  /// Continues a checkpointed run from iteration ck.iteration + 1.  The
  /// simulation must be constructed with the same workload spec and options
  /// as the original run; the checkpoint supplies every piece of mutable
  /// state (model, estimator, RNG streams, counters, history), so the
  /// resumed trajectory is bit-identical to the uninterrupted one.  Throws
  /// std::invalid_argument when the checkpoint does not fit this simulation
  /// (dimension or client-count mismatch).
  SimulationResult resume(const TrainerCheckpoint& checkpoint);

  std::size_t client_count() const noexcept { return clients_.size(); }
  std::size_t param_count() const noexcept { return dim_; }

 private:
  SimulationResult run_internal(const TrainerCheckpoint* resume_from);

  std::vector<std::unique_ptr<FlClient>> clients_;
  std::unique_ptr<core::UpdateFilter> filter_;
  GlobalEvaluator evaluator_;
  SimulationOptions options_;
  std::size_t dim_;
};

}  // namespace cmfl::fl

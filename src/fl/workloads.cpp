#include "fl/workloads.h"

#include <stdexcept>

namespace cmfl::fl {

namespace {

/// Storage bundle for dense workloads; heap-allocated so client pointers
/// stay valid for the Workload's lifetime.
struct DenseStorage {
  data::DenseDataset train;
  data::DenseDataset test;
};

struct SeqStorage {
  data::SequenceDataset train;
  data::SequenceDataset test;
};

/// Batched evaluation keeps peak activation memory bounded.
constexpr std::size_t kEvalBatch = 256;

GlobalEvaluator make_dense_evaluator(
    std::shared_ptr<nn::FeedForward> eval_model,
    std::shared_ptr<DenseStorage> storage) {
  return [eval_model, storage](std::span<const float> params) {
    eval_model->set_params(params);
    nn::EvalResult total;
    tensor::Matrix bx;
    std::vector<int> by;
    const std::size_t n = storage->test.size();
    for (std::size_t begin = 0; begin < n; begin += kEvalBatch) {
      const std::size_t end = std::min(begin + kEvalBatch, n);
      std::vector<std::size_t> idx(end - begin);
      for (std::size_t i = begin; i < end; ++i) idx[i - begin] = i;
      storage->test.gather(idx, bx, by);
      total = nn::merge(total, eval_model->evaluate(bx, by));
    }
    return total;
  };
}

GlobalEvaluator make_seq_evaluator(std::shared_ptr<nn::LstmLm> eval_model,
                                   std::shared_ptr<SeqStorage> storage) {
  return [eval_model, storage](std::span<const float> params) {
    eval_model->set_params(params);
    nn::EvalResult total;
    nn::SeqBatch bx;
    std::vector<int> by;
    const std::size_t n = storage->test.size();
    for (std::size_t begin = 0; begin < n; begin += kEvalBatch) {
      const std::size_t end = std::min(begin + kEvalBatch, n);
      std::vector<std::size_t> idx(end - begin);
      for (std::size_t i = begin; i < end; ++i) idx[i - begin] = i;
      storage->test.gather(idx, bx, by);
      total = nn::merge(total, eval_model->evaluate(bx, by));
    }
    return total;
  };
}

data::Partition partition_dense(const std::string& kind,
                                std::span<const int> labels,
                                std::size_t clients, util::Rng& rng) {
  if (kind == "label_sorted") return data::label_sorted_partition(labels, clients);
  if (kind == "sharded") return data::sharded_partition(labels, clients, 2, rng);
  if (kind == "iid") return data::iid_partition(labels.size(), clients, rng);
  throw std::invalid_argument("unknown partition kind '" + kind + "'");
}

}  // namespace

Workload make_digits_cnn_workload(const DigitsCnnSpec& spec) {
  if (spec.cnn.image_size != spec.digits.image_size) {
    throw std::invalid_argument(
        "make_digits_cnn_workload: CNN and dataset image sizes disagree");
  }
  util::Rng rng(spec.seed);
  auto storage = std::make_shared<DenseStorage>();
  auto train_spec = spec.digits;
  train_spec.samples = spec.train_samples;
  storage->train = data::make_synth_digits(train_spec, rng);
  auto test_spec = spec.digits;
  test_spec.samples = spec.test_samples;
  storage->test = data::make_synth_digits(test_spec, rng);

  const data::Partition partition =
      data::label_sorted_partition(storage->train.y, spec.clients);

  // All clients start from identical weights (the first broadcast
  // synchronizes them anyway; identical init keeps iteration 1 meaningful).
  util::Rng init_rng = rng.split(1);
  Workload w;
  w.storage = storage;
  for (std::size_t k = 0; k < spec.clients; ++k) {
    util::Rng model_rng = init_rng;  // identical weights for every client
    nn::FeedForward model = nn::make_digits_cnn(spec.cnn, model_rng);
    w.clients.push_back(std::make_unique<DenseClient>(
        std::move(model), &storage->train, partition.client_indices[k],
        rng.split(100 + k)));
  }
  util::Rng eval_rng = init_rng;
  auto eval_model = std::make_shared<nn::FeedForward>(
      nn::make_digits_cnn(spec.cnn, eval_rng));
  w.evaluator = make_dense_evaluator(eval_model, storage);
  w.param_count = w.clients.front()->param_count();
  w.description = "digits_cnn(" + std::to_string(spec.clients) +
                  " clients, " + std::to_string(spec.train_samples) +
                  " samples, " + std::to_string(w.param_count) + " params)";
  return w;
}

Workload make_digits_mlp_workload(const DigitsMlpSpec& spec) {
  util::Rng rng(spec.seed);
  auto storage = std::make_shared<DenseStorage>();
  auto train_spec = spec.digits;
  train_spec.samples = spec.train_samples;
  storage->train = data::make_synth_digits(train_spec, rng);
  auto test_spec = spec.digits;
  test_spec.samples = spec.test_samples;
  storage->test = data::make_synth_digits(test_spec, rng);

  util::Rng part_rng = rng.split(7);
  const data::Partition partition = partition_dense(
      spec.partition, storage->train.y, spec.clients, part_rng);

  const std::size_t in_dim = storage->train.features();
  util::Rng init_rng = rng.split(1);
  Workload w;
  w.storage = storage;
  for (std::size_t k = 0; k < spec.clients; ++k) {
    util::Rng model_rng = init_rng;
    nn::FeedForward model = nn::make_mlp(in_dim, spec.hidden,
                                         spec.digits.classes, model_rng);
    w.clients.push_back(std::make_unique<DenseClient>(
        std::move(model), &storage->train, partition.client_indices[k],
        rng.split(100 + k)));
  }
  util::Rng eval_rng = init_rng;
  auto eval_model = std::make_shared<nn::FeedForward>(
      nn::make_mlp(in_dim, spec.hidden, spec.digits.classes, eval_rng));
  w.evaluator = make_dense_evaluator(eval_model, storage);
  w.param_count = w.clients.front()->param_count();
  w.description = "digits_mlp(" + std::to_string(spec.clients) +
                  " clients, " + std::to_string(w.param_count) + " params)";
  return w;
}

PopulationWorkload make_digits_mlp_population(const DigitsMlpSpec& spec) {
  // Mirrors make_digits_mlp_workload exactly: the same rng consumption
  // order fixes the same datasets and partition, and because Rng::split is
  // non-mutating, capturing the post-synthesis rng state lets the factory
  // derive split(100 + k) for any device later — the identical stream the
  // eager constructor hands client k.
  util::Rng rng(spec.seed);
  auto storage = std::make_shared<DenseStorage>();
  auto train_spec = spec.digits;
  train_spec.samples = spec.train_samples;
  storage->train = data::make_synth_digits(train_spec, rng);
  auto test_spec = spec.digits;
  test_spec.samples = spec.test_samples;
  storage->test = data::make_synth_digits(test_spec, rng);

  util::Rng part_rng = rng.split(7);
  auto partition = std::make_shared<data::Partition>(partition_dense(
      spec.partition, storage->train.y, spec.clients, part_rng));

  const std::size_t in_dim = storage->train.features();
  util::Rng init_rng = rng.split(1);
  const util::Rng stream_base = rng;

  PopulationWorkload w;
  w.storage = storage;
  const auto hidden = spec.hidden;
  const auto classes = spec.digits.classes;
  w.factory = [storage, partition, init_rng, stream_base, in_dim, hidden,
               classes](std::uint64_t device) -> std::unique_ptr<FlClient> {
    if (device >= partition->client_indices.size()) {
      throw std::out_of_range(
          "digits_mlp_population: device id beyond spec.clients");
    }
    util::Rng model_rng = init_rng;  // identical weights for every device
    nn::FeedForward model =
        nn::make_mlp(in_dim, hidden, classes, model_rng);
    util::Rng streams = stream_base;
    return std::make_unique<DenseClient>(
        std::move(model), &storage->train,
        partition->client_indices[device], streams.split(100 + device));
  };
  util::Rng eval_rng = init_rng;
  auto eval_model = std::make_shared<nn::FeedForward>(
      nn::make_mlp(in_dim, spec.hidden, spec.digits.classes, eval_rng));
  w.evaluator = make_dense_evaluator(eval_model, storage);
  w.param_count = eval_model->param_count();
  w.description = "digits_mlp_population(" + std::to_string(spec.clients) +
                  " devices, " + std::to_string(w.param_count) + " params)";
  return w;
}

Workload make_nwp_lstm_workload(const NwpLstmSpec& spec) {
  if (spec.test_fraction <= 0.0 || spec.test_fraction >= 1.0) {
    throw std::invalid_argument(
        "make_nwp_lstm_workload: test_fraction out of (0,1)");
  }
  util::Rng rng(spec.seed);
  data::RoleCorpus corpus = data::make_synth_text(spec.text, rng);

  // Split each role's windows into local-train and server-test so the test
  // distribution covers every role.
  auto storage = std::make_shared<SeqStorage>();
  storage->train.seq_len = storage->test.seq_len = corpus.dataset.seq_len;
  storage->train.vocab = storage->test.vocab = corpus.dataset.vocab;
  std::vector<std::vector<std::size_t>> client_shards(spec.text.roles);
  for (std::size_t role = 0; role < spec.text.roles; ++role) {
    const auto& windows = corpus.windows_of_role[role];
    if (windows.size() < 2) {
      throw std::invalid_argument(
          "make_nwp_lstm_workload: role with fewer than 2 windows; increase "
          "words_per_role");
    }
    const auto test_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec.test_fraction *
                                    static_cast<double>(windows.size())));
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const std::size_t src = windows[i];
      data::SequenceDataset& dst =
          i < windows.size() - test_count ? storage->train : storage->test;
      if (i < windows.size() - test_count) {
        client_shards[role].push_back(dst.size());
      }
      dst.tokens.insert(dst.tokens.end(),
                        corpus.dataset.tokens.begin() +
                            static_cast<std::ptrdiff_t>(src * corpus.dataset.seq_len),
                        corpus.dataset.tokens.begin() +
                            static_cast<std::ptrdiff_t>((src + 1) * corpus.dataset.seq_len));
      dst.next_token.push_back(corpus.dataset.next_token[src]);
    }
  }
  storage->train.validate();
  storage->test.validate();

  nn::LstmLmSpec lm = spec.lm;
  lm.vocab = corpus.dataset.vocab;

  util::Rng init_rng = rng.split(1);
  Workload w;
  w.storage = storage;
  for (std::size_t k = 0; k < spec.text.roles; ++k) {
    util::Rng model_rng = init_rng;
    nn::LstmLm model(lm);
    model.init_params(model_rng);
    w.clients.push_back(std::make_unique<SequenceClient>(
        std::move(model), &storage->train, client_shards[k],
        rng.split(100 + k)));
  }
  util::Rng eval_rng = init_rng;
  auto eval_model = std::make_shared<nn::LstmLm>(lm);
  eval_model->init_params(eval_rng);
  w.evaluator = make_seq_evaluator(eval_model, storage);
  w.param_count = w.clients.front()->param_count();
  w.description = "nwp_lstm(" + std::to_string(spec.text.roles) +
                  " roles, vocab " + std::to_string(lm.vocab) + ", " +
                  std::to_string(w.param_count) + " params)";
  return w;
}

}  // namespace cmfl::fl

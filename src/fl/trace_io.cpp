#include "fl/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cmfl::fl {

namespace {
constexpr char kHeader[] =
    "iteration,uploads,cumulative_rounds,mean_score,mean_train_loss,"
    "delta_update,accuracy,loss";

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  // Trailing empty cell ("...,") is dropped by getline; restore it.
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}
}  // namespace

void write_trace_csv(std::ostream& os, const SimulationResult& result) {
  os << kHeader << '\n';
  for (const auto& rec : result.history) {
    os << rec.iteration << ',' << rec.uploads << ','
       << rec.cumulative_rounds << ',' << rec.mean_score << ','
       << rec.mean_train_loss << ',' << rec.delta_update << ',';
    if (rec.evaluated()) {
      os << rec.accuracy << ',' << rec.loss;
    } else {
      os << ',';
    }
    os << '\n';
  }
  if (!os) throw std::runtime_error("write_trace_csv: stream write failed");
}

void write_trace_csv_file(const std::string& path,
                          const SimulationResult& result) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_trace_csv_file: cannot open " + path);
  }
  write_trace_csv(os, result);
}

SimulationResult read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("read_trace_csv: missing or wrong header");
  }
  SimulationResult result;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    if (cells.size() != 8) {
      throw std::runtime_error("read_trace_csv: expected 8 cells, got " +
                               std::to_string(cells.size()));
    }
    IterationRecord rec;
    try {
      rec.iteration = std::stoull(cells[0]);
      rec.uploads = std::stoull(cells[1]);
      rec.cumulative_rounds = std::stoull(cells[2]);
      rec.mean_score = std::stod(cells[3]);
      rec.mean_train_loss = std::stod(cells[4]);
      rec.delta_update = std::stod(cells[5]);
      if (!cells[6].empty()) {
        rec.accuracy = std::stod(cells[6]);
        rec.loss = std::stod(cells[7]);
      }
    } catch (const std::exception&) {
      throw std::runtime_error("read_trace_csv: malformed row '" + line +
                               "'");
    }
    result.history.push_back(rec);
  }
  // Rebuild the derived summary fields.
  if (!result.history.empty()) {
    result.total_rounds = result.history.back().cumulative_rounds;
    for (auto it = result.history.rbegin(); it != result.history.rend();
         ++it) {
      if (it->evaluated()) {
        result.final_accuracy = it->accuracy;
        break;
      }
    }
  }
  return result;
}

SimulationResult read_trace_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("read_trace_csv_file: cannot open " + path);
  }
  return read_trace_csv(is);
}

}  // namespace cmfl::fl

#include "fl/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cmfl::fl {

namespace {
constexpr char kVersionLine[] = "# cmfl-trace v2";
constexpr char kHeaderV2[] =
    "iteration,uploads,participants,rejected,cumulative_rounds,"
    "cumulative_upload_bytes,mean_score,mean_train_loss,delta_update,"
    "staleness_mean,staleness_max,accuracy,loss";
constexpr char kHeaderV1[] =
    "iteration,uploads,cumulative_rounds,mean_score,mean_train_loss,"
    "delta_update,accuracy,loss";

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  // Trailing empty cell ("...,") is dropped by getline; restore it.
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

void finalize_summary(SimulationResult& result) {
  if (result.history.empty()) return;
  result.total_rounds = result.history.back().cumulative_rounds;
  result.uploaded_bytes = result.history.back().cumulative_upload_bytes;
  for (auto it = result.history.rbegin(); it != result.history.rend();
       ++it) {
    if (it->evaluated()) {
      result.final_accuracy = it->accuracy;
      break;
    }
  }
}

IterationRecord parse_row_v1(const std::vector<std::string>& cells) {
  IterationRecord rec;
  rec.iteration = std::stoull(cells[0]);
  rec.uploads = std::stoull(cells[1]);
  rec.cumulative_rounds = std::stoull(cells[2]);
  rec.mean_score = std::stod(cells[3]);
  rec.mean_train_loss = std::stod(cells[4]);
  rec.delta_update = std::stod(cells[5]);
  if (!cells[6].empty()) {
    rec.accuracy = std::stod(cells[6]);
    rec.loss = std::stod(cells[7]);
  }
  return rec;
}

IterationRecord parse_row_v2(const std::vector<std::string>& cells) {
  IterationRecord rec;
  rec.iteration = std::stoull(cells[0]);
  rec.uploads = std::stoull(cells[1]);
  rec.participants = std::stoull(cells[2]);
  rec.rejected = std::stoull(cells[3]);
  rec.cumulative_rounds = std::stoull(cells[4]);
  rec.cumulative_upload_bytes = std::stoull(cells[5]);
  rec.mean_score = std::stod(cells[6]);
  rec.mean_train_loss = std::stod(cells[7]);
  rec.delta_update = std::stod(cells[8]);
  rec.staleness_mean = std::stod(cells[9]);
  rec.staleness_max = std::stoull(cells[10]);
  if (!cells[11].empty()) {
    rec.accuracy = std::stod(cells[11]);
    rec.loss = std::stod(cells[12]);
  }
  return rec;
}
}  // namespace

void write_trace_csv(std::ostream& os, const SimulationResult& result) {
  os << kVersionLine << '\n' << kHeaderV2 << '\n';
  for (const auto& rec : result.history) {
    os << rec.iteration << ',' << rec.uploads << ',' << rec.participants
       << ',' << rec.rejected << ',' << rec.cumulative_rounds << ','
       << rec.cumulative_upload_bytes << ',' << rec.mean_score << ','
       << rec.mean_train_loss << ',' << rec.delta_update << ','
       << rec.staleness_mean << ',' << rec.staleness_max << ',';
    if (rec.evaluated()) {
      os << rec.accuracy << ',' << rec.loss;
    } else {
      os << ',';
    }
    os << '\n';
  }
  // Per-client counters ride as trailing rows keyed by the literal
  // "client"; either vector may be empty (e.g. a trace read from v1),
  // in which case rows carry whichever counter exists.
  const std::size_t clients = std::max(result.uploads_per_client.size(),
                                       result.eliminations_per_client.size());
  for (std::size_t id = 0; id < clients; ++id) {
    const std::size_t up =
        id < result.uploads_per_client.size() ? result.uploads_per_client[id]
                                              : 0;
    const std::size_t el = id < result.eliminations_per_client.size()
                               ? result.eliminations_per_client[id]
                               : 0;
    os << "client," << id << ',' << up << ',' << el << '\n';
  }
  if (!os) throw std::runtime_error("write_trace_csv: stream write failed");
}

void write_trace_csv_file(const std::string& path,
                          const SimulationResult& result) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_trace_csv_file: cannot open " + path);
  }
  write_trace_csv(os, result);
}

SimulationResult read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("read_trace_csv: empty input");
  }

  SimulationResult result;
  if (line == kHeaderV1) {
    // Legacy schema: 8 columns, no sentinel, no client rows.
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      const auto cells = split_csv(line);
      if (cells.size() != 8) {
        throw std::runtime_error("read_trace_csv: expected 8 cells, got " +
                                 std::to_string(cells.size()));
      }
      try {
        result.history.push_back(parse_row_v1(cells));
      } catch (const std::exception&) {
        throw std::runtime_error("read_trace_csv: malformed row '" + line +
                                 "'");
      }
    }
    finalize_summary(result);
    return result;
  }

  if (line != kVersionLine) {
    throw std::runtime_error("read_trace_csv: missing or wrong header");
  }
  if (!std::getline(is, line) || line != kHeaderV2) {
    throw std::runtime_error("read_trace_csv: v2 column header missing");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    if (!cells.empty() && cells[0] == "client") {
      if (cells.size() != 4) {
        throw std::runtime_error(
            "read_trace_csv: client row needs 4 cells, got " +
            std::to_string(cells.size()));
      }
      try {
        const std::size_t id = std::stoull(cells[1]);
        if (id >= result.uploads_per_client.size()) {
          result.uploads_per_client.resize(id + 1, 0);
          result.eliminations_per_client.resize(id + 1, 0);
        }
        result.uploads_per_client[id] = std::stoull(cells[2]);
        result.eliminations_per_client[id] = std::stoull(cells[3]);
      } catch (const std::exception&) {
        throw std::runtime_error("read_trace_csv: malformed client row '" +
                                 line + "'");
      }
      continue;
    }
    if (cells.size() != 13) {
      throw std::runtime_error("read_trace_csv: expected 13 cells, got " +
                               std::to_string(cells.size()));
    }
    try {
      result.history.push_back(parse_row_v2(cells));
    } catch (const std::exception&) {
      throw std::runtime_error("read_trace_csv: malformed row '" + line +
                               "'");
    }
  }
  finalize_summary(result);
  return result;
}

SimulationResult read_trace_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("read_trace_csv_file: cannot open " + path);
  }
  return read_trace_csv(is);
}

}  // namespace cmfl::fl

// Communication-efficiency metrics (paper §II-B and §V).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fl/simulation.h"

namespace cmfl::fl {

/// Saving^a_A = Φ^a_vanilla / Φ^a_A (paper §V-A).  Returns std::nullopt if
/// either run never reached accuracy `a`.
std::optional<double> saving(const SimulationResult& vanilla,
                             const SimulationResult& algorithm,
                             double accuracy);

/// Byte-valued Saving^a_A: the same ratio with Φ measured in uplink bytes
/// (bytes_to_accuracy) instead of update counts.  Counting rounds treats a
/// compressed and an uncompressed upload as equally expensive; this metric
/// doesn't, so compression × CMFL × scheduling comparisons stay
/// apples-to-apples.  Returns std::nullopt if either run never reached
/// accuracy `a` or the algorithm spent zero bytes.
std::optional<double> saving_bytes(const SimulationResult& vanilla,
                                   const SimulationResult& algorithm,
                                   double accuracy);

/// One row of a Table-I-style report.
struct SavingRow {
  std::string workload;
  double accuracy = 0.0;
  std::optional<std::size_t> vanilla_rounds;
  std::optional<std::size_t> algo_rounds;
  std::optional<double> saving;
  /// Uplink bytes each run had spent when it first reached `accuracy`, and
  /// their ratio (saving_bytes above).
  std::optional<std::uint64_t> vanilla_bytes;
  std::optional<std::uint64_t> algo_bytes;
  std::optional<double> byte_saving;
};

SavingRow make_saving_row(const std::string& workload, double accuracy,
                          const SimulationResult& vanilla,
                          const SimulationResult& algorithm);

/// Accuracy-vs-cumulative-rounds series (the Fig. 4/5/7a curves): one point
/// per evaluated iteration.
struct CurvePoint {
  std::size_t rounds = 0;
  double accuracy = 0.0;
};
std::vector<CurvePoint> accuracy_curve(const SimulationResult& result);

/// Sweeps candidate thresholds and returns the index of the run reaching
/// `accuracy` with the fewest accumulated rounds; falls back to the run with
/// the highest final accuracy when none qualifies.  Mirrors the paper's
/// "tested a set of 10 threshold values ... chose the threshold values with
/// the best performance".
///
/// When `require_sustained` is true (the default), a run only qualifies if
/// its *final* accuracy also meets the target — this excludes degenerate
/// starvation regimes that transiently touch the target accuracy while the
/// model is drifting and then collapse (they would otherwise game the
/// rounds-to-accuracy metric).
std::size_t best_run_index(const std::vector<SimulationResult>& runs,
                           double accuracy, bool require_sustained = true);

}  // namespace cmfl::fl

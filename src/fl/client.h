// Federated clients: a local model bound to a private data shard.
//
// The simulation drives clients through a minimal interface — download the
// global model, train E local epochs, read back the trained parameters.
// Update construction (trained − global) and the upload decision live in the
// simulation/filter layer, mirroring Algorithm 1's split between
// LocalUpdate and CheckRelevance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/feed_forward.h"
#include "nn/lstm_lm.h"
#include "util/rng.h"

namespace cmfl::fl {

class FlClient {
 public:
  virtual ~FlClient() = default;

  virtual std::size_t param_count() = 0;
  virtual std::size_t local_samples() const = 0;

  /// Installs the global model x_{t-1}.
  virtual void set_params(std::span<const float> params) = 0;

  /// Reads the current (post-training) local parameters.
  virtual void get_params(std::span<float> out) = 0;

  /// Runs `epochs` passes of mini-batch SGD (batch size `batch_size`,
  /// learning rate `lr`) over the client's shard.  Returns the mean
  /// training loss of the final epoch.
  virtual double train_local(int epochs, std::size_t batch_size,
                             float lr) = 0;

  /// Total optimization steps this client instance has ever run (SGD
  /// batches for the learning clients, gradient steps for the convex one).
  /// A process-lifetime observation, deliberately excluded from
  /// mutable_state(): it exists so tests can assert that unsampled clients
  /// did no local work (the lazy-participation contract of the simulation
  /// and the scheduler), not to survive checkpoints.
  virtual std::uint64_t lifetime_steps() const { return 0; }

  /// Mutable stochastic state (batch-shuffle / noise RNG streams) as opaque
  /// u64 words.  Model parameters are deliberately excluded: the broadcast
  /// overwrites them every round, so the RNG streams are the only per-client
  /// state a crash-consistent checkpoint must carry for a resumed run to
  /// retrace the uninterrupted trajectory bit-identically.
  virtual std::vector<std::uint64_t> mutable_state() const { return {}; }

  /// Restores a state captured by mutable_state(); throws
  /// std::invalid_argument on a malformed blob.
  virtual void restore_mutable_state(std::span<const std::uint64_t> state);
};

/// FeedForward model over a DenseDataset shard (CNN and MLP workloads).
class DenseClient final : public FlClient {
 public:
  /// The dataset must outlive the client; `shard` indexes into it.
  DenseClient(nn::FeedForward model, const data::DenseDataset* dataset,
              std::vector<std::size_t> shard, util::Rng rng);

  std::size_t param_count() override { return model_.param_count(); }
  std::size_t local_samples() const override { return shard_.size(); }
  void set_params(std::span<const float> params) override;
  void get_params(std::span<float> out) override;
  double train_local(int epochs, std::size_t batch_size, float lr) override;
  std::uint64_t lifetime_steps() const override { return lifetime_steps_; }
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  nn::FeedForward model_;
  const data::DenseDataset* dataset_;
  std::vector<std::size_t> shard_;
  util::Rng rng_;
  std::uint64_t lifetime_steps_ = 0;
};

/// LstmLm over a SequenceDataset shard (the NWP workload).
class SequenceClient final : public FlClient {
 public:
  SequenceClient(nn::LstmLm model, const data::SequenceDataset* dataset,
                 std::vector<std::size_t> shard, util::Rng rng);

  std::size_t param_count() override { return model_.param_count(); }
  std::size_t local_samples() const override { return shard_.size(); }
  void set_params(std::span<const float> params) override;
  void get_params(std::span<float> out) override;
  double train_local(int epochs, std::size_t batch_size, float lr) override;
  std::uint64_t lifetime_steps() const override { return lifetime_steps_; }
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  nn::LstmLm model_;
  const data::SequenceDataset* dataset_;
  std::vector<std::size_t> shard_;
  util::Rng rng_;
  std::uint64_t lifetime_steps_ = 0;
};

}  // namespace cmfl::fl

// Ready-made federated workloads: dataset synthesis + partitioning + client
// construction + server-side evaluator, bundled so benches and examples are
// a few lines each.
//
// Workload naming follows the paper:
//   * digits_cnn — "MNIST digit recognition model using CNN" (§V-A (1)),
//     synthetic digits, label-sorted non-IID partition.
//   * nwp_lstm   — "Next-Word-Prediction model using LSTM" (§V-A (2)),
//     role-conditioned synthetic dialogue, one client per speaking role.
//   * digits_mlp — small MLP variant for fast tests and the quickstart.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "data/partition.h"
#include "data/synth_digits.h"
#include "data/synth_text.h"
#include "fl/simulation.h"

namespace cmfl::fl {

/// A fully wired federated workload.  `storage` owns the datasets that the
/// clients reference; keep the Workload alive for as long as its clients or
/// evaluator are in use.
struct Workload {
  std::vector<std::unique_ptr<FlClient>> clients;
  GlobalEvaluator evaluator;
  std::shared_ptr<void> storage;
  std::size_t param_count = 0;
  std::string description;
};

struct DigitsCnnSpec {
  std::size_t clients = 50;
  std::size_t train_samples = 2000;
  std::size_t test_samples = 500;
  nn::CnnSpec cnn;                 // image_size must match digits.image_size
  data::SynthDigitsSpec digits;
  std::uint64_t seed = 42;
};

Workload make_digits_cnn_workload(const DigitsCnnSpec& spec);

struct DigitsMlpSpec {
  std::size_t clients = 20;
  std::size_t train_samples = 800;
  std::size_t test_samples = 200;
  std::vector<std::size_t> hidden = {32};
  data::SynthDigitsSpec digits;
  std::uint64_t seed = 42;
  /// "label_sorted" (paper protocol) | "sharded" | "iid"
  std::string partition = "label_sorted";
};

Workload make_digits_mlp_workload(const DigitsMlpSpec& spec);

/// A workload re-shaped for a sched::Population: the shared dataset,
/// partition and weight-init stream are built once, and `factory(k)`
/// materializes device k on demand — bit-identical to the k-th eager
/// make_digits_mlp_workload client (same shard, same initial weights, same
/// RNG stream), so a lazily materialized engine run trains the exact
/// clients the eager simulation would.  The factory keeps `storage` alive
/// through its captures; materializing a client costs one model init, not
/// a dataset build.
struct PopulationWorkload {
  std::function<std::unique_ptr<FlClient>(std::uint64_t)> factory;
  GlobalEvaluator evaluator;
  std::shared_ptr<void> storage;
  std::size_t param_count = 0;
  std::string description;
};

PopulationWorkload make_digits_mlp_population(const DigitsMlpSpec& spec);

struct NwpLstmSpec {
  data::SynthTextSpec text;       // roles == clients
  nn::LstmLmSpec lm;              // vocab is overwritten from the corpus
  double test_fraction = 0.2;     // windows held out per role for the server
  std::uint64_t seed = 42;
};

Workload make_nwp_lstm_workload(const NwpLstmSpec& spec);

}  // namespace cmfl::fl

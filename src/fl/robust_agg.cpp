#include "fl/robust_agg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.h"
#include "tensor/vector_ops.h"

namespace cmfl::fl {

namespace {

/// Median of a scratch vector (modifies it).  n >= 1.  For even n this is
/// the lower median — cheaper than averaging and just as robust here.
template <typename T>
T median_in_place(std::vector<T>& v) {
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

double update_l2_norm(std::span<const float> v) {
  double sq = 0.0;
  for (const float x : v) sq += static_cast<double>(x) * x;
  return std::sqrt(sq);
}

bool update_all_finite(std::span<const float> v) {
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

Aggregation parse_aggregation(const std::string& name) {
  if (name == "mean") return Aggregation::kUniformMean;
  if (name == "weighted") return Aggregation::kSampleWeighted;
  if (name == "median") return Aggregation::kMedian;
  if (name == "trimmed") return Aggregation::kTrimmedMean;
  if (name == "clipped") return Aggregation::kNormClippedMean;
  throw std::invalid_argument("parse_aggregation: unknown rule '" + name +
                              "'");
}

std::string aggregation_name(Aggregation rule) {
  switch (rule) {
    case Aggregation::kUniformMean: return "mean";
    case Aggregation::kSampleWeighted: return "weighted";
    case Aggregation::kMedian: return "median";
    case Aggregation::kTrimmedMean: return "trimmed";
    case Aggregation::kNormClippedMean: return "clipped";
  }
  return "unknown";
}

std::vector<float> clipped_mean_coefficients(std::span<const double> norms,
                                             const RobustAggOptions& options) {
  if (norms.empty()) {
    throw std::invalid_argument("clipped_mean_coefficients: no norms");
  }
  const std::size_t n = norms.size();
  double radius = options.clip_norm;
  if (radius <= 0.0) {
    std::vector<double> scratch(norms.begin(), norms.end());
    radius = median_in_place(scratch);
  }
  std::vector<float> coeff(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale =
        (radius > 0.0 && norms[i] > radius) ? radius / norms[i] : 1.0;
    coeff[i] = static_cast<float>(scale / static_cast<double>(n));
  }
  return coeff;
}

void aggregate_updates_range(Aggregation rule,
                             std::span<const std::span<const float>> updates,
                             std::span<const float> weights,
                             const RobustAggOptions& options,
                             std::span<const double> norms, std::span<float> out,
                             std::size_t lo, std::size_t hi) {
  if (updates.empty()) {
    throw std::invalid_argument("aggregate_updates: no updates");
  }
  const std::size_t dim = out.size();
  for (const auto& u : updates) {
    if (u.size() != dim) {
      throw std::invalid_argument("aggregate_updates: update size mismatch");
    }
  }
  if (lo > hi || hi > dim) {
    throw std::invalid_argument("aggregate_updates_range: bad range");
  }
  const std::size_t n = updates.size();

  switch (rule) {
    case Aggregation::kUniformMean:
      tensor::kernels::scaled_sum_range(updates, 1.0f / static_cast<float>(n),
                                        out, lo, hi);
      return;

    case Aggregation::kSampleWeighted:
      if (weights.size() != n) {
        throw std::invalid_argument(
            "aggregate_updates: weighted rule needs one weight per update");
      }
      tensor::kernels::weighted_sum_range(updates, weights, out, lo, hi);
      return;

    case Aggregation::kMedian: {
      std::vector<float> column(n);
      for (std::size_t j = lo; j < hi; ++j) {
        for (std::size_t i = 0; i < n; ++i) column[i] = updates[i][j];
        out[j] = median_in_place(column);
        column.resize(n);
      }
      return;
    }

    case Aggregation::kTrimmedMean: {
      if (options.trim_fraction < 0.0 || options.trim_fraction >= 0.5) {
        throw std::invalid_argument(
            "aggregate_updates: trim_fraction must lie in [0, 0.5)");
      }
      // Trim k from each end, keeping at least one survivor.
      std::size_t k = static_cast<std::size_t>(
          options.trim_fraction * static_cast<double>(n));
      if (2 * k >= n) k = (n - 1) / 2;
      const std::size_t kept = n - 2 * k;
      std::vector<float> column(n);
      for (std::size_t j = lo; j < hi; ++j) {
        for (std::size_t i = 0; i < n; ++i) column[i] = updates[i][j];
        std::sort(column.begin(), column.end());
        double sum = 0.0;
        for (std::size_t i = k; i < n - k; ++i) {
          sum += static_cast<double>(column[i]);
        }
        out[j] = static_cast<float>(sum / static_cast<double>(kept));
      }
      return;
    }

    case Aggregation::kNormClippedMean: {
      if (norms.size() != n) {
        throw std::invalid_argument(
            "aggregate_updates_range: clipped rule needs one full-vector "
            "norm per update");
      }
      const auto coeff = clipped_mean_coefficients(norms, options);
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(lo),
                out.begin() + static_cast<std::ptrdiff_t>(hi), 0.0f);
      const std::size_t len = hi - lo;
      auto slice = out.subspan(lo, len);
      for (std::size_t i = 0; i < n; ++i) {
        // axpy is a plain element-wise loop, so the subrange call matches
        // the same elements of the legacy full-vector apply.
        tensor::axpy(coeff[i], updates[i].subspan(lo, len), slice);
      }
      return;
    }
  }
  throw std::invalid_argument("aggregate_updates: unknown rule");
}

void aggregate_updates(Aggregation rule,
                       std::span<const std::span<const float>> updates,
                       std::span<const float> weights,
                       const RobustAggOptions& options, std::span<float> out) {
  std::vector<double> norms;
  if (rule == Aggregation::kNormClippedMean) {
    norms.reserve(updates.size());
    for (const auto& u : updates) norms.push_back(update_l2_norm(u));
  }
  aggregate_updates_range(rule, updates, weights, options, norms, out, 0,
                          out.size());
}

std::size_t ValidationReport::quarantined_count() const noexcept {
  std::size_t count = 0;
  for (const auto q : quarantined) count += q != 0;
  return count;
}

UpdateValidator::UpdateValidator(std::size_t num_clients,
                                 const ValidationPolicy& policy)
    : policy_(policy) {
  if (policy.max_norm < 0.0 || policy.norm_multiple < 0.0) {
    throw std::invalid_argument("UpdateValidator: negative norm bound");
  }
  report_.strikes.assign(num_clients, 0);
  report_.quarantined.assign(num_clients, 0);
}

bool UpdateValidator::quarantined(std::size_t client) const {
  return client < report_.quarantined.size() &&
         report_.quarantined[client] != 0;
}

std::vector<Verdict> UpdateValidator::screen_round(
    std::span<const std::size_t> clients,
    std::span<const std::span<const float>> updates) {
  if (clients.size() != updates.size()) {
    throw std::invalid_argument("UpdateValidator: clients/updates mismatch");
  }
  // The span overload is the precomputed overload applied to scalars scanned
  // here — one code path, so sharded and serial screening cannot diverge.
  std::vector<UploadScalars> pre(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    pre[i].finite = update_all_finite(updates[i]);
    pre[i].norm = update_l2_norm(updates[i]);
  }
  return screen_round(clients, pre);
}

std::vector<Verdict> UpdateValidator::screen_round(
    std::span<const std::size_t> clients,
    std::span<const UploadScalars> pre) {
  if (clients.size() != pre.size()) {
    throw std::invalid_argument("UpdateValidator: clients/scalars mismatch");
  }
  const std::size_t n = pre.size();
  std::vector<Verdict> verdicts(n, Verdict::kAccept);

  // Pass 1: structural checks, and norms of the structurally sound updates
  // (the round median must not be skewed by garbage values).
  std::vector<double> norms(n, 0.0);
  std::vector<double> finite_norms;
  finite_norms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = clients[i];
    if (k >= report_.strikes.size()) {
      throw std::invalid_argument("UpdateValidator: client id out of range");
    }
    if (report_.quarantined[k]) {
      verdicts[i] = Verdict::kQuarantined;
      continue;
    }
    if (policy_.reject_nonfinite && !pre[i].finite) {
      verdicts[i] = Verdict::kNonFinite;
      continue;
    }
    norms[i] = pre[i].norm;
    if (policy_.max_norm > 0.0 && norms[i] > policy_.max_norm) {
      verdicts[i] = Verdict::kNormExploded;
      continue;
    }
    finite_norms.push_back(norms[i]);
  }

  // Pass 2: relative norm rule against this round's median.
  if (policy_.norm_multiple > 0.0 && finite_norms.size() >= 3) {
    const double med = median_in_place(finite_norms);
    if (med > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (verdicts[i] == Verdict::kAccept &&
            norms[i] > policy_.norm_multiple * med) {
          verdicts[i] = Verdict::kNormExploded;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = clients[i];
    switch (verdicts[i]) {
      case Verdict::kAccept:
        continue;
      case Verdict::kQuarantined:
        ++report_.discarded_quarantined;
        continue;
      case Verdict::kNonFinite:
        ++report_.rejected_nonfinite;
        break;
      case Verdict::kNormExploded:
        ++report_.rejected_norm;
        break;
    }
    ++report_.strikes[k];
    if (policy_.quarantine_after > 0 &&
        report_.strikes[k] >= policy_.quarantine_after) {
      report_.quarantined[k] = 1;
    }
  }
  return verdicts;
}

void UpdateValidator::restore(const ValidationReport& report) {
  if (report.strikes.size() != report_.strikes.size() ||
      report.quarantined.size() != report_.quarantined.size()) {
    throw std::invalid_argument("UpdateValidator: restore size mismatch");
  }
  report_ = report;
}

}  // namespace cmfl::fl

// Persistence of simulation traces.
//
// Benches print their tables to stdout; for downstream plotting the full
// per-iteration history can be exported as CSV and read back.  Two schema
// versions exist:
//
//   v2 (written by write_trace_csv) opens with a version sentinel line
//       # cmfl-trace v2
//   followed by the column header
//       iteration,uploads,participants,rejected,cumulative_rounds,
//       cumulative_upload_bytes,mean_score,mean_train_loss,delta_update,
//       staleness_mean,staleness_max,accuracy,loss
//   one row per iteration (accuracy/loss cells empty when the iteration was
//   not evaluated), and then one trailing row per client
//       client,<id>,<uploads>,<eliminations>
//   carrying the per-client communication counters (Fig.-6-style outlier
//   analysis needs them from a saved trace).
//
//   v1 (the legacy schema: no sentinel, 8 columns, no client rows) is still
//   read transparently — read_trace_csv detects the version from the first
//   line, and v1 traces load with the newer fields defaulted to zero.
#pragma once

#include <iosfwd>
#include <string>

#include "fl/simulation.h"

namespace cmfl::fl {

/// Writes `result.history` (and the per-client upload/elimination counters,
/// when present) as v2 CSV.  Throws std::runtime_error on stream failure.
void write_trace_csv(std::ostream& os, const SimulationResult& result);
void write_trace_csv_file(const std::string& path,
                          const SimulationResult& result);

/// Reads a v1 or v2 trace back into a SimulationResult (history plus, for
/// v2, the per-client counters; model parameters are not part of the CSV).
/// Throws std::runtime_error on malformed input.
SimulationResult read_trace_csv(std::istream& is);
SimulationResult read_trace_csv_file(const std::string& path);

}  // namespace cmfl::fl

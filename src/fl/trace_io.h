// Persistence of simulation traces.
//
// Benches print their tables to stdout; for downstream plotting the full
// per-iteration history can be exported as CSV and read back.  The format
// is one header line plus one row per iteration:
//   iteration,uploads,cumulative_rounds,mean_score,mean_train_loss,
//   delta_update,accuracy,loss
// (accuracy/loss cells are empty for non-evaluated iterations).
#pragma once

#include <iosfwd>
#include <string>

#include "fl/simulation.h"

namespace cmfl::fl {

/// Writes `result.history` as CSV.  Throws std::runtime_error on stream
/// failure.
void write_trace_csv(std::ostream& os, const SimulationResult& result);
void write_trace_csv_file(const std::string& path,
                          const SimulationResult& result);

/// Reads a trace back into a SimulationResult (history only; model
/// parameters and per-client counters are not part of the CSV).  Throws
/// std::runtime_error on malformed input.
SimulationResult read_trace_csv(std::istream& is);
SimulationResult read_trace_csv_file(const std::string& path);

}  // namespace cmfl::fl

#include "fl/checkpoint.h"

#include <cstring>
#include <stdexcept>

#include "net/wire.h"  // header-only WireWriter/WireReader primitives
#include "util/durable_file.h"

namespace cmfl::fl {

namespace {

constexpr std::array<char, 4> kMagic = {'C', 'M', 'C', 'K'};
// v2: IterationRecord gained cumulative_upload_bytes + staleness fields,
// TrainerCheckpoint gained uploads_per_client and the scheduler section.
// v3: SchedInFlightReport gained wire_bytes (the encoded upload size an
// in-flight report will add on arrival), SchedulerCheckpoint gained the
// sparse per-device codec-state map.
// v4: SchedulerCheckpoint gained the sharded-aggregator ingest counters
// (shard_stats).
constexpr std::uint32_t kVersion = 4;

void put_u64_vec(net::WireWriter& w, std::span<const std::uint64_t> v) {
  w.u64(v.size());
  for (const std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> get_u64_vec(net::WireReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error("decode_checkpoint: u64 array exceeds payload");
  }
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.u64();
  return v;
}

void put_record(net::WireWriter& w, const IterationRecord& rec) {
  w.u64(rec.iteration);
  w.u64(rec.uploads);
  w.u64(rec.participants);
  w.u64(rec.rejected);
  w.u64(rec.cumulative_rounds);
  w.u64(rec.cumulative_upload_bytes);
  w.f64(rec.mean_score);
  w.f64(rec.mean_train_loss);
  w.f64(rec.delta_update);
  w.f64(rec.staleness_mean);
  w.u64(rec.staleness_max);
  w.f64(rec.accuracy);
  w.f64(rec.loss);
}

IterationRecord get_record(net::WireReader& r) {
  IterationRecord rec;
  rec.iteration = static_cast<std::size_t>(r.u64());
  rec.uploads = static_cast<std::size_t>(r.u64());
  rec.participants = static_cast<std::size_t>(r.u64());
  rec.rejected = static_cast<std::size_t>(r.u64());
  rec.cumulative_rounds = static_cast<std::size_t>(r.u64());
  rec.cumulative_upload_bytes = r.u64();
  rec.mean_score = r.f64();
  rec.mean_train_loss = r.f64();
  rec.delta_update = r.f64();
  rec.staleness_mean = r.f64();
  rec.staleness_max = static_cast<std::size_t>(r.u64());
  rec.accuracy = r.f64();
  rec.loss = r.f64();
  return rec;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

std::vector<std::byte> encode_checkpoint(const TrainerCheckpoint& ck) {
  net::WireWriter w;
  w.u64(ck.iteration);
  w.floats(ck.global_params);
  w.floats(ck.estimator_estimate);
  w.u8(ck.estimator_observed ? 1 : 0);
  w.floats(ck.prev_global_update);
  w.u64(ck.cumulative_rounds);
  w.u64(ck.uploaded_bytes);

  w.u64(ck.history.size());
  for (const auto& rec : ck.history) put_record(w, rec);
  put_u64_vec(w, ck.eliminations_per_client);
  put_u64_vec(w, ck.uploads_per_client);
  put_u64_vec(w, ck.server_rng);

  w.u64(ck.validation.rejected_nonfinite);
  w.u64(ck.validation.rejected_norm);
  w.u64(ck.validation.discarded_quarantined);
  w.u64(ck.validation.strikes.size());
  for (const std::uint32_t s : ck.validation.strikes) w.u32(s);
  w.u64(ck.validation.quarantined.size());
  for (const std::uint8_t q : ck.validation.quarantined) w.u8(q);

  w.u64(ck.client_state.size());
  for (const auto& blob : ck.client_state) put_u64_vec(w, blob);
  w.u64(ck.compressor_state.size());
  for (const auto& blob : ck.compressor_state) put_u64_vec(w, blob);

  const ClusterMeterState& m = ck.meters;
  w.u64(m.uplink_bytes);
  w.u64(m.uplink_messages);
  w.u64(m.uplink_retransmitted);
  w.u64(m.downlink_bytes);
  w.u64(m.downlink_messages);
  w.u64(m.downlink_retransmitted);
  w.u64(m.upload_messages);
  w.u64(m.elimination_messages);
  w.f64(m.simulated_transfer_seconds);
  w.u64(m.footprint.size());
  for (const auto& p : m.footprint) {
    w.u64(p.iteration);
    w.f64(p.accuracy);
    w.u64(p.uplink_bytes);
  }

  const SchedulerCheckpoint& s = ck.sched;
  w.u8(s.engaged);
  w.u64(s.version);
  w.f64(s.virtual_now);
  w.u64(s.invite_counter);
  put_u64_vec(w, s.engine_rng);
  w.u64(s.in_flight.size());
  for (const auto& f : s.in_flight) {
    w.u64(f.device);
    w.u64(f.version);
    w.f64(f.arrival);
    w.u8(f.kind);
    w.f64(f.score);
    w.f64(f.train_loss);
    w.u64(f.local_samples);
    w.u64(f.wire_bytes);
    w.floats(f.update);
  }
  put_u64_vec(w, s.population_state);
  w.u64(s.invited);
  w.u64(s.reported);
  w.u64(s.unavailable_invited);
  w.u64(s.mid_round_dropouts);
  w.u64(s.discarded_stragglers);
  w.u64(s.stale_discarded);
  put_u64_vec(w, s.codec_devices);
  w.u64(s.codec_state.size());
  for (const auto& blob : s.codec_state) put_u64_vec(w, blob);
  put_u64_vec(w, s.shard_stats);
  return w.take();
}

TrainerCheckpoint decode_checkpoint(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  TrainerCheckpoint ck;
  ck.iteration = r.u64();
  ck.global_params = r.floats();
  ck.estimator_estimate = r.floats();
  ck.estimator_observed = r.u8() != 0;
  ck.prev_global_update = r.floats();
  ck.cumulative_rounds = r.u64();
  ck.uploaded_bytes = r.u64();

  const std::uint64_t records = r.u64();
  if (records > r.remaining() / (5 * sizeof(std::uint64_t))) {
    throw std::runtime_error("decode_checkpoint: history exceeds payload");
  }
  ck.history.reserve(static_cast<std::size_t>(records));
  for (std::uint64_t i = 0; i < records; ++i) {
    ck.history.push_back(get_record(r));
  }
  ck.eliminations_per_client = get_u64_vec(r);
  ck.uploads_per_client = get_u64_vec(r);
  ck.server_rng = get_u64_vec(r);

  ck.validation.rejected_nonfinite = r.u64();
  ck.validation.rejected_norm = r.u64();
  ck.validation.discarded_quarantined = r.u64();
  const std::uint64_t strikes = r.u64();
  if (strikes > r.remaining() / sizeof(std::uint32_t)) {
    throw std::runtime_error("decode_checkpoint: strikes exceed payload");
  }
  ck.validation.strikes.resize(static_cast<std::size_t>(strikes));
  for (auto& s : ck.validation.strikes) s = r.u32();
  const std::uint64_t quarantined = r.u64();
  if (quarantined > r.remaining()) {
    throw std::runtime_error("decode_checkpoint: quarantine exceeds payload");
  }
  ck.validation.quarantined.resize(static_cast<std::size_t>(quarantined));
  for (auto& q : ck.validation.quarantined) q = r.u8();

  const std::uint64_t clients = r.u64();
  if (clients > r.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error("decode_checkpoint: client states exceed payload");
  }
  ck.client_state.reserve(static_cast<std::size_t>(clients));
  for (std::uint64_t i = 0; i < clients; ++i) {
    ck.client_state.push_back(get_u64_vec(r));
  }
  const std::uint64_t compressors = r.u64();
  if (compressors > r.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error(
        "decode_checkpoint: compressor states exceed payload");
  }
  ck.compressor_state.reserve(static_cast<std::size_t>(compressors));
  for (std::uint64_t i = 0; i < compressors; ++i) {
    ck.compressor_state.push_back(get_u64_vec(r));
  }

  ClusterMeterState& m = ck.meters;
  m.uplink_bytes = r.u64();
  m.uplink_messages = r.u64();
  m.uplink_retransmitted = r.u64();
  m.downlink_bytes = r.u64();
  m.downlink_messages = r.u64();
  m.downlink_retransmitted = r.u64();
  m.upload_messages = r.u64();
  m.elimination_messages = r.u64();
  m.simulated_transfer_seconds = r.f64();
  const std::uint64_t points = r.u64();
  if (points > r.remaining() / (2 * sizeof(std::uint64_t) + sizeof(double))) {
    throw std::runtime_error("decode_checkpoint: footprint exceeds payload");
  }
  m.footprint.reserve(static_cast<std::size_t>(points));
  for (std::uint64_t i = 0; i < points; ++i) {
    CheckpointFootprintPoint p;
    p.iteration = r.u64();
    p.accuracy = r.f64();
    p.uplink_bytes = r.u64();
    m.footprint.push_back(p);
  }

  SchedulerCheckpoint& s = ck.sched;
  s.engaged = r.u8();
  s.version = r.u64();
  s.virtual_now = r.f64();
  s.invite_counter = r.u64();
  s.engine_rng = get_u64_vec(r);
  const std::uint64_t in_flight = r.u64();
  if (in_flight > r.remaining() / (4 * sizeof(std::uint64_t))) {
    throw std::runtime_error("decode_checkpoint: in-flight exceeds payload");
  }
  s.in_flight.reserve(static_cast<std::size_t>(in_flight));
  for (std::uint64_t i = 0; i < in_flight; ++i) {
    SchedInFlightReport f;
    f.device = r.u64();
    f.version = r.u64();
    f.arrival = r.f64();
    f.kind = r.u8();
    f.score = r.f64();
    f.train_loss = r.f64();
    f.local_samples = r.u64();
    f.wire_bytes = r.u64();
    f.update = r.floats();
    s.in_flight.push_back(std::move(f));
  }
  s.population_state = get_u64_vec(r);
  s.invited = r.u64();
  s.reported = r.u64();
  s.unavailable_invited = r.u64();
  s.mid_round_dropouts = r.u64();
  s.discarded_stragglers = r.u64();
  s.stale_discarded = r.u64();
  s.codec_devices = get_u64_vec(r);
  const std::uint64_t codec_blobs = r.u64();
  if (codec_blobs > r.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error("decode_checkpoint: codec states exceed payload");
  }
  if (codec_blobs != s.codec_devices.size()) {
    throw std::runtime_error(
        "decode_checkpoint: codec state/device count mismatch");
  }
  s.codec_state.reserve(static_cast<std::size_t>(codec_blobs));
  for (std::uint64_t i = 0; i < codec_blobs; ++i) {
    s.codec_state.push_back(get_u64_vec(r));
  }
  s.shard_stats = get_u64_vec(r);
  if (s.shard_stats.size() % 3 != 0) {
    throw std::runtime_error(
        "decode_checkpoint: shard stats not a multiple of 3 words");
  }
  if (!r.done()) {
    throw std::runtime_error("decode_checkpoint: trailing bytes in payload");
  }
  return ck;
}

void save_checkpoint_file(const std::string& path,
                          const TrainerCheckpoint& ck) {
  util::save_sealed_file(path, kMagic, kVersion, encode_checkpoint(ck));
}

TrainerCheckpoint load_checkpoint_file(const std::string& path) {
  return decode_checkpoint(util::load_sealed_file(path, kMagic, kVersion));
}

bool bitwise_equal(const IterationRecord& a, const IterationRecord& b) {
  return a.iteration == b.iteration && a.uploads == b.uploads &&
         a.participants == b.participants && a.rejected == b.rejected &&
         a.cumulative_rounds == b.cumulative_rounds &&
         a.cumulative_upload_bytes == b.cumulative_upload_bytes &&
         same_bits(a.mean_score, b.mean_score) &&
         same_bits(a.mean_train_loss, b.mean_train_loss) &&
         same_bits(a.delta_update, b.delta_update) &&
         same_bits(a.staleness_mean, b.staleness_mean) &&
         a.staleness_max == b.staleness_max &&
         same_bits(a.accuracy, b.accuracy) && same_bits(a.loss, b.loss);
}

}  // namespace cmfl::fl

#include "fl/metrics.h"

#include <stdexcept>

namespace cmfl::fl {

std::optional<double> saving(const SimulationResult& vanilla,
                             const SimulationResult& algorithm,
                             double accuracy) {
  const auto v = vanilla.rounds_to_accuracy(accuracy);
  const auto a = algorithm.rounds_to_accuracy(accuracy);
  if (!v || !a || *a == 0) return std::nullopt;
  return static_cast<double>(*v) / static_cast<double>(*a);
}

std::optional<double> saving_bytes(const SimulationResult& vanilla,
                                   const SimulationResult& algorithm,
                                   double accuracy) {
  const auto v = vanilla.bytes_to_accuracy(accuracy);
  const auto a = algorithm.bytes_to_accuracy(accuracy);
  if (!v || !a || *a == 0) return std::nullopt;
  return static_cast<double>(*v) / static_cast<double>(*a);
}

SavingRow make_saving_row(const std::string& workload, double accuracy,
                          const SimulationResult& vanilla,
                          const SimulationResult& algorithm) {
  SavingRow row;
  row.workload = workload;
  row.accuracy = accuracy;
  row.vanilla_rounds = vanilla.rounds_to_accuracy(accuracy);
  row.algo_rounds = algorithm.rounds_to_accuracy(accuracy);
  row.saving = saving(vanilla, algorithm, accuracy);
  row.vanilla_bytes = vanilla.bytes_to_accuracy(accuracy);
  row.algo_bytes = algorithm.bytes_to_accuracy(accuracy);
  row.byte_saving = saving_bytes(vanilla, algorithm, accuracy);
  return row;
}

std::vector<CurvePoint> accuracy_curve(const SimulationResult& result) {
  std::vector<CurvePoint> curve;
  for (const auto& rec : result.history) {
    if (rec.evaluated()) {
      curve.push_back({rec.cumulative_rounds, rec.accuracy});
    }
  }
  return curve;
}

std::size_t best_run_index(const std::vector<SimulationResult>& runs,
                           double accuracy, bool require_sustained) {
  if (runs.empty()) {
    throw std::invalid_argument("best_run_index: no runs");
  }
  std::optional<std::size_t> best;
  std::size_t best_rounds = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (require_sustained && runs[i].final_accuracy < accuracy) continue;
    const auto rounds = runs[i].rounds_to_accuracy(accuracy);
    if (rounds && (!best || *rounds < best_rounds)) {
      best = i;
      best_rounds = *rounds;
    }
  }
  if (best) return *best;
  // None reached the target: pick the run that got closest.
  std::size_t fallback = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].final_accuracy > runs[fallback].final_accuracy) fallback = i;
  }
  return fallback;
}

}  // namespace cmfl::fl

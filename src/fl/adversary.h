// Seeded, deterministic Byzantine client wrappers.
//
// A ByzantineClient decorates any FlClient and tampers with the update the
// server will reconstruct (trained params − broadcast params), leaving the
// FlClient contract intact — so the same wrapper plugs into the in-process
// FederatedSimulation and the net/ cluster workers without either knowing
// adversaries exist.  Attacks cover the standard Byzantine menagerie:
//
//   * sign-flip       u' = −u             (pushes the model away from x*)
//   * scale           u' = λ·u            (magnitude attack, λ >> 1)
//   * garbage         u' = random noise with NaN/±inf coordinates mixed in
//   * free-rider      u' = 0, no local compute spent
//   * label-flip      trains by gradient *ascent* on the local loss — the
//                     strongest label-poisoning proxy expressible through
//                     the FlClient interface, which sees parameters, not
//                     labels
//
// Every stochastic choice flows through a per-client util::Rng derived from
// (spec.seed, client_id), so an attacked run is exactly reproducible; the
// attack RNG is part of mutable_state() and therefore survives
// checkpoint/resume bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fl/client.h"
#include "util/rng.h"

namespace cmfl::fl {

enum class Attack {
  kNone,
  kSignFlip,
  kScale,
  kGarbage,
  kFreeRider,
  kLabelFlip,
};

/// "none" | "signflip" | "scale" | "garbage" | "freerider" | "labelflip".
/// Throws std::invalid_argument on an unknown name.
Attack parse_attack(const std::string& name);
std::string attack_name(Attack attack);

struct AdversarySpec {
  Attack attack = Attack::kNone;
  /// λ for kScale.
  double scale = 10.0;
  /// kGarbage: noise stddev, and the expected count of NaN/±inf
  /// coordinates injected per update.
  double garbage_stddev = 10.0;
  double garbage_nonfinite = 4.0;
  /// Base seed; each wrapped client derives an independent stream from it.
  std::uint64_t seed = 7;
};

class ByzantineClient final : public FlClient {
 public:
  ByzantineClient(std::unique_ptr<FlClient> inner, const AdversarySpec& spec,
                  std::uint64_t client_id);

  std::size_t param_count() override { return inner_->param_count(); }
  std::size_t local_samples() const override {
    return inner_->local_samples();
  }
  void set_params(std::span<const float> params) override;
  void get_params(std::span<float> out) override;
  double train_local(int epochs, std::size_t batch_size, float lr) override;
  std::uint64_t lifetime_steps() const override {
    return inner_->lifetime_steps();
  }
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

  Attack attack() const noexcept { return spec_.attack; }

 private:
  std::unique_ptr<FlClient> inner_;
  AdversarySpec spec_;
  util::Rng rng_;
  std::vector<float> broadcast_;  // last installed global params
  /// Attacks are defined on the update relative to the last broadcast;
  /// until one arrives, get_params() reports honestly.  Not part of
  /// mutable_state(): every get_params() after a resume is preceded by a
  /// broadcast, so the flag is always true when it matters.
  bool saw_broadcast_ = false;
};

/// Wraps the first ceil(fraction·n) clients in ByzantineClient decorators
/// (deterministic choice — attacker identity is part of the scenario, not
/// sampled) and returns how many were wrapped.  fraction in [0, 1].
std::size_t apply_adversaries(
    std::vector<std::unique_ptr<FlClient>>& clients,
    const AdversarySpec& spec, double fraction);

}  // namespace cmfl::fl

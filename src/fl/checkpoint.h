// Crash-consistent full-state checkpointing of a federated run.
//
// A TrainerCheckpoint captures *everything* the training loop needs to
// continue as if it had never stopped: global model parameters, the
// estimator feedback loop (ū and its observed flag), the previous global
// update (ΔUpdate bookkeeping), progress counters, the full per-iteration
// history recorded so far, the server RNG stream, validation/quarantine
// state, every client's stochastic state (batch-shuffle / noise / attack
// RNGs), per-client codec state (quantization RNG streams, error-feedback
// residuals, codebook caches), and — for cluster runs —
// the ByteMeter/message counters and footprint curve.  The threshold and
// learning-rate schedules are pure functions of the iteration index, so
// saving `iteration` captures their state exactly.
//
// The tested invariant (see tests/test_fl_checkpoint.cpp): checkpoint at
// iteration k, destroy the trainer, rebuild the workload from its spec,
// resume — the final parameters and every recorded metric are bit-identical
// to the uninterrupted run.
//
// On disk a checkpoint is a sealed blob (nn/serialize.h): magic "CMCK",
// versioned, length-prefixed, CRC-32-protected, written atomically via
// rename so a crash mid-write never corrupts the previous checkpoint.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fl/robust_agg.h"
#include "fl/simulation.h"

namespace cmfl::fl {

/// One accuracy-vs-bytes sample of a cluster run's footprint curve.
struct CheckpointFootprintPoint {
  std::uint64_t iteration = 0;
  double accuracy = 0.0;
  std::uint64_t uplink_bytes = 0;

  bool operator==(const CheckpointFootprintPoint&) const = default;
};

/// Cluster-side accounting state (all zero/empty for in-process runs).
/// Fault-injection counters are deliberately excluded: the injected fault
/// streams restart on resume, so those counters describe a process
/// lifetime, not the logical run.
struct ClusterMeterState {
  std::uint64_t uplink_bytes = 0;
  std::uint64_t uplink_messages = 0;
  std::uint64_t uplink_retransmitted = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t downlink_messages = 0;
  std::uint64_t downlink_retransmitted = 0;
  std::uint64_t upload_messages = 0;
  std::uint64_t elimination_messages = 0;
  double simulated_transfer_seconds = 0.0;
  std::vector<CheckpointFootprintPoint> footprint;

  bool operator==(const ClusterMeterState&) const = default;
};

/// One report still in flight inside sched::RoundEngine's buffered-async
/// loop: the device trained on model version `version`, its (already
/// computed) answer arrives at virtual time `arrival`.
struct SchedInFlightReport {
  std::uint64_t device = 0;
  std::uint64_t version = 0;
  double arrival = 0.0;
  /// 0 = elimination, 1 = upload, 2 = dropped mid-round,
  /// 3 = invited while unavailable (never trained).
  std::uint8_t kind = 0;
  double score = 0.0;
  double train_loss = 0.0;
  std::uint64_t local_samples = 0;
  /// Encoded wire size this report adds to the uplink on arrival (kind == 1
  /// only).  The stored `update` is the *decoded* reconstruction — encoding
  /// happens once, when the report enters flight, so codec state never
  /// advances twice for one upload.
  std::uint64_t wire_bytes = 0;
  std::vector<float> update;  // kind == 1 only

  bool operator==(const SchedInFlightReport&) const = default;
};

/// Everything sched::RoundEngine needs beyond the common trainer state:
/// the engine RNG and virtual clock, the sparse population device-state
/// map (sched::Population::state_words), the in-flight report queue of a
/// buffered-async run, and the schedule counters the final report
/// accumulates.  `engaged == 0` for plain simulation / cluster checkpoints
/// (all fields then empty).
struct SchedulerCheckpoint {
  std::uint8_t engaged = 0;
  std::uint64_t version = 0;        // async: aggregations applied so far
  double virtual_now = 0.0;         // async: virtual clock at the snapshot
  std::uint64_t invite_counter = 0;
  std::vector<std::uint64_t> engine_rng;
  std::vector<SchedInFlightReport> in_flight;
  std::vector<std::uint64_t> population_state;
  // ScheduleReport counters (materializations/peak-resident are process-
  // lifetime observations and deliberately excluded).
  std::uint64_t invited = 0;
  std::uint64_t reported = 0;
  std::uint64_t unavailable_invited = 0;
  std::uint64_t mid_round_dropouts = 0;
  std::uint64_t discarded_stragglers = 0;
  std::uint64_t stale_discarded = 0;
  /// Sparse per-device codec state (RoundEngine materializes codecs only
  /// for devices that actually encoded): parallel arrays, sorted by device
  /// id.  Empty for dense runs.
  std::vector<std::uint64_t> codec_devices;
  std::vector<std::vector<std::uint64_t>> codec_state;
  /// Sharded-aggregator ingest counters ([uploads, range_passes, bytes] per
  /// shard — fl::ShardedAggregator::stats_words).  Empty when sharding is
  /// off; the shard count is implied (words / 3) and must match the resumed
  /// run's ShardOptions.
  std::vector<std::uint64_t> shard_stats;

  bool operator==(const SchedulerCheckpoint&) const = default;
};

struct TrainerCheckpoint {
  /// Last completed iteration t; a resumed run continues at t+1.
  std::uint64_t iteration = 0;

  // Model and the CMFL feedback loop.
  std::vector<float> global_params;
  std::vector<float> estimator_estimate;
  bool estimator_observed = false;
  std::vector<float> prev_global_update;

  // Progress accounting.
  std::uint64_t cumulative_rounds = 0;
  std::uint64_t uploaded_bytes = 0;
  std::vector<IterationRecord> history;
  std::vector<std::uint64_t> eliminations_per_client;
  std::vector<std::uint64_t> uploads_per_client;

  // Server-side randomness (client sampling).
  std::vector<std::uint64_t> server_rng;

  // Validation counters and quarantine state.
  ValidationReport validation;

  // Opaque per-client stochastic state (FlClient::mutable_state) and
  // per-client codec state (codec::UpdateCodec::mutable_state — RNG
  // streams, error-feedback residuals, codebook caches).  Cluster runs
  // fill compressor_state from their per-worker codecs at quiesced
  // checkpoint points.
  std::vector<std::vector<std::uint64_t>> client_state;
  std::vector<std::vector<std::uint64_t>> compressor_state;

  // Cluster byte/message accounting.
  ClusterMeterState meters;

  // Device-population scheduler state (sched::RoundEngine runs only).
  SchedulerCheckpoint sched;
};

/// Serializes to / parses from the sealed-blob payload encoding.
/// load throws std::runtime_error on a malformed payload.
std::vector<std::byte> encode_checkpoint(const TrainerCheckpoint& ck);
TrainerCheckpoint decode_checkpoint(std::span<const std::byte> payload);

/// Atomic, CRC-sealed file forms (nn::save_blob_file / load_blob_file).
void save_checkpoint_file(const std::string& path,
                          const TrainerCheckpoint& ck);
TrainerCheckpoint load_checkpoint_file(const std::string& path);

/// Bit-exact record equality: NaN accuracy/loss fields (un-evaluated
/// iterations) compare equal when both sides hold the same bit pattern —
/// what the resume invariant tests need, and what operator== on doubles
/// cannot express.
bool bitwise_equal(const IterationRecord& a, const IterationRecord& b);

}  // namespace cmfl::fl

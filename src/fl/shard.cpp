#include "fl/shard.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace cmfl::fl {

std::vector<ShardRange> shard_partition(std::size_t dim, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("shard_partition: shards must be >= 1");
  }
  std::vector<ShardRange> ranges(shards);
  std::size_t prev = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    // Ideal cut at dim·(s+1)/S, rounded to the next-lower multiple of 64 so
    // every interior boundary lands on a SignPack word; the last shard
    // absorbs the tail.
    std::size_t cut = s + 1 == shards ? dim : (dim * (s + 1) / shards) & ~std::size_t{63};
    cut = std::max(cut, prev);
    ranges[s] = {prev, cut};
    prev = cut;
  }
  return ranges;
}

ShardedAggregator::ShardedAggregator(std::size_t dim,
                                     const ShardOptions& options)
    : dim_(dim), ranges_(shard_partition(dim, options.shards)) {
  shards_.resize(options.shards);
  threads_.reserve(options.shards);
  for (auto& shard : shards_) {
    threads_.emplace_back([this, &shard] { worker(shard); });
  }
}

ShardedAggregator::~ShardedAggregator() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.stop = true;
    shard.cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void ShardedAggregator::worker(Shard& shard) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.jobs.empty(); });
      if (shard.jobs.empty()) return;  // stop requested and queue drained
      job = std::move(shard.jobs.front());
      shard.jobs.pop_front();
    }
    job();
  }
}

void ShardedAggregator::enqueue(std::size_t shard_index,
                                std::function<void()> fn) {
  Shard& shard = shards_[shard_index];
  std::lock_guard lock(shard.mu);
  shard.jobs.push_back(std::move(fn));
  shard.cv.notify_one();
}

void ShardedAggregator::begin_batch(std::size_t capacity) {
  std::lock_guard lock(done_mu_);
  if (completed_ != submitted_) {
    throw std::logic_error("ShardedAggregator: begin_batch with in-flight jobs");
  }
  results_.assign(capacity, UploadResult{});
  submitted_ = 0;
  completed_ = 0;
}

void ShardedAggregator::submit(std::size_t index, std::uint64_t wire_bytes,
                               UploadJob job) {
  {
    std::lock_guard lock(done_mu_);
    if (index >= results_.size()) {
      throw std::invalid_argument(
          "ShardedAggregator: submit index beyond batch capacity");
    }
    ++submitted_;
  }
  const std::size_t s = index % shards_.size();
  Shard& shard = shards_[s];
  enqueue(s, [this, &shard, index, wire_bytes, job = std::move(job)] {
    UploadResult r;
    try {
      r = job();
    } catch (...) {
      r.error = std::current_exception();
    }
    shard.stats.uploads += 1;
    shard.stats.bytes += wire_bytes;
    results_[index] = std::move(r);
    {
      std::lock_guard lock(done_mu_);
      ++completed_;
    }
    done_cv_.notify_all();
  });
}

void ShardedAggregator::submit_update(std::size_t index,
                                      std::span<const float> update,
                                      const tensor::SignPack* estimate,
                                      std::uint64_t wire_bytes) {
  submit(index, wire_bytes, [update, estimate] {
    UploadResult r;
    r.scalars.finite = update_all_finite(update);
    r.scalars.norm = update_l2_norm(update);
    if (estimate != nullptr) {
      r.sign_matches = tensor::count_sign_matches(update, *estimate);
    }
    return r;
  });
}

std::vector<ShardedAggregator::UploadResult> ShardedAggregator::collect(
    std::size_t count) {
  std::unique_lock lock(done_mu_);
  if (count != submitted_) {
    throw std::logic_error("ShardedAggregator: collect count != submitted");
  }
  done_cv_.wait(lock, [&] { return completed_ == submitted_; });
  std::vector<UploadResult> out(
      std::make_move_iterator(results_.begin()),
      std::make_move_iterator(results_.begin() +
                              static_cast<std::ptrdiff_t>(count)));
  results_.clear();
  submitted_ = 0;
  completed_ = 0;
  return out;
}

void ShardedAggregator::run_on_all_shards(
    const std::function<void(std::size_t)>& fn) {
  const std::size_t n = shards_.size();
  std::vector<std::exception_ptr> errors(n);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = n;
  for (std::size_t s = 0; s < n; ++s) {
    enqueue(s, [&, s] {
      try {
        fn(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
      shards_[s].stats.range_passes += 1;
      {
        // Notify while holding the lock: mu/cv/remaining live on the
        // coordinator's stack, and an unlocked notify could run after the
        // coordinator saw remaining == 0 and destroyed them.
        std::lock_guard lock(mu);
        --remaining;
        cv.notify_all();
      }
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardedAggregator::aggregate(
    Aggregation rule, std::span<const std::span<const float>> updates,
    std::span<const float> weights, const RobustAggOptions& options,
    std::span<const double> norms, std::span<float> out) {
  if (out.size() != dim_) {
    throw std::invalid_argument("ShardedAggregator: output size != dim");
  }
  // The clipped rule's plan (median radius -> per-update coefficients) is a
  // cross-upload reduction; computing it here once would be redundant with
  // aggregate_updates_range doing so per shard, but the per-shard plan is
  // identical (pure function of norms/options), so correctness holds either
  // way.  Fall back to the serial norm scan when the caller has none —
  // exact same helper the scalar pass uses, so bits never depend on which
  // side computed them.
  std::vector<double> computed;
  if (rule == Aggregation::kNormClippedMean && norms.empty()) {
    computed.reserve(updates.size());
    for (const auto& u : updates) computed.push_back(update_l2_norm(u));
    norms = computed;
  }
  run_on_all_shards([&](std::size_t s) {
    aggregate_updates_range(rule, updates, weights, options, norms, out,
                            ranges_[s].lo, ranges_[s].hi);
  });
}

std::size_t ShardedAggregator::count_sign_matches(
    std::span<const float> v, const tensor::SignPack& estimate) {
  std::vector<std::size_t> partial(shards_.size(), 0);
  run_on_all_shards([&](std::size_t s) {
    partial[s] = tensor::count_sign_matches_range(v, estimate, ranges_[s].lo,
                                                  ranges_[s].hi);
  });
  std::size_t total = 0;
  for (const std::size_t p : partial) total += p;
  return total;
}

std::vector<ShardStats> ShardedAggregator::stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard.stats);
  return out;
}

std::vector<std::uint64_t> ShardedAggregator::stats_words() const {
  std::vector<std::uint64_t> words;
  words.reserve(3 * shards_.size());
  for (const auto& shard : shards_) {
    words.push_back(shard.stats.uploads);
    words.push_back(shard.stats.range_passes);
    words.push_back(shard.stats.bytes);
  }
  return words;
}

void ShardedAggregator::restore_stats_words(
    std::span<const std::uint64_t> words) {
  if (words.size() != 3 * shards_.size()) {
    throw std::invalid_argument(
        "ShardedAggregator: shard stats word count mismatch (" +
        std::to_string(words.size()) + " for " +
        std::to_string(shards_.size()) + " shards)");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].stats.uploads = words[3 * s];
    shards_[s].stats.range_passes = words[3 * s + 1];
    shards_[s].stats.bytes = words[3 * s + 2];
  }
}

}  // namespace cmfl::fl

#include "fl/adversary.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cmfl::fl {

Attack parse_attack(const std::string& name) {
  if (name == "none") return Attack::kNone;
  if (name == "signflip") return Attack::kSignFlip;
  if (name == "scale") return Attack::kScale;
  if (name == "garbage") return Attack::kGarbage;
  if (name == "freerider") return Attack::kFreeRider;
  if (name == "labelflip") return Attack::kLabelFlip;
  throw std::invalid_argument("parse_attack: unknown attack '" + name + "'");
}

std::string attack_name(Attack attack) {
  switch (attack) {
    case Attack::kNone: return "none";
    case Attack::kSignFlip: return "signflip";
    case Attack::kScale: return "scale";
    case Attack::kGarbage: return "garbage";
    case Attack::kFreeRider: return "freerider";
    case Attack::kLabelFlip: return "labelflip";
  }
  return "unknown";
}

ByzantineClient::ByzantineClient(std::unique_ptr<FlClient> inner,
                                 const AdversarySpec& spec,
                                 std::uint64_t client_id)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_(util::SplitMix64(spec.seed ^ (client_id * 0x9e3779b97f4a7c15ULL))
               .next()) {
  if (!inner_) {
    throw std::invalid_argument("ByzantineClient: null inner client");
  }
  broadcast_.resize(inner_->param_count(), 0.0f);
}

void ByzantineClient::set_params(std::span<const float> params) {
  broadcast_.assign(params.begin(), params.end());
  saw_broadcast_ = true;
  inner_->set_params(params);
}

double ByzantineClient::train_local(int epochs, std::size_t batch_size,
                                    float lr) {
  switch (spec_.attack) {
    case Attack::kFreeRider:
    case Attack::kGarbage:
      // No local compute: the reply is fabricated in get_params().
      return 0.0;
    case Attack::kLabelFlip:
      // Gradient ascent on the honest local objective.
      return inner_->train_local(epochs, batch_size, -lr);
    default:
      return inner_->train_local(epochs, batch_size, lr);
  }
}

void ByzantineClient::get_params(std::span<float> out) {
  const std::size_t dim = broadcast_.size();
  if (out.size() != dim) {
    throw std::invalid_argument("ByzantineClient: get_params dim mismatch");
  }
  inner_->get_params(out);
  // Every attack tampers with the update *relative to the last broadcast*.
  // Before the first broadcast there is no update to tamper with (servers
  // pulling initial parameters see the honest ones), so the attack stays
  // dormant — otherwise an attacker at client 0 would poison the initial
  // global model before any round, validator, or filter exists.
  if (!saw_broadcast_) return;
  switch (spec_.attack) {
    case Attack::kNone:
    case Attack::kLabelFlip:
      // Label-flip poisons via training itself; the update is reported as-is.
      return;
    case Attack::kSignFlip:
      // x' = x_broadcast − u  ⇒  reported update is −u.
      for (std::size_t i = 0; i < dim; ++i) {
        out[i] = 2.0f * broadcast_[i] - out[i];
      }
      return;
    case Attack::kScale: {
      const auto lambda = static_cast<float>(spec_.scale);
      for (std::size_t i = 0; i < dim; ++i) {
        out[i] = broadcast_[i] + lambda * (out[i] - broadcast_[i]);
      }
      return;
    }
    case Attack::kFreeRider:
      // Zero update: echo the broadcast back.
      std::copy(broadcast_.begin(), broadcast_.end(), out.begin());
      return;
    case Attack::kGarbage: {
      const auto stddev = static_cast<float>(spec_.garbage_stddev);
      const double poison_prob =
          dim == 0 ? 0.0
                   : std::min(1.0, spec_.garbage_nonfinite /
                                       static_cast<double>(dim));
      for (std::size_t i = 0; i < dim; ++i) {
        float v = rng_.normal_f(0.0f, stddev);
        if (poison_prob > 0.0 && rng_.bernoulli(poison_prob)) {
          // Alternate NaN and ±inf deterministically off the same stream.
          v = rng_.bernoulli(0.5)
                  ? std::numeric_limits<float>::quiet_NaN()
                  : (rng_.bernoulli(0.5)
                         ? std::numeric_limits<float>::infinity()
                         : -std::numeric_limits<float>::infinity());
        }
        out[i] = broadcast_[i] + v;
      }
      return;
    }
  }
}

std::vector<std::uint64_t> ByzantineClient::mutable_state() const {
  // [attack rng (4 words)] ++ [inner client state].
  std::vector<std::uint64_t> state = util::rng_state_words(rng_);
  const std::vector<std::uint64_t> inner = inner_->mutable_state();
  state.insert(state.end(), inner.begin(), inner.end());
  return state;
}

void ByzantineClient::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  if (state.size() < 4) {
    throw std::invalid_argument("ByzantineClient: truncated state blob");
  }
  util::restore_rng_state(rng_, state.first(4));
  inner_->restore_mutable_state(state.subspan(4));
}

std::size_t apply_adversaries(
    std::vector<std::unique_ptr<FlClient>>& clients,
    const AdversarySpec& spec, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "apply_adversaries: fraction must lie in [0, 1]");
  }
  if (spec.attack == Attack::kNone || fraction == 0.0) return 0;
  const auto count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(clients.size())));
  for (std::size_t k = 0; k < count; ++k) {
    clients[k] = std::make_unique<ByzantineClient>(std::move(clients[k]),
                                                   spec, k);
  }
  return count;
}

}  // namespace cmfl::fl

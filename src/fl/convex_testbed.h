// Convex federated testbed for validating Theorem 1 empirically.
//
// The paper's convergence guarantee assumes a convex loss f(x) = (1/D)·Σ f_k
// and bounds the time-averaged regret
//     (1/T)·R[x̃] = (1/T)·Σ_t |f(x̃_t) − f(x*)|
// by O(Σ η_t)/T + O(1/η_T)/T + O(Σ v_t)/T, which vanishes for
// η_t = η0/√t and v_t = v0/√t.
//
// Quadratic per-client objectives make everything exact:
//     f_k(x) = ½‖x − c_k‖²,   f(x) = ½·mean_k ‖x − c_k‖²,
// so the global optimum x* = mean(c_k) and f(x*) are closed-form and the
// regret can be measured without approximation.  Client centers c_k are
// spread out (non-IID) with a configurable fraction of far-away outliers —
// the same population structure as the learning workloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/filter.h"
#include "core/threshold.h"
#include "fl/client.h"
#include "fl/simulation.h"
#include "util/rng.h"

namespace cmfl::fl {

struct ConvexTestbedSpec {
  std::size_t clients = 50;
  std::size_t dim = 64;
  double center_spread = 1.0;     // stddev of client centers around 0
  double outlier_fraction = 0.2;  // far-away centers
  double outlier_spread = 8.0;
  double gradient_noise = 0.1;    // stochastic-gradient noise per step
  int local_steps = 5;            // SGD steps per client per round
  /// Initial point x_0 = start_offset · 1 (every coordinate).  The default
  /// 0 starts at the centers' mean — already near x*.  A nonzero offset
  /// starts the run far from the optimum, where honest clients share a
  /// dominant descent direction (the regime the adversary experiments
  /// need: sign-relevance then separates attackers from honest noise).
  double start_offset = 0.0;
  std::uint64_t seed = 42;
};

struct ConvexRunResult {
  /// |f(x_t) − f(x*)| per iteration.
  std::vector<double> regret;
  /// (1/T)·Σ_{t≤T} regret_t, per T (the quantity Theorem 1 bounds).
  std::vector<double> time_averaged_regret;
  std::size_t total_rounds = 0;  // accumulated uploads (Eq. 4)
  double final_loss_gap = 0.0;

  double final_time_averaged_regret() const {
    return time_averaged_regret.empty() ? 0.0
                                        : time_averaged_regret.back();
  }
};

/// Runs T iterations of Algorithm 1 on the quadratic testbed with the given
/// filter and schedules, measuring the exact regret trajectory.
class ConvexTestbed {
 public:
  explicit ConvexTestbed(const ConvexTestbedSpec& spec);

  /// Exact global optimum (mean of client centers).
  const std::vector<float>& optimum() const noexcept { return optimum_; }

  /// Exact global loss at x.
  double global_loss(std::span<const float> x) const;

  /// Exact global loss at the optimum.
  double optimum_loss() const noexcept { return optimum_loss_; }

  /// Per-client quadratic centers c_k.
  const std::vector<std::vector<float>>& centers() const noexcept {
    return centers_;
  }

  ConvexRunResult run(std::size_t iterations,
                      const core::Schedule& learning_rate,
                      core::UpdateFilter& filter);

 private:
  ConvexTestbedSpec spec_;
  std::vector<std::vector<float>> centers_;  // c_k per client
  std::vector<float> optimum_;
  double optimum_loss_ = 0.0;
};

/// FlClient over one quadratic objective f_k(x) = ½‖x − c_k‖² — lets the
/// simulation and the (fault-injected) cluster run against the exact convex
/// testbed, where the optimality gap is measurable in closed form.
/// train_local runs `epochs × local_steps` noisy gradient steps
/// (∇f_k(y) = y − c_k plus Gaussian noise); batch_size is ignored.
class ConvexClient final : public FlClient {
 public:
  ConvexClient(std::vector<float> center, int local_steps,
               double gradient_noise, util::Rng rng,
               float start_offset = 0.0f);

  std::size_t param_count() override { return params_.size(); }
  std::size_t local_samples() const override { return 1; }
  void set_params(std::span<const float> params) override;
  void get_params(std::span<float> out) override;
  double train_local(int epochs, std::size_t batch_size, float lr) override;
  std::uint64_t lifetime_steps() const override { return lifetime_steps_; }
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  std::vector<float> center_;
  std::vector<float> params_;  // starts at start_offset·1, the testbed's x_0
  int local_steps_;
  double gradient_noise_;
  util::Rng rng_;
  std::uint64_t lifetime_steps_ = 0;
};

/// Clients plus exact-loss evaluator over one ConvexTestbedSpec, in the
/// same shape the learning workloads use.  The evaluator reports
/// accuracy = 1 / (1 + |f(x) − f(x*)|), monotone in the optimality gap and
/// → 1 at x*, so target_accuracy thresholds work unchanged.
struct ConvexWorkload {
  std::vector<std::unique_ptr<FlClient>> clients;
  GlobalEvaluator evaluator;
  std::shared_ptr<ConvexTestbed> testbed;
};

ConvexWorkload make_convex_workload(const ConvexTestbedSpec& spec);

/// A *virtual* convex population: per-device quadratic centers are pure
/// hashed functions of (seed, device id) — nothing is stored per device —
/// so the same spec can describe 50 or 100,000 devices.  The factory has
/// the sched::ClientFactory shape (materialize device k on demand); the
/// evaluator is exact, computed once from the streamed center statistics
///     f(x) = ½‖x − c̄‖² + ½·mean‖c_k − c̄‖²,
/// so evaluating never touches per-device state.  bench/bench_sched and
/// examples/scale_sweep share this workload.
struct VirtualConvexSpec {
  std::uint64_t devices = 1000;
  std::size_t dim = 32;
  double center_spread = 1.0;
  double outlier_fraction = 0.2;
  double outlier_spread = 8.0;
  double gradient_noise = 0.1;
  int local_steps = 3;
  double start_offset = 2.0;  // x_0 far from x* so descent is measurable
  std::uint64_t seed = 42;
};

/// Device k's quadratic center — deterministic in (spec.seed, device).
std::vector<float> virtual_convex_center(const VirtualConvexSpec& spec,
                                         std::uint64_t device);

struct VirtualConvexWorkload {
  /// Materializes device k (compatible with sched::ClientFactory).
  std::function<std::unique_ptr<FlClient>(std::uint64_t)> factory;
  GlobalEvaluator evaluator;  // accuracy = 1/(1 + |f(x) − f(x*)|)
  std::vector<float> optimum;  // c̄, the exact minimizer
  double optimum_loss = 0.0;   // f(c̄) = ½·mean‖c_k − c̄‖²
};

/// Streams all `devices` centers once to fix c̄ and f(x*); O(devices·dim)
/// setup, O(dim) per evaluation, no per-device storage afterwards.
VirtualConvexWorkload make_virtual_convex(const VirtualConvexSpec& spec);

}  // namespace cmfl::fl

// Server-side update validation and Byzantine-resilient aggregation.
//
// The paper's §V-C outlier experiment shows CMFL's relevance filter rejects
// misbehaving clients as a side effect of its communication test.  This
// module supplies the complementary server-side defenses for clients that
// upload anyway: a validator that quarantines senders of non-finite or
// norm-exploded updates (they must never reach the model), and robust
// aggregation rules — coordinate-wise median, trimmed mean, norm-clipped
// mean — that bound the influence of any single update even when it passes
// validation.  Both the in-process FederatedSimulation and the net cluster
// route their GlobalOptimization step through aggregate_updates(), so every
// execution mode shares one hardened aggregation path.  See DESIGN.md §10.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cmfl::fl {

/// How the server combines uploaded updates.
enum class Aggregation {
  kUniformMean,     // Algorithm 1: ū = (1/|S|) Σ u  (the paper's rule)
  kSampleWeighted,  // FedAvg: weight each update by its client's |P_k|
  kMedian,          // coordinate-wise median (ignores weights)
  kTrimmedMean,     // coordinate-wise mean after trimming extremes
  kNormClippedMean, // uniform mean of norm-clipped updates
};

/// "mean" | "weighted" | "median" | "trimmed" | "clipped" — for examples
/// and sweep tooling.  Throws std::invalid_argument on an unknown name.
Aggregation parse_aggregation(const std::string& name);
std::string aggregation_name(Aggregation rule);

/// Knobs of the robust rules (ignored by the two mean rules).
struct RobustAggOptions {
  /// kTrimmedMean: fraction of updates trimmed from *each* end per
  /// coordinate (0.1 with 10 updates drops the min and the max).  Clamped
  /// so at least one update always survives.
  double trim_fraction = 0.1;
  /// kNormClippedMean: updates with L2 norm above this radius are scaled
  /// down onto it.  0 = auto: clip to the median norm of the round's
  /// updates (scale-free, adapts as training converges).
  double clip_norm = 0.0;
};

/// Aggregates `updates` into `out` (all spans sized alike).  `weights` is
/// consulted only by kSampleWeighted and must then match updates.size() and
/// sum to 1.  Throws std::invalid_argument on empty input or size mismatch.
void aggregate_updates(Aggregation rule,
                       std::span<const std::span<const float>> updates,
                       std::span<const float> weights,
                       const RobustAggOptions& options, std::span<float> out);

// ---------------------------------------------------------------------------
// Sharded-pipeline entry points (fl/shard.h)
//
// The sharded parameter server splits aggregation across range-partitioned
// shard threads.  Full-vector reductions (L2 norms, the clipped rule's
// median radius) are NOT range-splittable without changing double summation
// order, so the pipeline computes them upload-parallel with the exact serial
// helpers below, then applies the per-coordinate work range-parallel.  Every
// function here is the byte-identical building block the legacy serial path
// itself is expressed in terms of — sharded and single-master trajectories
// therefore agree bit-for-bit by construction.
// ---------------------------------------------------------------------------

/// Serial double-accumulation L2 norm of one update — the exact reduction
/// the validator and the clipped rule use.  Exposed so shard workers can
/// compute norms upload-parallel with unchanged per-upload bits.
double update_l2_norm(std::span<const float> v);

/// True when every coordinate is finite (no NaN/±inf).
bool update_all_finite(std::span<const float> v);

/// Per-update mean coefficients of kNormClippedMean, computed from the
/// full-vector norms (norms[i] = update_l2_norm(updates[i])): clip scale to
/// the radius (options.clip_norm, or the median norm when <= 0) divided by
/// the update count.  The legacy rule is plan (this) + apply (one axpy per
/// update, in order); splitting the two lets shards apply disjoint ranges
/// concurrently after a single cross-upload plan step.
std::vector<float> clipped_mean_coefficients(std::span<const double> norms,
                                             const RobustAggOptions& options);

/// Range form of aggregate_updates: writes only out[lo, hi) and reads only
/// that range of every update, producing bits equal to the same elements of
/// the full-vector call.  `norms` is consulted only by kNormClippedMean and
/// must then hold update_l2_norm of each update (full-vector — pass empty
/// for every other rule).  Disjoint ranges may run concurrently.
void aggregate_updates_range(Aggregation rule,
                             std::span<const std::span<const float>> updates,
                             std::span<const float> weights,
                             const RobustAggOptions& options,
                             std::span<const double> norms, std::span<float> out,
                             std::size_t lo, std::size_t hi);

/// What the validator decided about one uploaded update.
enum class Verdict : std::uint8_t {
  kAccept = 0,
  kNonFinite = 1,     // contains NaN or ±inf
  kNormExploded = 2,  // L2 norm beyond the configured bound
  kQuarantined = 3,   // sender already quarantined; update discarded unseen
};

/// Server-side admission rules for uploaded updates.
struct ValidationPolicy {
  /// Reject updates containing NaN/±inf.  On by default: a single
  /// non-finite coordinate poisons the whole model irreversibly.
  bool reject_nonfinite = true;
  /// Absolute L2 norm bound (0 disables).
  double max_norm = 0.0;
  /// Relative bound: reject updates whose norm exceeds this multiple of the
  /// round's median update norm (0 disables).  Needs >= 3 updates in the
  /// round to be meaningful; fewer are always admitted by this rule.
  double norm_multiple = 0.0;
  /// Quarantine a client after this many rejected updates; quarantined
  /// clients are excluded from every later round (0 = never quarantine).
  std::uint32_t quarantine_after = 3;
};

/// Validation outcome counters plus per-client quarantine state; carried in
/// results and checkpoints.
struct ValidationReport {
  std::uint64_t rejected_nonfinite = 0;
  std::uint64_t rejected_norm = 0;
  std::uint64_t discarded_quarantined = 0;  // uploads from quarantined clients
  std::vector<std::uint32_t> strikes;       // rejected-update count per client
  std::vector<std::uint8_t> quarantined;    // 1 = permanently quarantined

  std::uint64_t total_rejected() const noexcept {
    return rejected_nonfinite + rejected_norm + discarded_quarantined;
  }
  std::size_t quarantined_count() const noexcept;

  bool operator==(const ValidationReport&) const = default;
};

/// Stateful per-run validator: screens each round's uploads, accumulates
/// per-client strikes, and trips permanent quarantine.  Deterministic —
/// verdicts depend only on the updates and the policy.
class UpdateValidator {
 public:
  UpdateValidator(std::size_t num_clients, const ValidationPolicy& policy);

  /// Precomputed structural scalars of one upload, produced by shard workers
  /// (update_all_finite / update_l2_norm on the full vector) so screening
  /// itself needs no O(dim) pass.
  struct UploadScalars {
    bool finite = true;
    double norm = 0.0;
  };

  /// Screens one round.  `clients[i]` is the uploader of `updates[i]`.
  /// Returns one verdict per update; strike/quarantine state advances as a
  /// side effect.  The round-median norm for the relative rule is computed
  /// over this call's finite-norm updates only.
  std::vector<Verdict> screen_round(std::span<const std::size_t> clients,
                                    std::span<const std::span<const float>>
                                        updates);

  /// Sharded-pipeline form: identical verdicts and state evolution, with the
  /// per-upload O(dim) scans replaced by scalars the shard workers already
  /// computed.  `pre[i]` must equal {update_all_finite(updates[i]),
  /// update_l2_norm(updates[i])} for the verdicts to match the span overload.
  std::vector<Verdict> screen_round(std::span<const std::size_t> clients,
                                    std::span<const UploadScalars> pre);

  bool quarantined(std::size_t client) const;
  const ValidationReport& report() const noexcept { return report_; }

  /// Checkpoint support: restores counters and quarantine state captured
  /// from report().  Throws std::invalid_argument on client-count mismatch.
  void restore(const ValidationReport& report);

 private:
  ValidationPolicy policy_;
  ValidationReport report_;
};

}  // namespace cmfl::fl

#include "fl/convex_testbed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/estimator.h"
#include "tensor/vector_ops.h"

namespace cmfl::fl {

ConvexTestbed::ConvexTestbed(const ConvexTestbedSpec& spec) : spec_(spec) {
  if (spec.clients == 0 || spec.dim == 0 || spec.local_steps <= 0) {
    throw std::invalid_argument("ConvexTestbed: malformed spec");
  }
  util::Rng rng(spec.seed);
  centers_.assign(spec.clients, std::vector<float>(spec.dim));
  for (std::size_t k = 0; k < spec.clients; ++k) {
    const bool outlier = rng.uniform() < spec.outlier_fraction;
    const double spread =
        outlier ? spec.outlier_spread : spec.center_spread;
    for (auto& c : centers_[k]) {
      c = rng.normal_f(0.0f, static_cast<float>(spread));
    }
  }
  // x* = mean of centers (the unique minimizer of the average quadratic).
  optimum_.assign(spec.dim, 0.0f);
  for (const auto& c : centers_) tensor::axpy(1.0f, c, optimum_);
  tensor::scale(optimum_, 1.0f / static_cast<float>(spec.clients));
  optimum_loss_ = global_loss(optimum_);
}

double ConvexTestbed::global_loss(std::span<const float> x) const {
  if (x.size() != spec_.dim) {
    throw std::invalid_argument("ConvexTestbed::global_loss: dim mismatch");
  }
  double acc = 0.0;
  for (const auto& c : centers_) {
    double sq = 0.0;
    for (std::size_t j = 0; j < spec_.dim; ++j) {
      const double d = static_cast<double>(x[j]) - static_cast<double>(c[j]);
      sq += d * d;
    }
    acc += 0.5 * sq;
  }
  return acc / static_cast<double>(spec_.clients);
}

ConvexRunResult ConvexTestbed::run(std::size_t iterations,
                                   const core::Schedule& learning_rate,
                                   core::UpdateFilter& filter) {
  const std::size_t d = spec_.dim;
  const std::size_t m = spec_.clients;
  std::vector<float> x(d, static_cast<float>(spec_.start_offset));
  core::GlobalUpdateEstimator estimator(d);
  util::Rng noise_rng(spec_.seed ^ 0xC0FFEEULL);

  ConvexRunResult result;
  result.regret.reserve(iterations);
  result.time_averaged_regret.reserve(iterations);
  double regret_sum = 0.0;

  std::vector<std::vector<float>> updates(m, std::vector<float>(d));
  for (std::size_t t = 1; t <= iterations; ++t) {
    const auto lr = static_cast<float>(learning_rate.at(t));
    core::FilterContext ctx;
    ctx.global_model = x;
    ctx.estimated_global_update = estimator.estimate();
    ctx.iteration = t;

    std::vector<std::size_t> uploaded;
    for (std::size_t k = 0; k < m; ++k) {
      // local_steps of noisy gradient descent on f_k from x:
      //   ∇f_k(y) = y − c_k.
      std::vector<float> y(x.begin(), x.end());
      for (int s = 0; s < spec_.local_steps; ++s) {
        for (std::size_t j = 0; j < d; ++j) {
          const float grad =
              (y[j] - centers_[k][j]) +
              noise_rng.normal_f(0.0f,
                                 static_cast<float>(spec_.gradient_noise));
          y[j] -= lr * grad;
        }
      }
      auto& u = updates[k];
      for (std::size_t j = 0; j < d; ++j) u[j] = y[j] - x[j];
      if (filter.decide(u, ctx).upload) uploaded.push_back(k);
    }

    if (!uploaded.empty()) {
      std::vector<float> global_update(d, 0.0f);
      for (std::size_t k : uploaded) {
        tensor::axpy(1.0f, updates[k], global_update);
      }
      tensor::scale(global_update,
                    1.0f / static_cast<float>(uploaded.size()));
      tensor::add(x, global_update, x);
      estimator.observe(global_update);
    }
    result.total_rounds += uploaded.size();

    const double gap = std::fabs(global_loss(x) - optimum_loss_);
    regret_sum += gap;
    result.regret.push_back(gap);
    result.time_averaged_regret.push_back(regret_sum /
                                          static_cast<double>(t));
  }
  result.final_loss_gap = result.regret.empty() ? 0.0 : result.regret.back();
  return result;
}

ConvexClient::ConvexClient(std::vector<float> center, int local_steps,
                           double gradient_noise, util::Rng rng,
                           float start_offset)
    : center_(std::move(center)),
      params_(center_.size(), start_offset),
      local_steps_(local_steps),
      gradient_noise_(gradient_noise),
      rng_(rng) {
  if (center_.empty() || local_steps_ <= 0) {
    throw std::invalid_argument("ConvexClient: malformed spec");
  }
}

void ConvexClient::set_params(std::span<const float> params) {
  if (params.size() != params_.size()) {
    throw std::invalid_argument("ConvexClient::set_params: dim mismatch");
  }
  params_.assign(params.begin(), params.end());
}

void ConvexClient::get_params(std::span<float> out) {
  if (out.size() != params_.size()) {
    throw std::invalid_argument("ConvexClient::get_params: dim mismatch");
  }
  std::copy(params_.begin(), params_.end(), out.begin());
}

double ConvexClient::train_local(int epochs, std::size_t /*batch_size*/,
                                 float lr) {
  const std::size_t d = params_.size();
  const int steps = epochs * local_steps_;
  for (int s = 0; s < steps; ++s) {
    for (std::size_t j = 0; j < d; ++j) {
      const float grad =
          (params_[j] - center_[j]) +
          rng_.normal_f(0.0f, static_cast<float>(gradient_noise_));
      params_[j] -= lr * grad;
    }
    ++lifetime_steps_;
  }
  // Exact final local loss f_k = ½‖x − c_k‖².
  double sq = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff =
        static_cast<double>(params_[j]) - static_cast<double>(center_[j]);
    sq += diff * diff;
  }
  return 0.5 * sq;
}

std::vector<std::uint64_t> ConvexClient::mutable_state() const {
  return util::rng_state_words(rng_);
}

void ConvexClient::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

std::vector<float> virtual_convex_center(const VirtualConvexSpec& spec,
                                         std::uint64_t device) {
  // Hashed, not stored: an independent stream per device, derived from the
  // spec seed the same way make_convex_workload derives client streams.
  util::Rng rng = util::Rng(spec.seed ^ 0xCE17E55ULL).split(device);
  const bool outlier = rng.uniform() < spec.outlier_fraction;
  const double spread = outlier ? spec.outlier_spread : spec.center_spread;
  std::vector<float> center(spec.dim);
  for (auto& c : center) {
    c = rng.normal_f(0.0f, static_cast<float>(spread));
  }
  return center;
}

VirtualConvexWorkload make_virtual_convex(const VirtualConvexSpec& spec) {
  if (spec.devices == 0 || spec.dim == 0 || spec.local_steps <= 0) {
    throw std::invalid_argument("make_virtual_convex: malformed spec");
  }
  VirtualConvexWorkload w;
  // One streaming pass over the hashed centers fixes the exact optimum and
  // loss decomposition: f(x) = ½‖x − c̄‖² + ½·mean‖c_k − c̄‖², minimized at
  // x* = c̄ with f(x*) = ½·(mean‖c_k‖² − ‖c̄‖²).
  std::vector<double> mean(spec.dim, 0.0);
  double mean_sq = 0.0;
  for (std::uint64_t k = 0; k < spec.devices; ++k) {
    const auto c = virtual_convex_center(spec, k);
    for (std::size_t j = 0; j < spec.dim; ++j) {
      mean[j] += static_cast<double>(c[j]);
      mean_sq += static_cast<double>(c[j]) * static_cast<double>(c[j]);
    }
  }
  const auto n = static_cast<double>(spec.devices);
  for (auto& m : mean) m /= n;
  mean_sq /= n;
  double opt = mean_sq;
  for (const auto m : mean) opt -= m * m;
  w.optimum_loss = 0.5 * opt;
  w.optimum.assign(spec.dim, 0.0f);
  for (std::size_t j = 0; j < spec.dim; ++j) {
    w.optimum[j] = static_cast<float>(mean[j]);
  }

  w.factory = [spec](std::uint64_t device) {
    return std::make_unique<ConvexClient>(
        virtual_convex_center(spec, device), spec.local_steps,
        spec.gradient_noise, util::Rng(spec.seed ^ 0xFEEDFACEULL).split(device),
        static_cast<float>(spec.start_offset));
  };
  const auto mean_copy = mean;
  const auto optimum_loss = w.optimum_loss;
  const auto dim = spec.dim;
  const auto devices = spec.devices;
  w.evaluator = [mean_copy, mean_sq, optimum_loss, dim,
                 devices](std::span<const float> x) {
    if (x.size() != dim) {
      throw std::invalid_argument("virtual convex evaluator: dim mismatch");
    }
    // f(x) = ½(‖x‖² − 2·x·c̄ + mean‖c‖²), exact via the streamed moments.
    double sq = 0.0;
    double dot = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      sq += static_cast<double>(x[j]) * static_cast<double>(x[j]);
      dot += static_cast<double>(x[j]) * mean_copy[j];
    }
    nn::EvalResult eval;
    eval.loss = 0.5 * (sq - 2.0 * dot + mean_sq);
    eval.accuracy = 1.0 / (1.0 + std::fabs(eval.loss - optimum_loss));
    eval.samples = devices;
    return eval;
  };
  return w;
}

ConvexWorkload make_convex_workload(const ConvexTestbedSpec& spec) {
  ConvexWorkload w;
  w.testbed = std::make_shared<ConvexTestbed>(spec);
  util::Rng rng(spec.seed ^ 0xFEEDFACEULL);
  w.clients.reserve(spec.clients);
  for (std::size_t k = 0; k < spec.clients; ++k) {
    w.clients.push_back(std::make_unique<ConvexClient>(
        w.testbed->centers()[k], spec.local_steps, spec.gradient_noise,
        rng.split(k), static_cast<float>(spec.start_offset)));
  }
  auto testbed = w.testbed;
  w.evaluator = [testbed](std::span<const float> x) {
    nn::EvalResult eval;
    eval.loss = testbed->global_loss(x);
    eval.accuracy = 1.0 / (1.0 + std::fabs(eval.loss - testbed->optimum_loss()));
    eval.samples = testbed->centers().size();
    return eval;
  };
  return w;
}

}  // namespace cmfl::fl

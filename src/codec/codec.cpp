#include "codec/codec.h"

#include <cstdio>
#include <stdexcept>

#include "net/wire.h"  // header-only WireWriter/WireReader primitives

namespace cmfl::codec {

void UpdateCodec::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  if (!state.empty()) {
    throw std::invalid_argument(
        "UpdateCodec: state blob for a stateless codec");
  }
}

// ------------------------------------------------------------------- dense

EncodedUpdate DenseCodec::encode(std::span<const float> update) {
  net::WireWriter w;
  w.floats(update);
  return {kCodecDense, w.take()};
}

std::vector<float> DenseCodec::decode(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  std::vector<float> out = r.floats();
  if (!r.done()) throw std::runtime_error("DenseCodec: trailing bytes");
  return out;
}

// --------------------------------------------------------------- subsample

SubsampleCodec::SubsampleCodec(double keep, std::uint64_t seed)
    : keep_(keep), rng_(seed) {
  if (!(keep > 0.0) || keep > 1.0) {
    throw std::invalid_argument("SubsampleCodec: keep must be in (0,1]");
  }
}

std::string SubsampleCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "subsample:%.2f", keep_);
  return buf;
}

EncodedUpdate SubsampleCodec::encode(std::span<const float> update) {
  std::vector<std::uint32_t> kept;
  for (std::size_t i = 0; i < update.size(); ++i) {
    if (rng_.uniform() < keep_) kept.push_back(static_cast<std::uint32_t>(i));
  }
  net::WireWriter w;
  w.u64(update.size());
  w.u64(kept.size());
  const auto scale = static_cast<float>(1.0 / keep_);
  for (const std::uint32_t idx : kept) {
    w.u32(idx);
    w.f32(update[idx] * scale);
  }
  return {kCodecSubsample, w.take()};
}

namespace {

/// Shared decode of the [u64 dim][u64 count][(u32 idx, f32 val) x count]
/// sparse layout used by the subsample and structured-mask codecs.
std::vector<float> decode_sparse_pairs(std::span<const std::byte> payload,
                                       const char* who) {
  net::WireReader r(payload);
  const std::uint64_t dim = r.u64();
  const std::uint64_t count = r.u64();
  if (dim > kMaxDecodeDim) {
    throw std::runtime_error(std::string(who) +
                             ": dimension header exceeds limit");
  }
  if (count > r.remaining() / (sizeof(std::uint32_t) + sizeof(float))) {
    throw std::runtime_error(std::string(who) + ": count exceeds payload");
  }
  std::vector<float> out(static_cast<std::size_t>(dim), 0.0f);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t idx = r.u32();
    const float value = r.f32();
    if (idx >= dim) {
      throw std::runtime_error(std::string(who) + ": index out of range");
    }
    out[idx] = value;
  }
  if (!r.done()) {
    throw std::runtime_error(std::string(who) + ": trailing bytes");
  }
  return out;
}

}  // namespace

std::vector<float> SubsampleCodec::decode(std::span<const std::byte> payload) {
  return decode_sparse_pairs(payload, "SubsampleCodec");
}

std::vector<std::uint64_t> SubsampleCodec::mutable_state() const {
  return util::rng_state_words(rng_);
}

void SubsampleCodec::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

// ---------------------------------------------------------- structured mask

StructuredMaskCodec::StructuredMaskCodec(double density, std::uint64_t seed)
    : density_(density), rng_(seed) {
  if (!(density > 0.0) || density > 1.0) {
    throw std::invalid_argument(
        "StructuredMaskCodec: density must be in (0,1]");
  }
}

std::string StructuredMaskCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "structured:%.2f", density_);
  return buf;
}

EncodedUpdate StructuredMaskCodec::encode(std::span<const float> update) {
  std::vector<std::uint32_t> kept;
  for (std::size_t i = 0; i < update.size(); ++i) {
    if (rng_.uniform() < density_) {
      kept.push_back(static_cast<std::uint32_t>(i));
    }
  }
  net::WireWriter w;
  w.u64(update.size());
  w.u64(kept.size());
  for (const std::uint32_t idx : kept) {
    w.u32(idx);
    w.f32(update[idx]);  // no rescaling: the mask IS the update
  }
  return {kCodecStructured, w.take()};
}

std::vector<float> StructuredMaskCodec::decode(
    std::span<const std::byte> payload) {
  return decode_sparse_pairs(payload, "StructuredMaskCodec");
}

std::vector<std::uint64_t> StructuredMaskCodec::mutable_state() const {
  return util::rng_state_words(rng_);
}

void StructuredMaskCodec::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

// ----------------------------------------------------------------- factory

bool is_dense_spec(const std::string& spec) {
  return spec == "dense" || spec == "float32";
}

namespace {

double parse_number(const std::string& arg, const std::string& spec) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(arg, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != arg.size()) {
    throw std::invalid_argument("make_update_codec: malformed parameter in '" +
                                spec + "'");
  }
  return value;
}

std::size_t parse_count(const std::string& arg, const std::string& spec) {
  const double value = parse_number(arg, spec);
  if (!(value >= 0.0) || value != static_cast<double>(
                                      static_cast<std::size_t>(value))) {
    throw std::invalid_argument("make_update_codec: malformed parameter in '" +
                                spec + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

std::unique_ptr<UpdateCodec> make_update_codec(const std::string& spec,
                                               std::uint64_t seed) {
  if (is_dense_spec(spec)) return std::make_unique<DenseCodec>();
  if (spec == "sign") return std::make_unique<SignCodec>();
  if (spec == "quantize8") {  // legacy alias for quant:8
    return std::make_unique<QuantCodec>(8, seed);
  }
  const auto colon = spec.find(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);
    if (kind == "sign") {
      return std::make_unique<SignCodec>(parse_count(arg, spec));
    }
    if (kind == "quant") {
      return std::make_unique<QuantCodec>(
          static_cast<int>(parse_count(arg, spec)), seed);
    }
    if (kind == "topk") {
      return std::make_unique<TopKCodec>(parse_number(arg, spec));
    }
    if (kind == "codebook") {
      const auto comma = arg.find(',');
      if (comma == std::string::npos) {
        return std::make_unique<CodebookCodec>(parse_count(arg, spec));
      }
      return std::make_unique<CodebookCodec>(
          parse_count(arg.substr(0, comma), spec),
          parse_count(arg.substr(comma + 1), spec));
    }
    if (kind == "subsample") {
      return std::make_unique<SubsampleCodec>(parse_number(arg, spec), seed);
    }
    if (kind == "structured") {
      return std::make_unique<StructuredMaskCodec>(parse_number(arg, spec),
                                                   seed);
    }
  }
  throw std::invalid_argument("make_update_codec: unknown spec '" + spec +
                              "'");
}

}  // namespace cmfl::codec

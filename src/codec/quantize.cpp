#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "codec/codec.h"
#include "net/wire.h"

namespace cmfl::codec {

namespace {

bool valid_bits(int bits) { return bits == 2 || bits == 4 || bits == 8; }

}  // namespace

QuantCodec::QuantCodec(int bits, std::uint64_t seed)
    : bits_(bits), rng_(seed) {
  if (!valid_bits(bits)) {
    throw std::invalid_argument("QuantCodec: bits must be 2, 4, or 8");
  }
}

std::string QuantCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "quant:%d", bits_);
  return buf;
}

EncodedUpdate QuantCodec::encode(std::span<const float> update) {
  const std::size_t dim = update.size();
  float lo = 0.0f, hi = 0.0f;
  if (dim > 0) {
    lo = hi = update[0];
    for (const float v : update) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const auto levels = static_cast<std::uint32_t>((1u << bits_) - 1);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);

  net::WireWriter w;
  w.u64(dim);
  w.u8(static_cast<std::uint8_t>(bits_));
  w.f32(lo);
  w.f32(hi);
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits_);
  std::uint8_t packed = 0;
  std::size_t in_byte = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    // Stochastic rounding: round up with probability equal to the
    // fractional part, so E[decode(encode(v))] = v.  The RNG is consumed
    // once per coordinate regardless of the value, keeping the stream
    // position a pure function of how many coordinates were encoded.
    const double u = rng_.uniform();
    std::uint32_t level = 0;
    if (range > 0.0) {
      const double x =
          (static_cast<double>(update[i]) - static_cast<double>(lo)) / range *
          static_cast<double>(levels);
      const double f = std::floor(x);
      level = static_cast<std::uint32_t>(f) + (u < x - f ? 1u : 0u);
      level = std::min(level, levels);
    }
    packed |= static_cast<std::uint8_t>(level << (bits_ * in_byte));
    if (++in_byte == per_byte) {
      w.u8(packed);
      packed = 0;
      in_byte = 0;
    }
  }
  if (in_byte != 0) w.u8(packed);
  return {kCodecQuant, w.take()};
}

std::vector<float> QuantCodec::decode(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  const std::uint64_t dim = r.u64();
  const int bits = r.u8();
  if (dim > kMaxDecodeDim) {
    throw std::runtime_error("QuantCodec: dimension header exceeds limit");
  }
  if (!valid_bits(bits)) {
    throw std::runtime_error("QuantCodec: invalid bits field");
  }
  const float lo = r.f32();
  const float hi = r.f32();
  if (!(hi >= lo)) {  // also rejects NaN bounds
    throw std::runtime_error("QuantCodec: invalid quantization range");
  }
  const auto levels = static_cast<std::uint32_t>((1u << bits) - 1);
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits);
  const std::uint64_t packed_bytes = (dim + per_byte - 1) / per_byte;
  if (packed_bytes != r.remaining()) {
    throw std::runtime_error("QuantCodec: payload size mismatch");
  }
  const double step =
      levels > 0 ? (static_cast<double>(hi) - static_cast<double>(lo)) /
                       static_cast<double>(levels)
                 : 0.0;
  const std::uint8_t mask = static_cast<std::uint8_t>(levels);
  std::vector<float> out(static_cast<std::size_t>(dim));
  std::uint8_t byte = 0;
  std::size_t in_byte = per_byte;  // force a fetch on the first coordinate
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (in_byte == per_byte) {
      byte = r.u8();
      in_byte = 0;
    }
    const std::uint32_t level = (byte >> (bits * in_byte)) & mask;
    ++in_byte;
    out[i] = static_cast<float>(static_cast<double>(lo) +
                                static_cast<double>(level) * step);
  }
  // Padding levels in the final partial byte must be zero, so every stray
  // bit in a packed payload is a detectable error rather than silence.
  if (dim % per_byte != 0 &&
      (byte >> (bits * (dim % per_byte))) != 0) {
    throw std::runtime_error("QuantCodec: nonzero padding bits");
  }
  if (!r.done()) throw std::runtime_error("QuantCodec: trailing bytes");
  return out;
}

std::vector<std::uint64_t> QuantCodec::mutable_state() const {
  return util::rng_state_words(rng_);
}

void QuantCodec::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

}  // namespace cmfl::codec

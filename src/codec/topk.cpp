#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "codec/codec.h"
#include "codec/state_pack.h"
#include "net/wire.h"

namespace cmfl::codec {

namespace {

void put_varint(net::WireWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(net::WireReader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = r.u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      if (shift > 0 && b == 0) {
        throw std::runtime_error("TopKCodec: non-canonical varint");
      }
      return v;
    }
  }
  throw std::runtime_error("TopKCodec: varint overflow");
}

}  // namespace

TopKCodec::TopKCodec(double param) : param_(param) {
  const bool fraction = param > 0.0 && param < 1.0;
  const bool absolute =
      param >= 1.0 && param == std::floor(param) && param <= 1e12;
  if (!fraction && !absolute) {
    throw std::invalid_argument(
        "TopKCodec: param must be a fraction in (0,1) or an integer k >= 1");
  }
}

std::string TopKCodec::name() const {
  char buf[32];
  if (param_ < 1.0) {
    std::snprintf(buf, sizeof(buf), "topk:%.4f", param_);
  } else {
    std::snprintf(buf, sizeof(buf), "topk:%zu",
                  static_cast<std::size_t>(param_));
  }
  return buf;
}

EncodedUpdate TopKCodec::encode(std::span<const float> update) {
  const std::size_t dim = update.size();
  if (residual_.empty()) {
    residual_.assign(dim, 0.0f);
  } else if (residual_.size() != dim) {
    throw std::invalid_argument(
        "TopKCodec: update dimension changed mid-stream");
  }
  // Error feedback: select from the corrected update g = u + residual, then
  // carry everything unsent forward — nothing is dropped, only delayed.
  std::vector<float> g(dim);
  for (std::size_t i = 0; i < dim; ++i) g[i] = update[i] + residual_[i];

  std::size_t k = 0;
  if (dim > 0) {
    k = param_ >= 1.0
            ? std::min(dim, static_cast<std::size_t>(param_))
            : std::max<std::size_t>(
                  1, static_cast<std::size_t>(param_ *
                                              static_cast<double>(dim)));
  }
  std::vector<std::uint32_t> idx(dim);
  std::iota(idx.begin(), idx.end(), 0u);
  // Deterministic selection: magnitude descending, index ascending on ties
  // — independent of thread count and of any prior partial ordering.
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::uint32_t a, std::uint32_t b) {
                      const float ma = std::fabs(g[a]);
                      const float mb = std::fabs(g[b]);
                      if (ma != mb) return ma > mb;
                      return a < b;
                    });
  std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));

  net::WireWriter w;
  w.u64(dim);
  w.u64(k);
  std::uint64_t prev = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t cur = idx[j];
    put_varint(w, j == 0 ? cur : cur - prev);
    prev = cur;
  }
  residual_ = g;
  for (std::size_t j = 0; j < k; ++j) {
    w.f32(g[idx[j]]);
    residual_[idx[j]] = 0.0f;  // the sent coordinate carries no error
  }
  return {kCodecTopK, w.take()};
}

std::vector<float> TopKCodec::decode(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  const std::uint64_t dim = r.u64();
  const std::uint64_t k = r.u64();
  if (dim > kMaxDecodeDim) {
    throw std::runtime_error("TopKCodec: dimension header exceeds limit");
  }
  if (k > dim) throw std::runtime_error("TopKCodec: k exceeds dimension");
  std::vector<std::uint32_t> indices(static_cast<std::size_t>(k));
  std::uint64_t cur = 0;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const std::uint64_t delta = get_varint(r);
    if (j == 0) {
      cur = delta;
    } else {
      if (delta == 0) {
        throw std::runtime_error("TopKCodec: non-increasing index");
      }
      cur += delta;
    }
    if (cur >= dim) throw std::runtime_error("TopKCodec: index out of range");
    indices[j] = static_cast<std::uint32_t>(cur);
  }
  std::vector<float> out(static_cast<std::size_t>(dim), 0.0f);
  for (const std::uint32_t i : indices) out[i] = r.f32();
  if (!r.done()) throw std::runtime_error("TopKCodec: trailing bytes");
  return out;
}

std::vector<std::uint64_t> TopKCodec::mutable_state() const {
  std::vector<std::uint64_t> words;
  detail::pack_floats(words, residual_);
  return words;
}

void TopKCodec::restore_mutable_state(std::span<const std::uint64_t> state) {
  std::size_t pos = 0;
  std::vector<float> residual = detail::unpack_floats(state, pos);
  if (pos != state.size()) {
    throw std::invalid_argument("TopKCodec: trailing state words");
  }
  residual_ = std::move(residual);
}

}  // namespace cmfl::codec

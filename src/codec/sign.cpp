#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "codec/codec.h"
#include "net/wire.h"

namespace cmfl::codec {

SignCodec::SignCodec(std::size_t chunk) : chunk_(chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("SignCodec: chunk must be >= 1");
  }
}

std::string SignCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sign:%zu", chunk_);
  return buf;
}

EncodedUpdate SignCodec::encode(std::span<const float> update) {
  const std::size_t dim = update.size();
  pack_.assign(update);  // AVX2-accelerated sign extraction
  net::WireWriter w;
  w.u64(dim);
  w.u32(static_cast<std::uint32_t>(chunk_));
  for (std::size_t base = 0; base < dim; base += chunk_) {
    const std::size_t end = std::min(dim, base + chunk_);
    double sum = 0.0;
    for (std::size_t i = base; i < end; ++i) {
      sum += std::fabs(static_cast<double>(update[i]));
    }
    w.f32(static_cast<float>(sum / static_cast<double>(end - base)));
  }
  for (const std::uint64_t word : pack_.negative_words()) w.u64(word);
  return {kCodecSign, w.take()};
}

std::vector<float> SignCodec::decode(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  const std::uint64_t dim = r.u64();
  const std::uint32_t chunk = r.u32();
  if (dim > kMaxDecodeDim) {
    throw std::runtime_error("SignCodec: dimension header exceeds limit");
  }
  if (chunk == 0) throw std::runtime_error("SignCodec: zero chunk size");
  const std::uint64_t num_chunks = (dim + chunk - 1) / chunk;
  const std::uint64_t num_words = (dim + 63) / 64;
  if (num_chunks * sizeof(float) + num_words * sizeof(std::uint64_t) >
      r.remaining()) {
    throw std::runtime_error("SignCodec: payload shorter than header claims");
  }
  std::vector<float> scales(static_cast<std::size_t>(num_chunks));
  for (float& s : scales) s = r.f32();
  std::vector<float> out(static_cast<std::size_t>(dim));
  for (std::uint64_t wi = 0; wi < num_words; ++wi) {
    const std::uint64_t word = r.u64();
    const std::uint64_t base = wi * 64;
    const std::uint64_t lanes = std::min<std::uint64_t>(64, dim - base);
    if (lanes < 64 && (word >> lanes) != 0) {
      throw std::runtime_error("SignCodec: sign bits set beyond dimension");
    }
    for (std::uint64_t b = 0; b < lanes; ++b) {
      const std::uint64_t i = base + b;
      const float scale = scales[static_cast<std::size_t>(i / chunk)];
      out[static_cast<std::size_t>(i)] =
          (word >> b) & 1 ? -scale : scale;
    }
  }
  if (!r.done()) throw std::runtime_error("SignCodec: trailing bytes");
  return out;
}

}  // namespace cmfl::codec

// Pluggable update codecs: the bits-per-upload axis of communication
// savings, orthogonal to CMFL's uploads-per-round axis (paper §I).
//
// CMFL shrinks the *number* of updates that cross the uplink; a codec
// shrinks the *bits* of each update that does.  The two compose
// multiplicatively, and this subsystem is the single encode/decode/wire-size
// abstraction every layer shares: the in-process simulation, the
// sched::RoundEngine population runtime, and the socket cluster (where the
// encoded payload rides a real CRC-protected CodecUpload frame and the
// ByteMeter records the actual encoded bytes).
//
// Codec families (DESIGN.md §16):
//   * dense      — lossless float32, the vanilla wire format.
//   * sign       — 1-bit signSGD with a per-chunk mean-|v| scale, packed
//                  through the AVX2-accelerated tensor::SignPack.
//   * quant      — b-bit (b ∈ {2,4,8}) uniform quantization with stochastic
//                  rounding, so E[decode(encode(v))] = v (Konečný et al.).
//   * topk       — top-k magnitude sparsification with client-side
//                  error-feedback residual accumulation and delta-encoded
//                  varint index coding.
//   * codebook   — shared k-means codebook, FedCode-style: the codebook is
//                  transmitted only on periodic refreshes, index streams in
//                  between.
//   * subsample / structured — the Konečný sketched/structured baselines
//                  (folded in from the former core/compression.h).
//
// Every stochastic or carried-over state (quantization RNG, top-k residual,
// codebook cache + refresh counter) is exposed as opaque u64 words through
// mutable_state()/restore_mutable_state(), so crash-consistent checkpoints
// resume bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "util/rng.h"

namespace cmfl::codec {

/// Stable on-wire codec identifiers (CodecUpload frames carry one byte).
enum : std::uint8_t {
  kCodecDense = 0,
  kCodecSign = 1,
  kCodecQuant = 2,
  kCodecTopK = 3,
  kCodecCodebook = 4,
  kCodecSubsample = 5,
  kCodecStructured = 6,
};

/// Upper bound on the dense dimension a decoder will materialize.  The
/// sparse payload layouts (top-k, subsample, structured) carry the dense
/// dimension in the header without a matching payload-length equation, so a
/// corrupted header could otherwise request an arbitrarily large allocation
/// before any validation fires.  2^27 coordinates (512 MiB dense) is far
/// beyond any model this codebase trains.
inline constexpr std::uint64_t kMaxDecodeDim = std::uint64_t{1} << 27;

/// An encoded update.  The wire footprint *is* the payload size — derived,
/// never stored, so a codec cannot report a size that disagrees with what
/// actually hits the channel.
struct EncodedUpdate {
  std::uint8_t codec_id = kCodecDense;
  std::vector<std::byte> payload;

  std::size_t wire_bytes() const noexcept { return payload.size(); }
};

class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;

  virtual std::string name() const = 0;
  /// On-wire codec id (one of the kCodec* constants above).
  virtual std::uint8_t id() const = 0;
  /// Payload-format version, negotiated alongside the id at round start.
  virtual std::uint8_t version() const { return 1; }

  /// Encodes `update`.  Implementations may be lossy and may advance
  /// internal state (RNG streams, error-feedback residuals, refresh
  /// counters); decode(encode(u).payload) returns the reconstruction the
  /// server would apply.
  virtual EncodedUpdate encode(std::span<const float> update) = 0;

  /// Reconstructs a dense update from an encoded payload.  Throws
  /// std::runtime_error on any malformed payload — truncated, trailing
  /// bytes, out-of-range indices or parameters.  A payload must never
  /// silently decode to a different update than the one encoded.
  virtual std::vector<float> decode(std::span<const std::byte> payload) = 0;

  /// True when decode() itself carries state between payloads (the codebook
  /// codec's cached centers).  Such codecs cannot survive a replicated-
  /// master failover, where any replica must be able to decode any payload.
  virtual bool stateful_decode() const { return false; }

  /// Mutable codec state (RNG streams, residuals, codebook cache) as opaque
  /// u64 words — captured by crash-consistent checkpoints so a resumed run
  /// continues the exact stream the uninterrupted one would have.
  /// Stateless codecs return an empty vector.
  virtual std::vector<std::uint64_t> mutable_state() const { return {}; }

  /// Restores a state captured by mutable_state(); throws
  /// std::invalid_argument on a malformed blob.
  virtual void restore_mutable_state(std::span<const std::uint64_t> state);
};

/// Codec configuration plumbed through fl::SimulationOptions into every
/// runtime (simulation, RoundEngine, cluster).
struct CodecOptions {
  /// "dense" | "sign[:<chunk>]" | "quant:<bits>" | "topk:<k-or-fraction>" |
  /// "codebook:<k>[,<refresh>]" | "subsample:<keep>" |
  /// "structured:<density>".  Legacy aliases: "float32" -> dense,
  /// "quantize8" -> quant:8.
  std::string spec = "dense";
  /// Client k's codec is seeded seed_salt + k, so every client owns an
  /// independent deterministic stream regardless of execution order.
  std::uint64_t seed_salt = 9000;
};

/// True when `spec` names the lossless dense format (incl. the "float32"
/// alias) — the fast path that skips codec objects entirely.
bool is_dense_spec(const std::string& spec);

/// Factory; throws std::invalid_argument on an unknown or malformed spec.
std::unique_ptr<UpdateCodec> make_update_codec(const std::string& spec,
                                               std::uint64_t seed);

// --------------------------------------------------------------- the codecs

/// Lossless float32: [u64 dim][f32 x dim].  8 + 4·dim bytes.
class DenseCodec final : public UpdateCodec {
 public:
  std::string name() const override { return "dense"; }
  std::uint8_t id() const override { return kCodecDense; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
};

/// 1-bit signSGD with a per-chunk scale: coordinate i decodes to
/// ±scale[i / chunk], where scale is the chunk's mean |v| and the sign bits
/// are packed 64 per word via the AVX2-accelerated tensor::SignPack.
/// [u64 dim][u32 chunk][f32 scale x ceil(dim/chunk)][u64 x ceil(dim/64)] —
/// dim/8 bytes of signs plus a small scale header.
class SignCodec final : public UpdateCodec {
 public:
  explicit SignCodec(std::size_t chunk = kDefaultChunk);
  static constexpr std::size_t kDefaultChunk = 256;
  std::string name() const override;
  std::uint8_t id() const override { return kCodecSign; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;

 private:
  std::size_t chunk_;
  tensor::SignPack pack_;  // scratch, reused across encodes
};

/// b-bit uniform quantization (b ∈ {2,4,8}) over [min, max] with stochastic
/// rounding: E[decode(encode(v))] = v.  [u64 dim][u8 bits][f32 lo][f32 hi]
/// [packed b-bit levels].  The rounding RNG is checkpointed state.
class QuantCodec final : public UpdateCodec {
 public:
  QuantCodec(int bits, std::uint64_t seed);
  std::string name() const override;
  std::uint8_t id() const override { return kCodecQuant; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  int bits_;
  util::Rng rng_;
};

/// Top-k magnitude sparsification with client-side error feedback: the
/// residual of every unsent coordinate is added back before the next
/// selection, so nothing is permanently dropped — only delayed.  Indices
/// are sorted and delta-encoded as LEB128 varints.
/// [u64 dim][u64 k][varint index deltas][f32 value x k].  The residual is
/// checkpointed state (bit-packed, two floats per u64 word).
class TopKCodec final : public UpdateCodec {
 public:
  /// param >= 1: absolute k; param in (0, 1): fraction of the dimension
  /// (at least one coordinate is always kept).
  explicit TopKCodec(double param);
  std::string name() const override;
  std::uint8_t id() const override { return kCodecTopK; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  double param_;
  std::vector<float> residual_;  // error feedback, carried across encodes
};

/// Shared-codebook codec (FedCode): a k-means codebook over the update's
/// values is computed deterministically (quantile init + Lloyd iterations)
/// and transmitted only every `refresh` encodes; the uploads in between are
/// pure index streams against the receiver's cached codebook.
/// [u64 dim][u8 index_bits][u8 has_codebook][u8 k-1 + f32 x k when present]
/// [packed indices].  decode() caches the codebook -> stateful_decode().
class CodebookCodec final : public UpdateCodec {
 public:
  CodebookCodec(std::size_t k, std::size_t refresh = kDefaultRefresh);
  static constexpr std::size_t kDefaultRefresh = 16;
  std::string name() const override;
  std::uint8_t id() const override { return kCodecCodebook; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
  bool stateful_decode() const override { return true; }
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  std::size_t k_;
  std::size_t refresh_;
  std::uint64_t encodes_ = 0;         // refresh counter
  std::vector<float> codebook_;       // shared encoder/decoder cache
};

/// Random-subsampling sketch (Konečný): transmit a fraction `keep` of
/// coordinates (index + value), scaled by 1/keep so the aggregate stays
/// unbiased.  [u64 dim][u64 count][(u32 idx, f32 val) x count].
class SubsampleCodec final : public UpdateCodec {
 public:
  SubsampleCodec(double keep, std::uint64_t seed);
  std::string name() const override;
  std::uint8_t id() const override { return kCodecSubsample; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  double keep_;
  util::Rng rng_;
};

/// Structured (random-mask) update (Konečný): the update is *constrained*
/// to a random coordinate subset of density `density`; no rescaling — the
/// mask is part of the model update itself.  Same payload layout as
/// SubsampleCodec.
class StructuredMaskCodec final : public UpdateCodec {
 public:
  StructuredMaskCodec(double density, std::uint64_t seed);
  std::string name() const override;
  std::uint8_t id() const override { return kCodecStructured; }
  EncodedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(std::span<const std::byte> payload) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  double density_;
  util::Rng rng_;
};

}  // namespace cmfl::codec

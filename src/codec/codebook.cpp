#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "codec/codec.h"
#include "codec/state_pack.h"
#include "net/wire.h"

namespace cmfl::codec {

namespace {

std::uint8_t index_bits_for(std::size_t k) {
  if (k <= 2) return 1;
  if (k <= 4) return 2;
  if (k <= 16) return 4;
  return 8;
}

bool valid_index_bits(int bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8;
}

/// Nearest-center assignment; ties resolve to the lower index so the
/// assignment is a pure function of (value, centers).
std::size_t nearest(float v, std::span<const float> centers) {
  std::size_t best = 0;
  float best_d = std::fabs(v - centers[0]);
  for (std::size_t j = 1; j < centers.size(); ++j) {
    const float d = std::fabs(v - centers[j]);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

/// Deterministic k-means over the update's values: quantile init on the
/// sorted values, then a fixed number of Lloyd iterations.  No RNG — the
/// codebook is a pure function of the input, so encoder and decoder (and a
/// resumed run) always agree.
std::vector<float> fit_codebook(std::span<const float> values,
                                std::size_t k) {
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<float> centers(k);
  for (std::size_t j = 0; j < k; ++j) {
    centers[j] = sorted[(j * (sorted.size() - 1)) / (k - 1 > 0 ? k - 1 : 1)];
  }
  constexpr int kLloydIterations = 8;
  std::vector<double> sum(k);
  std::vector<std::size_t> count(k);
  for (int it = 0; it < kLloydIterations; ++it) {
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(count.begin(), count.end(), std::size_t{0});
    for (const float v : sorted) {
      const std::size_t j = nearest(v, centers);
      sum[j] += static_cast<double>(v);
      ++count[j];
    }
    bool moved = false;
    for (std::size_t j = 0; j < k; ++j) {
      if (count[j] == 0) continue;  // empty cluster keeps its old center
      const auto c =
          static_cast<float>(sum[j] / static_cast<double>(count[j]));
      if (c != centers[j]) moved = true;
      centers[j] = c;
    }
    if (!moved) break;
  }
  return centers;
}

}  // namespace

CodebookCodec::CodebookCodec(std::size_t k, std::size_t refresh)
    : k_(k), refresh_(refresh) {
  if (k < 2 || k > 256) {
    throw std::invalid_argument("CodebookCodec: k must be in [2, 256]");
  }
  if (refresh == 0) {
    throw std::invalid_argument("CodebookCodec: refresh must be >= 1");
  }
}

std::string CodebookCodec::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "codebook:%zu,%zu", k_, refresh_);
  return buf;
}

EncodedUpdate CodebookCodec::encode(std::span<const float> update) {
  const std::size_t dim = update.size();
  // FedCode-style periodic refresh: the codebook ships only on the first
  // encode and every refresh_-th one after; uploads in between are pure
  // index streams against the receiver's cached copy.
  const bool refresh = encodes_ % refresh_ == 0 || codebook_.empty();
  ++encodes_;
  if (refresh && dim > 0) codebook_ = fit_codebook(update, k_);

  const std::uint8_t bits = index_bits_for(k_);
  net::WireWriter w;
  w.u64(dim);
  w.u8(bits);
  w.u8(refresh ? 1 : 0);
  if (refresh) {
    w.u8(static_cast<std::uint8_t>(codebook_.size() == 0
                                       ? 0
                                       : codebook_.size() - 1));
    for (const float c : codebook_) w.f32(c);
  }
  const std::size_t per_byte = 8 / bits;
  std::uint8_t packed = 0;
  std::size_t in_byte = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    const auto level =
        static_cast<std::uint8_t>(nearest(update[i], codebook_));
    packed |= static_cast<std::uint8_t>(level << (bits * in_byte));
    if (++in_byte == per_byte) {
      w.u8(packed);
      packed = 0;
      in_byte = 0;
    }
  }
  if (in_byte != 0) w.u8(packed);
  return {kCodecCodebook, w.take()};
}

std::vector<float> CodebookCodec::decode(std::span<const std::byte> payload) {
  net::WireReader r(payload);
  const std::uint64_t dim = r.u64();
  const int bits = r.u8();
  if (dim > kMaxDecodeDim) {
    throw std::runtime_error("CodebookCodec: dimension header exceeds limit");
  }
  if (!valid_index_bits(bits)) {
    throw std::runtime_error("CodebookCodec: invalid index width");
  }
  const std::uint8_t has_codebook = r.u8();
  if (has_codebook > 1) {
    throw std::runtime_error("CodebookCodec: invalid codebook flag");
  }
  if (has_codebook) {
    const std::size_t k = static_cast<std::size_t>(r.u8()) + 1;
    if (k > (std::size_t{1} << bits)) {
      throw std::runtime_error("CodebookCodec: codebook exceeds index width");
    }
    std::vector<float> centers(k);
    for (float& c : centers) c = r.f32();
    codebook_ = std::move(centers);  // decoder-side cache: stateful_decode()
  } else if (codebook_.empty() && dim > 0) {
    throw std::runtime_error(
        "CodebookCodec: index stream without a cached codebook");
  }
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits);
  const std::uint64_t packed_bytes = (dim + per_byte - 1) / per_byte;
  if (packed_bytes != r.remaining()) {
    throw std::runtime_error("CodebookCodec: payload size mismatch");
  }
  const std::uint8_t mask =
      static_cast<std::uint8_t>((1u << bits) - 1);
  std::vector<float> out(static_cast<std::size_t>(dim));
  std::uint8_t byte = 0;
  std::size_t in_byte = per_byte;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (in_byte == per_byte) {
      byte = r.u8();
      in_byte = 0;
    }
    const std::size_t level = (byte >> (bits * in_byte)) & mask;
    ++in_byte;
    if (level >= codebook_.size()) {
      throw std::runtime_error("CodebookCodec: index out of range");
    }
    out[i] = codebook_[level];
  }
  if (dim % per_byte != 0 &&
      (byte >> (bits * (dim % per_byte))) != 0) {
    throw std::runtime_error("CodebookCodec: nonzero padding bits");
  }
  if (!r.done()) throw std::runtime_error("CodebookCodec: trailing bytes");
  return out;
}

std::vector<std::uint64_t> CodebookCodec::mutable_state() const {
  std::vector<std::uint64_t> words;
  words.push_back(encodes_);
  detail::pack_floats(words, codebook_);
  return words;
}

void CodebookCodec::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  if (state.empty()) {
    throw std::invalid_argument("CodebookCodec: empty state blob");
  }
  std::size_t pos = 1;
  std::vector<float> centers = detail::unpack_floats(state, pos);
  if (pos != state.size()) {
    throw std::invalid_argument("CodebookCodec: trailing state words");
  }
  if (!centers.empty() && centers.size() != k_) {
    throw std::invalid_argument("CodebookCodec: codebook size mismatch");
  }
  encodes_ = state[0];
  codebook_ = std::move(centers);
}

}  // namespace cmfl::codec

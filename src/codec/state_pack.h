// Internal helpers for codec checkpoint-state blobs: float vectors packed
// two-per-u64-word into the opaque word vectors the checkpoint layer
// carries.  Not installed API — codec/*.cpp only.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cmfl::codec::detail {

/// Appends [count][bit-packed floats, two per word] to `words`.
inline void pack_floats(std::vector<std::uint64_t>& words,
                        std::span<const float> v) {
  words.push_back(v.size());
  for (std::size_t i = 0; i < v.size(); i += 2) {
    std::uint64_t w = std::bit_cast<std::uint32_t>(v[i]);
    if (i + 1 < v.size()) {
      w |= static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(v[i + 1]))
           << 32;
    }
    words.push_back(w);
  }
}

/// Reads a pack_floats() blob starting at words[pos]; advances pos.  Throws
/// std::invalid_argument on truncation.
inline std::vector<float> unpack_floats(std::span<const std::uint64_t> words,
                                        std::size_t& pos) {
  if (pos >= words.size()) {
    throw std::invalid_argument("codec state: truncated float blob");
  }
  const std::uint64_t count = words[pos++];
  const std::size_t packed = static_cast<std::size_t>((count + 1) / 2);
  if (count > words.size() * 2 || packed > words.size() - pos) {
    throw std::invalid_argument("codec state: float blob exceeds state");
  }
  std::vector<float> v(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::uint64_t w = words[pos + i / 2];
    const auto half = static_cast<std::uint32_t>(i % 2 == 0 ? w : w >> 32);
    v[i] = std::bit_cast<float>(half);
  }
  pos += packed;
  return v;
}

}  // namespace cmfl::codec::detail

// Byte-exact wire encoding.
//
// The EC2 emulation measures *network footprint in bytes*, so messages are
// serialized into real byte buffers (little-endian, length-prefixed) rather
// than passed as in-memory objects.  WireWriter/WireReader are the
// primitives; message.h defines the FL protocol frames on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmfl::net {

/// CRC-32 (IEEE 802.3, reflected) over a byte range — frame integrity for
/// the cluster protocol.  Table-driven, computed lazily once per process.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// Appends a 4-byte CRC over `frame` (call after encode()).
void seal_frame(std::vector<std::byte>& frame);

/// Verifies and strips the trailing CRC; throws std::runtime_error on
/// mismatch or an undersized frame.
std::span<const std::byte> open_frame(std::span<const std::byte> frame);

/// Non-throwing open_frame for paths where a corrupted frame is an expected
/// event to recover from (the fault-tolerant cluster protocol), not a bug:
/// returns std::nullopt on an undersized frame or CRC mismatch.
std::optional<std::span<const std::byte>> try_open_frame(
    std::span<const std::byte> frame) noexcept;

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void f32(float v) { append(&v, sizeof(v)); }
  void f64(double v) { append(&v, sizeof(v)); }

  void floats(std::span<const float> v) {
    u64(v.size());
    append(v.data(), v.size() * sizeof(float));
  }

  /// Length-prefixed opaque byte blob (codec payloads).
  void bytes(std::span<const std::byte> v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::byte> buf_;
};

/// Throws std::runtime_error on any attempt to read past the end — a
/// truncated or corrupted frame must never be silently accepted.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t u64() { return read_pod<std::uint64_t>(); }
  float f32() { return read_pod<float>(); }
  double f64() { return read_pod<double>(); }

  std::vector<float> floats() {
    const std::uint64_t n = u64();
    if (n > remaining() / sizeof(float)) {
      throw std::runtime_error("WireReader: float array length " +
                               std::to_string(n) + " exceeds frame");
    }
    std::vector<float> out(n);
    auto bytes = take(n * sizeof(float));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  std::vector<std::byte> bytes() {
    const std::uint64_t n = u64();
    if (n > remaining()) {
      throw std::runtime_error("WireReader: byte blob length " +
                               std::to_string(n) + " exceeds frame");
    }
    auto span = take(static_cast<std::size_t>(n));
    return std::vector<std::byte>(span.begin(), span.end());
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T read_pod() {
    T v{};
    auto bytes = take(sizeof(T));
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  std::span<const std::byte> take(std::size_t n) {
    if (n > remaining()) {
      throw std::runtime_error("WireReader: truncated frame");
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace cmfl::net

// Master–worker FL cluster over the wire protocol: the in-process
// equivalent of the paper's 30-node EC2 deployment (§V-C).
//
// The master (the caller's thread) serializes a Broadcast frame per worker
// per iteration; each worker thread deserializes it, trains its FlClient,
// applies the upload filter, and answers with either a full UpdateUpload
// frame or a tiny Elimination frame.  Every frame crosses a Channel as real
// bytes and is counted by the direction's ByteMeter — giving byte-exact
// network-footprint numbers for Fig. 7b.
#pragma once

#include <memory>
#include <thread>

#include "core/filter.h"
#include "fl/client.h"
#include "fl/simulation.h"
#include "net/link.h"
#include "net/message.h"

namespace cmfl::net {

struct ClusterOptions {
  fl::SimulationOptions fl;   // E, B, η_t schedule, eval cadence, etc.
  LinkModel uplink;           // per-worker upload link model
  LinkModel downlink;         // broadcast link model
};

struct FootprintPoint {
  std::size_t iteration = 0;
  double accuracy = 0.0;
  std::uint64_t uplink_bytes = 0;  // cumulative at this evaluation
};

struct ClusterResult {
  fl::SimulationResult sim;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t upload_messages = 0;       // full update frames
  std::uint64_t elimination_messages = 0;  // status-only frames
  /// Simulated transfer time had the links been real edge connections
  /// (per-iteration max across workers, summed).
  double simulated_transfer_seconds = 0.0;
  std::vector<FootprintPoint> footprint;   // one point per evaluation
};

class FlCluster {
 public:
  /// Same contract as fl::FederatedSimulation, but execution flows through
  /// worker threads and serialized messages.
  FlCluster(std::vector<std::unique_ptr<fl::FlClient>> clients,
            std::unique_ptr<core::UpdateFilter> filter,
            fl::GlobalEvaluator evaluator, const ClusterOptions& options);

  ClusterResult run();

 private:
  std::vector<std::unique_ptr<fl::FlClient>> clients_;
  std::unique_ptr<core::UpdateFilter> filter_;
  fl::GlobalEvaluator evaluator_;
  ClusterOptions options_;
  std::size_t dim_;
};

}  // namespace cmfl::net

// Master–worker FL cluster over the wire protocol: the in-process
// equivalent of the paper's 30-node EC2 deployment (§V-C), hardened for
// the faulty edge networks CMFL actually targets.
//
// The master (the caller's thread) serializes a Broadcast frame per worker
// per iteration; each worker thread deserializes it, trains its FlClient,
// applies the upload filter, and answers with either a full UpdateUpload
// frame or a tiny Elimination frame.  Every frame crosses a Channel as real
// bytes and is counted by the direction's ByteMeter — giving byte-exact
// network-footprint numbers for Fig. 7b.
//
// With a FaultPlan configured, frames may be dropped, bit-flipped (caught
// by the CRC), duplicated, delayed, or lost to crashed workers.  Recovery
// is master-driven: each round runs against a deadline, unanswered workers
// get the (sequence-numbered, idempotent) broadcast retransmitted with
// backoff, and the round commits once a quorum of live workers has
// answered.  Workers that exhaust the retransmit budget (or miss too many
// consecutive rounds) are declared crashed; late and duplicate frames are
// discarded idempotently.  See DESIGN.md §9 for the protocol and its
// determinism argument.
#pragma once

#include <memory>
#include <thread>

#include "core/filter.h"
#include "fl/client.h"
#include "fl/simulation.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/message.h"

namespace cmfl::net {

/// Round-deadline / retransmission / quorum policy.  The zero-timeout
/// default reproduces the seed's perfectly reliable synchronous protocol
/// bit-for-bit; any FaultPlan requires a positive deadline.
struct RecoveryOptions {
  /// Per-attempt round deadline in seconds (0 = wait forever).
  double round_timeout_s = 0.0;
  /// Deadline multiplier per retransmission attempt (exponential backoff).
  double backoff = 2.0;
  /// Maximum transmissions of one round's broadcast per worker (1 original
  /// + max_attempts-1 retransmits) before the worker is declared crashed.
  int max_attempts = 8;
  /// Fraction of live workers that must answer before a deadline may
  /// commit the round (1.0 = wait for every live worker).
  double quorum = 1.0;
  /// Declare a live worker crashed once it has missed this many
  /// consecutive committed rounds (0 disables staleness suspicion; crashes
  /// are then detected only by retransmit exhaustion, which quorum < 1
  /// rounds may never trigger).  Rounds that committed through
  /// first_k_reports never count as misses: a consistently slow-but-live
  /// worker merely loses over-selected races, and losing a race is not
  /// evidence of a crash (only deadline-expired rounds are).
  int suspect_after_stale_rounds = 0;
  /// Over-selection: commit the round as soon as this many replies have
  /// arrived, discarding the remaining workers' late replies idempotently
  /// (0 disables — every live worker is awaited as before).  This is the
  /// cluster-side counterpart of sched::RoundMode::kOverSelect: broadcast
  /// to everyone, keep the first K reporters, bound the tail.  Unlike the
  /// quorum path it needs no deadline — the Kth reply itself commits.
  /// Note the committed set depends on real reply arrival order (thread
  /// timing), so — exactly as with quorum < 1 — per-round counters are not
  /// bit-reproducible across runs.  Workers that only ever lose
  /// over-selected races are exempt from suspect_after_stale_rounds (see
  /// above), so in a run where every round K-commits, crash-stop workers
  /// are only detected once a deadline actually expires below K.
  std::size_t first_k_reports = 0;
  /// Seeded multiplicative jitter on the retransmission backoff: attempt
  /// deadlines become round_timeout_s * backoff^attempt * (1 + u * jitter)
  /// with u ~ U[0, 1) drawn from a stream derived from the fault-plan
  /// seed.  Desynchronizes retry storms that would otherwise pile onto a
  /// recovering master in lockstep.  The default 0 skips the draw entirely
  /// and reproduces the unjittered deadline schedule byte-for-byte.
  double backoff_jitter = 0.0;
};

/// Replicated control plane (DESIGN.md §14): `replicas` master replicas run
/// a Raft-style consensus (net/raft.h) over per-round control state, so a
/// leader crash mid-round loses nothing — the surviving quorum elects a new
/// leader that finishes the round bit-identically.  0 keeps the PR-2
/// single-master path.
struct ReplicationOptions {
  /// Number of master replicas (0 = single master; otherwise >= 3 so one
  /// crash still leaves a majority).
  int replicas = 0;
  /// Raft tick granularity in seconds; heartbeats and election timeouts
  /// are measured in these ticks.
  double tick_interval_s = 0.002;
  int heartbeat_ticks = 2;
  /// Election timeout range in ticks, drawn per node from a stream seeded
  /// by (seed, replica id) — randomized against split votes, seeded so the
  /// timeout sequences are reproducible.
  int election_timeout_min_ticks = 10;
  int election_timeout_max_ticks = 20;
  std::uint64_t seed = 7;
  /// Durable Raft storage (DESIGN.md §15): when non-empty, each replica i
  /// persists term/vote/log/snapshot under `storage_dir/replica<i>/` with
  /// persist-before-ack discipline, and FaultPlan::replica_restart crash-
  /// restart schedules become available.  Empty keeps replicas in-memory
  /// crash-stop (the PR-7 behavior).  The directory is created if missing;
  /// any state from a previous run in it is wiped at run start.
  std::string storage_dir;
  /// Raft pre-vote (on by default): a timed-out replica polls the cluster
  /// before incrementing its term, so a healed partitioned replica cannot
  /// depose a stable leader through term inflation.
  bool pre_vote = true;
};

struct ClusterOptions {
  fl::SimulationOptions fl;   // E, B, η_t schedule, eval cadence, etc.
  LinkModel uplink;           // per-worker upload link model
  LinkModel downlink;         // broadcast link model
  FaultPlan fault;            // injected faults (default: none)
  RecoveryOptions recovery;   // deadlines / retransmit / quorum policy
  ReplicationOptions replication;  // master failover (default: off)
};

struct FootprintPoint {
  std::size_t iteration = 0;
  double accuracy = 0.0;
  std::uint64_t uplink_bytes = 0;  // cumulative at this evaluation
};

/// Fault and recovery accounting for one cluster run.  In the quorum-1.0
/// regime every counter is deterministic for a fixed FaultPlan seed.
struct FaultReport {
  // Injected by the fault layer (sender side).
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;
  // Observed by receivers.
  std::uint64_t corrupt_rejected = 0;   // CRC/decode rejections
  std::uint64_t redundant_frames = 0;   // duplicate/stale frames discarded
  // Recovery actions.
  std::uint64_t retransmits = 0;        // frames re-sent (both directions)
  std::uint64_t timed_out_rounds = 0;   // rounds with >= 1 deadline expiry
  std::uint64_t quorum_rounds = 0;      // rounds committed missing a live worker
  std::uint64_t over_select_commits = 0;  // rounds closed by first_k_reports
  // Replicated control plane (always 0 in single-master runs).  These are
  // wall-clock-coupled — a slow machine may hold extra elections — so they
  // are excluded from bit-reproducibility claims, unlike the trajectory.
  std::uint64_t elections_held = 0;       // leaderships won across replicas
  std::uint64_t leader_crashes = 0;       // scheduled leader kills fired
  std::uint64_t log_entries_replicated = 0;  // entries appended on followers
  std::uint64_t snapshot_transfers = 0;   // snapshots installed on followers
  std::uint64_t leader_redirects = 0;     // stale-leader redirects served
  std::uint64_t leader_probes = 0;        // worker round-robin leader probes
  // Durable storage (0 unless ReplicationOptions::storage_dir is set).
  std::uint64_t replica_restarts = 0;     // crash-restart recoveries completed
  std::uint64_t restart_load_errors = 0;  // restarts refused by loud recovery
  std::uint64_t wal_bytes_fsynced = 0;    // WAL bytes covered by an fsync
  std::uint64_t wal_replay_entries = 0;   // log entries replayed at restarts
  std::vector<std::uint32_t> crashed_workers;  // declared dead, in order
  /// max over committed rounds t of (t - last round client k participated).
  std::vector<std::uint64_t> max_staleness_per_client;

  bool operator==(const FaultReport&) const = default;
};

struct ClusterResult {
  fl::SimulationResult sim;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t uplink_retransmitted_bytes = 0;
  std::uint64_t downlink_retransmitted_bytes = 0;
  std::uint64_t upload_messages = 0;       // full update frames
  std::uint64_t elimination_messages = 0;  // status-only frames
  /// Replicated runs: bytes of Raft traffic (votes, AppendEntries,
  /// heartbeats, snapshot transfers) between master replicas.  Control
  /// overhead is deliberately metered apart from the data plane so Fig.-7b
  /// numbers stay comparable; heartbeat volume scales with wall-clock time
  /// and is therefore not bit-reproducible.
  std::uint64_t control_plane_bytes = 0;
  /// Sharded ingest (options.fl.sharding): upload wire bytes / upload count
  /// ingested per aggregator shard, in shard order.  Empty when sharding is
  /// off.  Deterministic at quorum 1.0 (uploads route by commit index mod
  /// S, not arrival order).
  std::vector<std::uint64_t> shard_uplink_bytes;
  std::vector<std::uint64_t> shard_uploads;
  /// Simulated transfer time had the links been real edge connections
  /// (per-iteration max across workers, summed).
  double simulated_transfer_seconds = 0.0;
  std::vector<FootprintPoint> footprint;   // one point per evaluation
  FaultReport faults;
};

class FlCluster {
 public:
  /// Same contract as fl::FederatedSimulation, but execution flows through
  /// worker threads and serialized messages.
  ///
  /// Checkpointing is driven by options.fl.checkpoint_every /
  /// checkpoint_path, exactly as in the in-process simulation.  A cluster
  /// checkpoint is only written when the round is quiesced — every active
  /// worker answered and none has been declared crashed — because that is
  /// when the master can safely read worker-owned client state (the
  /// worker's reply happens-before the master's read).  Fault-injection
  /// counters are not checkpointed; injected fault streams restart on
  /// resume, so at quorum 1.0 the resumed trajectory is still bit-identical
  /// to the uninterrupted run.
  FlCluster(std::vector<std::unique_ptr<fl::FlClient>> clients,
            std::unique_ptr<core::UpdateFilter> filter,
            fl::GlobalEvaluator evaluator, const ClusterOptions& options);

  ClusterResult run();

  /// Continues a checkpointed cluster run from ck.iteration + 1 (same
  /// workload spec and options as the original run).  Throws
  /// std::invalid_argument when the checkpoint does not fit this cluster.
  ClusterResult resume(const fl::TrainerCheckpoint& checkpoint);

 private:
  ClusterResult run_internal(const fl::TrainerCheckpoint* resume_from);

  std::vector<std::unique_ptr<fl::FlClient>> clients_;
  std::unique_ptr<core::UpdateFilter> filter_;
  fl::GlobalEvaluator evaluator_;
  ClusterOptions options_;
  std::size_t dim_;
};

}  // namespace cmfl::net

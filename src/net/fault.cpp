#include "net/fault.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "util/durable_file.h"

namespace cmfl::net {

void LinkFaults::validate(const char* what) const {
  const auto check = [&](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(std::string(what) + "." + name +
                                  " must lie in [0, 1]");
    }
  };
  check(drop_prob, "drop_prob");
  check(corrupt_prob, "corrupt_prob");
  check(duplicate_prob, "duplicate_prob");
}

bool FaultPlan::enabled() const noexcept {
  if (downlink.any() || uplink.any()) return true;
  for (const auto& [_, f] : downlink_overrides) {
    if (f.any()) return true;
  }
  for (const auto& [_, f] : uplink_overrides) {
    if (f.any()) return true;
  }
  for (const auto& [_, d] : straggler_delay_s) {
    if (d > 0.0) return true;
  }
  return !crash_at_iteration.empty() || !leader_crash.empty() ||
         !replica_restart.empty() || !replica_partition.empty();
}

LinkFaults FaultPlan::downlink_for(std::size_t worker) const {
  const auto it = downlink_overrides.find(worker);
  return it != downlink_overrides.end() ? it->second : downlink;
}

LinkFaults FaultPlan::uplink_for(std::size_t worker) const {
  const auto it = uplink_overrides.find(worker);
  return it != uplink_overrides.end() ? it->second : uplink;
}

double FaultPlan::straggler_delay_for(std::size_t worker) const noexcept {
  const auto it = straggler_delay_s.find(worker);
  return it != straggler_delay_s.end() ? it->second : 0.0;
}

std::optional<std::uint64_t> FaultPlan::crash_iteration_for(
    std::size_t worker) const noexcept {
  const auto it = crash_at_iteration.find(worker);
  if (it == crash_at_iteration.end()) return std::nullopt;
  return it->second;
}

util::Rng FaultPlan::link_rng(std::size_t worker,
                              bool is_uplink) const noexcept {
  util::Rng base(seed);
  return base.split(worker * 2 + (is_uplink ? 1 : 0));
}

util::Rng FaultPlan::replica_link_rng(std::uint32_t replica,
                                      std::size_t worker,
                                      bool is_uplink) const noexcept {
  // Salted into a range link_rng can never produce (it uses 2w + dir).
  util::Rng base(seed ^ 0x5ca1ab1e0000ULL);
  return base.split((static_cast<std::uint64_t>(replica) << 32) ^
                    (worker * 2 + (is_uplink ? 1 : 0)));
}

void FaultPlan::validate(std::size_t num_workers) const {
  downlink.validate("FaultPlan.downlink");
  uplink.validate("FaultPlan.uplink");
  for (const auto& [k, f] : downlink_overrides) {
    f.validate("FaultPlan.downlink_overrides");
    if (k >= num_workers) {
      throw std::invalid_argument("FaultPlan: downlink override for worker " +
                                  std::to_string(k) + " out of range");
    }
  }
  for (const auto& [k, f] : uplink_overrides) {
    f.validate("FaultPlan.uplink_overrides");
    if (k >= num_workers) {
      throw std::invalid_argument("FaultPlan: uplink override for worker " +
                                  std::to_string(k) + " out of range");
    }
  }
  for (const auto& [k, d] : straggler_delay_s) {
    if (d < 0.0) {
      throw std::invalid_argument("FaultPlan: negative straggler delay");
    }
    if (k >= num_workers) {
      throw std::invalid_argument("FaultPlan: straggler delay for worker " +
                                  std::to_string(k) + " out of range");
    }
  }
  for (const auto& [k, _] : crash_at_iteration) {
    if (k >= num_workers) {
      throw std::invalid_argument("FaultPlan: crash schedule for worker " +
                                  std::to_string(k) + " out of range");
    }
  }
  for (const LeaderCrash& c : leader_crash) {
    if (c.round == 0) {
      throw std::invalid_argument(
          "FaultPlan: leader_crash round is 1-based (round 0 never runs)");
    }
  }
  for (const ReplicaRestart& r : replica_restart) {
    if (r.round == 0) {
      throw std::invalid_argument(
          "FaultPlan: replica_restart round is 1-based (round 0 never runs)");
    }
    if (!(r.restart_after_ms >= 0.0)) {
      throw std::invalid_argument(
          "FaultPlan: replica_restart.restart_after_ms must be >= 0");
    }
  }
  for (const auto& [r, window] : replica_partition) {
    if (window.from_round == 0 || window.to_round < window.from_round) {
      throw std::invalid_argument(
          "FaultPlan: replica_partition window must satisfy 1 <= from <= to");
    }
    (void)r;  // replica-count bound is checked by the replicated master
  }
}

std::optional<StorageFaultInjector::Action> StorageFaultInjector::apply(
    StorageFault fault, const std::string& path) {
  if (fault == StorageFault::kNone) return std::nullopt;
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return std::nullopt;
  const auto spans = util::DurableFile::record_spans(path);

  Action a;
  a.fault = fault;
  a.old_size = size;
  a.new_size = size;

  const auto truncate_to = [&](std::uint64_t new_size) {
    std::filesystem::resize_file(path, new_size, ec);
    if (ec) {
      throw std::runtime_error("StorageFaultInjector: cannot truncate " +
                               path);
    }
    a.offset = new_size;
    a.new_size = new_size;
  };

  switch (fault) {
    case StorageFault::kTornFinalWrite: {
      // Cut strictly inside the last record's bytes — what a crash between
      // write() and fsync() leaves behind.
      if (spans.empty()) return std::nullopt;
      const auto [off, len] = spans.back();
      truncate_to(off + 1 + rng_.uniform_index(len - 1));
      break;
    }
    case StorageFault::kBitFlip: {
      // Flip one bit inside a seeded record (silent media corruption); the
      // CRC on the real read path must catch it.
      if (spans.empty()) return std::nullopt;
      const auto [off, len] = spans[rng_.uniform_index(spans.size())];
      a.offset = off + rng_.uniform_index(len);
      a.bit = static_cast<unsigned>(rng_.uniform_index(8));
      std::fstream f(path,
                     std::ios::in | std::ios::out | std::ios::binary);
      if (!f) {
        throw std::runtime_error("StorageFaultInjector: cannot open " + path);
      }
      f.seekg(static_cast<std::streamoff>(a.offset));
      char c = 0;
      f.get(c);
      c = static_cast<char>(c ^ static_cast<char>(1u << a.bit));
      f.seekp(static_cast<std::streamoff>(a.offset));
      f.put(c);
      if (!f) {
        throw std::runtime_error("StorageFaultInjector: flip failed in " +
                                 path);
      }
      break;
    }
    case StorageFault::kTruncate:
      // Arbitrary cut — may land mid-record, mid-header, or at zero.
      truncate_to(rng_.uniform_index(size));
      break;
    case StorageFault::kFsyncDroppedTail: {
      // 1..3 whole records vanish from the end: appends that were written
      // but whose fsync never reached the platter.
      if (spans.empty()) return std::nullopt;
      const std::size_t drop =
          1 + rng_.uniform_index(std::min<std::size_t>(3, spans.size()));
      truncate_to(spans[spans.size() - drop].first);
      break;
    }
    case StorageFault::kNone:
      return std::nullopt;
  }
  return a;
}

bool FaultyChannel::send(std::vector<std::byte> frame) {
  if (faults_.drop_prob > 0.0 && rng_.bernoulli(faults_.drop_prob)) {
    stats_->frames_dropped.fetch_add(1, std::memory_order_relaxed);
    return true;  // vanished in transit; the sender cannot tell
  }
  if (faults_.corrupt_prob > 0.0 && !frame.empty() &&
      rng_.bernoulli(faults_.corrupt_prob)) {
    const std::size_t pos = rng_.uniform_index(frame.size());
    const auto bit = static_cast<unsigned>(rng_.uniform_index(8));
    frame[pos] ^= static_cast<std::byte>(1u << bit);
    stats_->frames_corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  if (faults_.duplicate_prob > 0.0 && rng_.bernoulli(faults_.duplicate_prob)) {
    stats_->frames_duplicated.fetch_add(1, std::memory_order_relaxed);
    // Both copies must enqueue atomically: a receiver that drains its inbox
    // after seeing the first copy would otherwise miss the second depending
    // on scheduling, making discard counters non-reproducible.
    std::vector<std::vector<std::byte>> copies;
    copies.push_back(frame);
    copies.push_back(std::move(frame));
    return inner_->send_many(std::move(copies));
  }
  return inner_->send(std::move(frame));
}

}  // namespace cmfl::net

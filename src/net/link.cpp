#include "net/link.h"

namespace cmfl::net {

bool Channel::send(std::vector<std::byte> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    frames_.push_back(std::move(frame));
  }
  ready_.notify_one();
  return true;
}

bool Channel::send_many(std::vector<std::vector<std::byte>> frames) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    for (auto& f : frames) frames_.push_back(std::move(f));
  }
  ready_.notify_all();
  return true;
}

std::optional<std::vector<std::byte>> Channel::recv() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !frames_.empty(); });
  if (frames_.empty()) return std::nullopt;  // closed and drained
  auto frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

std::optional<std::vector<std::byte>> Channel::recv_for(
    std::chrono::steady_clock::duration timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  ready_.wait_until(lock, deadline,
                    [this] { return closed_ || !frames_.empty(); });
  if (frames_.empty()) return std::nullopt;  // timed out, or closed+drained
  auto frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void Channel::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

}  // namespace cmfl::net

#include "net/link.h"

namespace cmfl::net {

bool Channel::send(std::vector<std::byte> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    frames_.push_back(std::move(frame));
  }
  ready_.notify_one();
  return true;
}

std::optional<std::vector<std::byte>> Channel::recv() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !frames_.empty(); });
  if (frames_.empty()) return std::nullopt;  // closed and drained
  auto frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void Channel::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

}  // namespace cmfl::net

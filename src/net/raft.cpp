#include "net/raft.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/wire.h"

namespace cmfl::net {

namespace {

// Raft frame type bytes; FL data frames (net/message.h) use 1..6.
enum class RaftFrame : std::uint8_t {
  kRequestVote = 16,
  kVoteReply = 17,
  kAppendEntries = 18,
  kAppendReply = 19,
  kInstallSnapshot = 20,
  kSnapshotReply = 21,
  kPreVote = 22,
  kPreVoteReply = 23,
};

void write_bytes(WireWriter& w, std::span<const std::byte> data) {
  w.u64(data.size());
  for (const std::byte b : data) w.u8(static_cast<std::uint8_t>(b));
}

std::vector<std::byte> read_bytes(WireReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    throw std::runtime_error("decode_raft: byte array length " +
                             std::to_string(n) + " exceeds frame");
  }
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(r.u8());
  return out;
}

}  // namespace

std::vector<std::byte> encode_raft(const RaftMessage& msg) {
  WireWriter w;
  if (const auto* rv = std::get_if<RequestVoteMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kRequestVote));
    w.u64(rv->term);
    w.u32(rv->candidate);
    w.u64(rv->last_log_index);
    w.u64(rv->last_log_term);
  } else if (const auto* vr = std::get_if<VoteReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kVoteReply));
    w.u64(vr->term);
    w.u32(vr->voter);
    w.u8(vr->granted);
  } else if (const auto* ae = std::get_if<AppendEntriesMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kAppendEntries));
    w.u64(ae->term);
    w.u32(ae->leader);
    w.u64(ae->prev_index);
    w.u64(ae->prev_term);
    w.u64(ae->commit);
    w.u64(ae->entries.size());
    for (const RaftEntry& e : ae->entries) {
      w.u64(e.term);
      write_bytes(w, e.command);
    }
  } else if (const auto* ar = std::get_if<AppendReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kAppendReply));
    w.u64(ar->term);
    w.u32(ar->follower);
    w.u8(ar->success);
    w.u64(ar->match_index);
  } else if (const auto* is = std::get_if<InstallSnapshotMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kInstallSnapshot));
    w.u64(is->term);
    w.u32(is->leader);
    w.u64(is->last_index);
    w.u64(is->last_term);
    write_bytes(w, is->data);
  } else if (const auto* sr = std::get_if<SnapshotReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kSnapshotReply));
    w.u64(sr->term);
    w.u32(sr->follower);
    w.u64(sr->last_index);
  } else if (const auto* pv = std::get_if<PreVoteMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kPreVote));
    w.u64(pv->term);
    w.u32(pv->candidate);
    w.u64(pv->last_log_index);
    w.u64(pv->last_log_term);
  } else {
    const auto& pr = std::get<PreVoteReplyMsg>(msg);
    w.u8(static_cast<std::uint8_t>(RaftFrame::kPreVoteReply));
    w.u64(pr.term);
    w.u32(pr.voter);
    w.u8(pr.granted);
  }
  return w.take();
}

RaftMessage decode_raft(std::span<const std::byte> frame) {
  WireReader r(frame);
  const auto type = static_cast<RaftFrame>(r.u8());
  switch (type) {
    case RaftFrame::kRequestVote: {
      RequestVoteMsg m;
      m.term = r.u64();
      m.candidate = r.u32();
      m.last_log_index = r.u64();
      m.last_log_term = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kVoteReply: {
      VoteReplyMsg m;
      m.term = r.u64();
      m.voter = r.u32();
      m.granted = r.u8();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kAppendEntries: {
      AppendEntriesMsg m;
      m.term = r.u64();
      m.leader = r.u32();
      m.prev_index = r.u64();
      m.prev_term = r.u64();
      m.commit = r.u64();
      const std::uint64_t n = r.u64();
      if (n > r.remaining()) {
        throw std::runtime_error("decode_raft: entry count exceeds frame");
      }
      m.entries.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        RaftEntry e;
        e.term = r.u64();
        e.command = read_bytes(r);
        m.entries.push_back(std::move(e));
      }
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kAppendReply: {
      AppendReplyMsg m;
      m.term = r.u64();
      m.follower = r.u32();
      m.success = r.u8();
      m.match_index = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kInstallSnapshot: {
      InstallSnapshotMsg m;
      m.term = r.u64();
      m.leader = r.u32();
      m.last_index = r.u64();
      m.last_term = r.u64();
      m.data = read_bytes(r);
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kSnapshotReply: {
      SnapshotReplyMsg m;
      m.term = r.u64();
      m.follower = r.u32();
      m.last_index = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kPreVote: {
      PreVoteMsg m;
      m.term = r.u64();
      m.candidate = r.u32();
      m.last_log_index = r.u64();
      m.last_log_term = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kPreVoteReply: {
      PreVoteReplyMsg m;
      m.term = r.u64();
      m.voter = r.u32();
      m.granted = r.u8();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
  }
  throw std::runtime_error("decode_raft: unknown frame type " +
                           std::to_string(static_cast<int>(type)));
}

bool is_raft_frame(std::span<const std::byte> payload) noexcept {
  if (payload.empty()) return false;
  const auto t = static_cast<std::uint8_t>(payload[0]);
  return t >= static_cast<std::uint8_t>(RaftFrame::kRequestVote) &&
         t <= static_cast<std::uint8_t>(RaftFrame::kPreVoteReply);
}

std::uint32_t raft_sender(const RaftMessage& msg) noexcept {
  if (const auto* rv = std::get_if<RequestVoteMsg>(&msg)) return rv->candidate;
  if (const auto* vr = std::get_if<VoteReplyMsg>(&msg)) return vr->voter;
  if (const auto* ae = std::get_if<AppendEntriesMsg>(&msg)) return ae->leader;
  if (const auto* ar = std::get_if<AppendReplyMsg>(&msg)) return ar->follower;
  if (const auto* is = std::get_if<InstallSnapshotMsg>(&msg)) {
    return is->leader;
  }
  if (const auto* sr = std::get_if<SnapshotReplyMsg>(&msg)) {
    return sr->follower;
  }
  if (const auto* pv = std::get_if<PreVoteMsg>(&msg)) return pv->candidate;
  return std::get<PreVoteReplyMsg>(msg).voter;
}

// ----------------------------------------------------------------- storage

namespace {

constexpr std::array<char, 4> kWalMagic = {'C', 'M', 'R', 'W'};
constexpr std::uint32_t kWalVersion = 1;
constexpr std::array<char, 4> kSnapshotMagic = {'C', 'M', 'R', 'S'};
constexpr std::uint32_t kSnapshotVersion = 1;

// WAL record kinds.  Payloads are WireWriter-framed.
enum : std::uint8_t {
  kRecHardState = 1,  // u64 term, u8 has_vote, u32 vote
  kRecEntry = 2,      // u64 index, u64 term, byte array command
  kRecTruncate = 3,   // u64 last_kept (conflict-suffix truncation)
};

std::vector<std::byte> entry_record(std::uint64_t index,
                                    const RaftEntry& entry) {
  WireWriter w;
  w.u8(kRecEntry);
  w.u64(index);
  w.u64(entry.term);
  write_bytes(w, entry.command);
  return w.take();
}

}  // namespace

RaftStorage::RaftStorage(std::string dir, bool sync)
    : dir_(std::move(dir)), sync_(sync) {
  std::filesystem::create_directories(dir_);
  // Stale .tmp files are debris of a crash mid-rotation or mid-snapshot;
  // the rename never happened, so they hold no committed state.
  std::error_code ec;
  std::filesystem::remove(wal_path() + ".tmp", ec);
  std::filesystem::remove(snapshot_path() + ".tmp", ec);

  if (std::filesystem::exists(snapshot_path())) {
    const std::vector<std::byte> payload =
        util::load_sealed_file(snapshot_path(), kSnapshotMagic,
                               kSnapshotVersion);
    WireReader r(payload);
    state_.snapshot_index = r.u64();
    state_.snapshot_term = r.u64();
    state_.snapshot = read_bytes(r);
    if (!r.done()) {
      throw std::runtime_error("RaftStorage: trailing bytes in snapshot " +
                               snapshot_path());
    }
    state_.any = true;
  }

  wal_.emplace(wal_path(), kWalMagic, kWalVersion, sync_);
  state_.wal_tail_truncated = wal_->recovered().tail_truncated;
  for (const std::vector<std::byte>& rec : wal_->recovered().records) {
    replay_record(rec);
    state_.any = true;
  }
  hard_term_ = state_.term;
  hard_vote_ = state_.voted_for;
}

std::string RaftStorage::wal_path() const { return dir_ + "/wal"; }

std::string RaftStorage::snapshot_path() const { return dir_ + "/snapshot"; }

void RaftStorage::replay_record(std::span<const std::byte> record) {
  WireReader r(record);
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case kRecHardState: {
      state_.term = r.u64();
      const bool has_vote = r.u8() != 0;
      const std::uint32_t vote = r.u32();
      state_.voted_for =
          has_vote ? std::optional<std::uint32_t>(vote) : std::nullopt;
      break;
    }
    case kRecEntry: {
      const std::uint64_t index = r.u64();
      RaftEntry e;
      e.term = r.u64();
      e.command = read_bytes(r);
      // Entries at or below the snapshot horizon are superseded (the WAL
      // rotation that would have dropped them raced a crash).
      if (index <= state_.snapshot_index) break;
      const std::uint64_t last = state_.snapshot_index + state_.log.size();
      if (index == last + 1) {
        state_.log.push_back(std::move(e));
      } else if (index <= last) {
        // A re-appended slot implies the suffix from here was replaced.
        state_.log.resize(
            static_cast<std::size_t>(index - state_.snapshot_index - 1));
        state_.log.push_back(std::move(e));
      } else {
        throw std::runtime_error(
            "RaftStorage: WAL entry gap at index " + std::to_string(index) +
            " (log ends at " + std::to_string(last) + ") in " + wal_path());
      }
      ++counters_.replay_entries;
      break;
    }
    case kRecTruncate: {
      const std::uint64_t last_kept = r.u64();
      const std::uint64_t keep =
          last_kept > state_.snapshot_index
              ? last_kept - state_.snapshot_index
              : 0;
      if (keep < state_.log.size()) {
        state_.log.resize(static_cast<std::size_t>(keep));
      }
      break;
    }
    default:
      throw std::runtime_error("RaftStorage: unknown WAL record kind " +
                               std::to_string(kind) + " in " + wal_path());
  }
  if (!r.done()) {
    throw std::runtime_error("RaftStorage: trailing bytes in WAL record in " +
                             wal_path());
  }
}

std::vector<std::byte> RaftStorage::hard_state_record() const {
  WireWriter w;
  w.u8(kRecHardState);
  w.u64(hard_term_);
  w.u8(hard_vote_ ? 1 : 0);
  w.u32(hard_vote_ ? *hard_vote_ : 0);
  return w.take();
}

void RaftStorage::persist_hard_state(std::uint64_t term,
                                     std::optional<std::uint32_t> voted_for) {
  if (term == hard_term_ && voted_for == hard_vote_) return;
  hard_term_ = term;
  hard_vote_ = voted_for;
  wal_->append(hard_state_record(), /*sync_now=*/true);
}

void RaftStorage::append_entry(std::uint64_t index, const RaftEntry& entry,
                               bool sync_now) {
  wal_->append(entry_record(index, entry), sync_now);
}

void RaftStorage::truncate_suffix(std::uint64_t last_kept) {
  WireWriter w;
  w.u8(kRecTruncate);
  w.u64(last_kept);
  // Unsynced on purpose: a truncate record is only ever written together
  // with the replacement entries, whose sync() covers it.  If the batch is
  // lost to a crash, the pre-conflict log survives intact — safe, because
  // nothing about the replacement batch was acknowledged.
  wal_->append(w.take(), /*sync_now=*/false);
}

void RaftStorage::sync() { wal_->sync(); }

void RaftStorage::install_snapshot(std::uint64_t index, std::uint64_t term,
                                   std::span<const std::byte> data,
                                   std::span<const RaftEntry> tail) {
  WireWriter w;
  w.u64(index);
  w.u64(term);
  write_bytes(w, data);
  const std::vector<std::byte> payload = w.take();
  util::save_sealed_file(snapshot_path(), kSnapshotMagic, kSnapshotVersion,
                         payload);
  ++counters_.snapshots_written;

  // Rotate the WAL: everything at or below `index` is superseded by the
  // snapshot just sealed.  A crash between the two writes is safe — replay
  // skips WAL entries at or below the snapshot horizon.
  std::vector<std::vector<std::byte>> records;
  records.reserve(1 + tail.size());
  records.push_back(hard_state_record());
  std::uint64_t idx = index;
  for (const RaftEntry& e : tail) records.push_back(entry_record(++idx, e));

  const util::DurableFileStats& live = wal_->stats();
  retired_.bytes_fsynced += live.bytes_fsynced;
  retired_.fsync_calls += live.fsync_calls;
  retired_.records_appended += live.records_appended;
  wal_.reset();  // close the fd of the inode about to be unlinked
  const std::uint64_t bytes = util::DurableFile::rewrite(
      wal_path(), kWalMagic, kWalVersion, records, sync_);
  retired_.bytes_fsynced += bytes;
  retired_.fsync_calls += 1;
  retired_.records_appended += records.size();
  wal_.emplace(wal_path(), kWalMagic, kWalVersion, sync_);
}

RaftStorageCounters RaftStorage::counters() const noexcept {
  RaftStorageCounters c = counters_;
  const util::DurableFileStats& live = wal_->stats();
  c.wal_bytes_fsynced = retired_.bytes_fsynced + live.bytes_fsynced;
  c.wal_records = retired_.records_appended + live.records_appended;
  return c;
}

// -------------------------------------------------------------------- node

void RaftConfig::validate() const {
  if (cluster_size < 1) {
    throw std::invalid_argument("RaftConfig: cluster_size must be >= 1");
  }
  if (id >= cluster_size) {
    throw std::invalid_argument("RaftConfig: id out of range");
  }
  if (heartbeat_ticks < 1) {
    throw std::invalid_argument("RaftConfig: heartbeat_ticks must be >= 1");
  }
  if (election_timeout_min_ticks < 1 ||
      election_timeout_max_ticks < election_timeout_min_ticks) {
    throw std::invalid_argument(
        "RaftConfig: need 1 <= election_timeout_min_ticks <= "
        "election_timeout_max_ticks");
  }
  if (election_timeout_min_ticks <= heartbeat_ticks) {
    throw std::invalid_argument(
        "RaftConfig: election timeout must exceed the heartbeat cadence");
  }
}

RaftNode::RaftNode(const RaftConfig& config, RaftStorage* storage)
    : config_(config),
      storage_(storage),
      timeout_rng_(util::Rng(config.seed).split(config.id)) {
  config_.validate();
  votes_.assign(config_.cluster_size, 0);
  next_index_.assign(config_.cluster_size, 1);
  match_index_.assign(config_.cluster_size, 0);
  reset_election_timer();
  if (storage_ != nullptr && storage_->recovered().any) {
    const RaftPersistentState& ps = storage_->recovered();
    term_ = ps.term;
    voted_for_ = ps.voted_for;
    snapshot_index_ = ps.snapshot_index;
    snapshot_term_ = ps.snapshot_term;
    snapshot_ = ps.snapshot;
    log_.assign(ps.log.begin(), ps.log.end());
    // The commit index is volatile state: a restarted node only knows that
    // everything its snapshot covers was committed, and re-learns the rest
    // from the next leader heartbeat.  The host restores its application
    // state from the snapshot, so delivery resumes right after it.
    commit_ = snapshot_index_;
    delivered_ = snapshot_index_;
  }
}

std::uint64_t RaftNode::last_log_index() const noexcept {
  return snapshot_index_ + log_.size();
}

std::uint64_t RaftNode::peer_match_index(std::uint32_t peer) const noexcept {
  if (role_ != Role::kLeader || peer >= match_index_.size()) return 0;
  return match_index_[peer];
}

std::uint64_t RaftNode::term_at(std::uint64_t index) const {
  if (index == snapshot_index_) return snapshot_term_;
  return entry_at(index).term;
}

const RaftEntry& RaftNode::entry_at(std::uint64_t index) const {
  // index is 1-based and must lie in (snapshot_index_, last_log_index()].
  return log_[index - snapshot_index_ - 1];
}

void RaftNode::reset_election_timer() {
  ticks_ = 0;
  election_timeout_ = static_cast<int>(timeout_rng_.uniform_int(
      config_.election_timeout_min_ticks, config_.election_timeout_max_ticks));
}

void RaftNode::persist_hard_state() {
  if (storage_ != nullptr) storage_->persist_hard_state(term_, voted_for_);
}

void RaftNode::persist_last_entry(bool sync_now) {
  if (storage_ != nullptr) {
    storage_->append_entry(last_log_index(), log_.back(), sync_now);
  }
}

void RaftNode::become_follower(std::uint64_t term) {
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
    persist_hard_state();
  }
  role_ = Role::kFollower;
  prevoting_ = false;
  reset_election_timer();
}

void RaftNode::become_candidate() {
  role_ = Role::kCandidate;
  prevoting_ = false;
  ++term_;
  voted_for_ = config_.id;
  persist_hard_state();
  votes_.assign(config_.cluster_size, 0);
  votes_[config_.id] = 1;
  reset_election_timer();
  if (config_.cluster_size == 1) {
    become_leader();
    return;
  }
  RequestVoteMsg rv;
  rv.term = term_;
  rv.candidate = config_.id;
  rv.last_log_index = last_log_index();
  rv.last_log_term = term_at(last_log_index());
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    if (p != config_.id) outbox_.push_back({p, rv});
  }
}

void RaftNode::begin_prevote() {
  // Poll at term_ + 1 without touching term_: only a poll a majority says
  // would win is converted into a real election (become_candidate).
  prevoting_ = true;
  prevotes_.assign(config_.cluster_size, 0);
  prevotes_[config_.id] = 1;
  reset_election_timer();
  if (config_.cluster_size == 1) {
    become_candidate();
    return;
  }
  PreVoteMsg pv;
  pv.term = term_ + 1;
  pv.candidate = config_.id;
  pv.last_log_index = last_log_index();
  pv.last_log_term = term_at(last_log_index());
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    if (p != config_.id) outbox_.push_back({p, pv});
  }
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  prevoting_ = false;
  leader_hint_ = config_.id;
  ++counters_.elections_won;
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    next_index_[p] = last_log_index() + 1;
    match_index_[p] = 0;
  }
  match_index_[config_.id] = last_log_index();
  // A fresh no-op barrier: committing it commits every earlier entry still
  // pending from previous terms (the "no counting for old terms" rule) and
  // tells the application when the new leader's state machine is current.
  log_.push_back(RaftEntry{term_, {}});
  persist_last_entry(/*sync_now=*/true);
  match_index_[config_.id] = last_log_index();
  ticks_ = 0;
  broadcast_heartbeat();
  advance_commit();  // single-node cluster commits immediately
}

void RaftNode::tick() {
  if (role_ == Role::kLeader) {
    if (++ticks_ >= config_.heartbeat_ticks) {
      ticks_ = 0;
      broadcast_heartbeat();
    }
    return;
  }
  if (++ticks_ >= election_timeout_) {
    if (config_.pre_vote) {
      begin_prevote();
    } else {
      become_candidate();
    }
  }
}

void RaftNode::broadcast_heartbeat() {
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    if (p != config_.id) send_append(p);
  }
}

void RaftNode::send_append(std::uint32_t peer) {
  if (next_index_[peer] <= snapshot_index_) {
    // The entries this follower needs were compacted away: ship the
    // application snapshot instead.
    InstallSnapshotMsg is;
    is.term = term_;
    is.leader = config_.id;
    is.last_index = snapshot_index_;
    is.last_term = snapshot_term_;
    is.data = snapshot_;
    outbox_.push_back({peer, std::move(is)});
    return;
  }
  AppendEntriesMsg ae;
  ae.term = term_;
  ae.leader = config_.id;
  ae.prev_index = next_index_[peer] - 1;
  ae.prev_term = term_at(ae.prev_index);
  ae.commit = commit_;
  for (std::uint64_t i = next_index_[peer]; i <= last_log_index(); ++i) {
    ae.entries.push_back(entry_at(i));
  }
  outbox_.push_back({peer, std::move(ae)});
}

bool RaftNode::propose(std::vector<std::byte> command) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(RaftEntry{term_, std::move(command)});
  // Persist before the AppendEntries frames carrying the entry can leave
  // the outbox: a leader must never ask followers to store what it could
  // itself forget in a restart.
  persist_last_entry(/*sync_now=*/true);
  match_index_[config_.id] = last_log_index();
  broadcast_heartbeat();
  advance_commit();  // single-node cluster
  return true;
}

void RaftNode::advance_commit() {
  if (role_ != Role::kLeader) return;
  for (std::uint64_t idx = last_log_index(); idx > commit_; --idx) {
    if (idx <= snapshot_index_) break;    // already compacted => committed
    if (term_at(idx) != term_) break;     // only current-term entries count
    std::uint32_t replicas = 0;
    for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
      if (match_index_[p] >= idx) ++replicas;
    }
    if (replicas * 2 > config_.cluster_size) {
      commit_ = idx;
      break;
    }
  }
  enqueue_committed();
}

void RaftNode::enqueue_committed() {
  while (delivered_ < commit_) {
    ++delivered_;
    if (delivered_ <= snapshot_index_) continue;  // superseded by snapshot
    const RaftEntry& e = entry_at(delivered_);
    if (e.command.empty()) continue;  // no-op barrier
    committed_out_.push_back({delivered_, e.command});
  }
}

void RaftNode::step(const RaftMessage& msg) {
  std::visit([this](const auto& m) { handle(m); }, msg);
}

void RaftNode::handle(const RequestVoteMsg& m) {
  if (m.term > term_) become_follower(m.term);
  VoteReplyMsg reply;
  reply.term = term_;
  reply.voter = config_.id;
  const bool up_to_date =
      m.last_log_term > term_at(last_log_index()) ||
      (m.last_log_term == term_at(last_log_index()) &&
       m.last_log_index >= last_log_index());
  if (m.term == term_ && up_to_date &&
      (!voted_for_ || *voted_for_ == m.candidate)) {
    voted_for_ = m.candidate;
    // Persist-before-ack: the vote is on stable storage before the grant
    // can leave the outbox, so a restarted node can never double-vote.
    persist_hard_state();
    reply.granted = 1;
    reset_election_timer();
  }
  outbox_.push_back({m.candidate, reply});
}

void RaftNode::handle(const PreVoteMsg& m) {
  PreVoteReplyMsg reply;
  reply.term = m.term;  // echo the proposed term so the poller can match
  reply.voter = config_.id;
  const bool up_to_date =
      m.last_log_term > term_at(last_log_index()) ||
      (m.last_log_term == term_at(last_log_index()) &&
       m.last_log_index >= last_log_index());
  // Grant only when the poll could win a real election (proposed term is
  // ahead, log is up to date) AND this node has itself stopped hearing
  // from a live leader — a healthy follower denies, which is exactly what
  // stops a healed partitioned node from deposing a stable leader.
  const bool leader_silent =
      role_ == Role::kCandidate ||
      (role_ == Role::kFollower &&
       ticks_ >= config_.election_timeout_min_ticks);
  if (m.term > term_ && up_to_date && leader_silent) reply.granted = 1;
  // No state changes: a pre-vote grant is a prediction, not a vote — the
  // term, voted_for, and election timer are all untouched.
  outbox_.push_back({m.candidate, reply});
}

void RaftNode::handle(const PreVoteReplyMsg& m) {
  if (!prevoting_ || m.term != term_ + 1 || !m.granted) return;
  prevotes_[m.voter] = 1;
  std::uint32_t granted = 0;
  for (const std::uint8_t v : prevotes_) granted += v;
  if (granted * 2 > config_.cluster_size) become_candidate();
}

void RaftNode::handle(const VoteReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  votes_[m.voter] = 1;
  std::uint32_t granted = 0;
  for (const std::uint8_t v : votes_) granted += v;
  if (granted * 2 > config_.cluster_size) become_leader();
}

void RaftNode::handle(const AppendEntriesMsg& m) {
  AppendReplyMsg reply;
  reply.follower = config_.id;
  if (m.term < term_) {
    reply.term = term_;
    reply.match_index = last_log_index();
    outbox_.push_back({m.leader, reply});
    return;
  }
  become_follower(m.term);
  leader_hint_ = m.leader;
  reply.term = term_;

  // Consistency check: our log must contain m.prev_index with m.prev_term.
  if (m.prev_index > last_log_index() ||
      (m.prev_index > snapshot_index_ &&
       term_at(m.prev_index) != m.prev_term) ||
      m.prev_index < snapshot_index_) {
    // (prev_index < snapshot_index_ means the leader is behind our
    // snapshot — stale leader; the hint re-syncs it.)
    reply.success = 0;
    reply.match_index = last_log_index();
    outbox_.push_back({m.leader, reply});
    return;
  }

  // Append new entries, truncating any conflicting suffix.
  std::uint64_t index = m.prev_index;
  bool appended = false;
  for (const RaftEntry& e : m.entries) {
    ++index;
    if (index <= last_log_index()) {
      if (term_at(index) == e.term) continue;  // already have it
      // Conflict: drop this entry and everything after it.
      log_.resize(index - snapshot_index_ - 1);
      if (storage_ != nullptr) storage_->truncate_suffix(index - 1);
    }
    log_.push_back(e);
    if (storage_ != nullptr) {
      storage_->append_entry(index, e, /*sync_now=*/false);
    }
    appended = true;
    ++counters_.entries_appended;
  }
  // One fsync covers the whole batch — persist-before-ack: the entries are
  // on stable storage before the success reply can leave the outbox.
  if (appended && storage_ != nullptr) storage_->sync();
  if (m.commit > commit_) {
    commit_ = std::min(m.commit, last_log_index());
    enqueue_committed();
  }
  reply.success = 1;
  reply.match_index = index > last_log_index() ? last_log_index() : index;
  if (reply.match_index < m.prev_index) reply.match_index = m.prev_index;
  outbox_.push_back({m.leader, reply});
}

void RaftNode::handle(const AppendReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.success) {
    if (m.match_index > match_index_[m.follower]) {
      match_index_[m.follower] = m.match_index;
    }
    next_index_[m.follower] = match_index_[m.follower] + 1;
    advance_commit();
    if (next_index_[m.follower] <= last_log_index()) {
      send_append(m.follower);  // keep streaming the remainder
    }
    return;
  }
  // Conflict hint: jump straight past the follower's log end.
  next_index_[m.follower] =
      std::min(next_index_[m.follower] > 1 ? next_index_[m.follower] - 1
                                           : 1,
               m.match_index + 1);
  if (next_index_[m.follower] < 1) next_index_[m.follower] = 1;
  send_append(m.follower);
}

void RaftNode::handle(const InstallSnapshotMsg& m) {
  if (m.term < term_) {
    SnapshotReplyMsg reply{term_, config_.id, last_log_index()};
    outbox_.push_back({m.leader, reply});
    return;
  }
  become_follower(m.term);
  leader_hint_ = m.leader;
  if (m.last_index > snapshot_index_) {
    // Discard the log the snapshot supersedes; keep any suffix beyond it
    // that is consistent (same slot still present).  Simplest safe rule:
    // drop everything — the leader streams the suffix next.
    log_.clear();
    snapshot_index_ = m.last_index;
    snapshot_term_ = m.last_term;
    snapshot_ = m.data;
    if (commit_ < snapshot_index_) commit_ = snapshot_index_;
    if (delivered_ < snapshot_index_) delivered_ = snapshot_index_;
    if (storage_ != nullptr) {
      // Persist before the ack: the reply tells the leader this follower
      // holds the snapshot, so a restart must not lose it.
      storage_->install_snapshot(snapshot_index_, snapshot_term_, snapshot_,
                                 {});
    }
    installed_ = InstalledSnapshot{m.last_index, m.data};
    ++counters_.snapshots_installed;
  }
  SnapshotReplyMsg reply{term_, config_.id, last_log_index()};
  outbox_.push_back({m.leader, reply});
}

void RaftNode::handle(const SnapshotReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.last_index > match_index_[m.follower]) {
    match_index_[m.follower] = m.last_index;
  }
  next_index_[m.follower] = match_index_[m.follower] + 1;
  advance_commit();
  if (next_index_[m.follower] <= last_log_index()) send_append(m.follower);
}

void RaftNode::compact(std::uint64_t index, std::vector<std::byte> snapshot) {
  if (index <= snapshot_index_) return;
  if (index > commit_) {
    throw std::invalid_argument(
        "RaftNode::compact: cannot compact past the commit index");
  }
  const std::uint64_t drop = index - snapshot_index_;
  snapshot_term_ = term_at(index);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(drop));
  snapshot_index_ = index;
  snapshot_ = std::move(snapshot);
  if (storage_ != nullptr) {
    const std::vector<RaftEntry> tail(log_.begin(), log_.end());
    storage_->install_snapshot(snapshot_index_, snapshot_term_, snapshot_,
                               tail);
  }
}

std::vector<RaftNode::Send> RaftNode::take_outbox() {
  return std::exchange(outbox_, {});
}

std::vector<RaftNode::Committed> RaftNode::take_committed() {
  return std::exchange(committed_out_, {});
}

std::optional<RaftNode::InstalledSnapshot>
RaftNode::take_installed_snapshot() {
  return std::exchange(installed_, std::nullopt);
}

}  // namespace cmfl::net

#include "net/raft.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/wire.h"

namespace cmfl::net {

namespace {

// Raft frame type bytes; FL data frames (net/message.h) use 1..6.
enum class RaftFrame : std::uint8_t {
  kRequestVote = 16,
  kVoteReply = 17,
  kAppendEntries = 18,
  kAppendReply = 19,
  kInstallSnapshot = 20,
  kSnapshotReply = 21,
};

void write_bytes(WireWriter& w, std::span<const std::byte> data) {
  w.u64(data.size());
  for (const std::byte b : data) w.u8(static_cast<std::uint8_t>(b));
}

std::vector<std::byte> read_bytes(WireReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    throw std::runtime_error("decode_raft: byte array length " +
                             std::to_string(n) + " exceeds frame");
  }
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(r.u8());
  return out;
}

}  // namespace

std::vector<std::byte> encode_raft(const RaftMessage& msg) {
  WireWriter w;
  if (const auto* rv = std::get_if<RequestVoteMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kRequestVote));
    w.u64(rv->term);
    w.u32(rv->candidate);
    w.u64(rv->last_log_index);
    w.u64(rv->last_log_term);
  } else if (const auto* vr = std::get_if<VoteReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kVoteReply));
    w.u64(vr->term);
    w.u32(vr->voter);
    w.u8(vr->granted);
  } else if (const auto* ae = std::get_if<AppendEntriesMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kAppendEntries));
    w.u64(ae->term);
    w.u32(ae->leader);
    w.u64(ae->prev_index);
    w.u64(ae->prev_term);
    w.u64(ae->commit);
    w.u64(ae->entries.size());
    for (const RaftEntry& e : ae->entries) {
      w.u64(e.term);
      write_bytes(w, e.command);
    }
  } else if (const auto* ar = std::get_if<AppendReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kAppendReply));
    w.u64(ar->term);
    w.u32(ar->follower);
    w.u8(ar->success);
    w.u64(ar->match_index);
  } else if (const auto* is = std::get_if<InstallSnapshotMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RaftFrame::kInstallSnapshot));
    w.u64(is->term);
    w.u32(is->leader);
    w.u64(is->last_index);
    w.u64(is->last_term);
    write_bytes(w, is->data);
  } else {
    const auto& sr = std::get<SnapshotReplyMsg>(msg);
    w.u8(static_cast<std::uint8_t>(RaftFrame::kSnapshotReply));
    w.u64(sr.term);
    w.u32(sr.follower);
    w.u64(sr.last_index);
  }
  return w.take();
}

RaftMessage decode_raft(std::span<const std::byte> frame) {
  WireReader r(frame);
  const auto type = static_cast<RaftFrame>(r.u8());
  switch (type) {
    case RaftFrame::kRequestVote: {
      RequestVoteMsg m;
      m.term = r.u64();
      m.candidate = r.u32();
      m.last_log_index = r.u64();
      m.last_log_term = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kVoteReply: {
      VoteReplyMsg m;
      m.term = r.u64();
      m.voter = r.u32();
      m.granted = r.u8();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kAppendEntries: {
      AppendEntriesMsg m;
      m.term = r.u64();
      m.leader = r.u32();
      m.prev_index = r.u64();
      m.prev_term = r.u64();
      m.commit = r.u64();
      const std::uint64_t n = r.u64();
      if (n > r.remaining()) {
        throw std::runtime_error("decode_raft: entry count exceeds frame");
      }
      m.entries.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        RaftEntry e;
        e.term = r.u64();
        e.command = read_bytes(r);
        m.entries.push_back(std::move(e));
      }
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kAppendReply: {
      AppendReplyMsg m;
      m.term = r.u64();
      m.follower = r.u32();
      m.success = r.u8();
      m.match_index = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kInstallSnapshot: {
      InstallSnapshotMsg m;
      m.term = r.u64();
      m.leader = r.u32();
      m.last_index = r.u64();
      m.last_term = r.u64();
      m.data = read_bytes(r);
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
    case RaftFrame::kSnapshotReply: {
      SnapshotReplyMsg m;
      m.term = r.u64();
      m.follower = r.u32();
      m.last_index = r.u64();
      if (!r.done()) throw std::runtime_error("decode_raft: trailing bytes");
      return m;
    }
  }
  throw std::runtime_error("decode_raft: unknown frame type " +
                           std::to_string(static_cast<int>(type)));
}

bool is_raft_frame(std::span<const std::byte> payload) noexcept {
  if (payload.empty()) return false;
  const auto t = static_cast<std::uint8_t>(payload[0]);
  return t >= static_cast<std::uint8_t>(RaftFrame::kRequestVote) &&
         t <= static_cast<std::uint8_t>(RaftFrame::kSnapshotReply);
}

std::uint32_t raft_sender(const RaftMessage& msg) noexcept {
  if (const auto* rv = std::get_if<RequestVoteMsg>(&msg)) return rv->candidate;
  if (const auto* vr = std::get_if<VoteReplyMsg>(&msg)) return vr->voter;
  if (const auto* ae = std::get_if<AppendEntriesMsg>(&msg)) return ae->leader;
  if (const auto* ar = std::get_if<AppendReplyMsg>(&msg)) return ar->follower;
  if (const auto* is = std::get_if<InstallSnapshotMsg>(&msg)) {
    return is->leader;
  }
  return std::get<SnapshotReplyMsg>(msg).follower;
}

// -------------------------------------------------------------------- node

void RaftConfig::validate() const {
  if (cluster_size < 1) {
    throw std::invalid_argument("RaftConfig: cluster_size must be >= 1");
  }
  if (id >= cluster_size) {
    throw std::invalid_argument("RaftConfig: id out of range");
  }
  if (heartbeat_ticks < 1) {
    throw std::invalid_argument("RaftConfig: heartbeat_ticks must be >= 1");
  }
  if (election_timeout_min_ticks < 1 ||
      election_timeout_max_ticks < election_timeout_min_ticks) {
    throw std::invalid_argument(
        "RaftConfig: need 1 <= election_timeout_min_ticks <= "
        "election_timeout_max_ticks");
  }
  if (election_timeout_min_ticks <= heartbeat_ticks) {
    throw std::invalid_argument(
        "RaftConfig: election timeout must exceed the heartbeat cadence");
  }
}

RaftNode::RaftNode(const RaftConfig& config)
    : config_(config),
      timeout_rng_(util::Rng(config.seed).split(config.id)) {
  config_.validate();
  votes_.assign(config_.cluster_size, 0);
  next_index_.assign(config_.cluster_size, 1);
  match_index_.assign(config_.cluster_size, 0);
  reset_election_timer();
}

std::uint64_t RaftNode::last_log_index() const noexcept {
  return snapshot_index_ + log_.size();
}

std::uint64_t RaftNode::peer_match_index(std::uint32_t peer) const noexcept {
  if (role_ != Role::kLeader || peer >= match_index_.size()) return 0;
  return match_index_[peer];
}

std::uint64_t RaftNode::term_at(std::uint64_t index) const {
  if (index == snapshot_index_) return snapshot_term_;
  return entry_at(index).term;
}

const RaftEntry& RaftNode::entry_at(std::uint64_t index) const {
  // index is 1-based and must lie in (snapshot_index_, last_log_index()].
  return log_[index - snapshot_index_ - 1];
}

void RaftNode::reset_election_timer() {
  ticks_ = 0;
  election_timeout_ = static_cast<int>(timeout_rng_.uniform_int(
      config_.election_timeout_min_ticks, config_.election_timeout_max_ticks));
}

void RaftNode::become_follower(std::uint64_t term) {
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
  }
  role_ = Role::kFollower;
  reset_election_timer();
}

void RaftNode::become_candidate() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = config_.id;
  votes_.assign(config_.cluster_size, 0);
  votes_[config_.id] = 1;
  reset_election_timer();
  if (config_.cluster_size == 1) {
    become_leader();
    return;
  }
  RequestVoteMsg rv;
  rv.term = term_;
  rv.candidate = config_.id;
  rv.last_log_index = last_log_index();
  rv.last_log_term = term_at(last_log_index());
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    if (p != config_.id) outbox_.push_back({p, rv});
  }
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  leader_hint_ = config_.id;
  ++counters_.elections_won;
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    next_index_[p] = last_log_index() + 1;
    match_index_[p] = 0;
  }
  match_index_[config_.id] = last_log_index();
  // A fresh no-op barrier: committing it commits every earlier entry still
  // pending from previous terms (the "no counting for old terms" rule) and
  // tells the application when the new leader's state machine is current.
  log_.push_back(RaftEntry{term_, {}});
  match_index_[config_.id] = last_log_index();
  ticks_ = 0;
  broadcast_heartbeat();
  advance_commit();  // single-node cluster commits immediately
}

void RaftNode::tick() {
  if (role_ == Role::kLeader) {
    if (++ticks_ >= config_.heartbeat_ticks) {
      ticks_ = 0;
      broadcast_heartbeat();
    }
    return;
  }
  if (++ticks_ >= election_timeout_) become_candidate();
}

void RaftNode::broadcast_heartbeat() {
  for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
    if (p != config_.id) send_append(p);
  }
}

void RaftNode::send_append(std::uint32_t peer) {
  if (next_index_[peer] <= snapshot_index_) {
    // The entries this follower needs were compacted away: ship the
    // application snapshot instead.
    InstallSnapshotMsg is;
    is.term = term_;
    is.leader = config_.id;
    is.last_index = snapshot_index_;
    is.last_term = snapshot_term_;
    is.data = snapshot_;
    outbox_.push_back({peer, std::move(is)});
    return;
  }
  AppendEntriesMsg ae;
  ae.term = term_;
  ae.leader = config_.id;
  ae.prev_index = next_index_[peer] - 1;
  ae.prev_term = term_at(ae.prev_index);
  ae.commit = commit_;
  for (std::uint64_t i = next_index_[peer]; i <= last_log_index(); ++i) {
    ae.entries.push_back(entry_at(i));
  }
  outbox_.push_back({peer, std::move(ae)});
}

bool RaftNode::propose(std::vector<std::byte> command) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(RaftEntry{term_, std::move(command)});
  match_index_[config_.id] = last_log_index();
  broadcast_heartbeat();
  advance_commit();  // single-node cluster
  return true;
}

void RaftNode::advance_commit() {
  if (role_ != Role::kLeader) return;
  for (std::uint64_t idx = last_log_index(); idx > commit_; --idx) {
    if (idx <= snapshot_index_) break;    // already compacted => committed
    if (term_at(idx) != term_) break;     // only current-term entries count
    std::uint32_t replicas = 0;
    for (std::uint32_t p = 0; p < config_.cluster_size; ++p) {
      if (match_index_[p] >= idx) ++replicas;
    }
    if (replicas * 2 > config_.cluster_size) {
      commit_ = idx;
      break;
    }
  }
  enqueue_committed();
}

void RaftNode::enqueue_committed() {
  while (delivered_ < commit_) {
    ++delivered_;
    if (delivered_ <= snapshot_index_) continue;  // superseded by snapshot
    const RaftEntry& e = entry_at(delivered_);
    if (e.command.empty()) continue;  // no-op barrier
    committed_out_.push_back({delivered_, e.command});
  }
}

void RaftNode::step(const RaftMessage& msg) {
  std::visit([this](const auto& m) { handle(m); }, msg);
}

void RaftNode::handle(const RequestVoteMsg& m) {
  if (m.term > term_) become_follower(m.term);
  VoteReplyMsg reply;
  reply.term = term_;
  reply.voter = config_.id;
  const bool up_to_date =
      m.last_log_term > term_at(last_log_index()) ||
      (m.last_log_term == term_at(last_log_index()) &&
       m.last_log_index >= last_log_index());
  if (m.term == term_ && up_to_date &&
      (!voted_for_ || *voted_for_ == m.candidate)) {
    voted_for_ = m.candidate;
    reply.granted = 1;
    reset_election_timer();
  }
  outbox_.push_back({m.candidate, reply});
}

void RaftNode::handle(const VoteReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  votes_[m.voter] = 1;
  std::uint32_t granted = 0;
  for (const std::uint8_t v : votes_) granted += v;
  if (granted * 2 > config_.cluster_size) become_leader();
}

void RaftNode::handle(const AppendEntriesMsg& m) {
  AppendReplyMsg reply;
  reply.follower = config_.id;
  if (m.term < term_) {
    reply.term = term_;
    reply.match_index = last_log_index();
    outbox_.push_back({m.leader, reply});
    return;
  }
  become_follower(m.term);
  leader_hint_ = m.leader;
  reply.term = term_;

  // Consistency check: our log must contain m.prev_index with m.prev_term.
  if (m.prev_index > last_log_index() ||
      (m.prev_index > snapshot_index_ &&
       term_at(m.prev_index) != m.prev_term) ||
      m.prev_index < snapshot_index_) {
    // (prev_index < snapshot_index_ means the leader is behind our
    // snapshot — stale leader; the hint re-syncs it.)
    reply.success = 0;
    reply.match_index = last_log_index();
    outbox_.push_back({m.leader, reply});
    return;
  }

  // Append new entries, truncating any conflicting suffix.
  std::uint64_t index = m.prev_index;
  for (const RaftEntry& e : m.entries) {
    ++index;
    if (index <= last_log_index()) {
      if (term_at(index) == e.term) continue;  // already have it
      // Conflict: drop this entry and everything after it.
      log_.resize(index - snapshot_index_ - 1);
    }
    log_.push_back(e);
    ++counters_.entries_appended;
  }
  if (m.commit > commit_) {
    commit_ = std::min(m.commit, last_log_index());
    enqueue_committed();
  }
  reply.success = 1;
  reply.match_index = index > last_log_index() ? last_log_index() : index;
  if (reply.match_index < m.prev_index) reply.match_index = m.prev_index;
  outbox_.push_back({m.leader, reply});
}

void RaftNode::handle(const AppendReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.success) {
    if (m.match_index > match_index_[m.follower]) {
      match_index_[m.follower] = m.match_index;
    }
    next_index_[m.follower] = match_index_[m.follower] + 1;
    advance_commit();
    if (next_index_[m.follower] <= last_log_index()) {
      send_append(m.follower);  // keep streaming the remainder
    }
    return;
  }
  // Conflict hint: jump straight past the follower's log end.
  next_index_[m.follower] =
      std::min(next_index_[m.follower] > 1 ? next_index_[m.follower] - 1
                                           : 1,
               m.match_index + 1);
  if (next_index_[m.follower] < 1) next_index_[m.follower] = 1;
  send_append(m.follower);
}

void RaftNode::handle(const InstallSnapshotMsg& m) {
  if (m.term < term_) {
    SnapshotReplyMsg reply{term_, config_.id, last_log_index()};
    outbox_.push_back({m.leader, reply});
    return;
  }
  become_follower(m.term);
  leader_hint_ = m.leader;
  if (m.last_index > snapshot_index_) {
    // Discard the log the snapshot supersedes; keep any suffix beyond it
    // that is consistent (same slot still present).  Simplest safe rule:
    // drop everything — the leader streams the suffix next.
    log_.clear();
    snapshot_index_ = m.last_index;
    snapshot_term_ = m.last_term;
    snapshot_ = m.data;
    if (commit_ < snapshot_index_) commit_ = snapshot_index_;
    if (delivered_ < snapshot_index_) delivered_ = snapshot_index_;
    installed_ = InstalledSnapshot{m.last_index, m.data};
    ++counters_.snapshots_installed;
  }
  SnapshotReplyMsg reply{term_, config_.id, last_log_index()};
  outbox_.push_back({m.leader, reply});
}

void RaftNode::handle(const SnapshotReplyMsg& m) {
  if (m.term > term_) {
    become_follower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.last_index > match_index_[m.follower]) {
    match_index_[m.follower] = m.last_index;
  }
  next_index_[m.follower] = match_index_[m.follower] + 1;
  advance_commit();
  if (next_index_[m.follower] <= last_log_index()) send_append(m.follower);
}

void RaftNode::compact(std::uint64_t index, std::vector<std::byte> snapshot) {
  if (index <= snapshot_index_) return;
  if (index > commit_) {
    throw std::invalid_argument(
        "RaftNode::compact: cannot compact past the commit index");
  }
  const std::uint64_t drop = index - snapshot_index_;
  snapshot_term_ = term_at(index);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(drop));
  snapshot_index_ = index;
  snapshot_ = std::move(snapshot);
}

std::vector<RaftNode::Send> RaftNode::take_outbox() {
  return std::exchange(outbox_, {});
}

std::vector<RaftNode::Committed> RaftNode::take_committed() {
  return std::exchange(committed_out_, {});
}

std::optional<RaftNode::InstalledSnapshot>
RaftNode::take_installed_snapshot() {
  return std::exchange(installed_, std::nullopt);
}

}  // namespace cmfl::net

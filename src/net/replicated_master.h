// Replicated FL control plane: N master replicas, one Raft log, zero lost
// rounds.
//
// The single-master cluster (net/cluster.cpp) dies with its master.  Here
// the control state of every round — round start (model id + cohort), each
// accepted worker reply (update/elimination), the aggregation commit, and
// the quiesced client-state snapshots — is replicated through a Raft-style
// log (net/raft.h) across ClusterOptions::replication.replicas master
// replicas before it takes effect.  Each replica applies the committed
// prefix to an identical deterministic state machine, so when the leader
// crashes mid-round the freshly elected leader resumes from the committed
// prefix, re-broadcasts the round it finds open, collects the workers'
// cached (byte-identical) replies, and finishes the round **bit-identically**
// to the fault-free run: model parameters, history, and the
// accuracy-vs-bytes footprint all match exactly.  DESIGN.md §14 gives the
// protocol and the determinism argument.
//
// Byte accounting is split in two:
//   * Logical (replicated, exactly-once per accepted frame): drives
//     sim.uploaded_bytes and the footprint curve, hence bit-reproducible.
//   * Physical (ByteMeters): what actually crossed each link, including
//     failover re-broadcasts (metered as retransmissions) — honest overhead
//     numbers that are *not* reproducible under real elections.
// Raft traffic between replicas is metered separately into
// ClusterResult::control_plane_bytes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/cluster.h"

namespace cmfl::fl {
struct TrainerCheckpoint;
}

namespace cmfl::net {

/// Runs one federated training job under the replicated control plane.
/// Invoked by FlCluster::run()/resume() when replication.replicas > 0;
/// callers go through FlCluster, which validates the option set (>= 3
/// replicas, quorum 1.0, no first_k_reports / staleness suspicion).
///
/// Checkpointing: each replica independently writes
/// `checkpoint_path + ".replica<id>"` when it applies a quiesced
/// client-state entry, so a TrainerCheckpoint survives any minority of
/// replica crashes and resume() works from any replica's file.
ClusterResult run_replicated_cluster(
    std::vector<std::unique_ptr<fl::FlClient>>& clients,
    core::UpdateFilter& filter, const fl::GlobalEvaluator& evaluator,
    const ClusterOptions& options, std::size_t dim,
    const fl::TrainerCheckpoint* resume_from);

}  // namespace cmfl::net

// Replicated FL control plane: N master replicas, one Raft log, zero lost
// rounds.
//
// The single-master cluster (net/cluster.cpp) dies with its master.  Here
// the control state of every round — round start (model id + cohort), each
// accepted worker reply (update/elimination), the aggregation commit, and
// the quiesced client-state snapshots — is replicated through a Raft-style
// log (net/raft.h) across ClusterOptions::replication.replicas master
// replicas before it takes effect.  Each replica applies the committed
// prefix to an identical deterministic state machine, so when the leader
// crashes mid-round the freshly elected leader resumes from the committed
// prefix, re-broadcasts the round it finds open, collects the workers'
// cached (byte-identical) replies, and finishes the round **bit-identically**
// to the fault-free run: model parameters, history, and the
// accuracy-vs-bytes footprint all match exactly.  DESIGN.md §14 gives the
// protocol and the determinism argument.
//
// Byte accounting is split in two:
//   * Logical (replicated, exactly-once per accepted frame): drives
//     sim.uploaded_bytes and the footprint curve, hence bit-reproducible.
//   * Physical (ByteMeters): what actually crossed each link, including
//     failover re-broadcasts (metered as retransmissions) — honest overhead
//     numbers that are *not* reproducible under real elections.
// Raft traffic between replicas is metered separately into
// ClusterResult::control_plane_bytes.
//
// With ReplicationOptions::storage_dir set, every replica backs its Raft
// node with a net::RaftStorage (durable WAL + snapshot, DESIGN.md §15), and
// FaultPlan::replica_restart schedules turn a leader kill into a crash-
// *restart*: the killed process sleeps out its downtime, re-opens its
// storage directory (optionally damaged by a StorageFaultInjector), rebuilds
// its state machine from the recovered snapshot, and rejoins as a follower
// — or, when recovery detects unrecoverable corruption, stays down loudly
// (FaultReport::restart_load_errors) rather than rejoin with silently
// wrong state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/cluster.h"

namespace cmfl::fl {
struct TrainerCheckpoint;
}

namespace cmfl::net {

/// Worker-side leader discovery (pure bookkeeping, unit-testable).  Workers
/// cache the last replica a broadcast arrived from and normally follow
/// RedirectMsg hints; a chain of more than 2 * replicas redirects without an
/// intervening broadcast is a redirect *loop* (two stale replicas hinting at
/// each other during an election), at which point the worker stops trusting
/// hints and probes the replicas round-robin with doubling, capped backoff
/// until a broadcast proves a real leader again.
struct LeaderProbe {
  explicit LeaderProbe(std::uint32_t n) : replicas(n) {}

  std::uint32_t replicas = 0;
  std::uint32_t known_leader = 0;  // last replica a broadcast arrived from
  std::uint32_t redirects = 0;     // hints followed since the last broadcast
  std::uint32_t probe_cursor = 0;  // round-robin position while probing
  double backoff_ms = 1.0;
  static constexpr double kBackoffCapMs = 16.0;

  /// Where a redirect resolves the worker's next send.
  struct Target {
    std::uint32_t replica = 0;
    bool probed = false;     // true: round-robin probe, not a followed hint
    double backoff_ms = 0.0; // sleep before the send (probes only)
  };

  /// Called with a RedirectMsg's hinted leader id.  Follows a valid hint
  /// while the redirect budget lasts; past it (or on an out-of-range hint)
  /// returns the next round-robin probe target.
  Target on_redirect(std::uint32_t hinted);

  /// A broadcast from `leader` proves the real leader; resets the budget.
  void on_broadcast(std::uint32_t leader);
};

/// Runs one federated training job under the replicated control plane.
/// Invoked by FlCluster::run()/resume() when replication.replicas > 0;
/// callers go through FlCluster, which validates the option set (>= 3
/// replicas, quorum 1.0, no first_k_reports / staleness suspicion).
///
/// Checkpointing: each replica independently writes
/// `checkpoint_path + ".replica<id>"` when it applies a quiesced
/// client-state entry, so a TrainerCheckpoint survives any minority of
/// replica crashes and resume() works from any replica's file.
ClusterResult run_replicated_cluster(
    std::vector<std::unique_ptr<fl::FlClient>>& clients,
    core::UpdateFilter& filter, const fl::GlobalEvaluator& evaluator,
    const ClusterOptions& options, std::size_t dim,
    const fl::TrainerCheckpoint* resume_from);

}  // namespace cmfl::net

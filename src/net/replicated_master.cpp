#include "net/replicated_master.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "codec/codec.h"
#include "core/estimator.h"
#include "fl/checkpoint.h"
#include "net/raft.h"
#include "tensor/vector_ops.h"

namespace cmfl::net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

struct WorkerEndpoint {
  Channel inbox;
};

// ------------------------------------------------------------ log commands
//
// The replicated state machine's command set.  Every apply is idempotent —
// a leadership change can re-propose a command a deposed leader already got
// committed, and the second copy must be a no-op.

enum class Cmd : std::uint8_t {
  kRoundStart = 1,    // open round t, account the broadcast
  kReply = 2,         // one accepted worker reply (upload or elimination)
  kRoundCommit = 3,   // aggregate round t and close it
  kClientStates = 4,  // quiesced per-worker state blobs -> checkpoint files
  kWorkerCrash = 5,   // a worker exhausted its retransmit budget
  kFinish = 6,        // the run is over
};

void write_bytes(WireWriter& w, std::span<const std::byte> data) {
  w.u64(data.size());
  for (const std::byte b : data) w.u8(static_cast<std::uint8_t>(b));
}

std::vector<std::byte> encode_round_start(std::uint64_t t,
                                          std::uint64_t broadcast_bytes) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kRoundStart));
  w.u64(t);
  w.u64(broadcast_bytes);
  return w.take();
}

struct ReplyCmd {
  std::uint64_t round = 0;
  std::uint32_t worker = 0;
  std::uint8_t is_upload = 0;
  double score = 0.0;
  std::uint64_t frame_bytes = 0;  // physical size of the reply frame
  std::vector<float> update;      // empty for eliminations
};

std::vector<std::byte> encode_reply_cmd(const ReplyCmd& c) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kReply));
  w.u64(c.round);
  w.u32(c.worker);
  w.u8(c.is_upload);
  w.f64(c.score);
  w.u64(c.frame_bytes);
  w.floats(c.update);
  return w.take();
}

std::vector<std::byte> encode_round_commit(std::uint64_t t) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kRoundCommit));
  w.u64(t);
  return w.take();
}

std::vector<std::byte> encode_client_states(
    std::uint64_t t, const std::vector<std::vector<std::uint64_t>>& states,
    const std::vector<std::vector<std::uint64_t>>& codec_states) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kClientStates));
  w.u64(t);
  w.u32(static_cast<std::uint32_t>(states.size()));
  for (const auto& s : states) {
    w.u64(s.size());
    for (const std::uint64_t word : s) w.u64(word);
  }
  // Worker codec state rides the same quiesced proposal: both are read
  // under the identical happens-before argument (every round-t reply
  // applied), so they describe the same logical instant.
  w.u32(static_cast<std::uint32_t>(codec_states.size()));
  for (const auto& s : codec_states) {
    w.u64(s.size());
    for (const std::uint64_t word : s) w.u64(word);
  }
  return w.take();
}

std::vector<std::byte> encode_worker_crash(std::uint64_t t,
                                           std::uint32_t worker) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kWorkerCrash));
  w.u64(t);
  w.u32(worker);
  return w.take();
}

std::vector<std::byte> encode_finish() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Cmd::kFinish));
  return w.take();
}

// --------------------------------------------------------------- shared ctx

struct Replica;

/// Everything the replica and worker threads share.  Mutable members are
/// atomics or externally synchronized (channels, the eval mutex).
struct Shared {
  const ClusterOptions* options = nullptr;
  std::size_t dim = 0;
  std::size_t num_workers = 0;
  const std::vector<std::size_t>* local_samples = nullptr;
  std::vector<std::unique_ptr<fl::FlClient>>* clients = nullptr;
  core::UpdateFilter* filter = nullptr;
  const fl::GlobalEvaluator* evaluator = nullptr;
  std::mutex eval_mutex;  // the evaluator is shared by all replicas

  std::vector<std::unique_ptr<Replica>>* replicas = nullptr;
  std::vector<WorkerEndpoint>* workers = nullptr;

  // Codec plane.  worker_codecs[k] is touched only by worker k's thread
  // (encode); the per-replica *decoder* lives in Replica — replicated mode
  // admits stateless-decode codecs only (ctor-enforced), so any replica
  // can decode any payload without shared state.
  bool use_codec = false;
  std::uint8_t codec_id = 0;
  std::uint8_t codec_version = 1;
  std::vector<std::unique_ptr<codec::UpdateCodec>>* worker_codecs = nullptr;

  ByteMeter* uplink_meter = nullptr;
  ByteMeter* downlink_meter = nullptr;
  ByteMeter* control_meter = nullptr;
  FaultStats* fault_stats = nullptr;

  std::atomic<std::uint64_t> worker_corrupt{0};
  std::atomic<std::uint64_t> worker_redundant{0};
  std::atomic<std::uint64_t> worker_retransmits{0};
  std::atomic<std::uint64_t> master_corrupt{0};
  std::atomic<std::uint64_t> master_redundant{0};
  std::atomic<std::uint64_t> master_retransmits{0};
  std::atomic<std::uint64_t> timed_out_rounds{0};
  std::atomic<std::uint64_t> leader_redirects{0};
  std::atomic<std::uint64_t> leader_crashes{0};
  std::atomic<std::uint64_t> leader_probes{0};
  std::atomic<std::uint64_t> replica_restarts{0};
  std::atomic<std::uint64_t> restart_load_errors{0};

  // One flag per FaultPlan::leader_crash / replica_restart entry: each
  // entry fires once.
  std::unique_ptr<std::atomic<bool>[]> crash_fired;
  std::unique_ptr<std::atomic<bool>[]> restart_fired;
  std::unique_ptr<std::atomic<bool>[]> replica_crashed;

  // Rebuild inputs for crash-restart: what a fresh StateMachine starts from
  // before the recovered snapshot is applied on top.
  const std::vector<float>* initial_global = nullptr;
  const fl::TrainerCheckpoint* resume_from = nullptr;

  std::atomic<bool> done{false};
  std::atomic<int> finished_replica{-1};
};

// ------------------------------------------------------ the state machine
//
// One copy per replica, advanced ONLY by applying committed log entries, so
// every replica's copy walks through the identical sequence of states.  All
// byte accounting in here is *logical* (exactly once per accepted frame) —
// this is what makes the footprint curve bit-identical under failover.

struct StateMachine {
  StateMachine(const ClusterOptions& opt, std::size_t dim, std::size_t n,
               std::vector<float> initial_global)
      : global(std::move(initial_global)),
        estimator(dim, opt.fl.estimator_ema),
        validator(n, opt.fl.validation) {
    eliminations_per_client.assign(n, 0);
    uploads_per_client.assign(n, 0);
    alive.assign(n, 1);
    last_acked.assign(n, 0);
    max_staleness.assign(n, 0);
    active.assign(n, 0);
    answered.assign(n, 0);
    scores.assign(n, 0.0);
    reply_bytes.assign(n, 0);
  }

  // Closed-round trainer state.
  std::vector<float> global;
  core::GlobalUpdateEstimator estimator;
  fl::UpdateValidator validator;
  std::vector<float> prev_global_update;
  std::size_t cumulative_rounds = 0;
  std::vector<fl::IterationRecord> history;
  std::vector<std::size_t> eliminations_per_client;
  std::vector<std::size_t> uploads_per_client;
  std::vector<FootprintPoint> footprint;
  double sim_transfer = 0.0;

  // Logical byte accounting (replicated; drives the footprint).
  std::uint64_t up_bytes = 0;
  std::uint64_t up_msgs = 0;
  std::uint64_t down_bytes = 0;
  std::uint64_t down_msgs = 0;
  std::uint64_t upload_frames = 0;
  std::uint64_t elimination_frames = 0;

  // Worker liveness.
  std::vector<char> alive;
  std::vector<std::uint64_t> last_acked;
  std::vector<std::uint64_t> max_staleness;
  std::vector<std::uint32_t> crashed_workers;
  std::uint64_t quorum_rounds = 0;

  // Round in flight (valid while round_open).
  std::uint64_t round = 0;  // last started round
  bool round_open = false;
  std::uint64_t broadcast_bytes = 0;
  std::vector<char> active;
  std::vector<char> answered;
  std::vector<double> scores;
  std::vector<std::uint64_t> reply_bytes;
  std::vector<std::pair<std::uint32_t, std::vector<float>>> uploads;
  std::size_t accepted = 0;
  bool crashed_this_round = false;

  std::uint64_t states_round = 0;  // last round whose ClientStates applied
  bool stop = false;               // target accuracy reached
  bool finished = false;

  void apply(std::span<const std::byte> command, Shared& sh,
             std::uint32_t replica_id);
  std::vector<std::byte> snapshot_blob() const;
  void restore_snapshot(std::span<const std::byte> blob);
  void restore_checkpoint(const fl::TrainerCheckpoint& ck);
  fl::TrainerCheckpoint build_checkpoint(
      std::vector<std::vector<std::uint64_t>> client_states,
      std::vector<std::vector<std::uint64_t>> codec_states) const;

 private:
  void apply_round_start(std::uint64_t t, std::uint64_t bytes);
  void apply_reply(const ReplyCmd& c);
  void apply_round_commit(std::uint64_t t, Shared& sh);
  void apply_client_states(std::uint64_t t,
                           std::vector<std::vector<std::uint64_t>> states,
                           std::vector<std::vector<std::uint64_t>> codec_states,
                           Shared& sh, std::uint32_t replica_id);
  void apply_worker_crash(std::uint64_t t, std::uint32_t worker);
};

void StateMachine::apply_round_start(std::uint64_t t, std::uint64_t bytes) {
  if (round_open || t != round + 1) return;  // duplicate or stale
  round = t;
  round_open = true;
  broadcast_bytes = bytes;
  accepted = 0;
  crashed_this_round = false;
  uploads.clear();
  for (std::size_t k = 0; k < alive.size(); ++k) {
    active[k] = alive[k] && !validator.quarantined(k) ? 1 : 0;
    answered[k] = 0;
    scores[k] = 0.0;
    reply_bytes[k] = 0;
    if (active[k]) {
      down_bytes += bytes;
      ++down_msgs;
    }
  }
}

void StateMachine::apply_reply(const ReplyCmd& c) {
  if (!round_open || c.round != round) return;  // stale re-proposal
  const std::size_t k = c.worker;
  if (k >= alive.size() || !active[k] || answered[k]) return;  // duplicate
  answered[k] = 1;
  scores[k] = c.score;
  reply_bytes[k] = c.frame_bytes;
  last_acked[k] = round;
  ++accepted;
  up_bytes += c.frame_bytes;
  ++up_msgs;
  if (c.is_upload) {
    uploads.emplace_back(c.worker, c.update);
    ++upload_frames;
  } else {
    ++eliminations_per_client[k];
    ++elimination_frames;
  }
}

void StateMachine::apply_worker_crash(std::uint64_t t, std::uint32_t worker) {
  if (worker >= alive.size() || !alive[worker]) return;
  alive[worker] = 0;
  crashed_workers.push_back(worker);
  if (round_open && t == round && active[worker] && !answered[worker]) {
    active[worker] = 0;  // the round completes without it
    crashed_this_round = true;
  }
}

void StateMachine::apply_round_commit(std::uint64_t t, Shared& sh) {
  if (!round_open || t != round) return;
  const fl::SimulationOptions& flopt = sh.options->fl;
  const std::size_t n = alive.size();

  fl::IterationRecord rec;
  rec.iteration = static_cast<std::size_t>(t);
  rec.uploads = uploads.size();
  rec.participants = accepted;
  cumulative_rounds += uploads.size();
  rec.cumulative_rounds = cumulative_rounds;
  double score_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (answered[k]) score_sum += scores[k];  // fixed id order
  }
  rec.mean_score =
      accepted > 0 ? score_sum / static_cast<double>(accepted) : 0.0;

  for (const auto& [id, u] : uploads) ++uploads_per_client[id];
  if (!uploads.empty()) {
    std::sort(uploads.begin(), uploads.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::size_t> upload_ids;
    std::vector<std::span<const float>> received;
    upload_ids.reserve(uploads.size());
    received.reserve(uploads.size());
    for (const auto& [id, u] : uploads) {
      upload_ids.push_back(id);
      received.emplace_back(u);
    }
    const std::vector<fl::Verdict> verdicts =
        validator.screen_round(upload_ids, received);
    std::vector<std::span<const float>> views;
    std::vector<std::size_t> accepted_ids;
    views.reserve(uploads.size());
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (verdicts[i] == fl::Verdict::kAccept) {
        views.push_back(received[i]);
        accepted_ids.push_back(upload_ids[i]);
      } else {
        ++rec.rejected;
      }
    }
    if (!views.empty()) {
      std::vector<float> global_update(sh.dim, 0.0f);
      std::vector<float> weights;
      if (flopt.aggregation == fl::Aggregation::kSampleWeighted) {
        double total_weight = 0.0;
        for (std::size_t id : accepted_ids) {
          total_weight += static_cast<double>((*sh.local_samples)[id]);
        }
        weights.reserve(accepted_ids.size());
        for (std::size_t id : accepted_ids) {
          weights.push_back(static_cast<float>(
              static_cast<double>((*sh.local_samples)[id]) / total_weight));
        }
      }
      fl::aggregate_updates(flopt.aggregation, views, weights,
                            flopt.robust_aggregation, global_update);
      tensor::add(global, global_update, global);
      if (!prev_global_update.empty()) {
        rec.delta_update = core::normalized_update_difference(
            prev_global_update, global_update);
      }
      prev_global_update = global_update;
      estimator.observe(global_update);
    }
  }
  rec.cumulative_upload_bytes = up_bytes;

  double max_upload_transfer = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (answered[k]) {
      max_upload_transfer =
          std::max(max_upload_transfer,
                   sh.options->uplink.transfer_seconds(reply_bytes[k]));
    }
  }
  sim_transfer += sh.options->downlink.transfer_seconds(broadcast_bytes) +
                  max_upload_transfer;

  for (std::size_t k = 0; k < n; ++k) {
    if (validator.quarantined(k)) continue;
    max_staleness[k] = std::max(max_staleness[k], t - last_acked[k]);
  }
  if (crashed_this_round) ++quorum_rounds;

  const bool last = t == flopt.max_iterations;
  if (flopt.eval_every > 0 && (t % flopt.eval_every == 0 || last)) {
    nn::EvalResult eval;
    {
      std::lock_guard<std::mutex> lock(sh.eval_mutex);
      eval = (*sh.evaluator)(global);
    }
    rec.accuracy = eval.accuracy;
    rec.loss = eval.loss;
    footprint.push_back(
        {static_cast<std::size_t>(t), eval.accuracy, up_bytes});
    if (flopt.target_accuracy > 0.0 && std::isfinite(eval.loss) &&
        eval.accuracy >= flopt.target_accuracy) {
      stop = true;
    }
  }
  history.push_back(rec);
  round_open = false;
}

void StateMachine::apply_client_states(
    std::uint64_t t, std::vector<std::vector<std::uint64_t>> states,
    std::vector<std::vector<std::uint64_t>> codec_states, Shared& sh,
    std::uint32_t replica_id) {
  if (round_open || t != round || states_round >= t) return;
  states_round = t;
  const std::string& path = sh.options->fl.checkpoint_path;
  if (path.empty()) return;
  fl::save_checkpoint_file(
      path + ".replica" + std::to_string(replica_id),
      build_checkpoint(std::move(states), std::move(codec_states)));
}

void StateMachine::apply(std::span<const std::byte> command, Shared& sh,
                         std::uint32_t replica_id) {
  WireReader r(command);
  const auto cmd = static_cast<Cmd>(r.u8());
  switch (cmd) {
    case Cmd::kRoundStart: {
      const std::uint64_t t = r.u64();
      apply_round_start(t, r.u64());
      return;
    }
    case Cmd::kReply: {
      ReplyCmd c;
      c.round = r.u64();
      c.worker = r.u32();
      c.is_upload = r.u8();
      c.score = r.f64();
      c.frame_bytes = r.u64();
      c.update = r.floats();
      apply_reply(c);
      return;
    }
    case Cmd::kRoundCommit:
      apply_round_commit(r.u64(), sh);
      return;
    case Cmd::kClientStates: {
      const std::uint64_t t = r.u64();
      const auto read_blobs = [&r](std::uint32_t n) {
        std::vector<std::vector<std::uint64_t>> blobs(n);
        for (auto& s : blobs) {
          const std::uint64_t words = r.u64();
          if (words > r.remaining() / sizeof(std::uint64_t)) {
            throw std::runtime_error("ClientStates: blob exceeds command");
          }
          s.resize(words);
          for (auto& word : s) word = r.u64();
        }
        return blobs;
      };
      auto states = read_blobs(r.u32());
      auto codec_states = read_blobs(r.u32());
      apply_client_states(t, std::move(states), std::move(codec_states), sh,
                          replica_id);
      return;
    }
    case Cmd::kWorkerCrash: {
      const std::uint64_t t = r.u64();
      apply_worker_crash(t, r.u32());
      return;
    }
    case Cmd::kFinish:
      finished = true;
      return;
  }
  throw std::runtime_error("replicated master: unknown log command");
}

fl::TrainerCheckpoint StateMachine::build_checkpoint(
    std::vector<std::vector<std::uint64_t>> client_states,
    std::vector<std::vector<std::uint64_t>> codec_states) const {
  fl::TrainerCheckpoint ck;
  ck.iteration = round;
  ck.global_params = global;
  const std::span<const float> est = estimator.estimate();
  ck.estimator_estimate.assign(est.begin(), est.end());
  ck.estimator_observed = estimator.has_observation();
  ck.prev_global_update = prev_global_update;
  ck.cumulative_rounds = cumulative_rounds;
  ck.uploaded_bytes = up_bytes;
  ck.history = history;
  ck.eliminations_per_client.assign(eliminations_per_client.begin(),
                                    eliminations_per_client.end());
  ck.uploads_per_client.assign(uploads_per_client.begin(),
                               uploads_per_client.end());
  ck.validation = validator.report();
  ck.client_state = std::move(client_states);
  ck.compressor_state = std::move(codec_states);
  fl::ClusterMeterState& m = ck.meters;
  // Logical counters, zero retransmissions: a replicated checkpoint records
  // the reproducible footprint, not one process's physical recovery traffic.
  m.uplink_bytes = up_bytes;
  m.uplink_messages = up_msgs;
  m.downlink_bytes = down_bytes;
  m.downlink_messages = down_msgs;
  m.upload_messages = upload_frames;
  m.elimination_messages = elimination_frames;
  m.simulated_transfer_seconds = sim_transfer;
  m.footprint.reserve(footprint.size());
  for (const auto& p : footprint) {
    m.footprint.push_back({p.iteration, p.accuracy, p.uplink_bytes});
  }
  return ck;
}

void StateMachine::restore_checkpoint(const fl::TrainerCheckpoint& ck) {
  global = ck.global_params;
  estimator.restore(ck.estimator_estimate, ck.estimator_observed);
  validator.restore(ck.validation);
  prev_global_update = ck.prev_global_update;
  cumulative_rounds = static_cast<std::size_t>(ck.cumulative_rounds);
  history = ck.history;
  const std::size_t n = alive.size();
  for (std::size_t k = 0; k < n; ++k) {
    eliminations_per_client[k] =
        static_cast<std::size_t>(ck.eliminations_per_client[k]);
    uploads_per_client[k] = static_cast<std::size_t>(ck.uploads_per_client[k]);
    last_acked[k] = ck.iteration;
  }
  const fl::ClusterMeterState& m = ck.meters;
  up_bytes = m.uplink_bytes;
  up_msgs = m.uplink_messages;
  down_bytes = m.downlink_bytes;
  down_msgs = m.downlink_messages;
  upload_frames = m.upload_messages;
  elimination_frames = m.elimination_messages;
  sim_transfer = m.simulated_transfer_seconds;
  footprint.clear();
  footprint.reserve(m.footprint.size());
  for (const auto& p : m.footprint) {
    footprint.push_back(
        {static_cast<std::size_t>(p.iteration), p.accuracy, p.uplink_bytes});
  }
  round = ck.iteration;
  round_open = false;
  states_round = round;
}

std::vector<std::byte> StateMachine::snapshot_blob() const {
  // Snapshots are cut only at RoundCommit boundaries, so there is never an
  // open round to serialize.
  WireWriter w;
  w.u64(round);
  w.u8(stop ? 1 : 0);
  w.u8(finished ? 1 : 0);
  w.u64(states_round);
  w.u64(quorum_rounds);
  w.u32(static_cast<std::uint32_t>(alive.size()));
  for (std::size_t k = 0; k < alive.size(); ++k) {
    w.u8(alive[k] ? 1 : 0);
    w.u64(last_acked[k]);
    w.u64(max_staleness[k]);
  }
  w.u32(static_cast<std::uint32_t>(crashed_workers.size()));
  for (const std::uint32_t c : crashed_workers) w.u32(c);
  write_bytes(w, fl::encode_checkpoint(build_checkpoint({}, {})));
  return w.take();
}

void StateMachine::restore_snapshot(std::span<const std::byte> blob) {
  WireReader r(blob);
  const std::uint64_t snap_round = r.u64();
  const bool snap_stop = r.u8() != 0;
  const bool snap_finished = r.u8() != 0;
  const std::uint64_t snap_states_round = r.u64();
  const std::uint64_t snap_quorum = r.u64();
  const std::uint32_t n = r.u32();
  if (n != alive.size()) {
    throw std::runtime_error("snapshot: worker count mismatch");
  }
  std::vector<char> snap_alive(n);
  std::vector<std::uint64_t> snap_acked(n), snap_stale(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    snap_alive[k] = static_cast<char>(r.u8());
    snap_acked[k] = r.u64();
    snap_stale[k] = r.u64();
  }
  const std::uint32_t crashed = r.u32();
  std::vector<std::uint32_t> snap_crashed(crashed);
  for (auto& c : snap_crashed) c = r.u32();
  const std::uint64_t ck_size = r.u64();
  if (ck_size > r.remaining()) {
    throw std::runtime_error("snapshot: truncated checkpoint payload");
  }
  std::vector<std::byte> payload(ck_size);
  for (auto& b : payload) b = static_cast<std::byte>(r.u8());

  restore_checkpoint(fl::decode_checkpoint(payload));
  round = snap_round;
  states_round = snap_states_round;
  stop = snap_stop;
  finished = snap_finished;
  quorum_rounds = snap_quorum;
  alive = std::move(snap_alive);
  last_acked = std::move(snap_acked);
  max_staleness = std::move(snap_stale);
  crashed_workers = std::move(snap_crashed);
}

// ------------------------------------------------------------ the replicas

/// What a dying replica does next: plain crash-stop (restart == false, the
/// leader_crash behavior) or crash-restart after delay_ms, optionally with a
/// storage fault applied to its WAL while it is down.
struct CrashEvent {
  bool restart = false;
  double delay_ms = 0.0;
  StorageFault wal_fault = StorageFault::kNone;
};

struct Replica {
  Replica(std::uint32_t rid, const RaftConfig& rc, StateMachine machine,
          std::unique_ptr<RaftStorage> st = nullptr)
      : id(rid),
        storage(std::move(st)),  // must precede node: node borrows it
        node(rc, storage.get()),
        sm(std::move(machine)) {}

  std::uint32_t id;
  std::unique_ptr<RaftStorage> storage;  // null: in-memory crash-stop replica
  RaftNode node;
  Channel inbox;  // Raft frames from peers + data frames from workers
  StateMachine sm;
  // This replica's private payload decoder (stateless-decode codecs only,
  // so decoding needs no coordination with other replicas or the encoder).
  std::unique_ptr<codec::UpdateCodec> decoder;

  // Folded in from pre-restart incarnations by this replica's own thread
  // (before the next incarnation starts), read by the main thread after
  // join — no synchronization needed beyond the join itself.
  RaftCounters retired_raft;
  RaftStorageCounters retired_storage;
  CrashEvent crash_event;
};

RaftConfig make_raft_config(const ClusterOptions& options, std::uint32_t r) {
  RaftConfig rc;
  rc.id = r;
  rc.cluster_size = static_cast<std::uint32_t>(options.replication.replicas);
  rc.seed = options.replication.seed;
  rc.heartbeat_ticks = options.replication.heartbeat_ticks;
  rc.election_timeout_min_ticks =
      options.replication.election_timeout_min_ticks;
  rc.election_timeout_max_ticks =
      options.replication.election_timeout_max_ticks;
  rc.pre_vote = options.replication.pre_vote;
  return rc;
}

std::string replica_storage_dir(const ClusterOptions& options,
                                std::uint32_t r) {
  return options.replication.storage_dir + "/replica" + std::to_string(r);
}

/// Volatile (non-replicated) leader bookkeeping.  Reset whenever this
/// replica (re)gains leadership — the replicated state is the only carrier
/// of round progress across leadership changes.
struct Driver {
  bool leading = false;
  std::uint64_t term = 0;
  std::uint64_t started_round = 0;  // rounds whose RoundStart *we* proposed
  std::uint64_t bcast_round = 0;    // round our broadcasts currently target
  int attempt = 0;
  Clock::time_point deadline{};
  std::uint64_t proposed_commit = 0;
  std::uint64_t proposed_states = 0;
  bool proposed_finish = false;
  std::vector<char> proposed_reply;  // per worker, current round
  std::vector<char> proposed_crash;
  std::uint64_t accepted = 0;  // replies accepted under this leadership
  util::Rng jitter{0};
  std::optional<Clock::time_point> finish_deadline;
};

/// True when `self` (non-partitioned, working round inside the window) must
/// cut the control-plane link to/from `other`.
bool partition_blocks(const Shared& sh, const Replica& self,
                      std::uint32_t other) {
  if (other == self.id) return false;
  const auto& map = sh.options->fault.replica_partition;
  if (map.count(self.id) != 0) return false;  // partitioned: cannot enforce
  const auto it = map.find(other);
  if (it == map.end()) return false;
  return self.sm.round >= it->second.from_round &&
         self.sm.round <= it->second.to_round;
}

/// Drains the node's outputs: outbox frames to peers, committed entries into
/// the state machine (compacting at every round commit), and any snapshot a
/// leader installed over us.  Must run after every step()/tick()/propose()
/// batch so a snapshot installation can never interleave wrongly with
/// entry application.
void pump(Replica& self, Shared& sh) {
  for (auto& send : self.node.take_outbox()) {
    if (partition_blocks(sh, self, send.to)) continue;
    if (sh.replica_crashed[send.to].load(std::memory_order_relaxed)) continue;
    auto frame = encode_raft(send.msg);
    seal_frame(frame);
    sh.control_meter->record(frame.size());
    (*sh.replicas)[send.to]->inbox.send(std::move(frame));
  }
  if (const auto snap = self.node.take_installed_snapshot()) {
    self.sm.restore_snapshot(snap->data);
  }
  for (auto& c : self.node.take_committed()) {
    const bool is_commit =
        static_cast<Cmd>(std::to_integer<std::uint8_t>(c.command[0])) ==
        Cmd::kRoundCommit;
    self.sm.apply(c.command, sh, self.id);
    if (is_commit) {
      // Compact at every closed round: the log never outgrows one round,
      // and a partitioned replica is caught back up by snapshot transfer.
      self.node.compact(c.index, self.sm.snapshot_blob());
    }
  }
}

/// Fires any leader-crash schedule entry matching the open round once the
/// leader has accepted enough replies.  Returns true when this replica must
/// die (silently, mid-flight: queued proposals in the outbox die with it).
bool maybe_crash(Replica& self, Shared& sh, const Driver& drv) {
  if (!self.sm.round_open) return false;
  const auto& schedule = sh.options->fault.leader_crash;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (schedule[i].round != self.sm.round) continue;
    if (drv.accepted < schedule[i].after_replies) continue;
    if (sh.crash_fired[i].exchange(true)) continue;  // already fired
    sh.leader_crashes.fetch_add(1, std::memory_order_relaxed);
    sh.replica_crashed[self.id].store(true, std::memory_order_release);
    self.crash_event = CrashEvent{};  // crash-stop: stays dead
    return true;
  }
  const auto& restarts = sh.options->fault.replica_restart;
  for (std::size_t i = 0; i < restarts.size(); ++i) {
    if (restarts[i].round != self.sm.round) continue;
    if (drv.accepted < restarts[i].after_replies) continue;
    if (sh.restart_fired[i].exchange(true)) continue;  // already fired
    sh.replica_crashed[self.id].store(true, std::memory_order_release);
    self.crash_event = CrashEvent{/*restart=*/true,
                                  restarts[i].restart_after_ms,
                                  restarts[i].wal_fault};
    return true;
  }
  return false;
}

/// Builds this round's broadcast frame from the replicated state.  Frame
/// size is leader-independent (leader_id is fixed-width), which is what
/// lets RoundStart carry the byte count all replicas account identically.
std::vector<std::byte> make_broadcast(const Replica& self, const Shared& sh,
                                      std::uint64_t t) {
  BroadcastMsg bc;
  bc.seq = static_cast<std::uint32_t>(t);  // replicated mode: seq == round
  bc.iteration = t;
  bc.leader_id = self.id;
  bc.codec_id = sh.codec_id;
  bc.codec_version = sh.codec_version;
  bc.learning_rate =
      static_cast<float>(sh.options->fl.learning_rate.at(t));
  bc.global_params = self.sm.global;
  bc.global_update.assign(self.sm.estimator.estimate().begin(),
                          self.sm.estimator.estimate().end());
  auto frame = encode(Message(bc));
  seal_frame(frame);
  return frame;
}

void send_broadcasts(Replica& self, Shared& sh,
                     std::vector<FaultyChannel>& downlinks, bool original) {
  const auto frame = make_broadcast(self, sh, self.sm.round);
  for (std::size_t k = 0; k < sh.num_workers; ++k) {
    if (!self.sm.active[k] || self.sm.answered[k]) continue;
    if (original) {
      sh.downlink_meter->record(frame.size());
    } else {
      sh.downlink_meter->record_retransmit(frame.size());
      sh.master_retransmits.fetch_add(1, std::memory_order_relaxed);
    }
    downlinks[k].send(frame);
  }
}

Clock::time_point next_deadline(const Shared& sh, Driver& drv) {
  const RecoveryOptions& rec = sh.options->recovery;
  double scale = std::pow(rec.backoff, drv.attempt);
  if (rec.backoff_jitter > 0.0) {
    scale *= 1.0 + rec.backoff_jitter * drv.jitter.uniform();
  }
  return Clock::now() + seconds_to_duration(rec.round_timeout_s * scale);
}

enum class DriveResult { kOk, kCrash };

/// The leader's control loop: a pure function of the *applied* state plus
/// volatile retransmission bookkeeping.  Followers no-op.  Progress gates on
/// applied (= committed) state only, which forces the log order
/// RoundStart < all Replies < RoundCommit < ClientStates and makes every
/// apply deterministic.
DriveResult drive(Replica& self, Shared& sh, Driver& drv,
                  std::vector<FaultyChannel>& downlinks) {
  if (self.node.role() != RaftNode::Role::kLeader) {
    drv.leading = false;
    return DriveResult::kOk;
  }
  if (!drv.leading || drv.term != self.node.term()) {
    const std::uint64_t started = drv.leading ? drv.started_round : 0;
    drv = Driver{};
    drv.leading = true;
    drv.term = self.node.term();
    drv.started_round = started;
    drv.proposed_reply.assign(sh.num_workers, 0);
    drv.proposed_crash.assign(sh.num_workers, 0);
    drv.jitter = util::Rng(sh.options->fault.seed ^ (0x6a1700ULL + self.id));
  }
  StateMachine& sm = self.sm;
  const fl::SimulationOptions& flopt = sh.options->fl;
  const RecoveryOptions& rec = sh.options->recovery;

  if (sm.finished) {
    // Linger until surviving followers hold the whole log (so each can
    // apply the final checkpoint entry), then tear the cluster down.
    const auto now = Clock::now();
    if (!drv.finish_deadline) {
      const double linger_s =
          std::max(0.5, 100.0 * sh.options->replication.tick_interval_s);
      drv.finish_deadline = now + seconds_to_duration(linger_s);
    }
    bool caught_up = true;
    for (std::uint32_t p = 0;
         p < static_cast<std::uint32_t>(sh.options->replication.replicas);
         ++p) {
      if (p == self.id) continue;
      if (sh.replica_crashed[p].load(std::memory_order_relaxed)) continue;
      if (self.node.peer_match_index(p) < self.node.last_log_index()) {
        caught_up = false;
      }
    }
    if (caught_up || now >= *drv.finish_deadline) {
      int expected = -1;
      sh.finished_replica.compare_exchange_strong(
          expected, static_cast<int>(self.id));
      sh.done.store(true, std::memory_order_release);
    }
    return DriveResult::kOk;
  }

  if (sm.round_open) {
    const std::uint64_t t = sm.round;
    const bool bounded = rec.round_timeout_s > 0.0;
    if (drv.bcast_round != t) {
      drv.bcast_round = t;
      drv.attempt = 0;
      drv.accepted = 0;
      drv.proposed_reply.assign(sh.num_workers, 0);
      drv.proposed_crash.assign(sh.num_workers, 0);
      // A leader that did not start this round is re-driving a predecessor's
      // round: its (re)broadcasts are recovery traffic, not originals.
      send_broadcasts(self, sh, downlinks,
                      /*original=*/drv.started_round == t);
      if (bounded) drv.deadline = next_deadline(sh, drv);
      if (maybe_crash(self, sh, drv)) return DriveResult::kCrash;
    } else if (bounded && Clock::now() >= drv.deadline) {
      bool unanswered = false;
      for (std::size_t k = 0; k < sh.num_workers; ++k) {
        if (sm.active[k] && !sm.answered[k] && !drv.proposed_reply[k]) {
          unanswered = true;
        }
      }
      if (unanswered) {
        if (drv.attempt == 0) {  // count the round, not every expiry
          sh.timed_out_rounds.fetch_add(1, std::memory_order_relaxed);
        }
        ++drv.attempt;
        if (drv.attempt >= rec.max_attempts) {
          for (std::size_t k = 0; k < sh.num_workers; ++k) {
            if (sm.active[k] && !sm.answered[k] && !drv.proposed_reply[k] &&
                !drv.proposed_crash[k]) {
              self.node.propose(
                  encode_worker_crash(t, static_cast<std::uint32_t>(k)));
              drv.proposed_crash[k] = 1;
            }
          }
          drv.deadline = Clock::now() + seconds_to_duration(3600.0);
        } else {
          send_broadcasts(self, sh, downlinks, /*original=*/false);
          drv.deadline = next_deadline(sh, drv);
        }
      } else {
        drv.deadline = next_deadline(sh, drv);  // replies in flight to commit
      }
    }
    bool all_answered = true;
    for (std::size_t k = 0; k < sh.num_workers; ++k) {
      if (sm.active[k] && !sm.answered[k]) all_answered = false;
    }
    if (all_answered && drv.proposed_commit != t) {
      self.node.propose(encode_round_commit(t));
      drv.proposed_commit = t;
    }
    return DriveResult::kOk;
  }

  // Between rounds: checkpoint if due, then advance or finish.
  const std::uint64_t t = sm.round;
  const bool last = t >= flopt.max_iterations;
  const bool checkpoint_due =
      flopt.checkpoint_every > 0 && !flopt.checkpoint_path.empty() &&
      t >= 1 && sm.states_round < t && sm.crashed_workers.empty() &&
      (t % flopt.checkpoint_every == 0 || last || sm.stop);
  if (checkpoint_due) {
    if (drv.proposed_states != t) {
      // Safe to read worker-owned state: every active worker's round-t
      // reply is *applied*, and application happens-after the worker's
      // uplink send (two channel hops), so the training writes are visible
      // here even if a different replica physically received the frame.
      std::vector<std::vector<std::uint64_t>> states;
      states.reserve(sh.num_workers);
      for (std::size_t k = 0; k < sh.num_workers; ++k) {
        states.push_back((*sh.clients)[k]->mutable_state());
      }
      std::vector<std::vector<std::uint64_t>> codec_states;
      if (sh.use_codec) {
        codec_states.reserve(sh.num_workers);
        for (std::size_t k = 0; k < sh.num_workers; ++k) {
          codec_states.push_back((*sh.worker_codecs)[k]->mutable_state());
        }
      }
      self.node.propose(encode_client_states(t, states, codec_states));
      drv.proposed_states = t;
    }
    return DriveResult::kOk;  // wait for the entry to commit and apply
  }
  std::size_t active_count = 0;
  for (std::size_t k = 0; k < sh.num_workers; ++k) {
    if (sm.alive[k] && !sm.validator.quarantined(k)) ++active_count;
  }
  if (sm.stop || last || active_count == 0) {
    if (!drv.proposed_finish) {
      self.node.propose(encode_finish());
      drv.proposed_finish = true;
    }
    return DriveResult::kOk;
  }
  if (drv.started_round != t + 1) {
    const auto frame = make_broadcast(self, sh, t + 1);
    self.node.propose(encode_round_start(t + 1, frame.size()));
    drv.started_round = t + 1;
  }
  return DriveResult::kOk;
}

/// One frame out of the replica's inbox: Raft traffic steps the node; data
/// frames hit the leader path (propose a Reply entry) or earn a redirect.
DriveResult handle_frame(Replica& self, Shared& sh, Driver& drv,
                         const std::vector<std::byte>& frame) {
  const auto payload = try_open_frame(frame);
  if (!payload) {
    sh.master_corrupt.fetch_add(1, std::memory_order_relaxed);
    return DriveResult::kOk;
  }
  if (is_raft_frame(*payload)) {
    RaftMessage msg;
    try {
      msg = decode_raft(*payload);
    } catch (const std::exception&) {
      sh.master_corrupt.fetch_add(1, std::memory_order_relaxed);
      return DriveResult::kOk;
    }
    if (partition_blocks(sh, self, raft_sender(msg))) return DriveResult::kOk;
    self.node.step(msg);
    return DriveResult::kOk;
  }
  Message msg;
  try {
    msg = decode(*payload);
  } catch (const std::exception&) {
    sh.master_corrupt.fetch_add(1, std::memory_order_relaxed);
    return DriveResult::kOk;
  }
  std::uint64_t iteration = 0;
  std::uint32_t client_id = 0;
  double score = 0.0;
  const UpdateUploadMsg* upload = nullptr;
  const CodecUploadMsg* codec_upload = nullptr;
  if (const auto* up = std::get_if<UpdateUploadMsg>(&msg)) {
    iteration = up->iteration;
    client_id = up->client_id;
    score = up->score;
    upload = up;
  } else if (const auto* cu = std::get_if<CodecUploadMsg>(&msg)) {
    iteration = cu->iteration;
    client_id = cu->client_id;
    score = cu->score;
    codec_upload = cu;
  } else if (const auto* el = std::get_if<EliminationMsg>(&msg)) {
    iteration = el->iteration;
    client_id = el->client_id;
    score = el->score;
  } else {
    throw std::runtime_error("replicated master: unexpected frame");
  }
  if (client_id >= sh.num_workers) {
    throw std::runtime_error("replicated master: malformed reply frame");
  }
  if (codec_upload &&
      (!sh.use_codec || codec_upload->codec_id != sh.codec_id ||
       codec_upload->codec_version != sh.codec_version)) {
    throw std::runtime_error(
        "replicated master: reply codec does not match the negotiated one");
  }
  if (upload && sh.use_codec) {
    throw std::runtime_error(
        "replicated master: dense upload on a codec-negotiated round");
  }
  if (self.node.role() != RaftNode::Role::kLeader) {
    // A lagging follower may legitimately see replies for rounds it has not
    // applied yet (stale leader_hint chains), so no iteration check here.
    // Stale-leader data frame: tell the worker who leads now so it can
    // re-send its cached reply there.
    RedirectMsg rd;
    rd.iteration = iteration;
    rd.leader_id = self.node.leader_hint();
    auto out = encode(Message(rd));
    seal_frame(out);
    sh.control_meter->record(out.size());
    sh.leader_redirects.fetch_add(1, std::memory_order_relaxed);
    (*sh.workers)[client_id].inbox.send(std::move(out));
    return DriveResult::kOk;
  }
  StateMachine& sm = self.sm;
  if (iteration > sm.round) {
    // Leader completeness: a committed RoundStart is always in the leader's
    // applied prefix before any worker could have seen its broadcast.
    throw std::runtime_error("replicated master: reply from the future");
  }
  if (!sm.round_open || iteration < sm.round || sm.answered[client_id] ||
      !sm.active[client_id] ||
      (client_id < drv.proposed_reply.size() &&
       drv.proposed_reply[client_id])) {
    sh.master_redundant.fetch_add(1, std::memory_order_relaxed);
    return DriveResult::kOk;
  }
  if (upload && upload->update.size() != sh.dim) {
    throw std::runtime_error("replicated master: bad update size");
  }
  ReplyCmd cmd;
  cmd.round = sm.round;
  cmd.worker = client_id;
  cmd.is_upload = (upload || codec_upload) ? 1 : 0;
  cmd.score = score;
  cmd.frame_bytes = frame.size();
  if (upload) cmd.update = upload->update;
  if (codec_upload) {
    // The leader decodes *before* proposing: the replicated log carries the
    // dense reconstruction, so followers (and post-failover leaders) apply
    // identical state without ever touching a codec.  CRC already vouched
    // for transit integrity — a payload the codec rejects is a protocol
    // bug, surfaced loudly.
    cmd.update = self.decoder->decode(codec_upload->payload);
    if (cmd.update.size() != sh.dim) {
      throw std::runtime_error("replicated master: bad decoded update size");
    }
  }
  self.node.propose(encode_reply_cmd(cmd));
  drv.proposed_reply[client_id] = 1;
  ++drv.accepted;
  if (maybe_crash(self, sh, drv)) return DriveResult::kCrash;
  return DriveResult::kOk;
}

void replica_main(Replica& self, Shared& sh) {
  std::vector<FaultyChannel> downlinks;
  downlinks.reserve(sh.num_workers);
  for (std::size_t k = 0; k < sh.num_workers; ++k) {
    downlinks.emplace_back(
        (*sh.workers)[k].inbox, sh.options->fault.downlink_for(k),
        sh.options->fault.replica_link_rng(self.id, k, /*is_uplink=*/false),
        sh.fault_stats);
  }
  const auto tick = seconds_to_duration(
      sh.options->replication.tick_interval_s);
  Driver drv;
  auto next_tick = Clock::now() + tick;
  while (!sh.done.load(std::memory_order_acquire)) {
    pump(self, sh);
    if (drive(self, sh, drv, downlinks) == DriveResult::kCrash) return;
    pump(self, sh);
    const auto now = Clock::now();
    if (now >= next_tick) {
      self.node.tick();
      next_tick = now + tick;
      continue;  // pump on the next pass
    }
    auto frame = self.inbox.recv_for(next_tick - now);
    if (!frame) continue;
    if (handle_frame(self, sh, drv, *frame) == DriveResult::kCrash) return;
  }
}

/// Rebuilds a crashed replica from its durable storage directory (DESIGN.md
/// §15): re-opens the WAL + snapshot (optionally damaged first by the
/// scheduled storage fault), restores the state machine from the recovered
/// snapshot, and hands the recovered state to a fresh RaftNode that rejoins
/// as a follower.  Returns false — leaving the replica down, loudly, with a
/// restart_load_error counted — when recovery throws on unrecoverable
/// corruption; rejoining with silently wrong state is never an option.
bool rebuild_replica(Replica& self, Shared& sh, const CrashEvent& ev) {
  const ClusterOptions& options = *sh.options;
  if (ev.wal_fault != StorageFault::kNone && self.storage != nullptr) {
    StorageFaultInjector injector(options.fault.seed ^
                                  (0xd15c0ULL + self.id));
    injector.apply(ev.wal_fault, self.storage->wal_path());
  }
  // Fold the dead incarnation's counters before dropping it: fsyncs and
  // elections that already happened must survive into the final report.
  if (self.storage != nullptr) {
    const RaftStorageCounters sc = self.storage->counters();
    self.retired_storage.wal_bytes_fsynced += sc.wal_bytes_fsynced;
    self.retired_storage.wal_records += sc.wal_records;
    self.retired_storage.replay_entries += sc.replay_entries;
    self.retired_storage.snapshots_written += sc.snapshots_written;
  }
  {
    const RaftCounters& rc = self.node.counters();
    self.retired_raft.elections_won += rc.elections_won;
    self.retired_raft.entries_appended += rc.entries_appended;
    self.retired_raft.snapshots_installed += rc.snapshots_installed;
  }
  self.storage.reset();  // close the dead incarnation's file descriptors
  try {
    auto storage =
        std::make_unique<RaftStorage>(replica_storage_dir(options, self.id));
    // Frames addressed to the dead incarnation are lost with the process;
    // the inbox Channel itself must survive (workers hold references).
    while (self.inbox.recv_for(Clock::duration::zero())) {
    }
    StateMachine sm(options, sh.dim, sh.num_workers, *sh.initial_global);
    if (sh.resume_from != nullptr) sm.restore_checkpoint(*sh.resume_from);
    const RaftPersistentState& rec = storage->recovered();
    if (rec.snapshot_index > 0) sm.restore_snapshot(rec.snapshot);
    self.storage = std::move(storage);
    self.node = RaftNode(make_raft_config(options, self.id),
                         self.storage.get());
    self.sm = std::move(sm);
    return true;
  } catch (const std::exception&) {
    sh.restart_load_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

/// The per-replica thread body: runs incarnations of replica_main until the
/// run finishes, the replica crash-stops, or a crash-restart's recovery
/// refuses corrupt storage.
void replica_thread(std::uint32_t rid, Shared& sh) {
  Replica& self = *(*sh.replicas)[rid];
  for (;;) {
    replica_main(self, sh);
    if (sh.done.load(std::memory_order_acquire)) return;
    const CrashEvent ev = self.crash_event;
    self.crash_event = CrashEvent{};
    if (!ev.restart) return;  // crash-stop: dead for the rest of the run
    std::this_thread::sleep_for(seconds_to_duration(ev.delay_ms / 1000.0));
    if (sh.done.load(std::memory_order_acquire)) return;
    if (!rebuild_replica(self, sh, ev)) return;  // loud failure: stay down
    sh.replica_restarts.fetch_add(1, std::memory_order_relaxed);
    // Only now may peers resume sending: the rebuilt node is ready.
    sh.replica_crashed[rid].store(false, std::memory_order_release);
  }
}

// ------------------------------------------------------------- the workers

void worker_main(std::size_t k, Shared& sh) {
  fl::FlClient& client = *(*sh.clients)[k];
  const ClusterOptions& opt = *sh.options;
  const auto replicas = static_cast<std::uint32_t>(opt.replication.replicas);
  std::vector<FaultyChannel> uplinks;
  uplinks.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    uplinks.emplace_back((*sh.replicas)[r]->inbox, opt.fault.uplink_for(k),
                         opt.fault.replica_link_rng(r, k, /*is_uplink=*/true),
                         sh.fault_stats);
  }
  const auto crash_at = opt.fault.crash_iteration_for(k);
  const double straggle_s = opt.fault.straggler_delay_for(k);
  const int local_epochs = opt.fl.local_epochs;
  const std::size_t batch_size = opt.fl.batch_size;
  std::vector<float> update(sh.dim);
  std::uint32_t last_seq = 0;
  std::vector<std::byte> cached_reply;
  LeaderProbe probe(replicas);
  Channel& inbox = (*sh.workers)[k].inbox;
  for (;;) {
    auto frame = inbox.recv();
    if (!frame) return;
    const auto payload = try_open_frame(*frame);
    if (!payload) {
      sh.worker_corrupt.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Message msg;
    try {
      msg = decode(*payload);
    } catch (const std::exception&) {
      sh.worker_corrupt.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (std::holds_alternative<ShutdownMsg>(msg)) return;
    if (const auto* rd = std::get_if<RedirectMsg>(&msg)) {
      if (rd->iteration == last_seq && !cached_reply.empty()) {
        // Follow the hint while the redirect budget lasts; past it (or on a
        // bogus hint) probe the replicas round-robin with capped backoff —
        // two stale replicas hinting at each other must not livelock us.
        const LeaderProbe::Target target = probe.on_redirect(rd->leader_id);
        if (target.probed) {
          sh.leader_probes.fetch_add(1, std::memory_order_relaxed);
          if (target.backoff_ms > 0.0) {
            std::this_thread::sleep_for(
                seconds_to_duration(target.backoff_ms / 1000.0));
          }
        }
        sh.worker_retransmits.fetch_add(1, std::memory_order_relaxed);
        sh.uplink_meter->record_retransmit(cached_reply.size());
        uplinks[target.replica].send(cached_reply);
      } else {
        sh.worker_redundant.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    const auto& bc = std::get<BroadcastMsg>(msg);
    if (bc.global_params.size() != sh.dim || bc.leader_id >= replicas) {
      throw std::runtime_error("worker: malformed broadcast");
    }
    if (bc.codec_id != sh.codec_id || bc.codec_version != sh.codec_version) {
      throw std::runtime_error("worker: codec negotiation mismatch");
    }
    probe.on_broadcast(bc.leader_id);
    if (bc.seq == last_seq && !cached_reply.empty()) {
      // Same round seen again — either a failover re-broadcast from a new
      // leader or a network duplicate.  Re-send the cached reply (identical
      // bytes) to whichever replica asked; no retraining.
      sh.worker_redundant.fetch_add(1, std::memory_order_relaxed);
      sh.worker_retransmits.fetch_add(1, std::memory_order_relaxed);
      sh.uplink_meter->record_retransmit(cached_reply.size());
      uplinks[bc.leader_id].send(cached_reply);
      continue;
    }
    if (bc.seq < last_seq) {  // stale duplicate of an older round
      sh.worker_redundant.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (crash_at && bc.iteration >= *crash_at) return;  // crash-stop
    if (straggle_s > 0.0) {
      std::this_thread::sleep_for(seconds_to_duration(straggle_s));
    }

    client.set_params(bc.global_params);
    client.train_local(local_epochs, batch_size, bc.learning_rate);
    client.get_params(update);
    for (std::size_t i = 0; i < sh.dim; ++i) {
      update[i] -= bc.global_params[i];
    }

    core::FilterContext ctx;
    ctx.global_model = bc.global_params;
    ctx.estimated_global_update = bc.global_update;
    ctx.iteration = bc.iteration;
    const core::FilterDecision decision = sh.filter->decide(update, ctx);

    Message reply;
    if (decision.upload) {
      if (sh.use_codec) {
        // Encode exactly once per *trained* round: retransmits and
        // failover re-sends reuse cached_reply, so the codec stream
        // advances once however many replicas end up seeing the frame.
        CodecUploadMsg up;
        up.seq = bc.seq;
        up.iteration = bc.iteration;
        up.client_id = static_cast<std::uint32_t>(k);
        up.score = decision.score;
        up.codec_id = sh.codec_id;
        up.codec_version = sh.codec_version;
        up.payload = (*sh.worker_codecs)[k]->encode(update).payload;
        reply = std::move(up);
      } else {
        UpdateUploadMsg up;
        up.seq = bc.seq;
        up.iteration = bc.iteration;
        up.client_id = static_cast<std::uint32_t>(k);
        up.update = update;
        up.score = decision.score;
        reply = std::move(up);
      }
    } else {
      EliminationMsg el;
      el.seq = bc.seq;
      el.iteration = bc.iteration;
      el.client_id = static_cast<std::uint32_t>(k);
      el.score = decision.score;
      reply = el;
    }
    auto bytes = encode(reply);
    seal_frame(bytes);
    sh.uplink_meter->record(bytes.size());
    cached_reply = bytes;
    last_seq = bc.seq;
    uplinks[bc.leader_id].send(std::move(bytes));
  }
}

}  // namespace

// ------------------------------------------------------------ leader probe

LeaderProbe::Target LeaderProbe::on_redirect(std::uint32_t hinted) {
  if (hinted < replicas && redirects < 2 * replicas) {
    ++redirects;
    known_leader = hinted;
    return Target{hinted, /*probed=*/false, 0.0};
  }
  Target target;
  target.replica = (known_leader + 1 + probe_cursor) % replicas;
  ++probe_cursor;
  target.probed = true;
  target.backoff_ms = backoff_ms;
  backoff_ms = std::min(backoff_ms * 2.0, kBackoffCapMs);
  return target;
}

void LeaderProbe::on_broadcast(std::uint32_t leader) {
  known_leader = leader;
  redirects = 0;
  probe_cursor = 0;
  backoff_ms = 1.0;
}

// ------------------------------------------------------------------- entry

ClusterResult run_replicated_cluster(
    std::vector<std::unique_ptr<fl::FlClient>>& clients,
    core::UpdateFilter& filter, const fl::GlobalEvaluator& evaluator,
    const ClusterOptions& options, std::size_t dim,
    const fl::TrainerCheckpoint* resume_from) {
  const std::size_t num_workers = clients.size();
  const auto num_replicas =
      static_cast<std::uint32_t>(options.replication.replicas);

  std::vector<std::size_t> local_samples(num_workers, 0);
  for (std::size_t k = 0; k < num_workers; ++k) {
    local_samples[k] = clients[k]->local_samples();
  }
  std::vector<float> global(dim);
  clients.front()->get_params(global);

  // Per-worker encoders (each touched only by its worker's thread).  The
  // ctor already rejected stateful_decode codecs for replicated mode.
  const bool use_codec = !codec::is_dense_spec(options.fl.codec.spec);
  std::vector<std::unique_ptr<codec::UpdateCodec>> worker_codecs;
  std::uint8_t codec_id = 0;
  std::uint8_t codec_version = 1;
  if (use_codec) {
    worker_codecs.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      worker_codecs.push_back(codec::make_update_codec(
          options.fl.codec.spec, options.fl.codec.seed_salt + k));
    }
    codec_id = worker_codecs.front()->id();
    codec_version = worker_codecs.front()->version();
  }

  if (resume_from != nullptr) {
    const fl::TrainerCheckpoint& ck = *resume_from;
    if (ck.global_params.size() != dim) {
      throw std::invalid_argument(
          "FlCluster: checkpoint parameter dimension mismatch");
    }
    if (ck.client_state.size() != num_workers ||
        ck.eliminations_per_client.size() != num_workers ||
        ck.uploads_per_client.size() != num_workers) {
      throw std::invalid_argument(
          "FlCluster: checkpoint worker count mismatch");
    }
    global = ck.global_params;
    for (std::size_t k = 0; k < num_workers; ++k) {
      clients[k]->restore_mutable_state(ck.client_state[k]);
    }
    if (use_codec) {
      if (ck.compressor_state.size() != num_workers) {
        throw std::invalid_argument(
            "FlCluster: checkpoint codec state count mismatch");
      }
      for (std::size_t k = 0; k < num_workers; ++k) {
        worker_codecs[k]->restore_mutable_state(ck.compressor_state[k]);
      }
    }
  }

  std::vector<WorkerEndpoint> endpoints(num_workers);
  std::vector<std::unique_ptr<Replica>> replicas;
  replicas.reserve(num_replicas);
  for (std::uint32_t r = 0; r < num_replicas; ++r) {
    StateMachine sm(options, dim, num_workers, global);
    if (resume_from != nullptr) sm.restore_checkpoint(*resume_from);
    std::unique_ptr<RaftStorage> storage;
    if (!options.replication.storage_dir.empty()) {
      const std::string dir = replica_storage_dir(options, r);
      // A run owns its storage directory: state left by a previous run —
      // even the one a resume checkpoint came from — describes a different
      // Raft cluster (this run starts at term 0), so wipe it.
      std::filesystem::remove_all(dir);
      storage = std::make_unique<RaftStorage>(dir);
    }
    replicas.push_back(std::make_unique<Replica>(
        r, make_raft_config(options, r), std::move(sm), std::move(storage)));
    if (use_codec) {
      // Decode is stateless for every admitted codec, so the seed is inert;
      // a private instance per replica keeps decoding thread-confined.
      replicas.back()->decoder = codec::make_update_codec(
          options.fl.codec.spec, options.fl.codec.seed_salt);
    }
  }

  ByteMeter uplink_meter;
  ByteMeter downlink_meter;
  ByteMeter control_meter;
  FaultStats fault_stats;
  if (resume_from != nullptr) {
    const fl::ClusterMeterState& m = resume_from->meters;
    uplink_meter.restore(m.uplink_bytes, m.uplink_messages,
                         m.uplink_retransmitted);
    downlink_meter.restore(m.downlink_bytes, m.downlink_messages,
                           m.downlink_retransmitted);
  }

  Shared sh;
  sh.options = &options;
  sh.dim = dim;
  sh.num_workers = num_workers;
  sh.local_samples = &local_samples;
  sh.clients = &clients;
  sh.filter = &filter;
  sh.evaluator = &evaluator;
  sh.replicas = &replicas;
  sh.workers = &endpoints;
  sh.uplink_meter = &uplink_meter;
  sh.downlink_meter = &downlink_meter;
  sh.control_meter = &control_meter;
  sh.fault_stats = &fault_stats;
  sh.use_codec = use_codec;
  sh.codec_id = codec_id;
  sh.codec_version = codec_version;
  sh.worker_codecs = &worker_codecs;
  const std::size_t crash_entries = options.fault.leader_crash.size();
  sh.crash_fired =
      std::make_unique<std::atomic<bool>[]>(std::max<std::size_t>(1,
                                                                  crash_entries));
  for (std::size_t i = 0; i < crash_entries; ++i) sh.crash_fired[i] = false;
  const std::size_t restart_entries = options.fault.replica_restart.size();
  sh.restart_fired = std::make_unique<std::atomic<bool>[]>(
      std::max<std::size_t>(1, restart_entries));
  for (std::size_t i = 0; i < restart_entries; ++i) {
    sh.restart_fired[i] = false;
  }
  sh.replica_crashed = std::make_unique<std::atomic<bool>[]>(num_replicas);
  for (std::uint32_t r = 0; r < num_replicas; ++r) {
    sh.replica_crashed[r] = false;
  }
  sh.initial_global = &global;
  sh.resume_from = resume_from;

  std::vector<std::thread> replica_threads;
  replica_threads.reserve(num_replicas);
  for (std::uint32_t r = 0; r < num_replicas; ++r) {
    replica_threads.emplace_back([&, r] { replica_thread(r, sh); });
  }
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(num_workers);
  for (std::size_t k = 0; k < num_workers; ++k) {
    worker_threads.emplace_back([&, k] { worker_main(k, sh); });
  }

  for (auto& t : replica_threads) t.join();

  // Management-plane shutdown: bypasses fault injection so workers always
  // terminate.
  auto shutdown = encode(Message(ShutdownMsg{}));
  seal_frame(shutdown);
  for (auto& ep : endpoints) ep.inbox.send(shutdown);
  for (auto& t : worker_threads) t.join();

  const int fid = sh.finished_replica.load(std::memory_order_acquire);
  if (fid < 0) {
    throw std::runtime_error(
        "replicated cluster: no replica finished the run (did the fault "
        "plan crash a majority of replicas?)");
  }
  const StateMachine& sm = replicas[static_cast<std::size_t>(fid)]->sm;

  ClusterResult result;
  result.sim.history = sm.history;
  result.sim.eliminations_per_client = sm.eliminations_per_client;
  result.sim.uploads_per_client = sm.uploads_per_client;
  result.sim.final_params = sm.global;
  result.sim.uploaded_bytes = sm.up_bytes;
  result.sim.total_rounds = sm.cumulative_rounds;
  result.sim.validation = sm.validator.report();
  for (auto it = result.sim.history.rbegin(); it != result.sim.history.rend();
       ++it) {
    if (!std::isnan(it->accuracy)) {
      result.sim.final_accuracy = it->accuracy;
      break;
    }
  }
  result.uplink_bytes = uplink_meter.total_bytes();
  result.downlink_bytes = downlink_meter.total_bytes();
  result.uplink_retransmitted_bytes = uplink_meter.retransmitted_bytes();
  result.downlink_retransmitted_bytes = downlink_meter.retransmitted_bytes();
  result.upload_messages = sm.upload_frames;
  result.elimination_messages = sm.elimination_frames;
  result.control_plane_bytes = control_meter.total_bytes();
  result.simulated_transfer_seconds = sm.sim_transfer;
  result.footprint = sm.footprint;

  FaultReport& faults = result.faults;
  faults.frames_dropped = fault_stats.frames_dropped.load();
  faults.frames_corrupted = fault_stats.frames_corrupted.load();
  faults.frames_duplicated = fault_stats.frames_duplicated.load();
  faults.corrupt_rejected = sh.master_corrupt.load() + sh.worker_corrupt.load();
  faults.redundant_frames =
      sh.master_redundant.load() + sh.worker_redundant.load();
  faults.retransmits =
      sh.master_retransmits.load() + sh.worker_retransmits.load();
  faults.timed_out_rounds = sh.timed_out_rounds.load();
  faults.quorum_rounds = sm.quorum_rounds;
  faults.leader_redirects = sh.leader_redirects.load();
  faults.leader_crashes = sh.leader_crashes.load();
  faults.leader_probes = sh.leader_probes.load();
  faults.replica_restarts = sh.replica_restarts.load();
  faults.restart_load_errors = sh.restart_load_errors.load();
  for (const auto& replica : replicas) {
    const RaftCounters& c = replica->node.counters();
    faults.elections_held += c.elections_won + replica->retired_raft.elections_won;
    faults.log_entries_replicated +=
        c.entries_appended + replica->retired_raft.entries_appended;
    faults.snapshot_transfers +=
        c.snapshots_installed + replica->retired_raft.snapshots_installed;
    faults.wal_bytes_fsynced += replica->retired_storage.wal_bytes_fsynced;
    faults.wal_replay_entries += replica->retired_storage.replay_entries;
    if (replica->storage != nullptr) {
      const RaftStorageCounters sc = replica->storage->counters();
      faults.wal_bytes_fsynced += sc.wal_bytes_fsynced;
      faults.wal_replay_entries += sc.replay_entries;
    }
  }
  faults.crashed_workers = sm.crashed_workers;
  faults.max_staleness_per_client = sm.max_staleness;
  return result;
}

}  // namespace cmfl::net

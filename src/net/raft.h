// Minimal Raft-style consensus for the replicated FL control plane.
//
// Three master replicas replicate per-round control state (broadcast model
// id, cohort, received-update/elimination set, aggregation commit) through
// this log so that a leader crash mid-round loses nothing: the surviving
// quorum elects a new leader and finishes the round from the committed
// prefix, bit-identically to the fault-free run (DESIGN.md §14).
//
// The implementation is the textbook core of Raft (Ongaro & Ousterhout,
// §5), deliberately minimal:
//   * Leader election with randomized-but-seeded timeouts.  Each node draws
//     its election timeout from an independent util::Rng stream derived
//     from (seed, node id), so the timeout *sequence* of every node is a
//     pure function of the configuration — runs differ only in how real
//     time interleaves those sequences, and the replicated state machine is
//     insensitive to that interleaving by construction.
//   * Term/log replication with the AppendEntries consistency check,
//     follower conflict hints for fast backtracking, and the "only count
//     replicas for entries of the current term" commit rule.
//   * Log compaction + snapshot transfer: the host applies committed
//     entries, then hands the node an opaque application snapshot via
//     compact(); a follower that has fallen behind the compaction horizon
//     is caught up with InstallSnapshot instead of log entries.
//
// RaftNode is single-threaded and purely message-driven: the host calls
// step() for each incoming frame and tick() on a timer, then drains
// take_outbox() / take_committed().  No wall clock, no threads — which is
// what makes the unit tests (tests/test_net_raft.cpp) fully deterministic.
//
// Durability (DESIGN.md §15): by default a node keeps term/vote/log in
// memory and is crash-stop for one run.  Hand the constructor a RaftStorage
// and the node gains persist-before-ack semantics — term and vote are on
// stable storage before any vote reply leaves the node, entries before any
// AppendEntries success — and a restarted process recovers the persistent
// state (term, vote, snapshot, log suffix) from the same directory and
// rejoins as a follower.  The commit index is volatile by design: the
// recovered node re-learns it from the next leader heartbeat, exactly as
// the Raft paper prescribes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/durable_file.h"
#include "util/rng.h"

namespace cmfl::net {

// ---------------------------------------------------------------- messages

struct RequestVoteMsg {
  std::uint64_t term = 0;
  std::uint32_t candidate = 0;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

struct VoteReplyMsg {
  std::uint64_t term = 0;
  std::uint32_t voter = 0;
  std::uint8_t granted = 0;
};

struct RaftEntry {
  std::uint64_t term = 0;
  std::vector<std::byte> command;  // empty = leader no-op barrier

  bool operator==(const RaftEntry&) const = default;
};

struct AppendEntriesMsg {
  std::uint64_t term = 0;
  std::uint32_t leader = 0;
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::uint64_t commit = 0;
  std::vector<RaftEntry> entries;  // empty = heartbeat
};

struct AppendReplyMsg {
  std::uint64_t term = 0;
  std::uint32_t follower = 0;
  std::uint8_t success = 0;
  /// On success: highest index known replicated on the follower.  On
  /// failure: the follower's last log index — the leader's backtracking
  /// hint, so a lagging follower is found in one round trip instead of one
  /// decrement per missing entry.
  std::uint64_t match_index = 0;
};

struct InstallSnapshotMsg {
  std::uint64_t term = 0;
  std::uint32_t leader = 0;
  std::uint64_t last_index = 0;  // snapshot covers the log through here
  std::uint64_t last_term = 0;
  std::vector<std::byte> data;   // opaque application snapshot
};

struct SnapshotReplyMsg {
  std::uint64_t term = 0;
  std::uint32_t follower = 0;
  std::uint64_t last_index = 0;
};

/// Pre-vote poll (Raft §9.6): `term` is the *proposed* term (current + 1);
/// the poller's own term is untouched, so a node that cannot win — e.g. a
/// healed partitioned replica with a stale log — cannot inflate terms and
/// depose a stable leader.
struct PreVoteMsg {
  std::uint64_t term = 0;  // proposed term, not the sender's current term
  std::uint32_t candidate = 0;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

struct PreVoteReplyMsg {
  std::uint64_t term = 0;  // echoes the proposed term being polled for
  std::uint32_t voter = 0;
  std::uint8_t granted = 0;
};

using RaftMessage =
    std::variant<RequestVoteMsg, VoteReplyMsg, AppendEntriesMsg,
                 AppendReplyMsg, InstallSnapshotMsg, SnapshotReplyMsg,
                 PreVoteMsg, PreVoteReplyMsg>;

/// Raft frames share the replica inboxes with FL data frames; their type
/// bytes start at 16 so the two families can never collide (FL frames use
/// 1..6, net/message.h).
std::vector<std::byte> encode_raft(const RaftMessage& msg);

/// Throws std::runtime_error on unknown type or truncation.
RaftMessage decode_raft(std::span<const std::byte> frame);

/// True when an (already CRC-opened) payload is a Raft frame rather than an
/// FL data frame.
bool is_raft_frame(std::span<const std::byte> payload) noexcept;

/// The replica id a message came from — what receiver-side partition
/// injection filters on.
std::uint32_t raft_sender(const RaftMessage& msg) noexcept;

// ----------------------------------------------------------------- storage

/// What RaftStorage recovered from its directory at open time.  `log` holds
/// the entries in (snapshot_index, snapshot_index + log.size()], 1-based —
/// the same convention as RaftNode's in-memory log.
struct RaftPersistentState {
  bool any = false;  // false: the directory held no prior state
  std::uint64_t term = 0;
  std::optional<std::uint32_t> voted_for;
  std::uint64_t snapshot_index = 0;
  std::uint64_t snapshot_term = 0;
  std::vector<std::byte> snapshot;  // opaque application snapshot
  std::vector<RaftEntry> log;
  bool wal_tail_truncated = false;  // a torn final write was cut on recovery
};

/// Durability accounting, cumulative across WAL rotations for one handle.
struct RaftStorageCounters {
  std::uint64_t wal_bytes_fsynced = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t replay_entries = 0;     // entry records applied at open
  std::uint64_t snapshots_written = 0;  // sealed snapshot files written
};

/// Durable backing store for one RaftNode: a CRC-framed write-ahead log of
/// (hard state, entry, truncate) records — util::DurableFile — plus an
/// atomically-replaced sealed snapshot file.  Opening the directory runs
/// recovery: the snapshot (if present) is loaded and the WAL replayed on
/// top of it, with the torn-tail rule tolerating a crash mid-append but
/// refusing silent mid-log corruption (std::runtime_error).  The WAL is
/// rotated (rewritten to just hard state + log tail) whenever a snapshot
/// supersedes its prefix, bounding its size to one compaction interval.
///
/// Single-threaded, like the RaftNode it backs.
class RaftStorage {
 public:
  /// Opens (creating if needed) the storage directory and recovers any
  /// prior state.  `sync` = false skips fsyncs (fast unit tests only).
  /// Throws std::runtime_error on corrupt state that recovery must not
  /// silently repair.
  explicit RaftStorage(std::string dir, bool sync = true);

  RaftStorage(const RaftStorage&) = delete;
  RaftStorage& operator=(const RaftStorage&) = delete;

  const RaftPersistentState& recovered() const noexcept { return state_; }

  /// Durably records (term, vote); deduplicates, so calling it after every
  /// potential change is cheap.  On stable storage when the call returns.
  void persist_hard_state(std::uint64_t term,
                          std::optional<std::uint32_t> voted_for);

  /// Durably appends the log entry at `index`.  With `sync_now` the entry
  /// is on stable storage when the call returns; batch a run of appends
  /// with sync_now = false and one sync() to pay a single fsync.
  void append_entry(std::uint64_t index, const RaftEntry& entry,
                    bool sync_now = true);

  /// Records that the log was truncated to `last_kept` (conflict-suffix
  /// rule).  Not fsynced by itself: always followed by the appends of the
  /// replacement entries and their sync().
  void truncate_suffix(std::uint64_t last_kept);

  /// Flushes batched appends to stable storage.
  void sync();

  /// Atomically persists the application snapshot covering the log through
  /// `index` and rotates the WAL down to hard state + `tail` (the entries
  /// after `index` that remain live).
  void install_snapshot(std::uint64_t index, std::uint64_t term,
                        std::span<const std::byte> data,
                        std::span<const RaftEntry> tail);

  /// Cumulative counters including all rotated-away WAL incarnations.
  RaftStorageCounters counters() const noexcept;

  const std::string& dir() const noexcept { return dir_; }
  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  void replay_record(std::span<const std::byte> record);
  std::vector<std::byte> hard_state_record() const;

  std::string dir_;
  bool sync_ = true;
  std::optional<util::DurableFile> wal_;  // reopened on rotation
  RaftPersistentState state_;
  // Last durably-recorded hard state, for deduplication.
  std::uint64_t hard_term_ = 0;
  std::optional<std::uint32_t> hard_vote_;
  RaftStorageCounters counters_;
  util::DurableFileStats retired_;  // stats of rotated-away WAL handles
};

// -------------------------------------------------------------------- node

struct RaftConfig {
  std::uint32_t id = 0;
  std::uint32_t cluster_size = 3;
  /// Seed of the election-timeout jitter stream (shared across the cluster;
  /// each node splits off its own sub-stream by id).
  std::uint64_t seed = 7;
  /// Leader heartbeat cadence, in ticks.
  int heartbeat_ticks = 2;
  /// Election timeout drawn uniformly from [min, max] ticks, redrawn after
  /// every timeout so repeated split votes cannot stay synchronized.
  int election_timeout_min_ticks = 10;
  int election_timeout_max_ticks = 20;
  /// Pre-vote (Raft §9.6): on timeout, poll the cluster at term + 1 without
  /// incrementing the term, and only start a real election once a majority
  /// says the poll would win.  Prevents a healed partitioned node from
  /// deposing a stable leader through term inflation.
  bool pre_vote = false;

  /// Throws std::invalid_argument on a malformed configuration.
  void validate() const;
};

/// Monotonic counters a run's FaultReport aggregates across replicas.
struct RaftCounters {
  std::uint64_t elections_won = 0;       // times this node became leader
  std::uint64_t entries_appended = 0;    // new entries accepted as follower
  std::uint64_t snapshots_installed = 0; // InstallSnapshot frames applied
};

class RaftNode {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  /// `storage`, when given, must outlive the node; the node restores the
  /// recovered persistent state (term, vote, snapshot, log) and persists
  /// every change before the acknowledgement that depends on it can leave
  /// take_outbox().  A recovered node starts as a follower with
  /// commit = delivered = snapshot_index: the host must restore its
  /// application state from storage->recovered().snapshot, after which the
  /// node re-delivers the committed suffix learned from the next leader.
  explicit RaftNode(const RaftConfig& config, RaftStorage* storage = nullptr);

  /// Advances the node by one tick: followers/candidates count toward the
  /// election timeout, leaders toward the next heartbeat.
  void tick();

  /// Handles one incoming message.
  void step(const RaftMessage& msg);

  /// Appends a command to the leader's log and starts replicating it.
  /// Returns false (and does nothing) when this node is not the leader.
  bool propose(std::vector<std::byte> command);

  /// Messages produced by tick()/step()/propose() since the last drain,
  /// in send order.
  struct Send {
    std::uint32_t to = 0;
    RaftMessage msg;
  };
  std::vector<Send> take_outbox();

  /// Committed entries not yet handed to the host, in log order.  No-op
  /// barrier entries are filtered out; `index` still reflects their slots.
  struct Committed {
    std::uint64_t index = 0;
    std::vector<std::byte> command;
  };
  std::vector<Committed> take_committed();

  /// A snapshot installed by the leader since the last drain: the host must
  /// replace its application state with `data` (which covers the log
  /// through `last_index`).
  struct InstalledSnapshot {
    std::uint64_t last_index = 0;
    std::vector<std::byte> data;
  };
  std::optional<InstalledSnapshot> take_installed_snapshot();

  /// Discards log entries through `index` (which must be applied, i.e.
  /// <= commit) and retains `snapshot` as the application state at that
  /// point — what InstallSnapshot ships to followers that fell behind.
  void compact(std::uint64_t index, std::vector<std::byte> snapshot);

  Role role() const noexcept { return role_; }
  std::uint64_t term() const noexcept { return term_; }
  /// Leader only: the highest log index known replicated on `peer` (0 when
  /// not leader).  The finish protocol uses this to linger until surviving
  /// followers hold the full log before tearing the cluster down.
  std::uint64_t peer_match_index(std::uint32_t peer) const noexcept;
  /// Best guess at the current leader (own id when leader); the redirect
  /// target for stale-leader data frames.
  std::uint32_t leader_hint() const noexcept { return leader_hint_; }
  std::uint64_t commit_index() const noexcept { return commit_; }
  std::uint64_t last_log_index() const noexcept;
  const RaftCounters& counters() const noexcept { return counters_; }

 private:
  std::uint64_t term_at(std::uint64_t index) const;
  const RaftEntry& entry_at(std::uint64_t index) const;
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void begin_prevote();
  void reset_election_timer();
  void send_append(std::uint32_t peer);
  void broadcast_heartbeat();
  void advance_commit();
  void enqueue_committed();
  void persist_hard_state();
  void persist_last_entry(bool sync_now);
  void handle(const RequestVoteMsg& m);
  void handle(const VoteReplyMsg& m);
  void handle(const AppendEntriesMsg& m);
  void handle(const AppendReplyMsg& m);
  void handle(const InstallSnapshotMsg& m);
  void handle(const SnapshotReplyMsg& m);
  void handle(const PreVoteMsg& m);
  void handle(const PreVoteReplyMsg& m);

  RaftConfig config_;
  RaftStorage* storage_ = nullptr;  // may be null: in-memory crash-stop node
  util::Rng timeout_rng_;

  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  std::optional<std::uint32_t> voted_for_;
  std::uint32_t leader_hint_ = 0;

  // Log entries (snapshot_index_ .. snapshot_index_ + log_.size()], 1-based.
  std::deque<RaftEntry> log_;
  std::uint64_t snapshot_index_ = 0;  // last index covered by snapshot_
  std::uint64_t snapshot_term_ = 0;
  std::vector<std::byte> snapshot_;

  std::uint64_t commit_ = 0;
  std::uint64_t delivered_ = 0;  // last index handed to the host

  int ticks_ = 0;           // since last heard from a leader / last heartbeat
  int election_timeout_ = 0;
  std::vector<std::uint8_t> votes_;
  bool prevoting_ = false;
  std::vector<std::uint8_t> prevotes_;

  // Leader-only replication state, indexed by peer id.
  std::vector<std::uint64_t> next_index_;
  std::vector<std::uint64_t> match_index_;

  std::vector<Send> outbox_;
  std::vector<Committed> committed_out_;
  std::optional<InstalledSnapshot> installed_;
  RaftCounters counters_;
};

}  // namespace cmfl::net

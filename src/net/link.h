// Simulated network links: thread-safe frame queues with byte accounting
// and a latency/bandwidth model.
//
// The paper's EC2 study measures network footprint (bytes and upload
// rounds), not wall-clock transfer time; ByteMeter captures exactly that.
// The latency/bandwidth model additionally estimates what each round would
// have cost over a constrained edge uplink — used by the ablation output of
// the Fig. 7 bench.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace cmfl::net {

/// Cumulative transfer statistics for one direction of the cluster.
class ByteMeter {
 public:
  void record(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_bytes_ += bytes;
    ++messages_;
  }

  std::uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_bytes_;
  }

  std::uint64_t messages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return messages_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t messages_ = 0;
};

struct LinkModel {
  double latency_s = 0.05;          // per-message propagation delay
  double bandwidth_bytes_per_s = 1.0e6;  // edge uplink ~8 Mbit/s

  /// Simulated seconds to push `bytes` through this link.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Unbounded MPSC byte-frame channel.  send() never blocks; recv() blocks
/// until a frame or close() arrives.
class Channel {
 public:
  /// Returns false if the channel is closed (frames already queued are
  /// still delivered before close is reported).
  bool send(std::vector<std::byte> frame);

  /// Blocks; returns std::nullopt once closed and drained.
  std::optional<std::vector<std::byte>> recv();

  void close();

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::vector<std::byte>> frames_;
  bool closed_ = false;
};

}  // namespace cmfl::net

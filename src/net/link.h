// Simulated network links: thread-safe frame queues with byte accounting
// and a latency/bandwidth model.
//
// The paper's EC2 study measures network footprint (bytes and upload
// rounds), not wall-clock transfer time; ByteMeter captures exactly that.
// The latency/bandwidth model additionally estimates what each round would
// have cost over a constrained edge uplink — used by the ablation output of
// the Fig. 7 bench.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace cmfl::net {

/// Cumulative transfer statistics for one direction of the cluster.
/// Lock-free: record() sits on the per-frame hot path of every worker
/// thread, so counters are relaxed atomics rather than a mutex.
///
/// Cache-line aligned: meters are deployed in dense arrays (one per
/// aggregator shard, one per worker link), where each is hammered by a
/// different thread.  Without the alignment two meters share a 64-byte
/// line and every record() invalidates the neighbor shard's counters —
/// false sharing that bench_ingest's meter row measures at several times
/// the padded cost.  The three counters of one meter deliberately stay on
/// the same line: they are written together by the same thread.
class alignas(64) ByteMeter {
 public:
  void record(std::size_t bytes) noexcept {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A retransmission counts toward the total footprint (the bytes really
  /// cross the link again) and is additionally tracked separately so the
  /// recovery overhead is visible next to the Fig. 7b numbers.
  void record_retransmit(std::size_t bytes) noexcept {
    record(bytes);
    retransmitted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint64_t total_bytes() const noexcept {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }

  std::uint64_t retransmitted_bytes() const noexcept {
    return retransmitted_bytes_.load(std::memory_order_relaxed);
  }

  /// Checkpoint/resume support: reloads counters captured while the cluster
  /// was quiesced.  Only safe before worker threads start recording.
  void restore(std::uint64_t total_bytes, std::uint64_t messages,
               std::uint64_t retransmitted_bytes) noexcept {
    total_bytes_.store(total_bytes, std::memory_order_relaxed);
    messages_.store(messages, std::memory_order_relaxed);
    retransmitted_bytes_.store(retransmitted_bytes,
                               std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> retransmitted_bytes_{0};
};

struct LinkModel {
  double latency_s = 0.05;          // per-message propagation delay
  double bandwidth_bytes_per_s = 1.0e6;  // edge uplink ~8 Mbit/s

  /// Simulated seconds to push `bytes` through this link.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Unbounded MPSC byte-frame channel.  send() never blocks; recv() blocks
/// until a frame or close() arrives.
class Channel {
 public:
  /// Returns false if the channel is closed (frames already queued are
  /// still delivered before close is reported); a failed send enqueues
  /// nothing.
  bool send(std::vector<std::byte> frame);

  /// Enqueues all frames under one lock, so a consumer can never observe a
  /// gap inside the batch (the fault layer needs this to deliver duplicated
  /// frames atomically).
  bool send_many(std::vector<std::vector<std::byte>> frames);

  /// Blocks; returns std::nullopt once closed and drained.
  std::optional<std::vector<std::byte>> recv();

  /// Deadline-bounded receive: waits at most `timeout` for a frame.
  /// Returns std::nullopt on timeout or once closed and drained; a zero
  /// timeout polls the queue without blocking.
  std::optional<std::vector<std::byte>> recv_for(
      std::chrono::steady_clock::duration timeout);

  void close();

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::vector<std::byte>> frames_;
  bool closed_ = false;
};

}  // namespace cmfl::net

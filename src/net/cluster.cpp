#include "net/cluster.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/estimator.h"
#include "tensor/vector_ops.h"

namespace cmfl::net {

namespace {

/// One worker's endpoint: an inbox it reads and the shared master inbox it
/// writes, with byte meters on both directions.
struct WorkerEndpoint {
  Channel inbox;
};

}  // namespace

FlCluster::FlCluster(std::vector<std::unique_ptr<fl::FlClient>> clients,
                     std::unique_ptr<core::UpdateFilter> filter,
                     fl::GlobalEvaluator evaluator,
                     const ClusterOptions& options)
    : clients_(std::move(clients)),
      filter_(std::move(filter)),
      evaluator_(std::move(evaluator)),
      options_(options) {
  if (clients_.empty()) throw std::invalid_argument("FlCluster: no clients");
  if (!filter_) throw std::invalid_argument("FlCluster: null filter");
  if (!evaluator_) throw std::invalid_argument("FlCluster: null evaluator");
  dim_ = clients_.front()->param_count();
  for (const auto& c : clients_) {
    if (c->param_count() != dim_) {
      throw std::invalid_argument(
          "FlCluster: clients disagree on parameter count");
    }
  }
}

ClusterResult FlCluster::run() {
  const std::size_t num_workers = clients_.size();
  std::vector<WorkerEndpoint> endpoints(num_workers);
  Channel master_inbox;
  ByteMeter uplink_meter;
  ByteMeter downlink_meter;
  std::atomic<std::uint64_t> upload_frames{0};
  std::atomic<std::uint64_t> elimination_frames{0};

  const int local_epochs = options_.fl.local_epochs;
  const std::size_t batch_size = options_.fl.batch_size;

  // --- Worker threads: the "slaves" of the paper's implementation ---
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (std::size_t k = 0; k < num_workers; ++k) {
    workers.emplace_back([&, k] {
      fl::FlClient& client = *clients_[k];
      std::vector<float> update(dim_);
      for (;;) {
        auto frame = endpoints[k].inbox.recv();
        if (!frame) return;
        const Message msg = decode(open_frame(*frame));
        if (std::holds_alternative<ShutdownMsg>(msg)) return;
        const auto& bc = std::get<BroadcastMsg>(msg);
        if (bc.global_params.size() != dim_) {
          throw std::runtime_error("worker: broadcast size mismatch");
        }

        client.set_params(bc.global_params);
        client.train_local(local_epochs, batch_size, bc.learning_rate);
        client.get_params(update);
        for (std::size_t i = 0; i < dim_; ++i) {
          update[i] -= bc.global_params[i];
        }

        core::FilterContext ctx;
        ctx.global_model = bc.global_params;
        ctx.estimated_global_update = bc.global_update;
        ctx.iteration = bc.iteration;
        const core::FilterDecision decision = filter_->decide(update, ctx);

        Message reply;
        if (decision.upload) {
          UpdateUploadMsg up;
          up.iteration = bc.iteration;
          up.client_id = static_cast<std::uint32_t>(k);
          up.update = update;
          up.score = decision.score;
          reply = std::move(up);
          upload_frames.fetch_add(1, std::memory_order_relaxed);
        } else {
          EliminationMsg el;
          el.iteration = bc.iteration;
          el.client_id = static_cast<std::uint32_t>(k);
          el.score = decision.score;
          reply = el;
          elimination_frames.fetch_add(1, std::memory_order_relaxed);
        }
        auto bytes = encode(reply);
        seal_frame(bytes);
        uplink_meter.record(bytes.size());
        master_inbox.send(std::move(bytes));
      }
    });
  }

  // --- Master loop (Algorithm 1 GlobalOptimization over the wire) ---
  ClusterResult result;
  result.sim.eliminations_per_client.assign(num_workers, 0);
  std::vector<float> global(dim_);
  clients_.front()->get_params(global);  // pre-thread-start? see note below
  // NOTE: clients_.front() is also owned by worker thread k=0, but workers
  // only touch clients after receiving a frame; reading initial params here
  // happens-before the first send.
  core::GlobalUpdateEstimator estimator(dim_, options_.fl.estimator_ema);
  std::vector<float> prev_global_update;
  std::size_t cumulative_rounds = 0;

  for (std::size_t t = 1; t <= options_.fl.max_iterations; ++t) {
    const auto lr = static_cast<float>(options_.fl.learning_rate.at(t));
    BroadcastMsg bc;
    bc.iteration = t;
    bc.learning_rate = lr;
    bc.global_params = global;
    bc.global_update.assign(estimator.estimate().begin(),
                            estimator.estimate().end());
    auto frame = encode(Message(bc));
    seal_frame(frame);
    double round_transfer = 0.0;
    for (std::size_t k = 0; k < num_workers; ++k) {
      downlink_meter.record(frame.size());
      round_transfer = std::max(
          round_transfer, options_.downlink.transfer_seconds(frame.size()));
      endpoints[k].inbox.send(frame);  // copy per worker
    }

    // Gather exactly one reply per worker.  Uploads are collected keyed by
    // client id and aggregated in id order: float summation is not
    // associative, so arrival-order aggregation would make runs depend on
    // thread scheduling.
    std::vector<std::pair<std::uint32_t, std::vector<float>>> uploads;
    std::vector<double> scores(num_workers, 0.0);
    double max_upload_transfer = 0.0;
    for (std::size_t received = 0; received < num_workers; ++received) {
      auto reply_frame = master_inbox.recv();
      if (!reply_frame) {
        throw std::runtime_error("FlCluster: master inbox closed early");
      }
      max_upload_transfer =
          std::max(max_upload_transfer,
                   options_.uplink.transfer_seconds(reply_frame->size()));
      const Message reply = decode(open_frame(*reply_frame));
      if (const auto* up = std::get_if<UpdateUploadMsg>(&reply)) {
        if (up->iteration != t) {
          throw std::runtime_error("FlCluster: stale upload frame");
        }
        if (up->update.size() != dim_) {
          throw std::runtime_error("FlCluster: bad update size");
        }
        scores[up->client_id] = up->score;
        uploads.emplace_back(up->client_id, up->update);
      } else if (const auto* el = std::get_if<EliminationMsg>(&reply)) {
        if (el->iteration != t) {
          throw std::runtime_error("FlCluster: stale elimination frame");
        }
        scores[el->client_id] = el->score;
        ++result.sim.eliminations_per_client[el->client_id];
      } else {
        throw std::runtime_error("FlCluster: unexpected frame from worker");
      }
    }
    result.simulated_transfer_seconds += round_transfer + max_upload_transfer;

    fl::IterationRecord rec;
    rec.iteration = t;
    rec.uploads = uploads.size();
    cumulative_rounds += uploads.size();
    rec.cumulative_rounds = cumulative_rounds;
    rec.mean_score =
        std::accumulate(scores.begin(), scores.end(), 0.0) /
        static_cast<double>(num_workers);

    if (!uploads.empty()) {
      std::sort(uploads.begin(), uploads.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<float> global_update(dim_, 0.0f);
      for (const auto& [id, u] : uploads) tensor::axpy(1.0f, u, global_update);
      tensor::scale(global_update,
                    1.0f / static_cast<float>(uploads.size()));
      tensor::add(global, global_update, global);
      if (!prev_global_update.empty()) {
        rec.delta_update = core::normalized_update_difference(
            prev_global_update, global_update);
      }
      prev_global_update = global_update;
      estimator.observe(global_update);
    }

    const bool last = t == options_.fl.max_iterations;
    if (options_.fl.eval_every > 0 &&
        (t % options_.fl.eval_every == 0 || last)) {
      const nn::EvalResult eval = evaluator_(global);
      rec.accuracy = eval.accuracy;
      rec.loss = eval.loss;
      result.sim.history.push_back(rec);
      result.footprint.push_back(
          {t, eval.accuracy, uplink_meter.total_bytes()});
      if (options_.fl.target_accuracy > 0.0 &&
          eval.accuracy >= options_.fl.target_accuracy) {
        break;
      }
    } else {
      result.sim.history.push_back(rec);
    }
  }

  // --- Shutdown ---
  auto shutdown = encode(Message(ShutdownMsg{}));
  seal_frame(shutdown);
  for (auto& ep : endpoints) ep.inbox.send(shutdown);
  for (auto& w : workers) w.join();

  result.sim.total_rounds = cumulative_rounds;
  result.sim.final_params = std::move(global);
  for (auto it = result.sim.history.rbegin();
       it != result.sim.history.rend(); ++it) {
    if (it->evaluated()) {
      result.sim.final_accuracy = it->accuracy;
      break;
    }
  }
  result.uplink_bytes = uplink_meter.total_bytes();
  result.downlink_bytes = downlink_meter.total_bytes();
  result.upload_messages = upload_frames.load();
  result.elimination_messages = elimination_frames.load();
  return result;
}

}  // namespace cmfl::net

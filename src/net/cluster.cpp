#include "net/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "codec/codec.h"
#include "core/estimator.h"
#include "fl/checkpoint.h"
#include "fl/shard.h"
#include "net/raft.h"
#include "net/replicated_master.h"
#include "tensor/vector_ops.h"

namespace cmfl::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One worker's endpoint: an inbox it reads and the shared master inbox it
/// writes, with byte meters on both directions.
struct WorkerEndpoint {
  Channel inbox;
};

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// The fields common to all reply frame types.
struct ReplyView {
  std::uint64_t iteration = 0;
  std::uint32_t client_id = 0;
  double score = 0.0;
  const UpdateUploadMsg* upload = nullptr;       // dense uploads
  const CodecUploadMsg* codec_upload = nullptr;  // encoded uploads
};

/// One accepted upload: decoded update plus the wire size of the frame that
/// carried it (feeds the per-shard byte meters on the sharded path).
struct ReceivedUpload {
  std::uint32_t id = 0;
  std::vector<float> update;
  std::uint64_t frame_bytes = 0;
};

}  // namespace

FlCluster::FlCluster(std::vector<std::unique_ptr<fl::FlClient>> clients,
                     std::unique_ptr<core::UpdateFilter> filter,
                     fl::GlobalEvaluator evaluator,
                     const ClusterOptions& options)
    : clients_(std::move(clients)),
      filter_(std::move(filter)),
      evaluator_(std::move(evaluator)),
      options_(options) {
  if (clients_.empty()) throw std::invalid_argument("FlCluster: no clients");
  if (!filter_) throw std::invalid_argument("FlCluster: null filter");
  if (!evaluator_) throw std::invalid_argument("FlCluster: null evaluator");
  dim_ = clients_.front()->param_count();
  for (const auto& c : clients_) {
    if (c->param_count() != dim_) {
      throw std::invalid_argument(
          "FlCluster: clients disagree on parameter count");
    }
  }
  options_.fault.validate(clients_.size());
  const RecoveryOptions& rec = options_.recovery;
  if (rec.round_timeout_s < 0.0) {
    throw std::invalid_argument("FlCluster: negative round deadline");
  }
  if (rec.max_attempts < 1) {
    throw std::invalid_argument("FlCluster: max_attempts must be >= 1");
  }
  if (rec.backoff < 1.0) {
    throw std::invalid_argument("FlCluster: backoff must be >= 1");
  }
  if (!(rec.quorum > 0.0 && rec.quorum <= 1.0)) {
    throw std::invalid_argument("FlCluster: quorum must lie in (0, 1]");
  }
  if (rec.suspect_after_stale_rounds < 0) {
    throw std::invalid_argument(
        "FlCluster: suspect_after_stale_rounds must be >= 0");
  }
  if (rec.backoff_jitter < 0.0) {
    throw std::invalid_argument("FlCluster: backoff_jitter must be >= 0");
  }
  if (options_.fault.enabled() && rec.round_timeout_s <= 0.0) {
    throw std::invalid_argument(
        "FlCluster: fault injection requires a positive recovery "
        "round_timeout_s (a dropped frame would hang the round forever)");
  }
  // Validate the codec spec eagerly, before any thread exists.
  const auto codec_probe = codec::make_update_codec(
      options_.fl.codec.spec, options_.fl.codec.seed_salt);
  const ReplicationOptions& rep = options_.replication;
  if (rep.replicas > 0 && codec_probe->stateful_decode()) {
    throw std::invalid_argument(
        "FlCluster: replicated mode requires a stateless-decode codec — "
        "after a failover any replica must be able to decode any payload, "
        "which a decoder-side codebook cache cannot guarantee");
  }
  if (rep.replicas == 0) {
    if (!options_.fault.leader_crash.empty() ||
        !options_.fault.replica_restart.empty() ||
        !options_.fault.replica_partition.empty()) {
      throw std::invalid_argument(
          "FlCluster: leader-crash / restart / partition schedules need "
          "replication.replicas >= 3");
    }
    return;
  }
  if (rep.replicas < 3) {
    throw std::invalid_argument(
        "FlCluster: replication needs >= 3 replicas (a majority must "
        "survive one crash)");
  }
  if (rec.quorum != 1.0 || rec.first_k_reports != 0 ||
      rec.suspect_after_stale_rounds != 0) {
    throw std::invalid_argument(
        "FlCluster: replicated mode supports quorum 1.0 only (no "
        "first_k_reports / staleness suspicion): the committed cohort must "
        "be a pure function of replicated state");
  }
  if (options_.fl.sharding.enabled()) {
    throw std::invalid_argument(
        "FlCluster: sharded aggregation is not supported with a replicated "
        "control plane (the replicated master applies uploads through its "
        "Raft-ordered state machine)");
  }
  if (rep.tick_interval_s <= 0.0) {
    throw std::invalid_argument(
        "FlCluster: replication tick_interval_s must be positive");
  }
  RaftConfig raft_check;
  raft_check.cluster_size = static_cast<std::uint32_t>(rep.replicas);
  raft_check.heartbeat_ticks = rep.heartbeat_ticks;
  raft_check.election_timeout_min_ticks = rep.election_timeout_min_ticks;
  raft_check.election_timeout_max_ticks = rep.election_timeout_max_ticks;
  raft_check.validate();
  for (const auto& [r, _] : options_.fault.replica_partition) {
    if (r >= static_cast<std::uint32_t>(rep.replicas)) {
      throw std::invalid_argument(
          "FlCluster: replica_partition id out of range");
    }
  }
  if (options_.fault.leader_crash.size() >
      static_cast<std::size_t>(rep.replicas - 1) / 2) {
    throw std::invalid_argument(
        "FlCluster: leader_crash schedule may kill at most a minority of "
        "replicas (each entry fires once)");
  }
  if (!options_.fault.replica_restart.empty() && rep.storage_dir.empty()) {
    throw std::invalid_argument(
        "FlCluster: replica_restart schedules need "
        "replication.storage_dir (a restarted replica recovers from its "
        "durable Raft storage)");
  }
}

ClusterResult FlCluster::run() { return run_internal(nullptr); }

ClusterResult FlCluster::resume(const fl::TrainerCheckpoint& checkpoint) {
  return run_internal(&checkpoint);
}

ClusterResult FlCluster::run_internal(
    const fl::TrainerCheckpoint* resume_from) {
  if (options_.replication.replicas > 0) {
    return run_replicated_cluster(clients_, *filter_, evaluator_, options_,
                                  dim_, resume_from);
  }
  const std::size_t num_workers = clients_.size();
  std::vector<WorkerEndpoint> endpoints(num_workers);
  Channel master_inbox;
  ByteMeter uplink_meter;
  ByteMeter downlink_meter;
  // Sharded ingest pipeline (options.fl.sharding): the per-upload scalar
  // screening pass and the aggregation apply pass fan out across shard
  // worker threads, with one cache-line-aligned ByteMeter per shard
  // accounting the upload bytes that shard ingested.  Null/empty keeps the
  // single-master commit path.
  std::unique_ptr<fl::ShardedAggregator> shard_agg;
  std::vector<ByteMeter> shard_meters;
  if (options_.fl.sharding.enabled()) {
    shard_agg = std::make_unique<fl::ShardedAggregator>(dim_,
                                                        options_.fl.sharding);
    shard_meters = std::vector<ByteMeter>(options_.fl.sharding.shards);
  }
  FaultStats fault_stats;
  std::atomic<std::uint64_t> upload_frames{0};
  std::atomic<std::uint64_t> elimination_frames{0};
  // Receiver-side accounting on the worker threads.
  std::atomic<std::uint64_t> worker_corrupt_rejected{0};
  std::atomic<std::uint64_t> worker_redundant{0};
  std::atomic<std::uint64_t> worker_retransmits{0};

  const int local_epochs = options_.fl.local_epochs;
  const std::size_t batch_size = options_.fl.batch_size;

  ClusterResult result;
  result.sim.eliminations_per_client.assign(num_workers, 0);
  result.sim.uploads_per_client.assign(num_workers, 0);
  result.faults.max_staleness_per_client.assign(num_workers, 0);
  std::vector<float> global(dim_);
  clients_.front()->get_params(global);  // pre-thread-start? see note below
  // NOTE: clients_.front() is also owned by worker thread k=0, but workers
  // only touch clients after receiving a frame; reading initial params here
  // happens-before the first send.
  core::GlobalUpdateEstimator estimator(dim_, options_.fl.estimator_ema);
  fl::UpdateValidator validator(num_workers, options_.fl.validation);
  std::vector<float> prev_global_update;
  std::size_t cumulative_rounds = 0;
  std::vector<std::uint64_t> last_acked(num_workers, 0);
  // Consecutive *deadline-expired* rounds a worker was invited to but did
  // not answer.  Deliberately not `t - last_acked`: a worker that answers
  // slowly and keeps losing first_k_reports races is late, not crashed, so
  // K-committed rounds never count as misses (see RecoveryOptions).
  std::vector<std::uint64_t> stale_misses(num_workers, 0);
  std::size_t start_t = 1;

  // Immutable per-worker sample counts, snapshotted before the worker
  // threads take ownership of the clients (needed by kSampleWeighted).
  std::vector<std::size_t> local_samples(num_workers, 0);
  for (std::size_t k = 0; k < num_workers; ++k) {
    local_samples[k] = clients_[k]->local_samples();
  }

  // Per-worker codecs, shared between each worker thread (encode) and the
  // master (decode).  Safe without locks: a worker touches its codec only
  // between receiving a broadcast and sending its reply, and the master
  // decodes worker k's payload only after receiving that reply — the
  // channel provides the happens-before edge — while late/duplicate/stale
  // frames are discarded by the seq/iteration/pending checks *before* any
  // decode, so codec state advances exactly once per accepted upload.
  const bool use_codec = !codec::is_dense_spec(options_.fl.codec.spec);
  std::vector<std::unique_ptr<codec::UpdateCodec>> codecs;
  std::uint8_t codec_id = 0;       // negotiated at round start via the
  std::uint8_t codec_version = 1;  // broadcast's codec_id/codec_version
  if (use_codec) {
    codecs.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      codecs.push_back(codec::make_update_codec(
          options_.fl.codec.spec, options_.fl.codec.seed_salt + k));
    }
    codec_id = codecs.front()->id();
    codec_version = codecs.front()->version();
  }

  // --- Resume: restore all mutable state before any worker thread starts
  // (no happens-before subtleties: the threads do not exist yet) ---
  if (resume_from != nullptr) {
    const fl::TrainerCheckpoint& ck = *resume_from;
    if (ck.global_params.size() != dim_) {
      throw std::invalid_argument(
          "FlCluster: checkpoint parameter dimension mismatch");
    }
    if (ck.client_state.size() != num_workers ||
        ck.eliminations_per_client.size() != num_workers ||
        ck.uploads_per_client.size() != num_workers) {
      throw std::invalid_argument(
          "FlCluster: checkpoint worker count mismatch");
    }
    global = ck.global_params;
    estimator.restore(ck.estimator_estimate, ck.estimator_observed);
    validator.restore(ck.validation);
    prev_global_update = ck.prev_global_update;
    cumulative_rounds = static_cast<std::size_t>(ck.cumulative_rounds);
    result.sim.history = ck.history;
    result.sim.uploaded_bytes = ck.uploaded_bytes;
    for (std::size_t k = 0; k < num_workers; ++k) {
      result.sim.eliminations_per_client[k] =
          static_cast<std::size_t>(ck.eliminations_per_client[k]);
      result.sim.uploads_per_client[k] =
          static_cast<std::size_t>(ck.uploads_per_client[k]);
      clients_[k]->restore_mutable_state(ck.client_state[k]);
      // A resumed worker has trivially "answered" every round up to the
      // checkpoint — without this, staleness suspicion would fire on the
      // first resumed rounds.
      last_acked[k] = ck.iteration;
    }
    if (use_codec) {
      if (ck.compressor_state.size() != num_workers) {
        throw std::invalid_argument(
            "FlCluster: checkpoint codec state count mismatch");
      }
      for (std::size_t k = 0; k < num_workers; ++k) {
        codecs[k]->restore_mutable_state(ck.compressor_state[k]);
      }
    }
    const fl::ClusterMeterState& m = ck.meters;
    uplink_meter.restore(m.uplink_bytes, m.uplink_messages,
                         m.uplink_retransmitted);
    downlink_meter.restore(m.downlink_bytes, m.downlink_messages,
                           m.downlink_retransmitted);
    upload_frames.store(m.upload_messages, std::memory_order_relaxed);
    elimination_frames.store(m.elimination_messages,
                             std::memory_order_relaxed);
    result.simulated_transfer_seconds = m.simulated_transfer_seconds;
    result.footprint.reserve(m.footprint.size());
    for (const auto& p : m.footprint) {
      result.footprint.push_back({static_cast<std::size_t>(p.iteration),
                                  p.accuracy, p.uplink_bytes});
    }
    start_t = static_cast<std::size_t>(ck.iteration) + 1;
  }

  // --- Worker threads: the "slaves" of the paper's implementation ---
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (std::size_t k = 0; k < num_workers; ++k) {
    workers.emplace_back([&, k] {
      fl::FlClient& client = *clients_[k];
      FaultyChannel uplink(master_inbox, options_.fault.uplink_for(k),
                           options_.fault.link_rng(k, /*is_uplink=*/true),
                           &fault_stats);
      const auto crash_at = options_.fault.crash_iteration_for(k);
      const double straggle_s = options_.fault.straggler_delay_for(k);
      std::vector<float> update(dim_);
      std::uint32_t last_seq = 0;  // broadcast seq numbers start at 1
      std::vector<std::byte> cached_reply;
      for (;;) {
        auto frame = endpoints[k].inbox.recv();
        if (!frame) return;
        const auto payload = try_open_frame(*frame);
        if (!payload) {
          // Corrupted in transit; the master's round deadline will expire
          // and the broadcast will be retransmitted.
          worker_corrupt_rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Message msg;
        try {
          msg = decode(*payload);
        } catch (const std::exception&) {
          worker_corrupt_rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (std::holds_alternative<ShutdownMsg>(msg)) return;
        const auto& bc = std::get<BroadcastMsg>(msg);
        if (bc.global_params.size() != dim_) {
          throw std::runtime_error("worker: broadcast size mismatch");
        }
        if (bc.codec_id != codec_id || bc.codec_version != codec_version) {
          throw std::runtime_error("worker: codec negotiation mismatch");
        }
        if (bc.seq == last_seq && !cached_reply.empty()) {
          // Already-processed round, seen again: either the master did not
          // get our reply and retransmitted, or the network duplicated the
          // frame.  Re-send the cached reply instead of retraining — this
          // is what makes retransmission idempotent.
          worker_redundant.fetch_add(1, std::memory_order_relaxed);
          worker_retransmits.fetch_add(1, std::memory_order_relaxed);
          uplink_meter.record_retransmit(cached_reply.size());
          uplink.send(cached_reply);
          continue;
        }
        if (bc.seq < last_seq) {  // stale duplicate of an older round
          worker_redundant.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (crash_at && bc.iteration >= *crash_at) return;  // crash-stop
        if (straggle_s > 0.0) {
          std::this_thread::sleep_for(seconds_to_duration(straggle_s));
        }

        client.set_params(bc.global_params);
        client.train_local(local_epochs, batch_size, bc.learning_rate);
        client.get_params(update);
        for (std::size_t i = 0; i < dim_; ++i) {
          update[i] -= bc.global_params[i];
        }

        core::FilterContext ctx;
        ctx.global_model = bc.global_params;
        ctx.estimated_global_update = bc.global_update;
        ctx.iteration = bc.iteration;
        const core::FilterDecision decision = filter_->decide(update, ctx);

        Message reply;
        if (decision.upload) {
          if (use_codec) {
            CodecUploadMsg up;
            up.seq = bc.seq;
            up.iteration = bc.iteration;
            up.client_id = static_cast<std::uint32_t>(k);
            up.score = decision.score;
            up.codec_id = codec_id;
            up.codec_version = codec_version;
            up.payload = codecs[k]->encode(update).payload;
            reply = std::move(up);
          } else {
            UpdateUploadMsg up;
            up.seq = bc.seq;
            up.iteration = bc.iteration;
            up.client_id = static_cast<std::uint32_t>(k);
            up.update = update;
            up.score = decision.score;
            reply = std::move(up);
          }
          upload_frames.fetch_add(1, std::memory_order_relaxed);
        } else {
          EliminationMsg el;
          el.seq = bc.seq;
          el.iteration = bc.iteration;
          el.client_id = static_cast<std::uint32_t>(k);
          el.score = decision.score;
          reply = el;
          elimination_frames.fetch_add(1, std::memory_order_relaxed);
        }
        auto bytes = encode(reply);
        seal_frame(bytes);
        uplink_meter.record(bytes.size());
        cached_reply = bytes;
        last_seq = bc.seq;
        uplink.send(std::move(bytes));
      }
    });
  }

  // --- Master loop (Algorithm 1 GlobalOptimization over the wire) ---
  const RecoveryOptions& rec_opt = options_.recovery;
  const bool bounded = rec_opt.round_timeout_s > 0.0;
  // Backoff-jitter stream: salted far outside the link_rng namespace
  // (worker*2 + dir) so it never collides with a fault stream.
  util::Rng jitter_rng = util::Rng(options_.fault.seed).split(0x6a177e5ULL);
  std::vector<FaultyChannel> downlinks;
  downlinks.reserve(num_workers);
  for (std::size_t k = 0; k < num_workers; ++k) {
    downlinks.emplace_back(endpoints[k].inbox, options_.fault.downlink_for(k),
                           options_.fault.link_rng(k, /*is_uplink=*/false),
                           &fault_stats);
  }
  std::vector<char> alive(num_workers, 1);
  std::vector<std::uint32_t> seq(num_workers, 0);
  std::size_t live_count = num_workers;
  std::uint64_t master_redundant = 0;
  std::uint64_t master_corrupt = 0;
  std::uint64_t master_retransmits = 0;

  const auto declare_dead = [&](std::size_t k) {
    alive[k] = 0;
    --live_count;
    result.faults.crashed_workers.push_back(static_cast<std::uint32_t>(k));
  };

  // Serializes every piece of trainer state the master owns or — because
  // the round is quiesced — may safely read from the workers.
  const auto snapshot = [&](std::size_t t) {
    fl::TrainerCheckpoint ck;
    ck.iteration = t;
    ck.global_params = global;
    const std::span<const float> est = estimator.estimate();
    ck.estimator_estimate.assign(est.begin(), est.end());
    ck.estimator_observed = estimator.has_observation();
    ck.prev_global_update = prev_global_update;
    ck.cumulative_rounds = cumulative_rounds;
    ck.uploaded_bytes = result.sim.uploaded_bytes;
    ck.history = result.sim.history;
    ck.eliminations_per_client.assign(
        result.sim.eliminations_per_client.begin(),
        result.sim.eliminations_per_client.end());
    ck.uploads_per_client.assign(result.sim.uploads_per_client.begin(),
                                 result.sim.uploads_per_client.end());
    ck.validation = validator.report();
    ck.client_state.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      ck.client_state.push_back(clients_[k]->mutable_state());
    }
    // Quiesced (see the checkpoint call site): every worker replied this
    // round, so reading its codec is ordered after its last encode.
    ck.compressor_state.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      ck.compressor_state.push_back(use_codec ? codecs[k]->mutable_state()
                                              : std::vector<std::uint64_t>{});
    }
    fl::ClusterMeterState& m = ck.meters;
    m.uplink_bytes = uplink_meter.total_bytes();
    m.uplink_messages = uplink_meter.messages();
    m.uplink_retransmitted = uplink_meter.retransmitted_bytes();
    m.downlink_bytes = downlink_meter.total_bytes();
    m.downlink_messages = downlink_meter.messages();
    m.downlink_retransmitted = downlink_meter.retransmitted_bytes();
    m.upload_messages = upload_frames.load(std::memory_order_relaxed);
    m.elimination_messages =
        elimination_frames.load(std::memory_order_relaxed);
    m.simulated_transfer_seconds = result.simulated_transfer_seconds;
    m.footprint.reserve(result.footprint.size());
    for (const auto& p : result.footprint) {
      m.footprint.push_back({p.iteration, p.accuracy, p.uplink_bytes});
    }
    return ck;
  };

  for (std::size_t t = start_t; t <= options_.fl.max_iterations; ++t) {
    // Active = alive and not quarantined: the master no longer broadcasts
    // to quarantined workers, so they stop training (and stop costing
    // downlink bytes) the moment they are tripped.
    std::size_t active_count = 0;
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (alive[k] && !validator.quarantined(k)) ++active_count;
    }
    if (active_count == 0) break;

    const auto lr = static_cast<float>(options_.fl.learning_rate.at(t));
    BroadcastMsg bc;
    bc.iteration = t;
    bc.learning_rate = lr;
    bc.codec_id = codec_id;
    bc.codec_version = codec_version;
    bc.global_params = global;
    bc.global_update.assign(estimator.estimate().begin(),
                            estimator.estimate().end());

    std::vector<char> pending(num_workers, 0);
    std::size_t pending_count = 0;
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (alive[k] && !validator.quarantined(k)) {
        pending[k] = 1;
        ++pending_count;
        ++seq[k];  // fresh sequence number; retransmissions reuse it
      }
    }
    const std::vector<char> invited = pending;
    const auto quorum_needed = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(
            std::ceil(rec_opt.quorum * static_cast<double>(active_count))));

    std::vector<char> answered(num_workers, 0);
    std::vector<double> scores(num_workers, 0.0);
    std::vector<ReceivedUpload> uploads;
    std::size_t accepted = 0;
    double round_transfer = 0.0;
    double max_upload_transfer = 0.0;
    bool round_timed_out = false;
    bool k_committed = false;
    std::size_t round_missing = 0;

    int attempt = 0;
    for (;;) {
      // (Re)transmit this round's broadcast to every unanswered worker.
      for (std::size_t k = 0; k < num_workers; ++k) {
        if (!pending[k]) continue;
        bc.seq = seq[k];
        auto frame = encode(Message(bc));
        seal_frame(frame);
        if (attempt == 0) {
          downlink_meter.record(frame.size());
        } else {
          downlink_meter.record_retransmit(frame.size());
          ++master_retransmits;
        }
        round_transfer = std::max(
            round_transfer, options_.downlink.transfer_seconds(frame.size()));
        downlinks[k].send(std::move(frame));
      }

      // Gather replies until every pending worker answered or — in the
      // bounded regime — the attempt deadline expires.
      double deadline_scale = std::pow(rec_opt.backoff, attempt);
      if (rec_opt.backoff_jitter > 0.0) {
        deadline_scale *= 1.0 + rec_opt.backoff_jitter * jitter_rng.uniform();
      }
      const auto deadline =
          Clock::now() +
          seconds_to_duration(rec_opt.round_timeout_s * deadline_scale);
      while (pending_count > 0) {
        std::optional<std::vector<std::byte>> reply_frame;
        if (bounded) {
          const auto now = Clock::now();
          if (now >= deadline) break;
          reply_frame = master_inbox.recv_for(deadline - now);
          if (!reply_frame) break;  // deadline expired
        } else {
          reply_frame = master_inbox.recv();
          if (!reply_frame) {
            throw std::runtime_error("FlCluster: master inbox closed early");
          }
        }
        max_upload_transfer =
            std::max(max_upload_transfer,
                     options_.uplink.transfer_seconds(reply_frame->size()));
        const auto payload = try_open_frame(*reply_frame);
        if (!payload) {
          ++master_corrupt;
          continue;
        }
        Message reply;
        try {
          reply = decode(*payload);
        } catch (const std::exception&) {
          ++master_corrupt;
          continue;
        }
        ReplyView view;
        if (const auto* up = std::get_if<UpdateUploadMsg>(&reply)) {
          view = {up->iteration, up->client_id, up->score, up, nullptr};
        } else if (const auto* cu = std::get_if<CodecUploadMsg>(&reply)) {
          view = {cu->iteration, cu->client_id, cu->score, nullptr, cu};
        } else if (const auto* el = std::get_if<EliminationMsg>(&reply)) {
          view = {el->iteration, el->client_id, el->score, nullptr, nullptr};
        } else {
          throw std::runtime_error("FlCluster: unexpected frame from worker");
        }
        if (view.client_id >= num_workers || view.iteration > t) {
          throw std::runtime_error("FlCluster: malformed reply frame");
        }
        if (view.codec_upload &&
            (!use_codec || view.codec_upload->codec_id != codec_id ||
             view.codec_upload->codec_version != codec_version)) {
          throw std::runtime_error(
              "FlCluster: reply codec does not match the negotiated one");
        }
        if (view.upload && use_codec) {
          throw std::runtime_error(
              "FlCluster: dense upload on a codec-negotiated round");
        }
        if (view.iteration < t || !pending[view.client_id]) {
          // A late reply to an already-committed round, or a duplicate of
          // one accepted this round — idempotently discarded (and, for
          // codec frames, discarded *before* any decode touches state).
          ++master_redundant;
          continue;
        }
        if (view.upload && view.upload->update.size() != dim_) {
          throw std::runtime_error("FlCluster: bad update size");
        }
        const std::size_t k = view.client_id;
        pending[k] = 0;
        --pending_count;
        answered[k] = 1;
        last_acked[k] = t;
        ++accepted;
        scores[k] = view.score;
        if (view.upload) {
          uploads.push_back({view.client_id, view.upload->update,
                             static_cast<std::uint64_t>(reply_frame->size())});
        } else if (view.codec_upload) {
          // The frame CRC already vouched for transit integrity; a payload
          // the codec rejects here is a protocol bug, so decode errors
          // propagate loudly instead of being counted as corruption.
          std::vector<float> decoded =
              codecs[k]->decode(view.codec_upload->payload);
          if (decoded.size() != dim_) {
            throw std::runtime_error("FlCluster: bad decoded update size");
          }
          uploads.push_back({view.client_id, std::move(decoded),
                             static_cast<std::uint64_t>(reply_frame->size())});
        } else {
          ++result.sim.eliminations_per_client[k];
        }
        if (rec_opt.first_k_reports > 0 &&
            accepted >= rec_opt.first_k_reports && pending_count > 0) {
          // Over-selection: the Kth reply commits the round right now.
          // The stragglers' late replies carry this round's iteration and
          // are discarded idempotently by the `view.iteration < t` check
          // once the next round is underway.
          k_committed = true;
          break;
        }
      }
      if (k_committed) {
        round_missing = pending_count;
        ++result.faults.over_select_commits;
        break;
      }
      if (pending_count == 0) break;  // every live worker answered

      round_timed_out = true;
      if (accepted >= quorum_needed) {
        // Quorum reached: commit now; the unanswered workers are late for
        // this round and will re-sync on the next broadcast.
        round_missing = pending_count;
        break;
      }
      if (attempt + 1 >= rec_opt.max_attempts) {
        // Retransmit budget exhausted below quorum: the silent workers are
        // declared crashed (crash-stop suspicion) and the round commits
        // with whatever answered.
        round_missing = pending_count;
        for (std::size_t k = 0; k < num_workers; ++k) {
          if (pending[k]) {
            pending[k] = 0;
            declare_dead(k);
          }
        }
        pending_count = 0;
        break;
      }
      ++attempt;
    }

    if (round_timed_out) ++result.faults.timed_out_rounds;
    if (round_missing > 0 && !k_committed) ++result.faults.quorum_rounds;
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (validator.quarantined(k)) continue;  // legitimately excluded
      const std::uint64_t staleness = t - last_acked[k];
      result.faults.max_staleness_per_client[k] =
          std::max(result.faults.max_staleness_per_client[k], staleness);
    }
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (!invited[k]) continue;
      if (answered[k]) {
        stale_misses[k] = 0;
      } else if (!k_committed) {
        ++stale_misses[k];
      }
      // Losing an over-selected race leaves the counter untouched: only a
      // deadline the worker actually blew is evidence towards a crash.
    }
    if (rec_opt.suspect_after_stale_rounds > 0) {
      for (std::size_t k = 0; k < num_workers; ++k) {
        if (alive[k] && !validator.quarantined(k) &&
            stale_misses[k] >= static_cast<std::uint64_t>(
                                   rec_opt.suspect_after_stale_rounds)) {
          declare_dead(k);
        }
      }
    }
    result.simulated_transfer_seconds += round_transfer + max_upload_transfer;

    fl::IterationRecord rec;
    rec.iteration = t;
    rec.uploads = uploads.size();
    rec.participants = accepted;
    cumulative_rounds += uploads.size();
    rec.cumulative_rounds = cumulative_rounds;
    double score_sum = 0.0;
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (answered[k]) score_sum += scores[k];  // fixed id order: see note
    }
    // Scores are summed in client-id order (not arrival order) so the mean
    // is bit-reproducible across runs regardless of reply interleaving.
    rec.mean_score =
        accepted > 0 ? score_sum / static_cast<double>(accepted) : 0.0;

    for (const auto& up : uploads) {
      ++result.sim.uploads_per_client[up.id];
    }
    if (!uploads.empty()) {
      std::sort(uploads.begin(), uploads.end(),
                [](const auto& a, const auto& b) { return a.id < b.id; });
      // Server-side validation of the received updates: non-finite or
      // norm-exploded uploads must never touch the model, whatever the
      // aggregation rule.
      std::vector<std::size_t> upload_ids;
      std::vector<std::span<const float>> received;
      upload_ids.reserve(uploads.size());
      received.reserve(uploads.size());
      for (const auto& up : uploads) {
        upload_ids.push_back(up.id);
        received.emplace_back(up.update);
      }
      // Sharded path: the screening scalars (finiteness, exact L2 norm) are
      // computed concurrently on the shard workers — upload i on shard
      // (i mod S) — and collected in index order, so the validator sees
      // exactly the sequence the serial scan produces.
      std::vector<fl::UpdateValidator::UploadScalars> pre;
      if (shard_agg) {
        shard_agg->begin_batch(received.size());
        for (std::size_t i = 0; i < received.size(); ++i) {
          shard_agg->submit_update(i, received[i], nullptr,
                                   uploads[i].frame_bytes);
          shard_meters[i % shard_meters.size()].record(
              static_cast<std::size_t>(uploads[i].frame_bytes));
        }
        std::vector<fl::ShardedAggregator::UploadResult> shard_results =
            shard_agg->collect(received.size());
        pre.reserve(shard_results.size());
        for (fl::ShardedAggregator::UploadResult& r : shard_results) {
          if (r.error) std::rethrow_exception(r.error);
          pre.push_back(r.scalars);
        }
      }
      const std::vector<fl::Verdict> verdicts =
          shard_agg ? validator.screen_round(upload_ids, pre)
                    : validator.screen_round(upload_ids, received);
      std::vector<std::span<const float>> views;
      std::vector<std::size_t> accepted_ids;
      views.reserve(uploads.size());
      for (std::size_t i = 0; i < uploads.size(); ++i) {
        if (verdicts[i] == fl::Verdict::kAccept) {
          views.push_back(received[i]);
          accepted_ids.push_back(upload_ids[i]);
        } else {
          ++rec.rejected;
        }
      }

      if (!views.empty()) {
        std::vector<float> global_update(dim_, 0.0f);
        std::vector<float> weights;
        if (options_.fl.aggregation == fl::Aggregation::kSampleWeighted) {
          double total_weight = 0.0;
          for (std::size_t id : accepted_ids) {
            total_weight += static_cast<double>(local_samples[id]);
          }
          weights.reserve(accepted_ids.size());
          for (std::size_t id : accepted_ids) {
            weights.push_back(static_cast<float>(
                static_cast<double>(local_samples[id]) / total_weight));
          }
        }
        if (shard_agg) {
          // The clipped rule's cross-upload plan reuses the scalar-pass
          // norms (same serial accumulation — bit-identical to recomputing).
          std::vector<double> norms;
          if (options_.fl.aggregation == fl::Aggregation::kNormClippedMean) {
            norms.reserve(views.size());
            for (std::size_t i = 0; i < uploads.size(); ++i) {
              if (verdicts[i] == fl::Verdict::kAccept) {
                norms.push_back(pre[i].norm);
              }
            }
          }
          shard_agg->aggregate(options_.fl.aggregation, views, weights,
                               options_.fl.robust_aggregation, norms,
                               global_update);
        } else {
          fl::aggregate_updates(options_.fl.aggregation, views, weights,
                                options_.fl.robust_aggregation, global_update);
        }
        tensor::add(global, global_update, global);
        if (!prev_global_update.empty()) {
          rec.delta_update = core::normalized_update_difference(
              prev_global_update, global_update);
        }
        prev_global_update = global_update;
        estimator.observe(global_update);
      }
    }
    // Byte-valued Φ: in cluster runs "uploaded bytes" is what actually
    // crossed the uplink — update frames, elimination frames, retransmits.
    result.sim.uploaded_bytes = uplink_meter.total_bytes();
    rec.cumulative_upload_bytes = result.sim.uploaded_bytes;

    const bool last = t == options_.fl.max_iterations;
    bool stop_at_target = false;
    if (options_.fl.eval_every > 0 &&
        (t % options_.fl.eval_every == 0 || last)) {
      const nn::EvalResult eval = evaluator_(global);
      rec.accuracy = eval.accuracy;
      rec.loss = eval.loss;
      result.footprint.push_back(
          {t, eval.accuracy, uplink_meter.total_bytes()});
      stop_at_target = options_.fl.target_accuracy > 0.0 &&
                       std::isfinite(eval.loss) &&
                       eval.accuracy >= options_.fl.target_accuracy;
    }
    result.sim.history.push_back(rec);

    // Checkpoint only when the round is quiesced: every worker this round
    // answered (each reply happens-before this point via the channel), and
    // no worker was ever declared crashed (a suspected worker's thread may
    // still be running, so its client state cannot be read safely).
    const bool quiesced =
        round_missing == 0 && result.faults.crashed_workers.empty();
    if (options_.fl.checkpoint_every > 0 &&
        !options_.fl.checkpoint_path.empty() && quiesced &&
        (t % options_.fl.checkpoint_every == 0 || last || stop_at_target)) {
      fl::save_checkpoint_file(options_.fl.checkpoint_path, snapshot(t));
    }
    if (stop_at_target) break;
  }

  // Drain stray frames (late replies, injected duplicates) so the
  // receiver-side accounting covers every frame that was delivered — this
  // is what keeps the counters reproducible for a fixed seed.
  while (auto stray = master_inbox.recv_for(Clock::duration::zero())) {
    if (try_open_frame(*stray)) {
      ++master_redundant;
    } else {
      ++master_corrupt;
    }
  }

  // --- Shutdown (management plane: bypasses fault injection so workers
  // always terminate) ---
  auto shutdown = encode(Message(ShutdownMsg{}));
  seal_frame(shutdown);
  for (auto& ep : endpoints) ep.inbox.send(shutdown);
  for (auto& w : workers) w.join();

  result.sim.total_rounds = cumulative_rounds;
  result.sim.final_params = std::move(global);
  result.sim.validation = validator.report();
  for (auto it = result.sim.history.rbegin();
       it != result.sim.history.rend(); ++it) {
    if (!std::isnan(it->accuracy)) {
      result.sim.final_accuracy = it->accuracy;
      break;
    }
  }
  result.uplink_bytes = uplink_meter.total_bytes();
  result.downlink_bytes = downlink_meter.total_bytes();
  result.uplink_retransmitted_bytes = uplink_meter.retransmitted_bytes();
  result.downlink_retransmitted_bytes = downlink_meter.retransmitted_bytes();
  result.upload_messages = upload_frames.load();
  result.elimination_messages = elimination_frames.load();
  if (shard_agg) {
    const std::vector<fl::ShardStats> sstats = shard_agg->stats();
    result.shard_uplink_bytes.reserve(shard_meters.size());
    result.shard_uploads.reserve(shard_meters.size());
    for (std::size_t s = 0; s < shard_meters.size(); ++s) {
      result.shard_uplink_bytes.push_back(shard_meters[s].total_bytes());
      result.shard_uploads.push_back(sstats[s].uploads);
    }
  }
  result.faults.frames_dropped = fault_stats.frames_dropped.load();
  result.faults.frames_corrupted = fault_stats.frames_corrupted.load();
  result.faults.frames_duplicated = fault_stats.frames_duplicated.load();
  result.faults.corrupt_rejected =
      master_corrupt + worker_corrupt_rejected.load();
  result.faults.redundant_frames = master_redundant + worker_redundant.load();
  result.faults.retransmits = master_retransmits + worker_retransmits.load();
  return result;
}

}  // namespace cmfl::net

#include "net/wire.h"

#include "util/crc32.h"

namespace cmfl::net {

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return util::crc32(data);
}

void seal_frame(std::vector<std::byte>& frame) {
  const std::uint32_t crc = crc32(frame);
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::byte>((crc >> shift) & 0xFFu));
  }
}

std::optional<std::span<const std::byte>> try_open_frame(
    std::span<const std::byte> frame) noexcept {
  if (frame.size() < 4) return std::nullopt;
  const auto payload = frame.first(frame.size() - 4);
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<std::uint8_t>(frame[payload.size() +
                                             static_cast<std::size_t>(i)]);
  }
  if (crc32(payload) != stored) return std::nullopt;
  return payload;
}

std::span<const std::byte> open_frame(std::span<const std::byte> frame) {
  if (frame.size() < 4) {
    throw std::runtime_error("open_frame: frame shorter than its CRC");
  }
  if (const auto payload = try_open_frame(frame)) return *payload;
  throw std::runtime_error("open_frame: CRC mismatch (corrupted frame)");
}

}  // namespace cmfl::net

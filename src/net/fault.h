// Deterministic fault injection for the cluster emulation.
//
// The paper's EC2 deployment (§V-C) runs on a reliable LAN, but the setting
// CMFL targets is edge clients on flaky uplinks where drops, corruption,
// stragglers, and mid-round crashes are routine.  A FaultPlan describes a
// fault scenario once, seeded so every run of the same plan injects the
// exact same faults; FaultyChannel applies the link faults *byte-level* on
// the wire, so corrupted frames are caught by the real CRC path
// (try_open_frame) rather than simulated abstractly.
//
// Determinism contract: each (worker, direction) link owns an independent
// util::Rng derived from the plan seed, advanced once per send on that
// link.  Because every link has exactly one sender thread, the injected
// fault sequence depends only on the plan and the sequence of sends — not
// on thread scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/link.h"
#include "util/rng.h"

namespace cmfl::net {

/// Per-frame fault probabilities for one direction of one link.
struct LinkFaults {
  double drop_prob = 0.0;       // frame vanishes in transit
  double corrupt_prob = 0.0;    // one random bit flips (CRC must reject)
  double duplicate_prob = 0.0;  // frame is delivered twice

  bool any() const noexcept {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || duplicate_prob > 0.0;
  }

  /// Throws std::invalid_argument if any probability is outside [0, 1].
  void validate(const char* what) const;
};

/// One scheduled leader kill for the replicated control plane: whichever
/// replica leads round `round` crashes (stops processing, silently) once it
/// has accepted `after_replies` worker replies for that round —
/// `after_replies == 0` kills it right after broadcasting.  Each entry
/// fires at most once per run, so the replacement leader that re-drives the
/// same round is not killed by the same entry (schedule a second entry for
/// the same round to kill successive leaders).
struct LeaderCrash {
  std::uint64_t round = 0;
  std::uint32_t after_replies = 0;
};

/// A control-plane partition window for one replica: while any *other*
/// replica's working round lies in [from_round, to_round], it discards all
/// Raft frames to and from `replica`.  The partitioned replica misses log
/// entries (and, once the survivors compact, can only be caught back up by
/// a snapshot transfer); the 2-of-3 quorum keeps training untouched.
struct ReplicaPartition {
  std::uint64_t from_round = 0;
  std::uint64_t to_round = 0;
};

/// What a StorageFaultInjector does to a Raft WAL between a crash and the
/// restart that recovers from it.
enum class StorageFault : std::uint8_t {
  kNone = 0,
  kTornFinalWrite,    // cut the file inside the last record's bytes
  kBitFlip,           // flip one seeded bit inside a seeded record
  kTruncate,          // cut the file at a seeded arbitrary byte offset
  kFsyncDroppedTail,  // drop 1..3 whole records from the end (lost fsync)
};

/// One scheduled crash-*restart* for the replicated control plane: the
/// leader of round `round` crashes after accepting `after_replies` worker
/// replies (like LeaderCrash), then — `restart_after_ms` of wall time later
/// — the same replica restarts, recovers from its durable storage, and
/// rejoins as a follower.  `wal_fault` optionally damages the WAL while the
/// process is down, exercising the recovery path's corruption handling.
/// Requires ReplicationOptions::storage_dir.
struct ReplicaRestart {
  std::uint64_t round = 0;
  std::uint32_t after_replies = 0;
  double restart_after_ms = 50.0;
  StorageFault wal_fault = StorageFault::kNone;
};

/// Deterministically damages WAL/snapshot files on disk through their real
/// byte layout — the durability twin of FaultyChannel's bit-level link
/// faults.  Seeded: the same (seed, fault, file) triple always damages the
/// same bytes.
class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// What apply() did, for reports and test assertions.
  struct Action {
    StorageFault fault = StorageFault::kNone;
    std::uint64_t offset = 0;    // byte offset damaged (flip/cut point)
    unsigned bit = 0;            // kBitFlip only
    std::uint64_t old_size = 0;  // file size before the damage
    std::uint64_t new_size = 0;  // file size after (== old for kBitFlip)
  };

  /// Applies `fault` to the record log at `path`.  Returns std::nullopt
  /// when the file is missing or too small to damage meaningfully (e.g. no
  /// records yet); throws std::runtime_error on I/O failure.
  std::optional<Action> apply(StorageFault fault, const std::string& path);

 private:
  util::Rng rng_;
};

/// A complete seeded fault scenario for one cluster run.
struct FaultPlan {
  std::uint64_t seed = 1;

  LinkFaults downlink;  // default master → worker faults (every worker)
  LinkFaults uplink;    // default worker → master faults (every worker)
  /// Per-worker overrides; workers not listed use the defaults above.
  std::map<std::size_t, LinkFaults> downlink_overrides;
  std::map<std::size_t, LinkFaults> uplink_overrides;

  /// Fixed per-worker compute delay in seconds (stragglers): the worker
  /// sleeps this long before answering each broadcast.  A delay beyond the
  /// round deadline makes the worker persistently late.
  std::map<std::size_t, double> straggler_delay_s;

  /// Crash-stop schedule: worker id → iteration at which it dies silently
  /// (before training that iteration; it never answers again).
  std::map<std::size_t, std::uint64_t> crash_at_iteration;

  /// Replicated control plane only (ClusterOptions::replication): seeded
  /// leader-kill, crash-restart, and partition schedules.  Ignored by the
  /// single-master path.
  std::vector<LeaderCrash> leader_crash;
  std::vector<ReplicaRestart> replica_restart;
  std::map<std::uint32_t, ReplicaPartition> replica_partition;

  /// True when any link fault, straggler, or crash is configured.
  bool enabled() const noexcept;

  LinkFaults downlink_for(std::size_t worker) const;
  LinkFaults uplink_for(std::size_t worker) const;
  double straggler_delay_for(std::size_t worker) const noexcept;
  std::optional<std::uint64_t> crash_iteration_for(
      std::size_t worker) const noexcept;

  /// Independent deterministic stream for one (worker, direction) link.
  util::Rng link_rng(std::size_t worker, bool is_uplink) const noexcept;

  /// Replicated mode: each (replica, worker, direction) link is its own
  /// single-sender channel, so it owns an independent stream too.  Streams
  /// are disjoint from link_rng's by construction.
  util::Rng replica_link_rng(std::uint32_t replica, std::size_t worker,
                             bool is_uplink) const noexcept;

  /// Throws std::invalid_argument on malformed probabilities.
  void validate(std::size_t num_workers) const;
};

/// Injection counters, shared across all links of a run (relaxed atomics:
/// sums are order-independent, so totals stay deterministic).
struct FaultStats {
  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> frames_corrupted{0};
  std::atomic<std::uint64_t> frames_duplicated{0};
};

/// Applies LinkFaults to every frame pushed through an underlying Channel.
/// Owned by the link's single sender thread; not thread-safe by itself.
class FaultyChannel {
 public:
  /// `inner` and `stats` must outlive the FaultyChannel.
  FaultyChannel(Channel& inner, const LinkFaults& faults, util::Rng rng,
                FaultStats* stats) noexcept
      : inner_(&inner), faults_(faults), rng_(rng), stats_(stats) {}

  /// Sends `frame` through the fault model.  Returns false only if the
  /// underlying channel is closed — a dropped frame still returns true,
  /// because a real sender cannot observe an in-network loss.
  bool send(std::vector<std::byte> frame);

 private:
  Channel* inner_;
  LinkFaults faults_;
  util::Rng rng_;
  FaultStats* stats_;
};

}  // namespace cmfl::net

#include "net/message.h"

#include <stdexcept>

namespace cmfl::net {

FrameType frame_type(const Message& msg) {
  if (std::holds_alternative<BroadcastMsg>(msg)) return FrameType::kBroadcast;
  if (std::holds_alternative<UpdateUploadMsg>(msg)) {
    return FrameType::kUpdateUpload;
  }
  if (std::holds_alternative<EliminationMsg>(msg)) {
    return FrameType::kElimination;
  }
  if (std::holds_alternative<RedirectMsg>(msg)) return FrameType::kRedirect;
  if (std::holds_alternative<CodecUploadMsg>(msg)) {
    return FrameType::kCodecUpload;
  }
  return FrameType::kShutdown;
}

std::vector<std::byte> encode(const Message& msg) {
  WireWriter w;
  if (const auto* b = std::get_if<BroadcastMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kBroadcast));
    w.u32(b->seq);
    w.u64(b->iteration);
    w.u32(b->leader_id);
    w.f32(b->learning_rate);
    w.u8(b->codec_id);
    w.u8(b->codec_version);
    w.floats(b->global_params);
    w.floats(b->global_update);
  } else if (const auto* c = std::get_if<CodecUploadMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kCodecUpload));
    w.u32(c->seq);
    w.u64(c->iteration);
    w.u32(c->client_id);
    w.f64(c->score);
    w.u8(c->codec_id);
    w.u8(c->codec_version);
    w.bytes(c->payload);
  } else if (const auto* u = std::get_if<UpdateUploadMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kUpdateUpload));
    w.u32(u->seq);
    w.u64(u->iteration);
    w.u32(u->client_id);
    w.f64(u->score);
    w.floats(u->update);
  } else if (const auto* e = std::get_if<EliminationMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kElimination));
    w.u32(e->seq);
    w.u64(e->iteration);
    w.u32(e->client_id);
    w.f64(e->score);
  } else if (const auto* rd = std::get_if<RedirectMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kRedirect));
    w.u64(rd->iteration);
    w.u32(rd->leader_id);
  } else {
    w.u8(static_cast<std::uint8_t>(FrameType::kShutdown));
  }
  return w.take();
}

Message decode(std::span<const std::byte> frame) {
  WireReader r(frame);
  const auto type = static_cast<FrameType>(r.u8());
  switch (type) {
    case FrameType::kBroadcast: {
      BroadcastMsg b;
      b.seq = r.u32();
      b.iteration = r.u64();
      b.leader_id = r.u32();
      b.learning_rate = r.f32();
      b.codec_id = r.u8();
      b.codec_version = r.u8();
      b.global_params = r.floats();
      b.global_update = r.floats();
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return b;
    }
    case FrameType::kUpdateUpload: {
      UpdateUploadMsg u;
      u.seq = r.u32();
      u.iteration = r.u64();
      u.client_id = r.u32();
      u.score = r.f64();
      u.update = r.floats();
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return u;
    }
    case FrameType::kElimination: {
      EliminationMsg e;
      e.seq = r.u32();
      e.iteration = r.u64();
      e.client_id = r.u32();
      e.score = r.f64();
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return e;
    }
    case FrameType::kShutdown: {
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return ShutdownMsg{};
    }
    case FrameType::kRedirect: {
      RedirectMsg rd;
      rd.iteration = r.u64();
      rd.leader_id = r.u32();
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return rd;
    }
    case FrameType::kCodecUpload: {
      CodecUploadMsg c;
      c.seq = r.u32();
      c.iteration = r.u64();
      c.client_id = r.u32();
      c.score = r.f64();
      c.codec_id = r.u8();
      c.codec_version = r.u8();
      c.payload = r.bytes();
      if (!r.done()) throw std::runtime_error("decode: trailing bytes");
      return c;
    }
  }
  throw std::runtime_error("decode: unknown frame type " +
                           std::to_string(static_cast<int>(type)));
}

}  // namespace cmfl::net

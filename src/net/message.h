// FL protocol frames for the cluster emulation.
//
// Four frame types implement the paper's master–slave protocol (§V-C):
//   * Broadcast    master → worker: x_{t-1} and ū_{t-1}.
//   * UpdateUpload worker → master: the full local update (the expensive
//                  message whose count/bytes the paper minimizes).
//   * Elimination  worker → master: "status information ... indicating the
//                  completion of its local training and the elimination of
//                  its update" — a tiny fixed-size frame.
//   * Shutdown     master → worker: terminate the worker loop.
//
// Broadcast and reply frames carry a per-link sequence number `seq`: the
// master assigns a fresh seq to each new round's broadcast and *reuses* it
// on retransmissions, and a worker's reply mirrors the broadcast seq it
// answers.  Receivers discard frames whose seq they have already processed,
// which makes retransmitted and network-duplicated frames idempotent (see
// DESIGN.md §9).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/wire.h"

namespace cmfl::net {

enum class FrameType : std::uint8_t {
  kBroadcast = 1,
  kUpdateUpload = 2,
  kElimination = 3,
  kShutdown = 4,
  kRedirect = 5,
  kCodecUpload = 6,
};

struct BroadcastMsg {
  std::uint32_t seq = 0;  // per-link transmission id (reused on retransmit)
  std::uint64_t iteration = 0;
  /// Replicated control plane: the master replica that sent this broadcast
  /// and expects the reply.  Always 0 in single-master runs.
  std::uint32_t leader_id = 0;
  std::vector<float> global_params;
  std::vector<float> global_update;  // ū_{t-1} feedback
  float learning_rate = 0.0f;
  /// Codec negotiation, announced at round start: workers must reply with
  /// CodecUpload frames of exactly this codec id/version (or the classic
  /// dense UpdateUpload when codec_id is kCodecDense = 0).
  std::uint8_t codec_id = 0;
  std::uint8_t codec_version = 1;
};

struct UpdateUploadMsg {
  std::uint32_t seq = 0;  // mirrors the broadcast seq being answered
  std::uint64_t iteration = 0;
  std::uint32_t client_id = 0;
  std::vector<float> update;
  double score = 0.0;  // the filter metric, for server-side tracing
};

/// worker → master: an update encoded by a non-dense codec.  The payload is
/// opaque at the frame layer — the master decodes it with the negotiated
/// codec — and rides inside the same CRC-sealed frame as every other
/// message, so corruption is caught before any codec decode runs.
struct CodecUploadMsg {
  std::uint32_t seq = 0;  // mirrors the broadcast seq being answered
  std::uint64_t iteration = 0;
  std::uint32_t client_id = 0;
  double score = 0.0;  // the filter metric, for server-side tracing
  std::uint8_t codec_id = 0;
  std::uint8_t codec_version = 1;
  std::vector<std::byte> payload;
};

struct EliminationMsg {
  std::uint32_t seq = 0;  // mirrors the broadcast seq being answered
  std::uint64_t iteration = 0;
  std::uint32_t client_id = 0;
  double score = 0.0;
};

struct ShutdownMsg {};

/// Replicated control plane: a replica that receives a worker reply while
/// it is not the leader answers with a redirect so the worker can re-send
/// its cached reply to the replica it believes leads now.
struct RedirectMsg {
  std::uint64_t iteration = 0;
  std::uint32_t leader_id = 0;
};

using Message = std::variant<BroadcastMsg, UpdateUploadMsg, EliminationMsg,
                             ShutdownMsg, RedirectMsg, CodecUploadMsg>;

/// Serializes to a framed byte buffer: [u8 type][payload].
std::vector<std::byte> encode(const Message& msg);

/// Parses a frame; throws std::runtime_error on unknown type or truncation.
Message decode(std::span<const std::byte> frame);

/// Convenience for tests and byte accounting.
FrameType frame_type(const Message& msg);

}  // namespace cmfl::net

// Task-relationship matrix Ω for federated multi-task learning (MOCHA,
// Smith et al. 2017).
//
// MOCHA couples per-task linear models W = [w_1 … w_m] through the
// regularizer tr(W Ω Wᵀ) and alternately optimizes W (distributed, on
// clients) and Ω (centrally).  With the trace constraint, the Ω
// subproblem has the closed form
//     Ω* = (WᵀW)^{1/2} / tr((WᵀW)^{1/2}),
// which needs a symmetric matrix square root — provided here via a cyclic
// Jacobi eigensolver (no external linear-algebra dependency).
#pragma once

#include "tensor/matrix.h"

namespace cmfl::mtl {

/// Jacobi eigendecomposition of a symmetric matrix: a = V diag(λ) Vᵀ.
/// `a` must be square and symmetric within `tol`.  Returns eigenvalues in
/// `values` and eigenvectors as columns of `vectors`.  Throws
/// std::invalid_argument on a non-square or asymmetric input.
void symmetric_eigen(const tensor::Matrix& a, std::vector<double>& values,
                     tensor::Matrix& vectors, double tol = 1e-10,
                     int max_sweeps = 64);

/// Symmetric positive-semidefinite square root via eigendecomposition
/// (negative eigenvalues from numerical noise are clamped to zero).
tensor::Matrix sqrtm_psd(const tensor::Matrix& a);

/// MOCHA's Ω update:  Ω = (WᵀW + ridge·I)^{1/2}, normalized to unit trace.
/// `w` holds tasks as rows (m × d).  The ridge keeps Ω well-defined while W
/// is still near zero early in training.
tensor::Matrix update_omega(const tensor::Matrix& w, double ridge = 1e-3);

/// Identity relationship (independent tasks), trace-normalized — the
/// initial Ω before any structure is learned.
tensor::Matrix identity_omega(std::size_t tasks);

}  // namespace cmfl::mtl

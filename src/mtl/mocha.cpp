#include "mtl/mocha.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/batcher.h"

namespace cmfl::mtl {

TaskSolver::TaskSolver(const data::DenseDataset* dataset,
                       std::vector<std::size_t> shard, double test_fraction,
                       util::Rng rng, TaskLoss loss)
    : dataset_(dataset), rng_(rng), loss_(loss) {
  if (dataset_ == nullptr) {
    throw std::invalid_argument("TaskSolver: null dataset");
  }
  if (shard.empty()) {
    throw std::invalid_argument("TaskSolver: empty shard");
  }
  if (test_fraction < 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("TaskSolver: test_fraction out of [0,1)");
  }
  rng_.shuffle(shard);
  const auto test_count = static_cast<std::size_t>(
      test_fraction * static_cast<double>(shard.size()));
  test_.assign(shard.begin(), shard.begin() + static_cast<std::ptrdiff_t>(test_count));
  train_.assign(shard.begin() + static_cast<std::ptrdiff_t>(test_count), shard.end());
  if (train_.empty()) {
    throw std::invalid_argument("TaskSolver: no training samples after split");
  }
}

double TaskSolver::train_local(tensor::Matrix& w_all, std::size_t task,
                               const tensor::Matrix& omega, double lambda,
                               int epochs, std::size_t batch_size, float lr) {
  if (task >= w_all.rows()) {
    throw std::invalid_argument("TaskSolver::train_local: task out of range");
  }
  if (w_all.cols() != dataset_->features()) {
    throw std::invalid_argument("TaskSolver::train_local: feature mismatch");
  }
  if (omega.rows() != w_all.rows() || omega.cols() != w_all.rows()) {
    throw std::invalid_argument("TaskSolver::train_local: omega shape");
  }
  if (epochs <= 0) {
    throw std::invalid_argument("TaskSolver::train_local: epochs");
  }

  const std::size_t d = w_all.cols();
  auto w = w_all.row(task);
  data::Batcher batcher(train_, batch_size);
  std::vector<float> grad(d);
  double last_epoch_loss = 0.0;

  for (int e = 0; e < epochs; ++e) {
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (const auto& batch : batcher.epoch(rng_)) {
      std::fill(grad.begin(), grad.end(), 0.0f);
      double loss = 0.0;
      for (std::size_t idx : batch) {
        auto x = dataset_->x.row(idx);
        const int y = to_pm1(dataset_->y[idx]);
        double score = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          score += static_cast<double>(w[j]) * static_cast<double>(x[j]);
        }
        if (loss_ == TaskLoss::kHinge) {
          const double margin = 1.0 - y * score;
          if (margin > 0.0) {
            loss += margin;
            const float g = static_cast<float>(-y) /
                            static_cast<float>(batch.size());
            for (std::size_t j = 0; j < d; ++j) grad[j] += g * x[j];
          }
        } else {
          // Logistic: loss = log(1 + exp(-y s)), dloss/ds = -y σ(-y s).
          const double z = -y * score;
          loss += z > 30.0 ? z : std::log1p(std::exp(z));
          const double sig = 1.0 / (1.0 + std::exp(-z));
          const float g = static_cast<float>(-y * sig) /
                          static_cast<float>(batch.size());
          for (std::size_t j = 0; j < d; ++j) grad[j] += g * x[j];
        }
      }
      loss /= static_cast<double>(batch.size());

      // Ω-coupling gradient: λ Σ_j Ω_kj w_j (includes the own-task term).
      const auto lam = static_cast<float>(lambda);
      for (std::size_t other = 0; other < w_all.rows(); ++other) {
        const float coupling = lam * omega.at(task, other);
        if (coupling == 0.0f) continue;
        auto wo = w_all.row(other);
        for (std::size_t j = 0; j < d; ++j) grad[j] += coupling * wo[j];
      }

      for (std::size_t j = 0; j < d; ++j) w[j] -= lr * grad[j];
      loss_sum += loss;
      ++batches;
    }
    last_epoch_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

double TaskSolver::accuracy_on(std::span<const float> w,
                               const std::vector<std::size_t>& indices) const {
  if (w.size() != dataset_->features()) {
    throw std::invalid_argument("TaskSolver: weight size mismatch");
  }
  if (indices.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t idx : indices) {
    auto x = dataset_->x.row(idx);
    double score = 0.0;
    for (std::size_t j = 0; j < w.size(); ++j) {
      score += static_cast<double>(w[j]) * static_cast<double>(x[j]);
    }
    const int pred = score >= 0.0 ? 1 : -1;
    correct += static_cast<std::size_t>(pred == to_pm1(dataset_->y[idx]));
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

double TaskSolver::test_accuracy(std::span<const float> w) const {
  return accuracy_on(w, test_.empty() ? train_ : test_);
}

double TaskSolver::train_accuracy(std::span<const float> w) const {
  return accuracy_on(w, train_);
}

}  // namespace cmfl::mtl

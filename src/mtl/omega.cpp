#include "mtl/omega.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::mtl {

void symmetric_eigen(const tensor::Matrix& a, std::vector<double>& values,
                     tensor::Matrix& vectors, double tol, int max_sweeps) {
  const std::size_t n = a.rows();
  if (n != a.cols()) {
    throw std::invalid_argument("symmetric_eigen: matrix must be square");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a.at(i, j) - a.at(j, i)) > 1e-4) {
        throw std::invalid_argument("symmetric_eigen: matrix not symmetric");
      }
    }
  }

  // Work in double for stability.
  std::vector<std::vector<double>> m(n, std::vector<double>(n));
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    v[i][i] = 1.0;
    for (std::size_t j = 0; j < n; ++j) m[i][j] = a.at(i, j);
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m[i][j] * m[i][j];
    }
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(m[p][q]) < tol / static_cast<double>(n * n)) continue;
        const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m[k][p], mkq = m[k][q];
          m[k][p] = c * mkp - s * mkq;
          m[k][q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m[p][k], mqk = m[q][k];
          m[p][k] = c * mpk - s * mqk;
          m[q][k] = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p], vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  values.resize(n);
  vectors = tensor::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = m[i][i];
    for (std::size_t j = 0; j < n; ++j) {
      vectors.at(i, j) = static_cast<float>(v[i][j]);
    }
  }
}

tensor::Matrix sqrtm_psd(const tensor::Matrix& a) {
  std::vector<double> values;
  tensor::Matrix vectors;
  symmetric_eigen(a, values, vectors);
  const std::size_t n = a.rows();
  // sqrt(A) = V diag(sqrt(max(λ,0))) Vᵀ
  tensor::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double lam = values[k] > 0.0 ? std::sqrt(values[k]) : 0.0;
        acc += static_cast<double>(vectors.at(i, k)) * lam *
               static_cast<double>(vectors.at(j, k));
      }
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

tensor::Matrix update_omega(const tensor::Matrix& w, double ridge) {
  const std::size_t m = w.rows();
  if (m == 0) throw std::invalid_argument("update_omega: empty W");
  // G = W Wᵀ over tasks (m × m gram matrix of task weight vectors).
  tensor::Matrix gram(m, m);
  tensor::matmul_nt(w, w, gram);
  for (std::size_t i = 0; i < m; ++i) {
    gram.at(i, i) += static_cast<float>(ridge);
  }
  tensor::Matrix root = sqrtm_psd(gram);
  double trace = 0.0;
  for (std::size_t i = 0; i < m; ++i) trace += root.at(i, i);
  if (trace <= 0.0) return identity_omega(m);
  const auto inv = static_cast<float>(1.0 / trace);
  for (float& v : root.flat()) v *= inv;
  return root;
}

tensor::Matrix identity_omega(std::size_t tasks) {
  if (tasks == 0) throw std::invalid_argument("identity_omega: zero tasks");
  tensor::Matrix omega(tasks, tasks);
  const float v = 1.0f / static_cast<float>(tasks);
  for (std::size_t i = 0; i < tasks; ++i) omega.at(i, i) = v;
  return omega;
}

}  // namespace cmfl::mtl

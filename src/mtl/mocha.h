// MOCHA-style federated multi-task learning substrate.
//
// Each client k is a *task* with its own linear model w_k over the shared
// feature space; tasks are coupled by the relationship matrix Ω through the
// objective
//   min_W  Σ_k (1/n_k) Σ_i hinge(y_i · w_kᵀ x_i)  +  (λ/2) tr(W Ω Wᵀ).
// Clients optimize their own w_k locally (the Ω-coupling gradient
// λ Σ_j Ω_kj w_j is computable locally because W and Ω are broadcast), and
// the server refreshes Ω from the aggregated W.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "mtl/omega.h"
#include "util/rng.h"

namespace cmfl::mtl {

struct MochaSpec {
  std::size_t tasks = 0;
  std::size_t features = 0;
  double lambda = 0.01;      // strength of the tr(WΩWᵀ) coupling
  std::size_t omega_every = 10;  // server refreshes Ω every this many rounds
  double omega_ridge = 1e-3;
};

/// Labels are {0,1} in the datasets; the margin losses work on {-1,+1}.
inline int to_pm1(int label) noexcept { return label == 1 ? 1 : -1; }

/// Per-task loss.  MOCHA's reference implementation uses the hinge (SVM
/// dual); we default to logistic because its gradient never vanishes at the
/// margin — local updates keep carrying directional information throughout
/// training, which the CMFL relevance measure depends on (DESIGN.md §6).
enum class TaskLoss { kLogistic, kHinge };

/// The task-side solver: runs local SGD steps on one task's weight vector.
class TaskSolver {
 public:
  /// `dataset` must outlive the solver; `shard` is the task's sample
  /// indices split into train/test internally by `test_fraction`.
  TaskSolver(const data::DenseDataset* dataset,
             std::vector<std::size_t> shard, double test_fraction,
             util::Rng rng, TaskLoss loss = TaskLoss::kLogistic);

  std::size_t train_samples() const noexcept { return train_.size(); }
  std::size_t test_samples() const noexcept { return test_.size(); }

  /// Runs `epochs` × (mini-batch hinge SGD + Ω-coupling gradient) on a
  /// working copy of this task's weights.  `w_all` holds every task's
  /// weights (tasks × features) as broadcast; the method mutates only row
  /// `task`.  Returns the final epoch's mean loss.
  double train_local(tensor::Matrix& w_all, std::size_t task,
                     const tensor::Matrix& omega, double lambda, int epochs,
                     std::size_t batch_size, float lr);

  /// Accuracy of weights `w` on this task's held-out samples.
  double test_accuracy(std::span<const float> w) const;
  /// Accuracy on the training shard (used when test shard is empty).
  double train_accuracy(std::span<const float> w) const;

 private:
  double accuracy_on(std::span<const float> w,
                     const std::vector<std::size_t>& indices) const;

  const data::DenseDataset* dataset_;
  std::vector<std::size_t> train_;
  std::vector<std::size_t> test_;
  util::Rng rng_;
  TaskLoss loss_;
};

}  // namespace cmfl::mtl

// Federated multi-task learning loop (MOCHA) with optional CMFL filtering —
// the paper's §V-B experiment.
//
// Differences from the single-model FL loop:
//  * every client is a task with its own weight row in the global matrix W;
//  * aggregation applies each uploaded Δw_k to its own row (no averaging
//    across tasks);
//  * the CMFL feedback signal for task k is the Ω-weighted combination of
//    the previous round's task updates, Σ_j Ω_kj Δw_j — "locally calculating
//    the changing of the global matrix based on the local update and the
//    record of the relationship matrix" (paper §IV-B Extensions);
//  * the server refreshes Ω from W periodically (closed-form MOCHA update).
#pragma once

#include <memory>

#include "core/filter.h"
#include "data/partition.h"
#include "fl/simulation.h"
#include "mtl/mocha.h"

namespace cmfl::mtl {

struct MtlOptions {
  TaskLoss loss = TaskLoss::kLogistic;
  double lambda = 0.01;
  std::size_t omega_every = 10;
  double omega_ridge = 1e-3;
  int local_epochs = 10;          // E = 10 in the paper's MOCHA setup
  std::size_t batch_size = 3;     // B = 3
  float learning_rate = 1e-2f;    // constant, per the paper ("η = 0.0001";
                                  // rescaled for the synthetic features)
  std::size_t max_iterations = 200;
  double target_accuracy = 0.0;
  std::size_t eval_every = 5;
  std::size_t min_uploads = 0;
  double test_fraction = 0.3;
  bool parallel = true;
  std::uint64_t seed = 42;
};

class MtlSimulation {
 public:
  /// `dataset` must outlive the simulation; `partition` assigns samples to
  /// tasks (one client per task).
  MtlSimulation(const data::DenseDataset* dataset,
                const data::Partition& partition,
                std::unique_ptr<core::UpdateFilter> filter,
                const MtlOptions& options);

  fl::SimulationResult run();

  std::size_t task_count() const noexcept { return solvers_.size(); }

 private:
  const data::DenseDataset* dataset_;
  std::vector<TaskSolver> solvers_;
  std::unique_ptr<core::UpdateFilter> filter_;
  MtlOptions options_;
  std::size_t features_;
};

}  // namespace cmfl::mtl

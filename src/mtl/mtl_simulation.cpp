#include "mtl/mtl_simulation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/estimator.h"
#include "tensor/vector_ops.h"
#include "util/thread_pool.h"

namespace cmfl::mtl {

MtlSimulation::MtlSimulation(const data::DenseDataset* dataset,
                             const data::Partition& partition,
                             std::unique_ptr<core::UpdateFilter> filter,
                             const MtlOptions& options)
    : dataset_(dataset), filter_(std::move(filter)), options_(options) {
  if (dataset_ == nullptr) {
    throw std::invalid_argument("MtlSimulation: null dataset");
  }
  if (!filter_) {
    throw std::invalid_argument("MtlSimulation: null filter");
  }
  if (partition.clients() == 0) {
    throw std::invalid_argument("MtlSimulation: empty partition");
  }
  features_ = dataset_->features();
  util::Rng rng(options_.seed);
  solvers_.reserve(partition.clients());
  for (std::size_t k = 0; k < partition.clients(); ++k) {
    solvers_.emplace_back(dataset_, partition.client_indices[k],
                          options_.test_fraction, rng.split(k),
                          options_.loss);
  }
}

fl::SimulationResult MtlSimulation::run() {
  const std::size_t m = solvers_.size();
  const std::size_t d = features_;

  tensor::Matrix w(m, d);  // task weights, zero-initialized
  tensor::Matrix omega = identity_omega(m);
  tensor::Matrix prev_delta(m, d);  // previous round's global matrix update
  bool have_prev_delta = false;

  fl::SimulationResult result;
  result.eliminations_per_client.assign(m, 0);

  std::vector<std::vector<float>> deltas(m, std::vector<float>(d));
  std::vector<core::FilterDecision> decisions(m);
  std::vector<double> losses(m, 0.0);

  std::unique_ptr<util::ThreadPool> pool;
  if (options_.parallel && m > 1) pool = std::make_unique<util::ThreadPool>();

  // Test-set weights for the global accuracy figure.
  std::vector<double> test_weight(m);
  double test_total = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    test_weight[k] = static_cast<double>(
        solvers_[k].test_samples() ? solvers_[k].test_samples()
                                   : solvers_[k].train_samples());
    test_total += test_weight[k];
  }

  auto evaluate = [&]() {
    double acc = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      acc += test_weight[k] * solvers_[k].test_accuracy(w.row(k));
    }
    return acc / test_total;
  };

  std::vector<float> prev_flat;
  std::size_t cumulative_rounds = 0;

  for (std::size_t t = 1; t <= options_.max_iterations; ++t) {
    // --- Local task optimization (each task trains a copy of its row) ---
    auto train_one = [&](std::size_t k) {
      tensor::Matrix w_local = w;  // broadcast snapshot
      losses[k] = solvers_[k].train_local(
          w_local, k, omega, options_.lambda, options_.local_epochs,
          options_.batch_size, options_.learning_rate);
      auto& delta = deltas[k];
      auto trained = w_local.row(k);
      auto original = w.row(k);
      for (std::size_t j = 0; j < d; ++j) {
        delta[j] = trained[j] - original[j];
      }
      // CMFL feedback: the collaborative tendency of the *other* tasks'
      // previous updates.  The own-task term is excluded — otherwise a
      // drifting outlier would align perfectly with its own history and
      // never be filtered.  Off-diagonal Ω entries weight related tasks
      // once the relationship matrix has been learned; before that (near-
      // identity Ω) the reference falls back to the uniform mean.
      std::vector<float> reference(d, 0.0f);
      if (have_prev_delta && m > 1) {
        double off_diag_mass = 0.0;
        for (std::size_t other = 0; other < m; ++other) {
          if (other != k) off_diag_mass += std::fabs(omega.at(k, other));
        }
        const bool learned = off_diag_mass > 1e-6;
        for (std::size_t other = 0; other < m; ++other) {
          if (other == k) continue;
          const float coupling =
              learned ? omega.at(k, other)
                      : 1.0f / static_cast<float>(m - 1);
          if (coupling == 0.0f) continue;
          auto prev_row = prev_delta.row(other);
          for (std::size_t j = 0; j < d; ++j) {
            reference[j] += coupling * prev_row[j];
          }
        }
      }
      core::FilterContext ctx;
      ctx.global_model = w.row(k);
      ctx.estimated_global_update = reference;
      ctx.iteration = t;
      decisions[k] = filter_->decide(delta, ctx);
    };
    if (pool) {
      pool->parallel_for(m, train_one);
    } else {
      for (std::size_t k = 0; k < m; ++k) train_one(k);
    }

    // --- Collect uploads ---
    std::vector<std::size_t> uploaded;
    for (std::size_t k = 0; k < m; ++k) {
      if (decisions[k].upload) {
        uploaded.push_back(k);
      } else {
        ++result.eliminations_per_client[k];
      }
    }
    if (uploaded.empty() && options_.min_uploads > 0) {
      std::vector<std::size_t> order(m);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return decisions[a].score > decisions[b].score;
      });
      for (std::size_t i = 0; i < std::min(options_.min_uploads, m); ++i) {
        uploaded.push_back(order[i]);
        --result.eliminations_per_client[order[i]];
      }
    }

    fl::IterationRecord rec;
    rec.iteration = t;
    rec.uploads = uploaded.size();
    cumulative_rounds += uploaded.size();
    rec.cumulative_rounds = cumulative_rounds;
    double score_sum = 0.0;
    for (const auto& dec : decisions) score_sum += dec.score;
    rec.mean_score = score_sum / static_cast<double>(m);
    rec.mean_train_loss =
        std::accumulate(losses.begin(), losses.end(), 0.0) /
        static_cast<double>(m);

    // --- Apply uploaded task updates to the global matrix ---
    prev_delta.zero();
    for (std::size_t k : uploaded) {
      auto row = w.row(k);
      auto dst = prev_delta.row(k);
      for (std::size_t j = 0; j < d; ++j) {
        row[j] += deltas[k][j];
        dst[j] = deltas[k][j];
      }
    }
    have_prev_delta = !uploaded.empty();

    // ΔUpdate (Eq. 8) on the flattened global matrix update.
    std::vector<float> flat(prev_delta.flat().begin(),
                            prev_delta.flat().end());
    if (!prev_flat.empty()) {
      rec.delta_update =
          core::normalized_update_difference(prev_flat, flat);
    }
    prev_flat = std::move(flat);

    // --- Server-side Ω refresh ---
    if (options_.omega_every > 0 && t % options_.omega_every == 0) {
      omega = update_omega(w, options_.omega_ridge);
    }

    // --- Evaluation ---
    const bool last = t == options_.max_iterations;
    if (options_.eval_every > 0 &&
        (t % options_.eval_every == 0 || last)) {
      rec.accuracy = evaluate();
      rec.loss = rec.mean_train_loss;
      result.history.push_back(rec);
      if (options_.target_accuracy > 0.0 &&
          rec.accuracy >= options_.target_accuracy) {
        break;
      }
    } else {
      result.history.push_back(rec);
    }
  }

  result.total_rounds = cumulative_rounds;
  result.final_params.assign(w.flat().begin(), w.flat().end());
  for (auto it = result.history.rbegin(); it != result.history.rend(); ++it) {
    if (it->evaluated()) {
      result.final_accuracy = it->accuracy;
      break;
    }
  }
  return result;
}

}  // namespace cmfl::mtl

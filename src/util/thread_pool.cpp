#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cmfl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Completion is tracked in call-local shared state, not the pool-global
  // in_flight_ counter: unrelated concurrent submit()s cannot extend the
  // wait, and because the caller claims indices itself it always makes
  // progress — a nested parallel_for from a worker completes even if every
  // other worker is busy (its queued helper tasks then find no indices left
  // and exit immediately).
  struct State {
    explicit State(std::size_t total, std::function<void(std::size_t)> f)
        : n(total), fn(std::move(f)) {}
    const std::size_t n;
    const std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>(n, fn);
  auto drain = [](const std::shared_ptr<State>& st) {
    for (std::size_t i = st->next.fetch_add(1); i < st->n;
         i = st->next.fetch_add(1)) {
      try {
        st->fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mutex);
        if (!st->first_error) st->first_error = std::current_exception();
      }
      if (st->done.fetch_add(1) + 1 == st->n) {
        std::lock_guard<std::mutex> lock(st->mutex);
        st->all_done.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(n - 1, workers_.size());
  for (std::size_t s = 0; s < helpers; ++s) {
    submit([state, drain] { drain(state); });
  }
  drain(state);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock,
                         [&] { return state->done.load() == state->n; });
    if (state->first_error) std::rethrow_exception(state->first_error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cmfl::util

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cmfl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t shards = std::min(n, workers_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cmfl::util

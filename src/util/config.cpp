#include "util/config.h"

#include <cstdlib>
#include <stdexcept>

namespace cmfl::util {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("Config: expected key=value, got '" + arg +
                                  "'");
    }
    cfg.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return cfg;
}

const std::string* Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(key);
  return &it->second;
}

int Config::get_int(const std::string& key, int fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const int result = std::stoi(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument("Config: '" + key + "=" + *v +
                                "' is not an integer");
  }
  return result;
}

long long Config::get_int64(const std::string& key, long long fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const long long result = std::stoll(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument("Config: '" + key + "=" + *v +
                                "' is not an integer");
  }
  return result;
}

double Config::get_double(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  const double result = std::stod(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument("Config: '" + key + "=" + *v +
                                "' is not a number");
  }
  return result;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("Config: '" + key + "=" + *v +
                              "' is not a boolean");
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  const std::string* v = find(key);
  return v ? *v : std::move(fallback);
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!used_.count(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace cmfl::util

#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace cmfl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  line.reserve(message.size() + 16);
  line.push_back('[');
  line += level_name(level);
  line += "] ";
  line += message;
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace cmfl::util

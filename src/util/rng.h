// Deterministic, splittable pseudo-random number generation.
//
// All stochastic behaviour in this repository (weight init, data synthesis,
// mini-batch shuffling, client sampling) flows through util::Rng so that every
// experiment is bit-reproducible from a single seed.  Rng is cheap to copy and
// to split, which lets each federated client own an independent stream derived
// from the experiment seed — parallel and serial execution then produce
// identical traces.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cmath>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

namespace cmfl::util {

/// SplitMix64: used to seed and to derive sub-streams.  Passes BigCrush when
/// used as a 64-bit generator; here it is primarily a seed sequencer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n).  Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // n == 0 is a caller bug; return 0 rather than divide-by-zero UB.
    if (n == 0) return 0;
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state trivially
  /// copyable and splitting semantics obvious).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  float normal_f(float mean, float stddev) noexcept {
    return static_cast<float>(normal(mean, stddev));
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size()-1 on numerical underflow of the total.
  std::size_t categorical(std::span<const double> weights) noexcept {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// The full generator state, for crash-consistent checkpointing: a
  /// restored stream continues the exact sequence the saved one would have
  /// produced.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Restores a state captured by state().
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  /// Derives an independent child stream; deterministic in (state, salt).
  Rng split(std::uint64_t salt) noexcept {
    SplitMix64 sm(state_[0] ^ rotl(state_[2], 13) ^
                  (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Flattens an Rng's state into opaque u64 words — the common currency of
/// the checkpoint layer's per-client state blobs.
inline std::vector<std::uint64_t> rng_state_words(const Rng& rng) {
  const auto s = rng.state();
  return std::vector<std::uint64_t>(s.begin(), s.end());
}

/// Restores a stream from words produced by rng_state_words().  Throws
/// std::invalid_argument if the word count is wrong.
inline void restore_rng_state(Rng& rng, std::span<const std::uint64_t> words) {
  std::array<std::uint64_t, 4> s{};
  if (words.size() != s.size()) {
    throw std::invalid_argument("restore_rng_state: expected 4 state words");
  }
  std::copy(words.begin(), words.end(), s.begin());
  rng.set_state(s);
}

}  // namespace cmfl::util

// Fixed-size thread pool with a parallel-for helper.
//
// The federated simulation trains many independent clients per iteration;
// parallel_for partitions the client index range across workers.  Each client
// draws from its own Rng stream, so the parallel schedule never changes
// results relative to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cmfl::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, at
  /// least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n), blocking until all complete.  Exceptions
  /// thrown by fn propagate to the caller (first one wins).  Completion is
  /// tracked per call (not via the pool-global idle state), and the calling
  /// thread participates in the work, so concurrent unrelated submit()s do
  /// not extend the wait and nested parallel_for from a worker cannot
  /// deadlock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace cmfl::util

// CRC-32 (IEEE 802.3, reflected) over a byte range.
//
// One implementation shared by the two integrity layers in the repo: the
// net wire protocol (frame seals, net/wire.h) and the crash-consistent
// trainer checkpoints (fl/checkpoint.h).  Table-driven, computed lazily
// once per process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cmfl::util {

std::uint32_t crc32(std::span<const std::byte> data) noexcept;

}  // namespace cmfl::util

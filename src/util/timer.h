// Monotonic wall-clock timer used by benches and the compute-overhead
// measurement (§V-C of the paper).
#pragma once

#include <chrono>

namespace cmfl::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cmfl::util

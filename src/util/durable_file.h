// Crash-consistent file primitives shared by checkpointing (nn/serialize,
// fl/checkpoint) and the durable Raft control plane (net/raft.h).
//
// Two durability idioms live here, and nowhere else:
//
//   1. Sealed files — whole-blob atomic replacement.  The blob is framed as
//      magic (caller-chosen, 4 bytes) + u32 version + u64 payload size +
//      payload + u32 CRC-32(payload), written to `path.tmp`, fsynced, then
//      renamed over `path`.  A crash mid-write can never leave a torn file
//      at the final path; a reader sees either the complete old blob or the
//      complete new one, and the CRC rejects bit rot.
//
//   2. DurableFile — an append-only write-ahead log of CRC-framed records
//      with fsync-on-append discipline.  File layout: a 8-byte header
//      (magic + u32 version) followed by records, each framed as
//      u32 record-magic + u32 payload length + u32 CRC-32(payload) +
//      payload.  Recovery scans the log front to back and applies the
//      torn-tail rule: a framing/CRC failure with *no* well-formed record
//      after it is the torn final write of a crash — the tail is truncated
//      and the log stays usable; a failure with a valid record after it is
//      silent mid-log corruption (bad disk, not a crash) and recovery
//      refuses loudly (std::runtime_error) rather than dropping committed
//      records.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cmfl::util {

/// Atomically (re)writes `path` as a sealed blob: tmp + fsync + rename.
/// Throws std::runtime_error on I/O failure.
void save_sealed_file(const std::string& path,
                      const std::array<char, 4>& magic, std::uint32_t version,
                      std::span<const std::byte> payload);

/// Loads a sealed blob, verifying magic, version, declared size, and CRC.
/// Throws std::runtime_error on any mismatch, truncation, or corruption.
std::vector<std::byte> load_sealed_file(const std::string& path,
                                        const std::array<char, 4>& magic,
                                        std::uint32_t version);

/// Durability accounting for one DurableFile (monotonic per open handle).
struct DurableFileStats {
  std::uint64_t bytes_fsynced = 0;   // record bytes covered by an fsync
  std::uint64_t fsync_calls = 0;
  std::uint64_t records_appended = 0;
};

/// Append-only CRC-framed record log with fsync-on-append (idiom 2 above).
class DurableFile {
 public:
  static constexpr std::size_t kHeaderBytes = 8;         // magic + version
  static constexpr std::size_t kRecordHeaderBytes = 12;  // magic + len + crc
  static constexpr std::uint32_t kRecordMagic = 0x57'41'4c'52u;  // "RLAW" LE

  /// What the recovery scan found at open time.
  struct Recovery {
    std::vector<std::vector<std::byte>> records;  // well-formed, in order
    std::uint64_t valid_bytes = 0;  // file offset past the last good record
    bool tail_truncated = false;    // a torn tail was cut at valid_bytes
  };

  /// Opens `path` (creating it with a fresh header if absent) and recovers
  /// existing records.  Throws std::runtime_error on a header mismatch, on
  /// mid-log corruption (torn-tail rule above), or on I/O failure.
  /// `sync` = false skips every fsync (tests of the scan logic only).
  DurableFile(std::string path, const std::array<char, 4>& magic,
              std::uint32_t version, bool sync = true);
  ~DurableFile();

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  const Recovery& recovered() const noexcept { return recovery_; }
  const DurableFileStats& stats() const noexcept { return stats_; }
  const std::string& path() const noexcept { return path_; }

  /// Appends one framed record.  With `sync_now` (the default) the record
  /// is on stable storage when the call returns — batch several appends
  /// with sync_now = false and a final sync() to pay one fsync.
  void append(std::span<const std::byte> record, bool sync_now = true);

  /// Flushes all appended-but-unsynced records to stable storage.
  void sync();

  /// Atomically replaces the log at `path` with exactly `records` (written
  /// to a tmp file, fsynced, renamed) — the WAL-rotation primitive used
  /// after a snapshot supersedes the log prefix.  Returns the bytes
  /// written.  Throws std::runtime_error on I/O failure.
  static std::uint64_t rewrite(const std::string& path,
                               const std::array<char, 4>& magic,
                               std::uint32_t version,
                               std::span<const std::vector<std::byte>> records,
                               bool sync = true);

  /// Lenient record-boundary scan used by fault injection and tests:
  /// (offset, total length incl. framing) of each well-formed record, in
  /// order, stopping at the first bad one.  Missing file => empty.
  static std::vector<std::pair<std::uint64_t, std::uint64_t>> record_spans(
      const std::string& path);

 private:
  void fsync_now();

  std::string path_;
  int fd_ = -1;
  bool sync_ = true;
  std::uint64_t unsynced_bytes_ = 0;
  Recovery recovery_;
  DurableFileStats stats_;
};

}  // namespace cmfl::util

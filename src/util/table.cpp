#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cmfl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must have at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row has " + std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_count(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace cmfl::util

#include "util/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/crc32.h"

namespace cmfl::util {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::vector<std::byte> read_file(const std::string& path, bool& exists) {
  std::ifstream is(path, std::ios::binary);
  exists = static_cast<bool>(is);
  std::vector<std::byte> bytes;
  if (!exists) return bytes;
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(0);
  if (end > 0) {
    bytes.resize(static_cast<std::size_t>(end));
    is.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!is) throw std::runtime_error("DurableFile: cannot read " + path);
  }
  return bytes;
}

void make_header(std::vector<std::byte>& out, const std::array<char, 4>& magic,
                 std::uint32_t version) {
  for (const char c : magic) out.push_back(static_cast<std::byte>(c));
  put_u32(out, version);
}

void frame_record(std::vector<std::byte>& out,
                  std::span<const std::byte> record) {
  put_u32(out, DurableFile::kRecordMagic);
  put_u32(out, static_cast<std::uint32_t>(record.size()));
  put_u32(out, crc32(record));
  out.insert(out.end(), record.begin(), record.end());
}

/// Checks for a well-formed record at `off`; returns its total framed
/// length, or 0 when the bytes at `off` do not parse as a record.
std::uint64_t record_at(std::span<const std::byte> bytes, std::uint64_t off) {
  if (off + DurableFile::kRecordHeaderBytes > bytes.size()) return 0;
  if (get_u32(bytes.data() + off) != DurableFile::kRecordMagic) return 0;
  const std::uint64_t len = get_u32(bytes.data() + off + 4);
  const std::uint32_t crc = get_u32(bytes.data() + off + 8);
  if (off + DurableFile::kRecordHeaderBytes + len > bytes.size()) return 0;
  const std::span<const std::byte> payload =
      bytes.subspan(off + DurableFile::kRecordHeaderBytes,
                    static_cast<std::size_t>(len));
  if (crc32(payload) != crc) return 0;
  return DurableFile::kRecordHeaderBytes + len;
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

// ------------------------------------------------------------ sealed files

void save_sealed_file(const std::string& path,
                      const std::array<char, 4>& magic, std::uint32_t version,
                      std::span<const std::byte> payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("save_sealed_file: cannot open " + tmp);
    os.write(magic.data(), magic.size());
    const std::uint32_t ver = version;
    os.write(reinterpret_cast<const char*>(&ver), sizeof(ver));
    const auto size = static_cast<std::uint64_t>(payload.size());
    os.write(reinterpret_cast<const char*>(&size), sizeof(size));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    const std::uint32_t crc = crc32(payload);
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!os) {
      throw std::runtime_error("save_sealed_file: write failed for " + tmp);
    }
  }
  // Flush file contents to stable storage before the rename makes the new
  // blob visible; otherwise a crash could publish a file whose data blocks
  // never hit disk.
  fsync_path(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_sealed_file: rename to " + path +
                             " failed");
  }
}

std::vector<std::byte> load_sealed_file(const std::string& path,
                                        const std::array<char, 4>& magic,
                                        std::uint32_t version) {
  bool exists = false;
  const std::vector<std::byte> bytes = read_file(path, exists);
  if (!exists) {
    throw std::runtime_error("load_sealed_file: cannot open " + path);
  }
  constexpr std::size_t kFixed = 4 + sizeof(std::uint32_t) +
                                 sizeof(std::uint64_t) + sizeof(std::uint32_t);
  if (bytes.size() < kFixed ||
      std::memcmp(bytes.data(), magic.data(), magic.size()) != 0) {
    throw std::runtime_error("load_sealed_file: bad magic in " + path);
  }
  std::uint32_t file_version = 0;
  std::memcpy(&file_version, bytes.data() + 4, sizeof(file_version));
  if (file_version != version) {
    throw std::runtime_error("load_sealed_file: unsupported version " +
                             std::to_string(file_version) + " in " + path);
  }
  std::uint64_t size = 0;
  std::memcpy(&size, bytes.data() + 8, sizeof(size));
  if (size + kFixed != bytes.size()) {
    throw std::runtime_error("load_sealed_file: truncated blob in " + path);
  }
  std::vector<std::byte> payload(bytes.begin() + 16,
                                 bytes.begin() + 16 +
                                     static_cast<std::ptrdiff_t>(size));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4,
              sizeof(stored_crc));
  if (crc32(payload) != stored_crc) {
    throw std::runtime_error("load_sealed_file: CRC mismatch in " + path +
                             " (torn or corrupted blob)");
  }
  return payload;
}

// ------------------------------------------------------------- DurableFile

DurableFile::DurableFile(std::string path, const std::array<char, 4>& magic,
                         std::uint32_t version, bool sync)
    : path_(std::move(path)), sync_(sync) {
  bool exists = false;
  const std::vector<std::byte> bytes = read_file(path_, exists);

  std::uint64_t pos = 0;
  bool fresh = false;
  if (bytes.size() < kHeaderBytes) {
    // Missing, empty, or torn-before-the-header-landed: start fresh.  A
    // torn header can only come from the very first write of the log, so
    // nothing durable is lost by restarting it.
    fresh = true;
    recovery_.tail_truncated = exists && !bytes.empty();
  } else {
    if (std::memcmp(bytes.data(), magic.data(), magic.size()) != 0) {
      throw std::runtime_error("DurableFile: bad magic in " + path_);
    }
    std::uint32_t file_version = 0;
    std::memcpy(&file_version, bytes.data() + 4, sizeof(file_version));
    if (file_version != version) {
      throw std::runtime_error("DurableFile: unsupported version " +
                               std::to_string(file_version) + " in " + path_);
    }
    pos = kHeaderBytes;
    while (pos < bytes.size()) {
      const std::uint64_t total = record_at(bytes, pos);
      if (total == 0) {
        // Torn-tail rule: a framing/CRC failure here is only survivable if
        // nothing well-formed follows — then it is the torn final write of
        // a crash and the tail is cut.  A valid record *after* the bad one
        // means the failure sits mid-log: silent corruption, refuse loudly.
        for (std::uint64_t probe = pos + 1;
             probe + kRecordHeaderBytes <= bytes.size(); ++probe) {
          if (record_at(bytes, probe) != 0) {
            throw std::runtime_error(
                "DurableFile: mid-log corruption in " + path_ + " at offset " +
                std::to_string(pos) +
                " (valid records follow the damage; refusing to drop "
                "committed records)");
          }
        }
        recovery_.tail_truncated = true;
        break;
      }
      recovery_.records.emplace_back(
          bytes.begin() + static_cast<std::ptrdiff_t>(pos +
                                                      kRecordHeaderBytes),
          bytes.begin() + static_cast<std::ptrdiff_t>(pos + total));
      pos += total;
    }
  }
  recovery_.valid_bytes = fresh ? kHeaderBytes : pos;

  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw std::runtime_error("DurableFile: cannot open " + path_);
  if (fresh) {
    std::vector<std::byte> header;
    make_header(header, magic, version);
    if (::ftruncate(fd_, 0) != 0 ||
        ::write(fd_, header.data(), header.size()) !=
            static_cast<ssize_t>(header.size())) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("DurableFile: cannot initialize " + path_);
    }
    if (sync_) ::fsync(fd_);
  } else if (pos < bytes.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("DurableFile: cannot truncate torn tail of " +
                               path_);
    }
    if (sync_) ::fsync(fd_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("DurableFile: cannot seek " + path_);
  }
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableFile::append(std::span<const std::byte> record, bool sync_now) {
  std::vector<std::byte> framed;
  framed.reserve(kRecordHeaderBytes + record.size());
  frame_record(framed, record);
  if (::write(fd_, framed.data(), framed.size()) !=
      static_cast<ssize_t>(framed.size())) {
    throw std::runtime_error("DurableFile: append failed for " + path_);
  }
  ++stats_.records_appended;
  unsynced_bytes_ += framed.size();
  if (sync_now) sync();
}

void DurableFile::sync() {
  if (unsynced_bytes_ == 0) return;
  fsync_now();
}

void DurableFile::fsync_now() {
  if (sync_ && ::fsync(fd_) != 0) {
    throw std::runtime_error("DurableFile: fsync failed for " + path_);
  }
  stats_.bytes_fsynced += unsynced_bytes_;
  ++stats_.fsync_calls;
  unsynced_bytes_ = 0;
}

std::uint64_t DurableFile::rewrite(
    const std::string& path, const std::array<char, 4>& magic,
    std::uint32_t version, std::span<const std::vector<std::byte>> records,
    bool sync) {
  std::vector<std::byte> bytes;
  make_header(bytes, magic, version);
  for (const auto& r : records) frame_record(bytes, r);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("DurableFile::rewrite: cannot open " + tmp);
    }
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os) {
      throw std::runtime_error("DurableFile::rewrite: write failed for " +
                               tmp);
    }
  }
  if (sync) fsync_path(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("DurableFile::rewrite: rename to " + path +
                             " failed");
  }
  return bytes.size();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> DurableFile::record_spans(
    const std::string& path) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  bool exists = false;
  const std::vector<std::byte> bytes = read_file(path, exists);
  if (!exists || bytes.size() < kHeaderBytes) return spans;
  std::uint64_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    const std::uint64_t total = record_at(bytes, pos);
    if (total == 0) break;
    spans.emplace_back(pos, total);
    pos += total;
  }
  return spans;
}

}  // namespace cmfl::util

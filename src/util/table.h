// Console table rendering for bench harnesses.
//
// Each bench binary regenerates one table or figure from the paper and prints
// it to stdout.  Table gives aligned, pipe-delimited output that is readable
// in a terminal and trivially machine-parseable; SeriesWriter emits CSV
// series for the "figure" benches (x,y per algorithm).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace cmfl::util {

/// A simple fixed-column text table.  Usage:
///   Table t({"scheme", "rounds", "saving"});
///   t.add_row({"CMFL", "145", "3.45"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with aligned columns:  `| a   | bb |`.
  void print(std::ostream& os) const;

  /// Renders as plain CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (bench output helper).
std::string fmt(double value, int decimals = 2);

/// Formats `value` as an integer with thousands separators: 40200 -> "40,200".
std::string fmt_count(long long value);

}  // namespace cmfl::util

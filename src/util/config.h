// Tiny `key=value` command-line configuration parser.
//
// Bench harnesses and examples accept overrides like:
//   ./fig4_table1_vanilla_fl rounds=200 clients=50 seed=7
// so the paper's parameter sweeps can be re-run at other scales without
// recompiling.  Unknown keys are rejected loudly to catch typos.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cmfl::util {

class Config {
 public:
  Config() = default;

  /// Parses argv entries of the form key=value.  Throws
  /// std::invalid_argument on malformed entries.
  static Config from_args(int argc, const char* const* argv);

  /// Returns the value for `key`, or `fallback` if absent.  Typed getters
  /// throw std::invalid_argument when a present value does not parse.
  int get_int(const std::string& key, int fallback) const;
  long long get_int64(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, std::string fallback) const;

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// After all getters ran, reports keys that were supplied but never read —
  /// almost always a typo.  Returns empty vector if everything was consumed.
  std::vector<std::string> unused_keys() const;

 private:
  const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace cmfl::util

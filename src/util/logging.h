// Minimal leveled logging to stderr.
//
// The library itself logs sparingly (benches and examples print their results
// to stdout as data); logging exists for progress visibility in long
// federated runs and for diagnosing failure-injection tests.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace cmfl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level (default kInfo).  Thread-safe.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line `[LEVEL] message` to stderr if `level` passes the filter.
/// Lines are written with a single stream operation to stay readable under
/// concurrent logging.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogMessage log_debug() {
  return detail::LogMessage(LogLevel::kDebug);
}
inline detail::LogMessage log_info() {
  return detail::LogMessage(LogLevel::kInfo);
}
inline detail::LogMessage log_warn() {
  return detail::LogMessage(LogLevel::kWarn);
}
inline detail::LogMessage log_error() {
  return detail::LogMessage(LogLevel::kError);
}

}  // namespace cmfl::util

#include "util/crc32.h"

#include <array>

namespace cmfl::util {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int j = 0; j < 8; ++j) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cmfl::util

// Update-compression baselines (Konečný et al., "Federated Learning:
// Strategies for Improving Communication Efficiency").
//
// The paper positions CMFL as *orthogonal* to compression: compression
// shrinks the bits per update, CMFL shrinks the number of updates, and the
// two compose.  To evaluate that claim we implement the two compression
// families the paper cites:
//
//  * structured updates — the client only learns/transmits a random sparse
//    mask of the update (the rest is implicitly zero);
//  * sketched updates  — the client computes the full update, then sketches
//    it before upload via (a) random subsampling with rescaling, or
//    (b) probabilistic 1-byte uniform quantization.
//
// Each compressor reports the exact wire size of its encoded form so the
// benches can compare bytes-to-accuracy across CMFL, compression, and both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cmfl::core {

/// An encoded update plus its exact wire footprint.
struct CompressedUpdate {
  std::vector<std::byte> payload;
  std::size_t wire_bytes = 0;   // == payload.size(), kept explicit
  std::size_t original_dim = 0;
};

class UpdateCompressor {
 public:
  virtual ~UpdateCompressor() = default;
  virtual std::string name() const = 0;

  /// Encodes `update`.  Implementations may be lossy; decode(encode(u))
  /// returns the reconstruction the server would apply.
  virtual CompressedUpdate encode(std::span<const float> update) = 0;

  /// Reconstructs a dense update from the encoded form.  Throws
  /// std::runtime_error on malformed payloads.
  virtual std::vector<float> decode(const CompressedUpdate& encoded) = 0;

  /// Mutable stochastic state (the sampling RNG stream, if any) as opaque
  /// u64 words — captured by crash-consistent checkpoints so a resumed run
  /// redraws the exact masks the uninterrupted run would have.  Stateless
  /// compressors return an empty vector.
  virtual std::vector<std::uint64_t> mutable_state() const { return {}; }

  /// Restores a state captured by mutable_state(); throws
  /// std::invalid_argument on a size mismatch.
  virtual void restore_mutable_state(std::span<const std::uint64_t> state);
};

/// Lossless float32 baseline (4·N bytes + header) — the vanilla wire format.
class IdentityCompressor final : public UpdateCompressor {
 public:
  std::string name() const override { return "float32"; }
  CompressedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(const CompressedUpdate& encoded) override;
};

/// Random-subsampling sketch: transmit a fraction `keep` of coordinates
/// (index + value), scaled by 1/keep so the aggregate stays unbiased.
class SubsampleCompressor final : public UpdateCompressor {
 public:
  /// keep in (0, 1].  The coordinate subset is redrawn per encode() from
  /// the owned rng (deterministic per seed).
  SubsampleCompressor(double keep, std::uint64_t seed);
  std::string name() const override;
  CompressedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(const CompressedUpdate& encoded) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  double keep_;
  util::Rng rng_;
};

/// Probabilistic uniform quantization to 8 bits: values are mapped onto 256
/// levels spanning [min, max] and rounded stochastically so the expectation
/// is preserved; 1 byte per coordinate + 8-byte range header.
class QuantizeCompressor final : public UpdateCompressor {
 public:
  explicit QuantizeCompressor(std::uint64_t seed);
  std::string name() const override { return "quantize8"; }
  CompressedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(const CompressedUpdate& encoded) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  util::Rng rng_;
};

/// Structured (random-mask) update: the update is *constrained* to a random
/// coordinate subset of density `density`; everything else is zeroed before
/// upload.  Unlike SubsampleCompressor there is no rescaling — the mask is
/// part of the model update itself, as in the structured-updates scheme.
class StructuredMaskCompressor final : public UpdateCompressor {
 public:
  StructuredMaskCompressor(double density, std::uint64_t seed);
  std::string name() const override;
  CompressedUpdate encode(std::span<const float> update) override;
  std::vector<float> decode(const CompressedUpdate& encoded) override;
  std::vector<std::uint64_t> mutable_state() const override;
  void restore_mutable_state(std::span<const std::uint64_t> state) override;

 private:
  double density_;
  util::Rng rng_;
};

/// Factory: "float32" | "subsample:<keep>" | "quantize8" |
/// "structured:<density>".
std::unique_ptr<UpdateCompressor> make_compressor(const std::string& spec,
                                                  std::uint64_t seed);

}  // namespace cmfl::core

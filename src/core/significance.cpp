#include "core/significance.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/vector_ops.h"

namespace cmfl::core {

double norm_ratio_significance(std::span<const float> update,
                               std::span<const float> model) {
  if (update.size() != model.size()) {
    throw std::invalid_argument("norm_ratio_significance: size mismatch");
  }
  if (update.empty()) {
    throw std::invalid_argument("norm_ratio_significance: empty vectors");
  }
  const double un = tensor::norm2(update);
  const double mn = tensor::norm2(model);
  if (mn == 0.0) {
    return un == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return un / mn;
}

double elementwise_ratio_significance(std::span<const float> update,
                                      std::span<const float> model,
                                      float eps) {
  if (update.size() != model.size()) {
    throw std::invalid_argument(
        "elementwise_ratio_significance: size mismatch");
  }
  if (update.empty()) {
    throw std::invalid_argument(
        "elementwise_ratio_significance: empty vectors");
  }
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < update.size(); ++i) {
    if (std::fabs(model[i]) > eps) {
      const double r =
          static_cast<double>(update[i]) / static_cast<double>(model[i]);
      acc += r * r;
      ++counted;
    }
  }
  if (counted == 0) return 0.0;
  return std::sqrt(acc / static_cast<double>(counted));
}

}  // namespace cmfl::core

#include "core/relevance.h"

#include <stdexcept>

#include "tensor/vector_ops.h"

namespace cmfl::core {

double relevance(std::span<const float> local_update,
                 std::span<const float> global_update) {
  if (local_update.size() != global_update.size()) {
    throw std::invalid_argument("relevance: update size mismatch");
  }
  if (local_update.empty()) {
    throw std::invalid_argument("relevance: empty update");
  }
  const std::size_t matches =
      tensor::count_sign_matches(local_update, global_update);
  return static_cast<double>(matches) /
         static_cast<double>(local_update.size());
}

double relevance(std::span<const float> local_update,
                 const tensor::SignPack& global_update) {
  if (local_update.size() != global_update.size()) {
    throw std::invalid_argument("relevance: update size mismatch");
  }
  if (local_update.empty()) {
    throw std::invalid_argument("relevance: empty update");
  }
  const std::size_t matches =
      tensor::count_sign_matches(local_update, global_update);
  return static_cast<double>(matches) /
         static_cast<double>(local_update.size());
}

double relevance(const tensor::SignPack& local_update,
                 const tensor::SignPack& global_update) {
  if (local_update.size() != global_update.size()) {
    throw std::invalid_argument("relevance: update size mismatch");
  }
  if (local_update.empty()) {
    throw std::invalid_argument("relevance: empty update");
  }
  const std::size_t matches =
      tensor::count_sign_matches(local_update, global_update);
  return static_cast<double>(matches) /
         static_cast<double>(local_update.size());
}

bool is_zero_update(std::span<const float> update) noexcept {
  for (float v : update) {
    if (v != 0.0f) return false;
  }
  return true;
}

bool is_zero_update(const tensor::SignPack& update) noexcept {
  return update.all_zero();
}

}  // namespace cmfl::core

#include "core/filter.h"

#include <stdexcept>

#include "core/relevance.h"
#include "core/significance.h"

namespace cmfl::core {

FilterDecision AcceptAllFilter::decide(std::span<const float> update,
                                       const FilterContext& ctx) const {
  (void)update;
  (void)ctx;
  return {true, 1.0, 0.0};
}

GaiaFilter::GaiaFilter(Schedule threshold) : threshold_(threshold) {}

FilterDecision GaiaFilter::decide(std::span<const float> update,
                                  const FilterContext& ctx) const {
  FilterDecision d;
  d.threshold = threshold_.at(ctx.iteration);
  d.score = norm_ratio_significance(update, ctx.global_model);
  d.upload = d.score >= d.threshold;
  return d;
}

CmflFilter::CmflFilter(Schedule threshold) : threshold_(threshold) {}

FilterDecision CmflFilter::decide(std::span<const float> update,
                                  const FilterContext& ctx) const {
  FilterDecision d;
  d.threshold = threshold_.at(ctx.iteration);
  const tensor::SignPack* pack = ctx.estimated_global_update_pack;
  if (pack != nullptr && pack->size() == update.size()) {
    if (is_zero_update(*pack)) {
      // Cold start (ū_0 = 0): no global tendency yet, accept everything.
      d.score = 1.0;
      d.upload = true;
      return d;
    }
    d.score = relevance(update, *pack);
    d.upload = d.score >= d.threshold;
    return d;
  }
  if (is_zero_update(ctx.estimated_global_update)) {
    d.score = 1.0;
    d.upload = true;
    return d;
  }
  d.score = relevance(update, ctx.estimated_global_update);
  d.upload = d.score >= d.threshold;
  return d;
}

std::unique_ptr<UpdateFilter> make_filter(const std::string& kind,
                                          Schedule threshold) {
  if (kind == "vanilla") return std::make_unique<AcceptAllFilter>();
  if (kind == "gaia") return std::make_unique<GaiaFilter>(threshold);
  if (kind == "cmfl") return std::make_unique<CmflFilter>(threshold);
  throw std::invalid_argument("make_filter: unknown filter kind '" + kind +
                              "'");
}

}  // namespace cmfl::core

// Gaia's magnitude-based significance measure (Hsieh et al., NSDI'17),
// reimplemented as the paper's baseline.
//
// Gaia deems an update significant when ‖Update/Model‖ exceeds a threshold.
// Two readings of that expression are provided:
//  * norm_ratio        — ‖u‖ / ‖x‖ (ratio of Euclidean norms; the form the
//                        paper plots in Fig. 2a as a single per-client
//                        scalar).  This is the default used by GaiaFilter.
//  * elementwise_ratio — RMS of u_j/x_j over parameters with |x_j| > eps
//                        (closer to Gaia's per-parameter rule, aggregated).
#pragma once

#include <span>

namespace cmfl::core {

/// ‖u‖ / ‖x‖.  Returns +inf if the model vector is exactly zero but the
/// update is not (any change to a zero model is maximally significant);
/// returns 0 if both are zero.  Throws std::invalid_argument on size
/// mismatch or empty vectors.
double norm_ratio_significance(std::span<const float> update,
                               std::span<const float> model);

/// Root-mean-square of u_j / x_j over coordinates with |x_j| > eps.
/// Returns 0 when no coordinate qualifies.
double elementwise_ratio_significance(std::span<const float> update,
                                      std::span<const float> model,
                                      float eps = 1e-8f);

}  // namespace cmfl::core

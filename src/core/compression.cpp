#include "core/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace cmfl::core {

namespace {

void append_pod(std::vector<std::byte>& buf, const void* data,
                std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  buf.insert(buf.end(), p, p + n);
}

template <typename T>
void put(std::vector<std::byte>& buf, T value) {
  append_pod(buf, &value, sizeof(T));
}

template <typename T>
T get(std::span<const std::byte> buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size()) {
    throw std::runtime_error("compression: truncated payload");
  }
  T value;
  std::memcpy(&value, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

}  // namespace

CompressedUpdate IdentityCompressor::encode(std::span<const float> update) {
  CompressedUpdate out;
  out.original_dim = update.size();
  put(out.payload, static_cast<std::uint64_t>(update.size()));
  append_pod(out.payload, update.data(), update.size() * sizeof(float));
  out.wire_bytes = out.payload.size();
  return out;
}

std::vector<float> IdentityCompressor::decode(const CompressedUpdate& enc) {
  std::size_t pos = 0;
  const auto n = get<std::uint64_t>(enc.payload, pos);
  if (pos + n * sizeof(float) > enc.payload.size()) {
    throw std::runtime_error("IdentityCompressor: truncated payload");
  }
  std::vector<float> out(n);
  std::memcpy(out.data(), enc.payload.data() + pos, n * sizeof(float));
  return out;
}

SubsampleCompressor::SubsampleCompressor(double keep, std::uint64_t seed)
    : keep_(keep), rng_(seed) {
  if (!(keep > 0.0) || keep > 1.0) {
    throw std::invalid_argument("SubsampleCompressor: keep must be in (0,1]");
  }
}

std::string SubsampleCompressor::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "subsample:%.2f", keep_);
  return buf;
}

CompressedUpdate SubsampleCompressor::encode(std::span<const float> update) {
  CompressedUpdate out;
  out.original_dim = update.size();
  std::vector<std::uint32_t> kept;
  for (std::size_t i = 0; i < update.size(); ++i) {
    if (rng_.uniform() < keep_) kept.push_back(static_cast<std::uint32_t>(i));
  }
  put(out.payload, static_cast<std::uint64_t>(update.size()));
  put(out.payload, static_cast<std::uint64_t>(kept.size()));
  const auto scale = static_cast<float>(1.0 / keep_);
  for (std::uint32_t idx : kept) {
    put(out.payload, idx);
    put(out.payload, update[idx] * scale);
  }
  out.wire_bytes = out.payload.size();
  return out;
}

std::vector<float> SubsampleCompressor::decode(const CompressedUpdate& enc) {
  std::size_t pos = 0;
  const auto dim = get<std::uint64_t>(enc.payload, pos);
  const auto count = get<std::uint64_t>(enc.payload, pos);
  std::vector<float> out(dim, 0.0f);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto idx = get<std::uint32_t>(enc.payload, pos);
    const auto value = get<float>(enc.payload, pos);
    if (idx >= dim) {
      throw std::runtime_error("SubsampleCompressor: index out of range");
    }
    out[idx] = value;
  }
  return out;
}

QuantizeCompressor::QuantizeCompressor(std::uint64_t seed) : rng_(seed) {}

CompressedUpdate QuantizeCompressor::encode(std::span<const float> update) {
  CompressedUpdate out;
  out.original_dim = update.size();
  float lo = 0.0f, hi = 0.0f;
  if (!update.empty()) {
    lo = *std::min_element(update.begin(), update.end());
    hi = *std::max_element(update.begin(), update.end());
  }
  put(out.payload, static_cast<std::uint64_t>(update.size()));
  put(out.payload, lo);
  put(out.payload, hi);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  for (float v : update) {
    std::uint8_t q = 0;
    if (range > 0.0) {
      // Stochastic rounding keeps E[decode(encode(v))] == v.
      const double level = (static_cast<double>(v) - lo) / range * 255.0;
      const double floor_level = std::floor(level);
      const double frac = level - floor_level;
      q = static_cast<std::uint8_t>(
          std::min(255.0, floor_level + (rng_.uniform() < frac ? 1.0 : 0.0)));
    }
    put(out.payload, q);
  }
  out.wire_bytes = out.payload.size();
  return out;
}

std::vector<float> QuantizeCompressor::decode(const CompressedUpdate& enc) {
  std::size_t pos = 0;
  const auto n = get<std::uint64_t>(enc.payload, pos);
  const auto lo = get<float>(enc.payload, pos);
  const auto hi = get<float>(enc.payload, pos);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  std::vector<float> out(n);
  for (auto& v : out) {
    const auto q = get<std::uint8_t>(enc.payload, pos);
    v = static_cast<float>(lo + range * (static_cast<double>(q) / 255.0));
  }
  return out;
}

StructuredMaskCompressor::StructuredMaskCompressor(double density,
                                                   std::uint64_t seed)
    : density_(density), rng_(seed) {
  if (!(density > 0.0) || density > 1.0) {
    throw std::invalid_argument(
        "StructuredMaskCompressor: density must be in (0,1]");
  }
}

std::string StructuredMaskCompressor::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "structured:%.2f", density_);
  return buf;
}

CompressedUpdate StructuredMaskCompressor::encode(
    std::span<const float> update) {
  CompressedUpdate out;
  out.original_dim = update.size();
  std::vector<std::uint32_t> kept;
  for (std::size_t i = 0; i < update.size(); ++i) {
    if (rng_.uniform() < density_) {
      kept.push_back(static_cast<std::uint32_t>(i));
    }
  }
  put(out.payload, static_cast<std::uint64_t>(update.size()));
  put(out.payload, static_cast<std::uint64_t>(kept.size()));
  for (std::uint32_t idx : kept) {
    put(out.payload, idx);
    put(out.payload, update[idx]);  // no rescaling: the mask IS the update
  }
  out.wire_bytes = out.payload.size();
  return out;
}

std::vector<float> StructuredMaskCompressor::decode(
    const CompressedUpdate& enc) {
  std::size_t pos = 0;
  const auto dim = get<std::uint64_t>(enc.payload, pos);
  const auto count = get<std::uint64_t>(enc.payload, pos);
  std::vector<float> out(dim, 0.0f);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto idx = get<std::uint32_t>(enc.payload, pos);
    const auto value = get<float>(enc.payload, pos);
    if (idx >= dim) {
      throw std::runtime_error("StructuredMaskCompressor: index out of range");
    }
    out[idx] = value;
  }
  return out;
}

void UpdateCompressor::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  if (!state.empty()) {
    throw std::invalid_argument(
        "UpdateCompressor: state blob for a stateless compressor");
  }
}

std::vector<std::uint64_t> SubsampleCompressor::mutable_state() const {
  return util::rng_state_words(rng_);
}

void SubsampleCompressor::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

std::vector<std::uint64_t> QuantizeCompressor::mutable_state() const {
  return util::rng_state_words(rng_);
}

void QuantizeCompressor::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

std::vector<std::uint64_t> StructuredMaskCompressor::mutable_state() const {
  return util::rng_state_words(rng_);
}

void StructuredMaskCompressor::restore_mutable_state(
    std::span<const std::uint64_t> state) {
  util::restore_rng_state(rng_, state);
}

std::unique_ptr<UpdateCompressor> make_compressor(const std::string& spec,
                                                  std::uint64_t seed) {
  if (spec == "float32") return std::make_unique<IdentityCompressor>();
  if (spec == "quantize8") return std::make_unique<QuantizeCompressor>(seed);
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string kind = spec.substr(0, colon);
    const double param = std::stod(spec.substr(colon + 1));
    if (kind == "subsample") {
      return std::make_unique<SubsampleCompressor>(param, seed);
    }
    if (kind == "structured") {
      return std::make_unique<StructuredMaskCompressor>(param, seed);
    }
  }
  throw std::invalid_argument("make_compressor: unknown spec '" + spec + "'");
}

}  // namespace cmfl::core

// The CMFL relevance measure (paper Eq. 9).
//
//   e(u, ū) = (1/N) Σ_j 1[ sgn(u_j) = sgn(ū_j) ]
//
// u is a client's local update, ū the (estimated) global update.  The sign
// of each parameter's update is the *direction* the model should move along
// that dimension; the fraction of agreeing directions measures how well the
// local optimization aligns with the collaborative trend.  Scale-invariant
// in both arguments — unlike Gaia's magnitude test, it is unaffected by
// learning rate or local dataset size.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/kernels.h"

namespace cmfl::core {

/// Fraction of same-sign parameters in [0, 1].  sgn(0) is its own class:
/// a zero entry matches only a zero entry (see DESIGN.md §6).
/// Throws std::invalid_argument on size mismatch or empty vectors.
double relevance(std::span<const float> local_update,
                 std::span<const float> global_update);

/// Packed fast path: the server packs ū once per broadcast and every client
/// reuses the cached pack, turning N branchy O(d) scans per iteration into
/// word-parallel popcounts.  Exactly equal to the scalar overload (the
/// packing preserves the three-way sign convention bit-for-bit).
double relevance(std::span<const float> local_update,
                 const tensor::SignPack& global_update);

/// Both sides pre-packed (e.g. a client reusing its own update's pack).
double relevance(const tensor::SignPack& local_update,
                 const tensor::SignPack& global_update);

/// True if every entry is exactly zero — the t=1 cold-start reference, which
/// filters must treat as "no information, accept everything".
bool is_zero_update(std::span<const float> update) noexcept;

/// Pack-side equivalent.  Note the pack folds ±0 and NaN into sign class 0,
/// so this is "no directional information" rather than literal all-bits-zero
/// — exactly the property the cold-start rule cares about.
bool is_zero_update(const tensor::SignPack& update) noexcept;

}  // namespace cmfl::core

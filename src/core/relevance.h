// The CMFL relevance measure (paper Eq. 9).
//
//   e(u, ū) = (1/N) Σ_j 1[ sgn(u_j) = sgn(ū_j) ]
//
// u is a client's local update, ū the (estimated) global update.  The sign
// of each parameter's update is the *direction* the model should move along
// that dimension; the fraction of agreeing directions measures how well the
// local optimization aligns with the collaborative trend.  Scale-invariant
// in both arguments — unlike Gaia's magnitude test, it is unaffected by
// learning rate or local dataset size.
#pragma once

#include <cstddef>
#include <span>

namespace cmfl::core {

/// Fraction of same-sign parameters in [0, 1].  sgn(0) is its own class:
/// a zero entry matches only a zero entry (see DESIGN.md §6).
/// Throws std::invalid_argument on size mismatch or empty vectors.
double relevance(std::span<const float> local_update,
                 std::span<const float> global_update);

/// True if every entry is exactly zero — the t=1 cold-start reference, which
/// filters must treat as "no information, accept everything".
bool is_zero_update(std::span<const float> update) noexcept;

}  // namespace cmfl::core

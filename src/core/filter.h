// Upload filters — the client-side decision of Algorithm 1.
//
// After local training produces an update u, the filter decides whether u is
// worth the uplink.  Three policies cover the paper's comparison:
//   * AcceptAllFilter — vanilla FL, every update is uploaded.
//   * GaiaFilter      — upload iff ‖u‖/‖x‖ ≥ threshold(t)  (magnitude test).
//   * CmflFilter      — upload iff e(u, ū_{t-1}) ≥ v(t)    (relevance test).
//
// Note on the paper's Algorithm 1: its CheckRelevance pseudocode returns
// True when e < v(t), contradicting the surrounding text ("any local update
// with e(...) smaller than a tuned threshold v(t) is identified as
// irrelevant, and [is] not uploaded").  We implement the text's semantics.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/threshold.h"
#include "tensor/kernels.h"

namespace cmfl::core {

/// Everything a filter may consult when scoring an update.
struct FilterContext {
  /// Current global model parameters (x_{t-1}); what Gaia normalizes by.
  std::span<const float> global_model;
  /// Estimated global update (ū_{t-1}); what CMFL aligns against.
  std::span<const float> estimated_global_update;
  /// Optional bit-packed signs of estimated_global_update.  The server packs
  /// ū once per broadcast; when set (and sized like the update), CmflFilter
  /// takes the word-parallel popcount path instead of the scalar scan.
  /// Purely a local cache — scores are exactly equal either way.
  const tensor::SignPack* estimated_global_update_pack = nullptr;
  /// 1-based training iteration.
  std::size_t iteration = 1;
};

struct FilterDecision {
  bool upload = true;
  /// The metric value that produced the decision (relevance for CMFL,
  /// significance for Gaia, 1.0 for vanilla) — recorded by the trace layer
  /// to regenerate Fig. 2.
  double score = 1.0;
  /// Threshold in force at this iteration.
  double threshold = 0.0;
};

class UpdateFilter {
 public:
  virtual ~UpdateFilter() = default;
  virtual std::string name() const = 0;
  virtual FilterDecision decide(std::span<const float> update,
                                const FilterContext& ctx) const = 0;
};

/// Vanilla FL: upload everything.
class AcceptAllFilter final : public UpdateFilter {
 public:
  std::string name() const override { return "vanilla"; }
  FilterDecision decide(std::span<const float> update,
                        const FilterContext& ctx) const override;
};

/// Gaia's magnitude test against `threshold` (may decay over time, though
/// Gaia's original design uses a constant).
class GaiaFilter final : public UpdateFilter {
 public:
  explicit GaiaFilter(Schedule threshold);
  std::string name() const override { return "gaia"; }
  FilterDecision decide(std::span<const float> update,
                        const FilterContext& ctx) const override;

 private:
  Schedule threshold_;
};

/// CMFL's relevance test: upload iff e(u, ū) ≥ v(t).  When the estimated
/// global update is all-zero (cold start), every update is accepted.
class CmflFilter final : public UpdateFilter {
 public:
  explicit CmflFilter(Schedule threshold);
  std::string name() const override { return "cmfl"; }
  FilterDecision decide(std::span<const float> update,
                        const FilterContext& ctx) const override;

 private:
  Schedule threshold_;
};

/// Factory helpers used by benches ("vanilla" | "gaia" | "cmfl").
std::unique_ptr<UpdateFilter> make_filter(const std::string& kind,
                                          Schedule threshold);

}  // namespace cmfl::core

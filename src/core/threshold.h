// Hyper-parameter schedules.
//
// Theorem 1 requires time-decreasing learning rate η_t and relevance
// threshold v_t for convergence; the paper's evaluation uses
// η_t = η₀/√t and v_t = v₀/√t.  Schedule covers both hyper-parameters.
#pragma once

#include <cstddef>
#include <string>

namespace cmfl::core {

enum class ScheduleKind {
  kConstant,  // s(t) = s0
  kInvSqrt,   // s(t) = s0 / sqrt(t)       (the paper's choice)
  kInvLinear, // s(t) = s0 / t             (stronger decay, for ablations)
  kInvPow,    // s(t) = s0 / t^p           (generalized; Theorem 1 only
              //                            needs (1/T)·Σ s_t → 0, which any
              //                            p > 0 satisfies)
};

class Schedule {
 public:
  /// `base` is s0.  Throws std::invalid_argument if base is negative, or if
  /// kind is kInvPow and exponent is not positive.
  Schedule(double base, ScheduleKind kind, double exponent = 0.5);

  static Schedule constant(double base) {
    return Schedule(base, ScheduleKind::kConstant);
  }
  static Schedule inv_sqrt(double base) {
    return Schedule(base, ScheduleKind::kInvSqrt);
  }
  static Schedule inv_linear(double base) {
    return Schedule(base, ScheduleKind::kInvLinear);
  }
  /// Slowly decaying thresholds (small `exponent`) track a drifting
  /// relevance band over long runs.
  static Schedule inv_pow(double base, double exponent) {
    return Schedule(base, ScheduleKind::kInvPow, exponent);
  }

  /// Value at iteration t (1-based; t = 0 is clamped to 1).
  double at(std::size_t t) const noexcept;

  double base() const noexcept { return base_; }
  ScheduleKind kind() const noexcept { return kind_; }
  std::string describe() const;

  double exponent() const noexcept { return exponent_; }

 private:
  double base_;
  ScheduleKind kind_;
  double exponent_;
};

}  // namespace cmfl::core

// Global-update estimator: the feedback loop at the heart of CMFL.
//
// The true global update of iteration t is unknowable before aggregation, so
// CMFL estimates it with the global update of iteration t-1 (paper §IV-A;
// justified empirically by the small ΔUpdate in Fig. 3).  The estimator also
// supports an exponential-moving-average extension — a natural smoothing of
// the same idea, used by the ablation bench.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::core {

class GlobalUpdateEstimator {
 public:
  /// `dim` is the flat update length; `ema_decay` in [0,1):
  ///   0   -> pure previous-update estimate (the paper's design);
  ///   >0  -> estimate = decay*old + (1-decay)*new on each observation.
  explicit GlobalUpdateEstimator(std::size_t dim, double ema_decay = 0.0);

  std::size_t dim() const noexcept { return estimate_.size(); }

  /// Current estimate of the upcoming global update (all zeros before the
  /// first observation — the cold-start state filters must accept).
  std::span<const float> estimate() const noexcept { return estimate_; }

  /// Feeds the actual global update of the just-finished iteration.
  /// Throws std::invalid_argument on size mismatch.
  void observe(std::span<const float> global_update);

  bool has_observation() const noexcept { return observed_; }

  void reset();

  /// Restores a state previously captured as (estimate(), has_observation())
  /// — used by crash-consistent checkpoint/resume (fl/checkpoint.h).
  /// Throws std::invalid_argument on size mismatch.
  void restore(std::span<const float> estimate, bool observed);

 private:
  std::vector<float> estimate_;
  double ema_decay_;
  bool observed_ = false;
};

/// Normalized difference between two sequential global updates (Eq. 8):
///   ΔUpdate_t = ‖u_{t+1} - u_t‖ / ‖u_t‖.
/// Returns +inf if u_t is zero but u_{t+1} is not; 0 if both are zero.
double normalized_update_difference(std::span<const float> prev,
                                    std::span<const float> next);

}  // namespace cmfl::core

#include "core/threshold.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::core {

Schedule::Schedule(double base, ScheduleKind kind, double exponent)
    : base_(base), kind_(kind), exponent_(exponent) {
  if (base < 0.0) {
    throw std::invalid_argument("Schedule: base must be non-negative");
  }
  if (kind == ScheduleKind::kInvPow && !(exponent > 0.0)) {
    throw std::invalid_argument("Schedule: inv_pow exponent must be positive");
  }
}

double Schedule::at(std::size_t t) const noexcept {
  if (t == 0) t = 1;
  switch (kind_) {
    case ScheduleKind::kConstant:
      return base_;
    case ScheduleKind::kInvSqrt:
      return base_ / std::sqrt(static_cast<double>(t));
    case ScheduleKind::kInvLinear:
      return base_ / static_cast<double>(t);
    case ScheduleKind::kInvPow:
      return base_ / std::pow(static_cast<double>(t), exponent_);
  }
  return base_;
}

std::string Schedule::describe() const {
  switch (kind_) {
    case ScheduleKind::kConstant:
      return std::to_string(base_);
    case ScheduleKind::kInvSqrt:
      return std::to_string(base_) + "/sqrt(t)";
    case ScheduleKind::kInvLinear:
      return std::to_string(base_) + "/t";
    case ScheduleKind::kInvPow:
      return std::to_string(base_) + "/t^" + std::to_string(exponent_);
  }
  return "?";
}

}  // namespace cmfl::core

#include "core/estimator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "tensor/vector_ops.h"

namespace cmfl::core {

GlobalUpdateEstimator::GlobalUpdateEstimator(std::size_t dim, double ema_decay)
    : estimate_(dim, 0.0f), ema_decay_(ema_decay) {
  if (dim == 0) {
    throw std::invalid_argument("GlobalUpdateEstimator: dim must be positive");
  }
  if (ema_decay < 0.0 || ema_decay >= 1.0) {
    throw std::invalid_argument(
        "GlobalUpdateEstimator: ema_decay must be in [0, 1)");
  }
}

void GlobalUpdateEstimator::observe(std::span<const float> global_update) {
  if (global_update.size() != estimate_.size()) {
    throw std::invalid_argument("GlobalUpdateEstimator: size mismatch");
  }
  if (!observed_ || ema_decay_ == 0.0) {
    std::copy(global_update.begin(), global_update.end(), estimate_.begin());
  } else {
    const auto decay = static_cast<float>(ema_decay_);
    const float blend = 1.0f - decay;
    for (std::size_t i = 0; i < estimate_.size(); ++i) {
      estimate_[i] = decay * estimate_[i] + blend * global_update[i];
    }
  }
  observed_ = true;
}

void GlobalUpdateEstimator::reset() {
  std::fill(estimate_.begin(), estimate_.end(), 0.0f);
  observed_ = false;
}

void GlobalUpdateEstimator::restore(std::span<const float> estimate,
                                    bool observed) {
  if (estimate.size() != estimate_.size()) {
    throw std::invalid_argument("GlobalUpdateEstimator: restore size mismatch");
  }
  std::copy(estimate.begin(), estimate.end(), estimate_.begin());
  observed_ = observed;
}

double normalized_update_difference(std::span<const float> prev,
                                    std::span<const float> next) {
  if (prev.size() != next.size()) {
    throw std::invalid_argument("normalized_update_difference: size mismatch");
  }
  if (prev.empty()) {
    throw std::invalid_argument("normalized_update_difference: empty vectors");
  }
  const double prev_norm = tensor::norm2(prev);
  std::vector<float> diff(prev.size());
  tensor::sub(next, prev, diff);
  const double diff_norm = tensor::norm2(diff);
  if (prev_norm == 0.0) {
    return diff_norm == 0.0 ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  return diff_norm / prev_norm;
}

}  // namespace cmfl::core

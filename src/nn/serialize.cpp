#include "nn/serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "util/durable_file.h"

namespace cmfl::nn {

namespace {
constexpr char kMagic[4] = {'C', 'M', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("load_params: truncated stream");
  return value;
}

/// Bytes left between the current read position and the end of a seekable
/// stream; std::nullopt when the stream cannot be seeked (pipes).
std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(here);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - here);
}
}  // namespace

void save_params(std::ostream& os, std::span<const float> params) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  os.write(reinterpret_cast<const char*>(params.data()),
           static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!os) throw std::runtime_error("save_params: stream write failed");
}

std::vector<float> load_params(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_params: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count > std::numeric_limits<std::size_t>::max() / sizeof(float)) {
    throw std::runtime_error("load_params: absurd element count");
  }
  // Bound the declared count by the bytes actually present *before*
  // allocating: a flipped length byte must raise a clean error, not a
  // multi-GB allocation attempt.
  if (const auto remaining = remaining_bytes(is)) {
    if (count * sizeof(float) > *remaining) {
      throw std::runtime_error(
          "load_params: declared count " + std::to_string(count) +
          " exceeds the " + std::to_string(*remaining) +
          " bytes remaining in the stream");
    }
    std::vector<float> params(count);
    is.read(reinterpret_cast<char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is) throw std::runtime_error("load_params: truncated stream");
    return params;
  }
  // Unseekable stream: read in bounded chunks so memory use tracks the
  // data actually delivered rather than the declared count.
  constexpr std::size_t kChunkFloats = 1 << 16;
  std::vector<float> params;
  std::uint64_t read_so_far = 0;
  while (read_so_far < count) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunkFloats, count - read_so_far));
    const std::size_t old = params.size();
    params.resize(old + chunk);
    is.read(reinterpret_cast<char*>(params.data() + old),
            static_cast<std::streamsize>(chunk * sizeof(float)));
    if (!is) throw std::runtime_error("load_params: truncated stream");
    read_so_far += chunk;
  }
  return params;
}

void save_params_file(const std::string& path,
                      std::span<const float> params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(os, params);
}

std::vector<float> load_params_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_params_file: cannot open " + path);
  return load_params(is);
}

void save_blob_file(const std::string& path,
                    const std::array<char, 4>& magic, std::uint32_t version,
                    std::span<const std::byte> payload) {
  // The sealed-file idiom (tmp + fsync + rename + CRC framing) has a single
  // implementation in util; this wrapper survives for API stability.
  util::save_sealed_file(path, magic, version, payload);
}

std::vector<std::byte> load_blob_file(const std::string& path,
                                      const std::array<char, 4>& magic,
                                      std::uint32_t version) {
  return util::load_sealed_file(path, magic, version);
}

}  // namespace cmfl::nn

#include "nn/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "util/crc32.h"

namespace cmfl::nn {

namespace {
constexpr char kMagic[4] = {'C', 'M', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("load_params: truncated stream");
  return value;
}

/// Bytes left between the current read position and the end of a seekable
/// stream; std::nullopt when the stream cannot be seeked (pipes).
std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(here);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - here);
}
}  // namespace

void save_params(std::ostream& os, std::span<const float> params) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  os.write(reinterpret_cast<const char*>(params.data()),
           static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!os) throw std::runtime_error("save_params: stream write failed");
}

std::vector<float> load_params(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_params: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count > std::numeric_limits<std::size_t>::max() / sizeof(float)) {
    throw std::runtime_error("load_params: absurd element count");
  }
  // Bound the declared count by the bytes actually present *before*
  // allocating: a flipped length byte must raise a clean error, not a
  // multi-GB allocation attempt.
  if (const auto remaining = remaining_bytes(is)) {
    if (count * sizeof(float) > *remaining) {
      throw std::runtime_error(
          "load_params: declared count " + std::to_string(count) +
          " exceeds the " + std::to_string(*remaining) +
          " bytes remaining in the stream");
    }
    std::vector<float> params(count);
    is.read(reinterpret_cast<char*>(params.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is) throw std::runtime_error("load_params: truncated stream");
    return params;
  }
  // Unseekable stream: read in bounded chunks so memory use tracks the
  // data actually delivered rather than the declared count.
  constexpr std::size_t kChunkFloats = 1 << 16;
  std::vector<float> params;
  std::uint64_t read_so_far = 0;
  while (read_so_far < count) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunkFloats, count - read_so_far));
    const std::size_t old = params.size();
    params.resize(old + chunk);
    is.read(reinterpret_cast<char*>(params.data() + old),
            static_cast<std::streamsize>(chunk * sizeof(float)));
    if (!is) throw std::runtime_error("load_params: truncated stream");
    read_so_far += chunk;
  }
  return params;
}

void save_params_file(const std::string& path,
                      std::span<const float> params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(os, params);
}

std::vector<float> load_params_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_params_file: cannot open " + path);
  return load_params(is);
}

void save_blob_file(const std::string& path,
                    const std::array<char, 4>& magic, std::uint32_t version,
                    std::span<const std::byte> payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("save_blob_file: cannot open " + tmp);
    os.write(magic.data(), magic.size());
    write_pod(os, version);
    write_pod(os, static_cast<std::uint64_t>(payload.size()));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    write_pod(os, util::crc32(payload));
    if (!os) {
      throw std::runtime_error("save_blob_file: write failed for " + tmp);
    }
  }
  // Flush file contents to stable storage before the rename makes the new
  // blob visible; otherwise a crash could publish a file whose data blocks
  // never hit disk.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_blob_file: rename to " + path + " failed");
  }
}

std::vector<std::byte> load_blob_file(const std::string& path,
                                      const std::array<char, 4>& magic,
                                      std::uint32_t version) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_blob_file: cannot open " + path);
  char file_magic[4];
  is.read(file_magic, sizeof(file_magic));
  if (!is || std::memcmp(file_magic, magic.data(), magic.size()) != 0) {
    throw std::runtime_error("load_blob_file: bad magic in " + path);
  }
  const auto file_version = read_pod<std::uint32_t>(is);
  if (file_version != version) {
    throw std::runtime_error("load_blob_file: unsupported version " +
                             std::to_string(file_version) + " in " + path);
  }
  const auto size = read_pod<std::uint64_t>(is);
  const auto remaining = remaining_bytes(is);
  if (!remaining || size + sizeof(std::uint32_t) > *remaining) {
    throw std::runtime_error("load_blob_file: truncated blob in " + path);
  }
  std::vector<std::byte> payload(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  const auto stored_crc = read_pod<std::uint32_t>(is);
  if (!is) throw std::runtime_error("load_blob_file: truncated blob in " + path);
  if (util::crc32(payload) != stored_crc) {
    throw std::runtime_error("load_blob_file: CRC mismatch in " + path +
                             " (torn or corrupted checkpoint)");
  }
  return payload;
}

}  // namespace cmfl::nn

#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace cmfl::nn {

namespace {
constexpr char kMagic[4] = {'C', 'M', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("load_params: truncated stream");
  return value;
}
}  // namespace

void save_params(std::ostream& os, std::span<const float> params) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  os.write(reinterpret_cast<const char*>(params.data()),
           static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!os) throw std::runtime_error("save_params: stream write failed");
}

std::vector<float> load_params(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_params: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  std::vector<float> params(count);
  is.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!is) throw std::runtime_error("load_params: truncated stream");
  return params;
}

void save_params_file(const std::string& path,
                      std::span<const float> params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(os, params);
}

std::vector<float> load_params_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_params_file: cannot open " + path);
  return load_params(is);
}

}  // namespace cmfl::nn

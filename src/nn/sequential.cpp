#include "nn/sequential.h"

#include <stdexcept>

namespace cmfl::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  if (!layers_.empty() && layers_.back()->out_dim() != layer->in_dim()) {
    throw std::invalid_argument(
        "Sequential::add: " + layers_.back()->name() + " outputs " +
        std::to_string(layers_.back()->out_dim()) + " but " + layer->name() +
        " expects " + std::to_string(layer->in_dim()));
  }
  layers_.push_back(std::move(layer));
}

std::size_t Sequential::in_dim() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.front()->in_dim();
}

std::size_t Sequential::out_dim() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.back()->out_dim();
}

std::string Sequential::summary() const {
  std::string s;
  for (const auto& layer : layers_) {
    if (!s.empty()) s += " -> ";
    s += layer->name();
  }
  return s;
}

void Sequential::forward(const tensor::Matrix& in, tensor::Matrix& out,
                         bool training) {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  tensor::Matrix current = in;
  tensor::Matrix next;
  for (auto& layer : layers_) {
    layer->forward(current, next, training);
    current = std::move(next);
    next = tensor::Matrix();
  }
  out = std::move(current);
}

tensor::Matrix Sequential::backward(const tensor::Matrix& grad_out) {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  tensor::Matrix grad = grad_out;
  tensor::Matrix grad_prev;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    (*it)->backward(grad, grad_prev);
    grad = std::move(grad_prev);
    grad_prev = tensor::Matrix();
  }
  return grad;
}

void Sequential::init_params(util::Rng& rng) {
  for (auto& layer : layers_) layer->init_params(rng);
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

ParamPack Sequential::params() {
  std::vector<std::span<float>> views;
  for (auto& layer : layers_) layer->collect_params(views);
  return ParamPack(std::move(views));
}

ParamPack Sequential::grads() {
  std::vector<std::span<float>> views;
  for (auto& layer : layers_) layer->collect_grads(views);
  return ParamPack(std::move(views));
}

}  // namespace cmfl::nn

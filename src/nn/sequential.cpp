#include "nn/sequential.h"

#include <stdexcept>

namespace cmfl::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  if (!layers_.empty() && layers_.back()->out_dim() != layer->in_dim()) {
    throw std::invalid_argument(
        "Sequential::add: " + layers_.back()->name() + " outputs " +
        std::to_string(layers_.back()->out_dim()) + " but " + layer->name() +
        " expects " + std::to_string(layer->in_dim()));
  }
  layers_.push_back(std::move(layer));
}

std::size_t Sequential::in_dim() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.front()->in_dim();
}

std::size_t Sequential::out_dim() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.back()->out_dim();
}

std::string Sequential::summary() const {
  std::string s;
  for (const auto& layer : layers_) {
    if (!s.empty()) s += " -> ";
    s += layer->name();
  }
  return s;
}

void Sequential::forward(const tensor::Matrix& in, tensor::Matrix& out,
                         bool training) {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  const std::size_t count = layers_.size();
  if (count == 1) {
    layers_[0]->forward(in, out, training);
    return;
  }
  // acts_[i] receives layer i's output; layer i+1 reads it in place.  The
  // vector keeps its Matrix elements (and their heap buffers) across steps.
  if (acts_.size() != count - 1) acts_.resize(count - 1);
  layers_[0]->forward(in, acts_[0], training);
  for (std::size_t i = 1; i + 1 < count; ++i) {
    layers_[i]->forward(acts_[i - 1], acts_[i], training);
  }
  layers_[count - 1]->forward(acts_[count - 2], out, training);
}

const tensor::Matrix& Sequential::backward(const tensor::Matrix& grad_out) {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  const tensor::Matrix* grad = &grad_out;
  tensor::Matrix* next = &gbuf_a_;
  tensor::Matrix* spare = &gbuf_b_;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    (*it)->backward(*grad, *next);
    grad = next;
    std::swap(next, spare);
  }
  return *grad;
}

void Sequential::init_params(util::Rng& rng) {
  for (auto& layer : layers_) layer->init_params(rng);
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

ParamPack Sequential::params() {
  std::vector<std::span<float>> views;
  for (auto& layer : layers_) layer->collect_params(views);
  return ParamPack(std::move(views));
}

ParamPack Sequential::grads() {
  std::vector<std::span<float>> views;
  for (auto& layer : layers_) layer->collect_grads(views);
  return ParamPack(std::move(views));
}

}  // namespace cmfl::nn

#include "nn/feed_forward.h"

#include <memory>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"

namespace cmfl::nn {

EvalResult merge(const EvalResult& a, const EvalResult& b) noexcept {
  EvalResult out;
  out.samples = a.samples + b.samples;
  if (out.samples == 0) return out;
  const double wa = static_cast<double>(a.samples);
  const double wb = static_cast<double>(b.samples);
  out.loss = (a.loss * wa + b.loss * wb) / (wa + wb);
  out.accuracy = (a.accuracy * wa + b.accuracy * wb) / (wa + wb);
  return out;
}

FeedForward::FeedForward(Sequential net) : net_(std::move(net)) {
  if (net_.layer_count() == 0) {
    throw std::invalid_argument("FeedForward: empty network");
  }
}

ParamPack& FeedForward::params_pack() {
  if (!packs_built_) {
    params_cache_ = net_.params();
    grads_cache_ = net_.grads();
    packs_built_ = true;
  }
  return params_cache_;
}

ParamPack& FeedForward::grads_pack() {
  params_pack();  // builds both
  return grads_cache_;
}

std::size_t FeedForward::param_count() { return params_pack().total_size(); }

void FeedForward::get_params(std::span<float> out) {
  params_pack().copy_to(out);
}

void FeedForward::set_params(std::span<const float> in) {
  params_pack().copy_from(in);
}

void FeedForward::get_grads(std::span<float> out) {
  grads_pack().copy_to(out);
}

double FeedForward::compute_grads(const tensor::Matrix& x,
                                  std::span<const int> y) {
  net_.zero_grads();
  net_.forward(x, logits_, /*training=*/true);
  const double loss = softmax_cross_entropy(logits_, y, loss_grad_);
  net_.backward(loss_grad_);
  return loss;
}

double FeedForward::train_batch(const tensor::Matrix& x,
                                std::span<const int> y, float lr) {
  const double loss = compute_grads(x, y);
  params_pack().axpy_from(-lr, grads_pack());
  return loss;
}

double FeedForward::train_batch(const tensor::Matrix& x,
                                std::span<const int> y, Optimizer& opt,
                                float lr) {
  const double loss = compute_grads(x, y);
  opt.step(params_pack(), grads_pack(), lr);
  return loss;
}

EvalResult FeedForward::evaluate(const tensor::Matrix& x,
                                 std::span<const int> y) {
  net_.forward(x, logits_, /*training=*/false);
  tensor::Matrix probs = softmax(logits_);
  EvalResult result;
  result.samples = x.rows();
  result.accuracy = accuracy(logits_, y);
  // Mean negative log-likelihood from the already-computed probabilities.
  double loss = 0.0;
  for (std::size_t r = 0; r < logits_.rows(); ++r) {
    const double p = std::max(
        1e-12,
        static_cast<double>(probs.at(r, static_cast<std::size_t>(y[r]))));
    loss -= std::log(p);
  }
  result.loss = x.rows() ? loss / static_cast<double>(x.rows()) : 0.0;
  return result;
}

tensor::Matrix FeedForward::predict(const tensor::Matrix& x) {
  tensor::Matrix logits;
  net_.forward(x, logits, /*training=*/false);
  return logits;
}

FeedForward make_digits_cnn(const CnnSpec& spec, util::Rng& rng) {
  if (spec.image_size % 4 != 0) {
    throw std::invalid_argument(
        "make_digits_cnn: image_size must be divisible by 4 (two 2x2 pools)");
  }
  Sequential net;
  Conv2dSpec c1;
  c1.in_channels = 1;
  c1.in_height = c1.in_width = spec.image_size;
  c1.out_channels = spec.conv1_filters;
  c1.kernel = spec.kernel;
  c1.padding = (spec.kernel - 1) / 2;
  auto conv1 = std::make_unique<Conv2d>(c1);
  const std::size_t h1 = conv1->out_height();
  net.add(std::move(conv1));
  net.add(std::make_unique<ReLU>(spec.conv1_filters * h1 * h1));
  Pool2dSpec p1{spec.conv1_filters, h1, h1, 2};
  net.add(std::make_unique<MaxPool2d>(p1));

  const std::size_t h2_in = h1 / 2;
  Conv2dSpec c2;
  c2.in_channels = spec.conv1_filters;
  c2.in_height = c2.in_width = h2_in;
  c2.out_channels = spec.conv2_filters;
  c2.kernel = spec.kernel;
  c2.padding = (spec.kernel - 1) / 2;
  auto conv2 = std::make_unique<Conv2d>(c2);
  const std::size_t h2 = conv2->out_height();
  net.add(std::move(conv2));
  net.add(std::make_unique<ReLU>(spec.conv2_filters * h2 * h2));
  Pool2dSpec p2{spec.conv2_filters, h2, h2, 2};
  net.add(std::make_unique<MaxPool2d>(p2));

  const std::size_t flat = spec.conv2_filters * (h2 / 2) * (h2 / 2);
  net.add(std::make_unique<Dense>(flat, spec.fc_width));
  net.add(std::make_unique<ReLU>(spec.fc_width));
  net.add(std::make_unique<Dense>(spec.fc_width, spec.classes));

  FeedForward model(std::move(net));
  model.init_params(rng);
  return model;
}

FeedForward make_mlp(std::size_t in, std::vector<std::size_t> hidden,
                     std::size_t classes, util::Rng& rng) {
  Sequential net;
  std::size_t prev = in;
  for (std::size_t width : hidden) {
    net.add(std::make_unique<Dense>(prev, width));
    net.add(std::make_unique<ReLU>(width));
    prev = width;
  }
  net.add(std::make_unique<Dense>(prev, classes));
  FeedForward model(std::move(net));
  model.init_params(rng);
  return model;
}

}  // namespace cmfl::nn

// Single-layer LSTM over fixed-length sequences with full BPTT.
//
// Gate layout follows the classic formulation (Hochreiter & Schmidhuber):
//   i_t = σ(W_i x_t + U_i h_{t-1} + b_i)       input gate
//   f_t = σ(W_f x_t + U_f h_{t-1} + b_f)       forget gate
//   g_t = tanh(W_g x_t + U_g h_{t-1} + b_g)    candidate
//   o_t = σ(W_o x_t + U_o h_{t-1} + b_o)       output gate
//   c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//   h_t = o_t ⊙ tanh(c_t)
// The four gates are stored stacked as rows [i; f; g; o] of a single (4H×E)
// input matrix W and (4H×H) recurrent matrix U.
//
// All per-step state (gate activations, cell states, BPTT scratch) lives in
// buffers owned by the Lstm and reused across steps, so a steady-state
// train step allocates nothing.  Inputs are cached by pointer: the `inputs`
// vector passed to forward() must stay alive and unmodified until the
// matching backward() completes (LstmLm keeps the embedded steps as
// members; tests keep them on the stack).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace cmfl::nn {

class Lstm {
 public:
  Lstm(std::size_t input_dim, std::size_t hidden_dim);

  std::size_t input_dim() const noexcept { return in_; }
  std::size_t hidden_dim() const noexcept { return hidden_; }

  /// Processes a sequence of `steps` input batches (each batch × input_dim,
  /// all with the same batch size), starting from zero state.  Returns the
  /// final hidden state h_T (batch × hidden_dim) — a reference into the
  /// internal step cache, valid until the next forward().  Caches everything
  /// needed for backward().
  const tensor::Matrix& forward(const std::vector<tensor::Matrix>& inputs);

  /// All hidden states h_1..h_T from the last forward pass (for stacking a
  /// second LSTM layer on top).  Returns copies; the stacked-layer path is
  /// not allocation-free.
  std::vector<tensor::Matrix> hidden_states() const;

  /// BPTT given d(loss)/d(h_T).  Accumulates parameter gradients and returns
  /// d(loss)/d(x_t) for each timestep (same layout as `inputs`).  The
  /// reference points at an internal buffer, valid until the next backward.
  const std::vector<tensor::Matrix>& backward(
      const tensor::Matrix& grad_h_last);

  /// BPTT with an external gradient on every hidden state (grad_h[t] is
  /// d(loss)/d(h_{t+1})); the stacked-layer case.  Same return as backward().
  const std::vector<tensor::Matrix>& backward_steps(
      const std::vector<tensor::Matrix>& grad_h);

  void init_params(util::Rng& rng);
  void zero_grads();

  void collect_params(std::vector<std::span<float>>& out);
  void collect_grads(std::vector<std::span<float>>& out);

 private:
  struct StepCache {
    const tensor::Matrix* x = nullptr;  // forward input (caller-owned)
    tensor::Matrix i, f, g, o;  // post-nonlinearity gate activations
    tensor::Matrix c;           // new cell state
    tensor::Matrix tanh_c;      // tanh(c)
    tensor::Matrix h;           // new hidden state
  };

  const tensor::Matrix& h_prev(std::size_t t) const {
    return t == 0 ? h0_ : cache_[t - 1].h;
  }
  const tensor::Matrix& c_prev(std::size_t t) const {
    return t == 0 ? c0_ : cache_[t - 1].c;
  }

  /// Shared BPTT loop; grad_h[t] == nullptr means a zero gradient for that
  /// step (skipping the add of an all-+0 matrix is a bitwise no-op: the dh
  /// accumulator starts at +0 and additions can never produce −0).
  const std::vector<tensor::Matrix>& run_bptt(
      const tensor::Matrix* const* grad_h);

  std::size_t in_;
  std::size_t hidden_;
  tensor::Matrix w_;  // 4H × in   (rows: [i; f; g; o])
  tensor::Matrix u_;  // 4H × H
  std::vector<float> b_;  // 4H
  tensor::Matrix gw_;
  tensor::Matrix gu_;
  std::vector<float> gb_;
  // Step caches + workspaces, sized on first use and reused across steps:
  std::vector<StepCache> cache_;
  tensor::Matrix h0_, c0_;    // zero initial state
  tensor::Matrix pre_, rec_;  // forward gate pre-activation scratch
  tensor::Matrix dh_, dc_, dpre_;  // BPTT carry + gate-gradient scratch
  tensor::Matrix gwb_, gub_;       // per-step parameter-gradient scratch
  std::vector<tensor::Matrix> grad_inputs_;
  std::vector<const tensor::Matrix*> ghp_;  // per-step grad pointers
};

}  // namespace cmfl::nn

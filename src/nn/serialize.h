// Binary checkpointing of flat parameter vectors, and the sealed-blob file
// framing the crash-consistent trainer checkpoints build on.
//
// Parameter format (little-endian): magic "CMFL" (4 bytes), u32 version,
// u64 count, count floats.  The same framing primitives are reused by the
// net wire layer for update messages.
//
// Sealed blobs add what a crash-consistent checkpoint needs on top:
// magic (caller-chosen, 4 bytes), u32 version, u64 payload size, payload,
// u32 CRC-32 over the payload.  save_blob_file() writes to `path.tmp`,
// fsyncs, then renames over `path`, so a crash mid-write can never leave a
// half-written file at the final path — a reader sees either the complete
// old checkpoint or the complete new one, and the CRC rejects torn or
// bit-flipped payloads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace cmfl::nn {

/// Writes the checkpoint; throws std::runtime_error on stream failure.
void save_params(std::ostream& os, std::span<const float> params);

/// Reads a checkpoint; throws std::runtime_error on bad magic, version, or
/// a truncated stream.  The declared element count is bounded by the bytes
/// actually present before any allocation happens, so a corrupted length
/// field raises a clean error instead of attempting a multi-GB allocation.
std::vector<float> load_params(std::istream& is);

/// File variants.
void save_params_file(const std::string& path, std::span<const float> params);
std::vector<float> load_params_file(const std::string& path);

/// Crash-consistent sealed-blob file: atomic rename-on-write plus CRC-32
/// integrity.  `magic` identifies the blob kind (e.g. "CMCK" for trainer
/// checkpoints); `version` is the caller's payload schema version.
void save_blob_file(const std::string& path,
                    const std::array<char, 4>& magic, std::uint32_t version,
                    std::span<const std::byte> payload);

/// Loads a sealed blob, verifying magic, version, declared size, and CRC.
/// Throws std::runtime_error on any mismatch, truncation, or corruption.
std::vector<std::byte> load_blob_file(const std::string& path,
                                      const std::array<char, 4>& magic,
                                      std::uint32_t version);

}  // namespace cmfl::nn

// Binary checkpointing of flat parameter vectors.
//
// Format (little-endian): magic "CMFL" (4 bytes), u32 version, u64 count,
// count floats.  The same framing primitives are reused by the net wire
// layer for update messages.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace cmfl::nn {

/// Writes the checkpoint; throws std::runtime_error on stream failure.
void save_params(std::ostream& os, std::span<const float> params);

/// Reads a checkpoint; throws std::runtime_error on bad magic, version, or a
/// truncated stream.
std::vector<float> load_params(std::istream& is);

/// File variants.
void save_params_file(const std::string& path, std::span<const float> params);
std::vector<float> load_params_file(const std::string& path);

}  // namespace cmfl::nn

#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::nn {

float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

ReLU::ReLU(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("ReLU: dim must be positive");
}

std::string ReLU::name() const { return "ReLU(" + std::to_string(dim_) + ")"; }

void ReLU::forward(const tensor::Matrix& in, tensor::Matrix& out,
                   bool /*training*/) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("ReLU::forward: input width mismatch");
  }
  cached_in_ = &in;
  out.resize(in.rows(), in.cols());
  auto src = in.flat();
  auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float v = src[i];
    dst[i] = v > 0.0f ? v : 0.0f;
  }
}

void ReLU::backward(const tensor::Matrix& grad_out, tensor::Matrix& grad_in) {
  if (cached_in_ == nullptr || grad_out.rows() != cached_in_->rows() ||
      grad_out.cols() != dim_) {
    throw std::invalid_argument("ReLU::backward: gradient shape mismatch");
  }
  grad_in.resize(grad_out.rows(), grad_out.cols());
  auto go = grad_out.flat();
  auto gi = grad_in.flat();
  auto ci = cached_in_->flat();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    gi[i] = ci[i] <= 0.0f ? 0.0f : go[i];
  }
}

Tanh::Tanh(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("Tanh: dim must be positive");
}

std::string Tanh::name() const { return "Tanh(" + std::to_string(dim_) + ")"; }

void Tanh::forward(const tensor::Matrix& in, tensor::Matrix& out,
                   bool /*training*/) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("Tanh::forward: input width mismatch");
  }
  out.resize(in.rows(), in.cols());
  auto src = in.flat();
  auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::tanh(src[i]);
  cached_out_ = &out;
}

void Tanh::backward(const tensor::Matrix& grad_out, tensor::Matrix& grad_in) {
  if (cached_out_ == nullptr || grad_out.rows() != cached_out_->rows() ||
      grad_out.cols() != dim_) {
    throw std::invalid_argument("Tanh::backward: gradient shape mismatch");
  }
  grad_in.resize(grad_out.rows(), grad_out.cols());
  auto go = grad_out.flat();
  auto gi = grad_in.flat();
  auto co = cached_out_->flat();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    gi[i] = go[i] * (1.0f - co[i] * co[i]);
  }
}

}  // namespace cmfl::nn

#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::nn {

float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

ReLU::ReLU(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("ReLU: dim must be positive");
}

std::string ReLU::name() const { return "ReLU(" + std::to_string(dim_) + ")"; }

void ReLU::forward(const tensor::Matrix& in, tensor::Matrix& out,
                   bool /*training*/) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("ReLU::forward: input width mismatch");
  }
  cached_in_ = in;
  out = in;
  for (float& v : out.flat()) v = v > 0.0f ? v : 0.0f;
}

void ReLU::backward(const tensor::Matrix& grad_out, tensor::Matrix& grad_in) {
  if (grad_out.rows() != cached_in_.rows() || grad_out.cols() != dim_) {
    throw std::invalid_argument("ReLU::backward: gradient shape mismatch");
  }
  grad_in = grad_out;
  auto gi = grad_in.flat();
  auto ci = cached_in_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    if (ci[i] <= 0.0f) gi[i] = 0.0f;
  }
}

Tanh::Tanh(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("Tanh: dim must be positive");
}

std::string Tanh::name() const { return "Tanh(" + std::to_string(dim_) + ")"; }

void Tanh::forward(const tensor::Matrix& in, tensor::Matrix& out,
                   bool /*training*/) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("Tanh::forward: input width mismatch");
  }
  out = in;
  for (float& v : out.flat()) v = std::tanh(v);
  cached_out_ = out;
}

void Tanh::backward(const tensor::Matrix& grad_out, tensor::Matrix& grad_in) {
  if (grad_out.rows() != cached_out_.rows() || grad_out.cols() != dim_) {
    throw std::invalid_argument("Tanh::backward: gradient shape mismatch");
  }
  grad_in = grad_out;
  auto gi = grad_in.flat();
  auto co = cached_out_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= 1.0f - co[i] * co[i];
}

}  // namespace cmfl::nn

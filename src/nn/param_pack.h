// Flattening utilities: a ParamPack is an ordered list of spans over a
// model's parameter (or gradient) storage, with copy-in / copy-out to a
// single contiguous vector.  This flat vector is the "update" currency of
// the whole repository: FL clients ship it, the CMFL core scores it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmfl::nn {

class ParamPack {
 public:
  ParamPack() = default;
  explicit ParamPack(std::vector<std::span<float>> views);

  std::size_t total_size() const noexcept { return total_; }
  std::size_t segments() const noexcept { return views_.size(); }

  /// Copies all segments, in order, into `out` (size must equal
  /// total_size(); throws std::invalid_argument otherwise).
  void copy_to(std::span<float> out) const;

  /// Copies `in` back into the underlying storage.
  void copy_from(std::span<const float> in);

  /// Convenience: materializes a flat vector.
  std::vector<float> to_vector() const;

  /// dst += alpha * src over the underlying storage (src flat).
  void axpy_from(float alpha, std::span<const float> src);

  /// dst += alpha * src, where src is another pack with the identical
  /// segmentation (e.g. the gradient pack of the same model).  Avoids the
  /// flat-vector materialization of axpy_from.
  void axpy_from(float alpha, const ParamPack& src);

  /// Zeroes the underlying storage.
  void zero();

 private:
  std::vector<std::span<float>> views_;
  std::size_t total_ = 0;
};

}  // namespace cmfl::nn

#include "nn/pool.h"

#include <limits>
#include <stdexcept>

namespace cmfl::nn {

MaxPool2d::MaxPool2d(const Pool2dSpec& spec) : spec_(spec) {
  if (spec.channels == 0 || spec.in_height == 0 || spec.in_width == 0 ||
      spec.window == 0) {
    throw std::invalid_argument("MaxPool2d: dimensions must be positive");
  }
  if (spec.in_height % spec.window != 0 || spec.in_width % spec.window != 0) {
    throw std::invalid_argument(
        "MaxPool2d: input dims must be divisible by the window");
  }
  out_h_ = spec.in_height / spec.window;
  out_w_ = spec.in_width / spec.window;
}

std::size_t MaxPool2d::in_dim() const noexcept {
  return spec_.channels * spec_.in_height * spec_.in_width;
}

std::size_t MaxPool2d::out_dim() const noexcept {
  return spec_.channels * out_h_ * out_w_;
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(spec_.window) + "x" +
         std::to_string(spec_.window) + ")";
}

void MaxPool2d::forward(const tensor::Matrix& in, tensor::Matrix& out,
                        bool /*training*/) {
  if (in.cols() != in_dim()) {
    throw std::invalid_argument("MaxPool2d::forward: input width mismatch");
  }
  const std::size_t batch = in.rows();
  cached_batch_ = batch;
  out.resize(batch, out_dim());
  argmax_.resize(batch * out_dim());
  const auto ih = spec_.in_height, iw = spec_.in_width, win = spec_.window;
  for (std::size_t n = 0; n < batch; ++n) {
    auto x = in.row(n);
    auto y = out.row(n);
    std::size_t* amax = argmax_.data() + n * out_dim();
    for (std::size_t c = 0; c < spec_.channels; ++c) {
      const float* xp = x.data() + c * ih * iw;
      for (std::size_t oh = 0; oh < out_h_; ++oh) {
        for (std::size_t ow = 0; ow < out_w_; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dh = 0; dh < win; ++dh) {
            for (std::size_t dw = 0; dw < win; ++dw) {
              const std::size_t idx =
                  (oh * win + dh) * iw + (ow * win + dw);
              if (xp[idx] > best) {
                best = xp[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = (c * out_h_ + oh) * out_w_ + ow;
          y[out_idx] = best;
          amax[out_idx] = c * ih * iw + best_idx;
        }
      }
    }
  }
}

void MaxPool2d::backward(const tensor::Matrix& grad_out,
                         tensor::Matrix& grad_in) {
  if (grad_out.cols() != out_dim() || grad_out.rows() != cached_batch_) {
    throw std::invalid_argument("MaxPool2d::backward: gradient shape mismatch");
  }
  grad_in.resize(cached_batch_, in_dim());
  grad_in.zero();  // scatter-accumulate below needs a zeroed base
  for (std::size_t n = 0; n < cached_batch_; ++n) {
    auto gy = grad_out.row(n);
    auto gx = grad_in.row(n);
    const std::size_t* amax = argmax_.data() + n * out_dim();
    for (std::size_t i = 0; i < gy.size(); ++i) gx[amax[i]] += gy[i];
  }
}

}  // namespace cmfl::nn

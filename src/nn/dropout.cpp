#include "nn/dropout.h"

#include <algorithm>
#include <stdexcept>

namespace cmfl::nn {

Dropout::Dropout(std::size_t dim, float rate, std::uint64_t seed)
    : dim_(dim), rate_(rate), rng_(seed) {
  if (dim == 0) throw std::invalid_argument("Dropout: dim must be positive");
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(rate_) + ")";
}

void Dropout::forward(const tensor::Matrix& in, tensor::Matrix& out,
                      bool training) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("Dropout::forward: input width mismatch");
  }
  last_training_ = training && rate_ > 0.0f;
  out.resize(in.rows(), in.cols());
  auto src = in.flat();
  auto o = out.flat();
  if (!last_training_) {
    std::copy(src.begin(), src.end(), o.begin());
    return;
  }
  const float keep_scale = 1.0f / (1.0f - rate_);
  mask_.resize(in.rows(), in.cols());
  auto m = mask_.flat();
  for (std::size_t i = 0; i < o.size(); ++i) {
    m[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    o[i] = src[i] * m[i];
  }
}

void Dropout::backward(const tensor::Matrix& grad_out,
                       tensor::Matrix& grad_in) {
  grad_in.resize(grad_out.rows(), grad_out.cols());
  auto go = grad_out.flat();
  auto gi = grad_in.flat();
  if (!last_training_) {
    std::copy(go.begin(), go.end(), gi.begin());
    return;
  }
  if (!grad_in.same_shape(mask_)) {
    throw std::invalid_argument("Dropout::backward: gradient shape mismatch");
  }
  auto m = mask_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] = go[i] * m[i];
}

}  // namespace cmfl::nn

#include "nn/dropout.h"

#include <stdexcept>

namespace cmfl::nn {

Dropout::Dropout(std::size_t dim, float rate, std::uint64_t seed)
    : dim_(dim), rate_(rate), rng_(seed) {
  if (dim == 0) throw std::invalid_argument("Dropout: dim must be positive");
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(rate_) + ")";
}

void Dropout::forward(const tensor::Matrix& in, tensor::Matrix& out,
                      bool training) {
  if (in.cols() != dim_) {
    throw std::invalid_argument("Dropout::forward: input width mismatch");
  }
  last_training_ = training && rate_ > 0.0f;
  out = in;
  if (!last_training_) return;
  const float keep_scale = 1.0f / (1.0f - rate_);
  mask_ = tensor::Matrix(in.rows(), in.cols());
  auto m = mask_.flat();
  auto o = out.flat();
  for (std::size_t i = 0; i < o.size(); ++i) {
    m[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    o[i] *= m[i];
  }
}

void Dropout::backward(const tensor::Matrix& grad_out,
                       tensor::Matrix& grad_in) {
  grad_in = grad_out;
  if (!last_training_) return;
  if (!grad_in.same_shape(mask_)) {
    throw std::invalid_argument("Dropout::backward: gradient shape mismatch");
  }
  auto gi = grad_in.flat();
  auto m = mask_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= m[i];
}

}  // namespace cmfl::nn

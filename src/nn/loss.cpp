#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmfl::nn {

tensor::Matrix softmax(const tensor::Matrix& logits) {
  tensor::Matrix probs;
  softmax_into(logits, probs);
  return probs;
}

void softmax_into(const tensor::Matrix& logits, tensor::Matrix& probs) {
  probs.resize(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto in = logits.row(r);
    auto out = probs.row(r);
    const float mx = *std::max_element(in.begin(), in.end());
    double sum = 0.0;
    for (std::size_t c = 0; c < in.size(); ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (float& v : out) v *= inv;
  }
}

double softmax_cross_entropy(const tensor::Matrix& logits,
                             std::span<const int> labels,
                             tensor::Matrix& grad) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy: batch size mismatch");
  }
  if (logits.rows() == 0) {
    throw std::invalid_argument("softmax_cross_entropy: empty batch");
  }
  softmax_into(logits, grad);
  const double inv_batch = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= logits.cols()) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    auto g = grad.row(r);
    // p is clamped away from 0 so log stays finite under float underflow.
    const double p = std::max(1e-12, static_cast<double>(g[y]));
    loss -= std::log(p);
    g[static_cast<std::size_t>(y)] -= 1.0f;
    for (float& v : g) v = static_cast<float>(v * inv_batch);
  }
  return loss * inv_batch;
}

std::vector<int> argmax_rows(const tensor::Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto row = logits.row(r);
    out[r] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

double accuracy(const tensor::Matrix& logits, std::span<const int> labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("accuracy: batch size mismatch");
  }
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto row = logits.row(r);
    const auto pred = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
    correct += static_cast<std::size_t>(pred == labels[r]);
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double mse(const tensor::Matrix& pred, const tensor::Matrix& target,
           tensor::Matrix& grad) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  if (pred.rows() == 0) throw std::invalid_argument("mse: empty batch");
  grad = tensor::Matrix(pred.rows(), pred.cols());
  const double inv = 1.0 / static_cast<double>(pred.size());
  double loss = 0.0;
  auto p = pred.flat();
  auto t = target.flat();
  auto g = grad.flat();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - static_cast<double>(t[i]);
    loss += d * d;
    g[i] = static_cast<float>(2.0 * d * inv);
  }
  return loss * inv;
}

double hinge(std::span<const float> scores, std::span<const int> labels,
             std::span<float> grad) {
  if (scores.size() != labels.size() || grad.size() != scores.size()) {
    throw std::invalid_argument("hinge: size mismatch");
  }
  if (scores.empty()) throw std::invalid_argument("hinge: empty batch");
  const double inv = 1.0 / static_cast<double>(scores.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1 && labels[i] != -1) {
      throw std::invalid_argument("hinge: labels must be +1 or -1");
    }
    const double margin = 1.0 - labels[i] * static_cast<double>(scores[i]);
    if (margin > 0.0) {
      loss += margin;
      grad[i] = static_cast<float>(-labels[i] * inv);
    } else {
      grad[i] = 0.0f;
    }
  }
  return loss * inv;
}

}  // namespace cmfl::nn

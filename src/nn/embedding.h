// Token embedding table for the next-word-prediction LSTM.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace cmfl::nn {

class Embedding {
 public:
  /// vocab × dim lookup table.
  Embedding(std::size_t vocab, std::size_t dim);

  std::size_t vocab() const noexcept { return vocab_; }
  std::size_t dim() const noexcept { return dim_; }

  /// Gathers rows for `tokens` (each in [0, vocab)) into a (batch × dim)
  /// matrix.  Throws std::invalid_argument on out-of-range tokens.
  tensor::Matrix lookup(std::span<const int> tokens) const;

  /// Allocation-free form: gathers into `out` (resized to batch × dim,
  /// reusing capacity).
  void lookup_into(std::span<const int> tokens, tensor::Matrix& out) const;

  /// Scatters `grad` (batch × dim) back into the gradient table for the
  /// same token batch used in lookup().
  void accumulate_grad(std::span<const int> tokens, const tensor::Matrix& grad);

  void init_params(util::Rng& rng);
  void zero_grads();

  std::span<float> params() noexcept { return table_.flat(); }
  std::span<float> grads() noexcept { return grad_table_.flat(); }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  tensor::Matrix table_;       // vocab × dim
  tensor::Matrix grad_table_;  // vocab × dim
};

}  // namespace cmfl::nn

// First-order optimizers over flat parameter/gradient packs.
//
// The federated clients default to plain SGD (the paper's setting), but the
// local solver is pluggable: momentum and Adam are provided both for the
// optimizer ablations and for downstream users who want stronger local
// training.  Optimizers own their state vectors (sized lazily on first
// step) so one instance serves one model.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/param_pack.h"

namespace cmfl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Applies one update: params ← params − f(grads; state, lr).
  /// `lr` is the (possibly schedule-decayed) learning rate for this step.
  /// Throws std::invalid_argument if the pack size changes between steps.
  virtual void step(ParamPack& params, const ParamPack& grads, float lr) = 0;

  /// Clears momentum/moment state (e.g. when a client adopts a fresh
  /// global model and should not carry stale momentum across rounds).
  virtual void reset() {}
};

/// Plain SGD: params -= lr * grads.  Stateless.
class Sgd final : public Optimizer {
 public:
  std::string name() const override { return "sgd"; }
  void step(ParamPack& params, const ParamPack& grads, float lr) override;
};

/// Heavy-ball momentum: v ← μ·v + g;  params -= lr·v.
class MomentumSgd final : public Optimizer {
 public:
  explicit MomentumSgd(float momentum = 0.9f);
  std::string name() const override;
  void step(ParamPack& params, const ParamPack& grads, float lr) override;
  void reset() override;

 private:
  float momentum_;
  std::vector<float> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);
  std::string name() const override { return "adam"; }
  void step(ParamPack& params, const ParamPack& grads, float lr) override;
  void reset() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  std::vector<float> m_;
  std::vector<float> v_;
  long long t_ = 0;
};

/// Factory: "sgd" | "momentum" | "momentum:<mu>" | "adam".
std::unique_ptr<Optimizer> make_optimizer(const std::string& spec);

}  // namespace cmfl::nn

#include "nn/conv2d.h"

#include <stdexcept>

#include "tensor/init.h"
#include "tensor/kernels.h"

namespace cmfl::nn {

Conv2d::Conv2d(const Conv2dSpec& spec) : spec_(spec) {
  if (spec.in_channels == 0 || spec.out_channels == 0 || spec.kernel == 0 ||
      spec.in_height == 0 || spec.in_width == 0) {
    throw std::invalid_argument("Conv2d: dimensions must be positive");
  }
  if (spec.in_height + 2 * spec.padding < spec.kernel ||
      spec.in_width + 2 * spec.padding < spec.kernel) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  out_h_ = spec.in_height + 2 * spec.padding - spec.kernel + 1;
  out_w_ = spec.in_width + 2 * spec.padding - spec.kernel + 1;
  const std::size_t wsize =
      spec.out_channels * spec.in_channels * spec.kernel * spec.kernel;
  w_.assign(wsize, 0.0f);
  gw_.assign(wsize, 0.0f);
  b_.assign(spec.out_channels, 0.0f);
  gb_.assign(spec.out_channels, 0.0f);
}

std::size_t Conv2d::in_dim() const noexcept {
  return spec_.in_channels * spec_.in_height * spec_.in_width;
}

std::size_t Conv2d::out_dim() const noexcept {
  return spec_.out_channels * out_h_ * out_w_;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(spec_.in_channels) + "x" +
         std::to_string(spec_.in_height) + "x" + std::to_string(spec_.in_width) +
         " -> " + std::to_string(spec_.out_channels) + "x" +
         std::to_string(out_h_) + "x" + std::to_string(out_w_) + ", k=" +
         std::to_string(spec_.kernel) + ")";
}

float& Conv2d::weight(std::size_t oc, std::size_t ic, std::size_t kh,
                      std::size_t kw) noexcept {
  return w_[((oc * spec_.in_channels + ic) * spec_.kernel + kh) * spec_.kernel +
            kw];
}

float Conv2d::weight(std::size_t oc, std::size_t ic, std::size_t kh,
                     std::size_t kw) const noexcept {
  return w_[((oc * spec_.in_channels + ic) * spec_.kernel + kh) * spec_.kernel +
            kw];
}

void Conv2d::forward(const tensor::Matrix& in, tensor::Matrix& out,
                     bool /*training*/) {
  if (in.cols() != in_dim()) {
    throw std::invalid_argument("Conv2d::forward: input width mismatch");
  }
  cached_in_ = in;
  const std::size_t batch = in.rows();
  out = tensor::Matrix(batch, out_dim());
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  // Each batch row writes a disjoint output row, so the forward pass shards
  // across the kernel pool when large enough (backward stays serial: it
  // accumulates into shared gw_/gb_).
  const std::size_t macs_per_row =
      spec_.out_channels * out_h_ * out_w_ * spec_.in_channels * k * k;
  tensor::kernels::parallel_rows(
      batch, batch * macs_per_row, [&](std::size_t n0, std::size_t n1) {
        for (std::size_t n = n0; n < n1; ++n) {
          auto x = in.row(n);
          auto y = out.row(n);
          for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
            for (std::size_t oh = 0; oh < out_h_; ++oh) {
              for (std::size_t ow = 0; ow < out_w_; ++ow) {
                float acc = b_[oc];
                for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
                  const float* xp = x.data() + ic * ih * iw;
                  for (std::size_t khi = 0; khi < k; ++khi) {
                    // padded row index = oh + khi - pad; skip out-of-bounds
                    // rows.
                    const std::size_t r = oh + khi;
                    if (r < pad || r >= ih + pad) continue;
                    const std::size_t xr = r - pad;
                    for (std::size_t kwi = 0; kwi < k; ++kwi) {
                      const std::size_t c = ow + kwi;
                      if (c < pad || c >= iw + pad) continue;
                      acc += weight(oc, ic, khi, kwi) * xp[xr * iw + (c - pad)];
                    }
                  }
                }
                y[(oc * out_h_ + oh) * out_w_ + ow] = acc;
              }
            }
          }
        }
      });
}

void Conv2d::backward(const tensor::Matrix& grad_out,
                      tensor::Matrix& grad_in) {
  if (grad_out.cols() != out_dim() ||
      grad_out.rows() != cached_in_.rows()) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }
  const std::size_t batch = grad_out.rows();
  grad_in = tensor::Matrix(batch, in_dim());
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  for (std::size_t n = 0; n < batch; ++n) {
    auto x = cached_in_.row(n);
    auto gy = grad_out.row(n);
    auto gx = grad_in.row(n);
    for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
      for (std::size_t oh = 0; oh < out_h_; ++oh) {
        for (std::size_t ow = 0; ow < out_w_; ++ow) {
          const float g = gy[(oc * out_h_ + oh) * out_w_ + ow];
          if (g == 0.0f) continue;
          gb_[oc] += g;
          for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
            const float* xp = x.data() + ic * ih * iw;
            float* gxp = gx.data() + ic * ih * iw;
            for (std::size_t khi = 0; khi < k; ++khi) {
              const std::size_t r = oh + khi;
              if (r < pad || r >= ih + pad) continue;
              const std::size_t xr = r - pad;
              for (std::size_t kwi = 0; kwi < k; ++kwi) {
                const std::size_t c = ow + kwi;
                if (c < pad || c >= iw + pad) continue;
                const std::size_t xi = xr * iw + (c - pad);
                gw_[((oc * spec_.in_channels + ic) * k + khi) * k + kwi] +=
                    g * xp[xi];
                gxp[xi] += g * weight(oc, ic, khi, kwi);
              }
            }
          }
        }
      }
    }
  }
}

void Conv2d::init_params(util::Rng& rng) {
  const std::size_t fan_in =
      spec_.in_channels * spec_.kernel * spec_.kernel;
  tensor::he_normal(w_, fan_in, rng);
  std::fill(b_.begin(), b_.end(), 0.0f);
}

void Conv2d::collect_params(std::vector<std::span<float>>& out) {
  out.push_back(w_);
  out.push_back(b_);
}

void Conv2d::collect_grads(std::vector<std::span<float>>& out) {
  out.push_back(gw_);
  out.push_back(gb_);
}

void Conv2d::zero_grads() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

}  // namespace cmfl::nn

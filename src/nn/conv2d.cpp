#include "nn/conv2d.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/init.h"
#include "tensor/kernels.h"

namespace cmfl::nn {

Conv2d::Conv2d(const Conv2dSpec& spec) : spec_(spec) {
  if (spec.in_channels == 0 || spec.out_channels == 0 || spec.kernel == 0 ||
      spec.in_height == 0 || spec.in_width == 0) {
    throw std::invalid_argument("Conv2d: dimensions must be positive");
  }
  if (spec.in_height + 2 * spec.padding < spec.kernel ||
      spec.in_width + 2 * spec.padding < spec.kernel) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  out_h_ = spec.in_height + 2 * spec.padding - spec.kernel + 1;
  out_w_ = spec.in_width + 2 * spec.padding - spec.kernel + 1;
  const std::size_t wsize =
      spec.out_channels * spec.in_channels * spec.kernel * spec.kernel;
  w_.assign(wsize, 0.0f);
  gw_.assign(wsize, 0.0f);
  b_.assign(spec.out_channels, 0.0f);
  gb_.assign(spec.out_channels, 0.0f);
}

std::size_t Conv2d::in_dim() const noexcept {
  return spec_.in_channels * spec_.in_height * spec_.in_width;
}

std::size_t Conv2d::out_dim() const noexcept {
  return spec_.out_channels * out_h_ * out_w_;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(spec_.in_channels) + "x" +
         std::to_string(spec_.in_height) + "x" + std::to_string(spec_.in_width) +
         " -> " + std::to_string(spec_.out_channels) + "x" +
         std::to_string(out_h_) + "x" + std::to_string(out_w_) + ", k=" +
         std::to_string(spec_.kernel) + ")";
}

float& Conv2d::weight(std::size_t oc, std::size_t ic, std::size_t kh,
                      std::size_t kw) noexcept {
  return w_[((oc * spec_.in_channels + ic) * spec_.kernel + kh) * spec_.kernel +
            kw];
}

float Conv2d::weight(std::size_t oc, std::size_t ic, std::size_t kh,
                     std::size_t kw) const noexcept {
  return w_[((oc * spec_.in_channels + ic) * spec_.kernel + kh) * spec_.kernel +
            kw];
}

void Conv2d::im2col_row(std::span<const float> x, float* col) const {
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  const std::size_t pixels = out_h_ * out_w_;
  // Patch row kidx = (ic·k + kh)·k + kw holds input tap (ic, kh, kw) for
  // every output pixel — the same (ic, kh, kw)-increasing order the naive
  // accumulation walks, so the forward GEMM's k order matches it exactly.
  std::size_t kidx = 0;
  for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
    const float* xp = x.data() + ic * ih * iw;
    for (std::size_t khi = 0; khi < k; ++khi) {
      for (std::size_t kwi = 0; kwi < k; ++kwi, ++kidx) {
        float* cr = col + kidx * pixels;
        for (std::size_t oh = 0; oh < out_h_; ++oh) {
          float* crow = cr + oh * out_w_;
          const std::size_t r = oh + khi;
          if (r < pad || r >= ih + pad) {
            std::fill(crow, crow + out_w_, 0.0f);
            continue;
          }
          const float* xrow = xp + (r - pad) * iw;
          for (std::size_t ow = 0; ow < out_w_; ++ow) {
            const std::size_t c = ow + kwi;
            crow[ow] = (c < pad || c >= iw + pad) ? 0.0f : xrow[c - pad];
          }
        }
      }
    }
  }
}

void Conv2d::scatter_grads_row(std::span<const float> x,
                               std::span<const float> gy,
                               std::span<float> gx) {
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  // Same tap visit order (and therefore the same per-element float
  // accumulation order) as backward_ref — (oc, oh, ow) outer with the
  // g == 0 skip, (ic, khi, kwi) taps inner — but with the per-tap padding
  // bounds checks hoisted into khi/kwi ranges so the innermost loop runs
  // branch-free over three contiguous rows (gw/x and gx/w pairs).  The
  // hoisted ranges skip exactly the taps the naive checks skip.  The
  // g == 0 skip is the whole point of staying scalar here: the gradient
  // reaching a conv layer in this codebase has been masked by ReLU backward
  // and scattered by MaxPool backward, so most entries are exact zeros whose
  // taps a dense col2im/GEMM formulation would still pay for.
  for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
    const float* gp = gy.data() + oc * out_h_ * out_w_;
    for (std::size_t oh = 0; oh < out_h_; ++oh) {
      const std::size_t khi_lo = pad > oh ? pad - oh : 0;
      const std::size_t khi_hi = std::min(k, ih + pad - oh);  // exclusive
      for (std::size_t ow = 0; ow < out_w_; ++ow) {
        const float g = gp[oh * out_w_ + ow];
        if (g == 0.0f) continue;
        const std::size_t kwi_lo = pad > ow ? pad - ow : 0;
        const std::size_t kwi_hi = std::min(k, iw + pad - ow);
        const std::size_t len = kwi_hi - kwi_lo;
        const std::size_t xc0 = ow + kwi_lo - pad;
        for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
          const float* xp = x.data() + ic * ih * iw;
          float* gxp = gx.data() + ic * ih * iw;
          const std::size_t base = (oc * spec_.in_channels + ic) * k * k;
          for (std::size_t khi = khi_lo; khi < khi_hi; ++khi) {
            const std::size_t xr = oh + khi - pad;
            const float* xrow = xp + xr * iw + xc0;
            float* gxrow = gxp + xr * iw + xc0;
            float* gwrow = gw_.data() + base + khi * k + kwi_lo;
            const float* wrow = w_.data() + base + khi * k + kwi_lo;
            for (std::size_t j = 0; j < len; ++j) {
              gwrow[j] += g * xrow[j];
              gxrow[j] += g * wrow[j];
            }
          }
        }
      }
    }
  }
}

void Conv2d::forward(const tensor::Matrix& in, tensor::Matrix& out,
                     bool /*training*/) {
  if (in.cols() != in_dim()) {
    throw std::invalid_argument("Conv2d::forward: input width mismatch");
  }
  if (ref_mode_) {
    forward_ref(in, out);
    return;
  }
  const std::size_t batch = in.rows();
  cached_batch_ = batch;
  in_ptr_ = &in;  // caller-owned; must outlive backward (layer contract)
  out.resize(batch, out_dim());
  const std::size_t patch = spec_.in_channels * spec_.kernel * spec_.kernel;
  const std::size_t pixels = out_h_ * out_w_;
  col_.resize(batch, patch * pixels);
  // Each batch row writes a disjoint output (and col_) row, so the forward
  // pass shards across the kernel pool when large enough (backward stays
  // serial: it accumulates into shared gw_/gb_).
  const std::size_t macs_per_row =
      spec_.out_channels * out_h_ * out_w_ * spec_.in_channels * spec_.kernel *
      spec_.kernel;
  tensor::kernels::parallel_rows(
      batch, batch * macs_per_row, [&](std::size_t n0, std::size_t n1) {
        for (std::size_t n = n0; n < n1; ++n) {
          float* col = col_.row(n).data();
          im2col_row(in.row(n), col);
          auto y = out.row(n);
          // Preload each output row with the bias, then accumulate the patch
          // taps on top: per element this is bias first, then taps with
          // (ic, kh, kw) strictly increasing — the naive loop's exact
          // floating-point sequence.
          for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
            float* yr = y.data() + oc * pixels;
            std::fill(yr, yr + pixels, b_[oc]);
          }
          // The per-sample GEMM itself tiles its out_channels row range over
          // the pool: when the batch loop above ran serial (small batch,
          // e.g. single-image inference on a large plane) this is where the
          // threads come from, and when the batch loop is already sharded
          // the per-sample MAC count sits below the threshold so this stays
          // a single direct call.  Row ranges compose bitwise (kernels.h),
          // so the nesting never changes results.
          tensor::kernels::parallel_rows(
              spec_.out_channels, macs_per_row,
              [&](std::size_t oc0, std::size_t oc1) {
                tensor::kernels::gemm_nn_acc(w_.data(), col, y.data(),
                                             spec_.out_channels, patch, pixels,
                                             oc0, oc1);
              });
        }
      });
}

void Conv2d::backward(const tensor::Matrix& grad_out,
                      tensor::Matrix& grad_in) {
  if (ref_mode_) {
    backward_ref(grad_out, grad_in);
    return;
  }
  if (grad_out.cols() != out_dim() || grad_out.rows() != cached_batch_ ||
      in_ptr_ == nullptr) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }
  const std::size_t batch = grad_out.rows();
  grad_in.resize(batch, in_dim());
  // resize() leaves values unspecified; the scatter accumulates, so zero
  // the whole gradient buffer up front (backward_ref gets this from its
  // freshly constructed Matrix).
  std::fill(grad_in.flat().begin(), grad_in.flat().end(), 0.0f);
  const std::size_t pixels = out_h_ * out_w_;
  for (std::size_t n = 0; n < batch; ++n) {
    auto gy = grad_out.row(n);
    // gb[oc] += Σ_p gy(oc, p), p strictly increasing per channel — the naive
    // interleaved order, since gb_[oc] only ever receives channel-oc terms
    // and the extra zero-gradient terms are ±0-safe no-op additions.
    tensor::kernels::add_col_sums(gy.data(), pixels, spec_.out_channels, 1,
                                  pixels, gb_);
    scatter_grads_row(in_ptr_->row(n), gy, grad_in.row(n));
  }
}

// ---------------------------------------------------------------------------
// Reference implementation: the original naive loops, kept verbatim for
// equivalence tests and the pre-PR benchmark baseline.
// ---------------------------------------------------------------------------

void Conv2d::forward_ref(const tensor::Matrix& in, tensor::Matrix& out) {
  cached_in_ = in;
  cached_batch_ = in.rows();
  const std::size_t batch = in.rows();
  out = tensor::Matrix(batch, out_dim());
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  const std::size_t macs_per_row =
      spec_.out_channels * out_h_ * out_w_ * spec_.in_channels * k * k;
  tensor::kernels::parallel_rows(
      batch, batch * macs_per_row, [&](std::size_t n0, std::size_t n1) {
        for (std::size_t n = n0; n < n1; ++n) {
          auto x = in.row(n);
          auto y = out.row(n);
          for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
            for (std::size_t oh = 0; oh < out_h_; ++oh) {
              for (std::size_t ow = 0; ow < out_w_; ++ow) {
                float acc = b_[oc];
                for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
                  const float* xp = x.data() + ic * ih * iw;
                  for (std::size_t khi = 0; khi < k; ++khi) {
                    // padded row index = oh + khi - pad; skip out-of-bounds
                    // rows.
                    const std::size_t r = oh + khi;
                    if (r < pad || r >= ih + pad) continue;
                    const std::size_t xr = r - pad;
                    for (std::size_t kwi = 0; kwi < k; ++kwi) {
                      const std::size_t c = ow + kwi;
                      if (c < pad || c >= iw + pad) continue;
                      acc += weight(oc, ic, khi, kwi) * xp[xr * iw + (c - pad)];
                    }
                  }
                }
                y[(oc * out_h_ + oh) * out_w_ + ow] = acc;
              }
            }
          }
        }
      });
}

void Conv2d::backward_ref(const tensor::Matrix& grad_out,
                          tensor::Matrix& grad_in) {
  if (grad_out.cols() != out_dim() ||
      grad_out.rows() != cached_in_.rows()) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }
  const std::size_t batch = grad_out.rows();
  grad_in = tensor::Matrix(batch, in_dim());
  const auto ih = spec_.in_height, iw = spec_.in_width, k = spec_.kernel,
             pad = spec_.padding;
  for (std::size_t n = 0; n < batch; ++n) {
    auto x = cached_in_.row(n);
    auto gy = grad_out.row(n);
    auto gx = grad_in.row(n);
    for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
      for (std::size_t oh = 0; oh < out_h_; ++oh) {
        for (std::size_t ow = 0; ow < out_w_; ++ow) {
          const float g = gy[(oc * out_h_ + oh) * out_w_ + ow];
          if (g == 0.0f) continue;
          gb_[oc] += g;
          for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
            const float* xp = x.data() + ic * ih * iw;
            float* gxp = gx.data() + ic * ih * iw;
            for (std::size_t khi = 0; khi < k; ++khi) {
              const std::size_t r = oh + khi;
              if (r < pad || r >= ih + pad) continue;
              const std::size_t xr = r - pad;
              for (std::size_t kwi = 0; kwi < k; ++kwi) {
                const std::size_t c = ow + kwi;
                if (c < pad || c >= iw + pad) continue;
                const std::size_t xi = xr * iw + (c - pad);
                gw_[((oc * spec_.in_channels + ic) * k + khi) * k + kwi] +=
                    g * xp[xi];
                gxp[xi] += g * weight(oc, ic, khi, kwi);
              }
            }
          }
        }
      }
    }
  }
}

void Conv2d::init_params(util::Rng& rng) {
  const std::size_t fan_in =
      spec_.in_channels * spec_.kernel * spec_.kernel;
  tensor::he_normal(w_, fan_in, rng);
  std::fill(b_.begin(), b_.end(), 0.0f);
}

void Conv2d::collect_params(std::vector<std::span<float>>& out) {
  out.push_back(w_);
  out.push_back(b_);
}

void Conv2d::collect_grads(std::vector<std::span<float>>& out) {
  out.push_back(gw_);
  out.push_back(gb_);
}

void Conv2d::zero_grads() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

}  // namespace cmfl::nn

// Parameterless elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace cmfl::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::size_t dim);

  std::size_t in_dim() const noexcept override { return dim_; }
  std::size_t out_dim() const noexcept override { return dim_; }
  std::string name() const override;

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

 private:
  std::size_t dim_;
  const tensor::Matrix* cached_in_ = nullptr;  // forward input (see Layer)
};

class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t dim);

  std::size_t in_dim() const noexcept override { return dim_; }
  std::size_t out_dim() const noexcept override { return dim_; }
  std::string name() const override;

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

 private:
  std::size_t dim_;
  // tanh' = 1 - tanh², so reference the output buffer (owned by the caller,
  // alive until backward per the Layer lifetime contract).
  const tensor::Matrix* cached_out_ = nullptr;
};

/// Scalar helpers shared with the LSTM cell.
float sigmoid(float x) noexcept;

}  // namespace cmfl::nn

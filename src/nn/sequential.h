// Sequential container of layers with a single flattened parameter view.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "nn/param_pack.h"

namespace cmfl::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; validates that its in_dim matches the previous layer's
  /// out_dim (std::invalid_argument otherwise).
  void add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const noexcept { return layers_.size(); }
  std::size_t in_dim() const;
  std::size_t out_dim() const;

  /// One-line architecture summary, e.g. "Conv2d(...) -> ReLU -> Dense(...)".
  std::string summary() const;

  /// Runs all layers; `out` receives the final activation.
  void forward(const tensor::Matrix& in, tensor::Matrix& out, bool training);

  /// Backpropagates d(loss)/d(output); parameter gradients accumulate in the
  /// layers.  Returns d(loss)/d(input) for callers that chain further
  /// (the LSTM language model backpropagates through its projection head).
  tensor::Matrix backward(const tensor::Matrix& grad_out);

  void init_params(util::Rng& rng);
  void zero_grads();

  /// Flattened views (rebuilt on each call; cheap — spans only).
  ParamPack params();
  ParamPack grads();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace cmfl::nn

// Sequential container of layers with a single flattened parameter view.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "nn/param_pack.h"

namespace cmfl::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; validates that its in_dim matches the previous layer's
  /// out_dim (std::invalid_argument otherwise).
  void add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const noexcept { return layers_.size(); }
  std::size_t in_dim() const;
  std::size_t out_dim() const;

  /// Direct layer access (benchmarks flip Conv2d reference mode; tests
  /// inspect layers).  Index must be < layer_count().
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// One-line architecture summary, e.g. "Conv2d(...) -> ReLU -> Dense(...)".
  std::string summary() const;

  /// Runs all layers; `out` receives the final activation.  Inter-layer
  /// activations live in buffers owned by this Sequential and are reused
  /// across steps (steady state allocates nothing).  Per the Layer lifetime
  /// contract, `in` and `out` must stay alive and unmodified until
  /// backward() completes.
  void forward(const tensor::Matrix& in, tensor::Matrix& out, bool training);

  /// Backpropagates d(loss)/d(output); parameter gradients accumulate in the
  /// layers.  Returns d(loss)/d(input) for callers that chain further (the
  /// LSTM language model backpropagates through its projection head).  The
  /// reference points at an internal ping-pong buffer, valid until the next
  /// forward()/backward().
  const tensor::Matrix& backward(const tensor::Matrix& grad_out);

  void init_params(util::Rng& rng);
  void zero_grads();

  /// Flattened views (rebuilt on each call; cheap — spans only).
  ParamPack params();
  ParamPack grads();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Training workspace: acts_[i] holds layer i's output (the last layer
  // writes the caller's `out`), gbuf_a_/gbuf_b_ ping-pong the gradient
  // through backward().  Sized on first use, reused every step.
  std::vector<tensor::Matrix> acts_;
  tensor::Matrix gbuf_a_;
  tensor::Matrix gbuf_b_;
};

}  // namespace cmfl::nn

// Inverted dropout: active only when forward() runs with training=true.
#pragma once

#include "nn/layer.h"

namespace cmfl::nn {

class Dropout final : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1).  Each layer instance owns an
  /// Rng stream seeded at construction so parallel clients stay
  /// deterministic.
  Dropout(std::size_t dim, float rate, std::uint64_t seed = 17);

  std::size_t in_dim() const noexcept override { return dim_; }
  std::size_t out_dim() const noexcept override { return dim_; }
  std::string name() const override;

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

 private:
  std::size_t dim_;
  float rate_;
  util::Rng rng_;
  tensor::Matrix mask_;  // scaled keep mask from the last training forward
  bool last_training_ = false;
};

}  // namespace cmfl::nn

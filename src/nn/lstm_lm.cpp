#include "nn/lstm_lm.h"

#include <cmath>
#include <stdexcept>

#include "nn/loss.h"

namespace cmfl::nn {

LstmLm::LstmLm(const LstmLmSpec& spec)
    : spec_(spec),
      embedding_(spec.vocab, spec.embed_dim),
      head_(spec.hidden_dim, spec.vocab) {
  if (spec.layers == 0 || spec.layers > 2) {
    throw std::invalid_argument("LstmLm: layers must be 1 or 2");
  }
  lstms_.emplace_back(spec.embed_dim, spec.hidden_dim);
  if (spec.layers == 2) {
    lstms_.emplace_back(spec.hidden_dim, spec.hidden_dim);
  }
}

ParamPack& LstmLm::params_pack() {
  if (!packs_built_) {
    std::vector<std::span<float>> views;
    views.push_back(embedding_.params());
    for (auto& lstm : lstms_) lstm.collect_params(views);
    head_.collect_params(views);
    params_cache_ = ParamPack(std::move(views));
    std::vector<std::span<float>> gviews;
    gviews.push_back(embedding_.grads());
    for (auto& lstm : lstms_) lstm.collect_grads(gviews);
    head_.collect_grads(gviews);
    grads_cache_ = ParamPack(std::move(gviews));
    packs_built_ = true;
  }
  return params_cache_;
}

ParamPack& LstmLm::grads_pack() {
  params_pack();
  return grads_cache_;
}

void LstmLm::zero_grads() {
  embedding_.zero_grads();
  for (auto& lstm : lstms_) lstm.zero_grads();
  head_.zero_grads();
}

std::size_t LstmLm::param_count() { return params_pack().total_size(); }

void LstmLm::get_params(std::span<float> out) { params_pack().copy_to(out); }

void LstmLm::set_params(std::span<const float> in) {
  params_pack().copy_from(in);
}

void LstmLm::get_grads(std::span<float> out) { grads_pack().copy_to(out); }

void LstmLm::init_params(util::Rng& rng) {
  embedding_.init_params(rng);
  for (auto& lstm : lstms_) lstm.init_params(rng);
  head_.init_params(rng);
}

const tensor::Matrix& LstmLm::forward_into(const SeqBatch& x, bool training) {
  if (x.batch == 0 || x.seq_len == 0 ||
      x.tokens.size() != x.batch * x.seq_len) {
    throw std::invalid_argument("LstmLm::forward: malformed SeqBatch");
  }
  // Gather per-timestep token columns and embed them into reused buffers.
  step_tokens_.resize(x.seq_len * x.batch);
  if (embedded_.size() != x.seq_len) embedded_.resize(x.seq_len);
  for (std::size_t t = 0; t < x.seq_len; ++t) {
    int* col = step_tokens_.data() + t * x.batch;
    for (std::size_t i = 0; i < x.batch; ++i) {
      col[i] = x.tokens[i * x.seq_len + t];
    }
    embedding_.lookup_into(step_tokens(t, x.batch), embedded_[t]);
  }

  const tensor::Matrix* h_last = &lstms_.front().forward(embedded_);
  if (lstms_.size() == 2) {
    hidden1_ = lstms_.front().hidden_states();
    h_last = &lstms_.back().forward(hidden1_);
  }

  head_.forward(*h_last, logits_, training);
  return logits_;
}

double LstmLm::compute_grads(const SeqBatch& x,
                             std::span<const int> next_token) {
  if (next_token.size() != x.batch) {
    throw std::invalid_argument("LstmLm::compute_grads: label count mismatch");
  }
  zero_grads();
  forward_into(x, /*training=*/true);
  const double loss = softmax_cross_entropy(logits_, next_token, loss_grad_);

  head_.backward(loss_grad_, grad_h_last_);

  // Backprop through the stack, deepest layer first.  Each backward returns
  // a reference into the layer's own workspace, so the chain is copy-free.
  const std::vector<tensor::Matrix>* grad_inputs =
      &lstms_.back().backward(grad_h_last_);
  for (std::size_t layer = lstms_.size() - 1; layer-- > 0;) {
    grad_inputs = &lstms_[layer].backward_steps(*grad_inputs);
  }
  for (std::size_t t = 0; t < grad_inputs->size(); ++t) {
    embedding_.accumulate_grad(step_tokens(t, x.batch), (*grad_inputs)[t]);
  }
  return loss;
}

double LstmLm::train_batch(const SeqBatch& x, std::span<const int> next_token,
                           float lr) {
  const double loss = compute_grads(x, next_token);
  params_pack().axpy_from(-lr, grads_pack());
  return loss;
}

tensor::Matrix LstmLm::predict(const SeqBatch& x) {
  return forward_into(x, /*training=*/false);
}

EvalResult LstmLm::evaluate(const SeqBatch& x,
                            std::span<const int> next_token) {
  if (next_token.size() != x.batch) {
    throw std::invalid_argument("LstmLm::evaluate: label count mismatch");
  }
  const tensor::Matrix& logits = forward_into(x, /*training=*/false);
  const tensor::Matrix probs = softmax(logits);
  EvalResult result;
  result.samples = x.batch;
  result.accuracy = accuracy(logits, next_token);
  double loss = 0.0;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const double p = std::max(
        1e-12, static_cast<double>(
                   probs.at(r, static_cast<std::size_t>(next_token[r]))));
    loss -= std::log(p);
  }
  result.loss = loss / static_cast<double>(x.batch);
  return result;
}

}  // namespace cmfl::nn

#include "nn/lstm_lm.h"

#include <cmath>
#include <stdexcept>

#include "nn/loss.h"

namespace cmfl::nn {

LstmLm::LstmLm(const LstmLmSpec& spec)
    : spec_(spec),
      embedding_(spec.vocab, spec.embed_dim),
      head_(spec.hidden_dim, spec.vocab) {
  if (spec.layers == 0 || spec.layers > 2) {
    throw std::invalid_argument("LstmLm: layers must be 1 or 2");
  }
  lstms_.emplace_back(spec.embed_dim, spec.hidden_dim);
  if (spec.layers == 2) {
    lstms_.emplace_back(spec.hidden_dim, spec.hidden_dim);
  }
}

ParamPack LstmLm::params() {
  std::vector<std::span<float>> views;
  views.push_back(embedding_.params());
  for (auto& lstm : lstms_) lstm.collect_params(views);
  head_.collect_params(views);
  return ParamPack(std::move(views));
}

ParamPack LstmLm::grads() {
  std::vector<std::span<float>> views;
  views.push_back(embedding_.grads());
  for (auto& lstm : lstms_) lstm.collect_grads(views);
  head_.collect_grads(views);
  return ParamPack(std::move(views));
}

void LstmLm::zero_grads() {
  embedding_.zero_grads();
  for (auto& lstm : lstms_) lstm.zero_grads();
  head_.zero_grads();
}

std::size_t LstmLm::param_count() { return params().total_size(); }

void LstmLm::get_params(std::span<float> out) { params().copy_to(out); }

void LstmLm::set_params(std::span<const float> in) { params().copy_from(in); }

void LstmLm::get_grads(std::span<float> out) { grads().copy_to(out); }

void LstmLm::init_params(util::Rng& rng) {
  embedding_.init_params(rng);
  for (auto& lstm : lstms_) lstm.init_params(rng);
  head_.init_params(rng);
}

tensor::Matrix LstmLm::forward(const SeqBatch& x, bool training) {
  if (x.batch == 0 || x.seq_len == 0 ||
      x.tokens.size() != x.batch * x.seq_len) {
    throw std::invalid_argument("LstmLm::forward: malformed SeqBatch");
  }
  // Gather per-timestep token columns and embed them.
  cached_step_tokens_.assign(x.seq_len, std::vector<int>(x.batch));
  std::vector<tensor::Matrix> embedded(x.seq_len);
  for (std::size_t t = 0; t < x.seq_len; ++t) {
    auto& col = cached_step_tokens_[t];
    for (std::size_t i = 0; i < x.batch; ++i) {
      col[i] = x.tokens[i * x.seq_len + t];
    }
    embedded[t] = embedding_.lookup(col);
  }

  cached_layer_inputs_.clear();
  cached_layer_inputs_.push_back(std::move(embedded));
  tensor::Matrix h_last;
  for (std::size_t layer = 0; layer < lstms_.size(); ++layer) {
    h_last = lstms_[layer].forward(cached_layer_inputs_[layer]);
    if (layer + 1 < lstms_.size()) {
      cached_layer_inputs_.push_back(lstms_[layer].hidden_states());
    }
  }

  tensor::Matrix logits;
  head_.forward(h_last, logits, training);
  return logits;
}

double LstmLm::compute_grads(const SeqBatch& x,
                             std::span<const int> next_token) {
  if (next_token.size() != x.batch) {
    throw std::invalid_argument("LstmLm::compute_grads: label count mismatch");
  }
  zero_grads();
  const tensor::Matrix logits = forward(x, /*training=*/true);
  tensor::Matrix grad_logits;
  const double loss = softmax_cross_entropy(logits, next_token, grad_logits);

  tensor::Matrix grad_h_last;
  head_.backward(grad_logits, grad_h_last);

  // Backprop through the stack, deepest layer first.
  std::vector<tensor::Matrix> grad_inputs =
      lstms_.back().backward(grad_h_last);
  for (std::size_t layer = lstms_.size() - 1; layer-- > 0;) {
    grad_inputs = lstms_[layer].backward_steps(grad_inputs);
  }
  for (std::size_t t = 0; t < grad_inputs.size(); ++t) {
    embedding_.accumulate_grad(cached_step_tokens_[t], grad_inputs[t]);
  }
  return loss;
}

double LstmLm::train_batch(const SeqBatch& x, std::span<const int> next_token,
                           float lr) {
  const double loss = compute_grads(x, next_token);
  params().axpy_from(-lr, grads());
  return loss;
}

tensor::Matrix LstmLm::predict(const SeqBatch& x) {
  return forward(x, /*training=*/false);
}

EvalResult LstmLm::evaluate(const SeqBatch& x,
                            std::span<const int> next_token) {
  if (next_token.size() != x.batch) {
    throw std::invalid_argument("LstmLm::evaluate: label count mismatch");
  }
  const tensor::Matrix logits = forward(x, /*training=*/false);
  const tensor::Matrix probs = softmax(logits);
  EvalResult result;
  result.samples = x.batch;
  result.accuracy = accuracy(logits, next_token);
  double loss = 0.0;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const double p = std::max(
        1e-12, static_cast<double>(
                   probs.at(r, static_cast<std::size_t>(next_token[r]))));
    loss -= std::log(p);
  }
  result.loss = loss / static_cast<double>(x.batch);
  return result;
}

}  // namespace cmfl::nn

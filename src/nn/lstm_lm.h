// Next-word-prediction language model: Embedding -> LSTM -> Dense head.
//
// Mirrors the paper's NWP workload ("a 2-layer LSTM language model ... after
// reading a fixed number of words in a sentence, predicts the next word") at
// configurable depth and width; the default reproduction scale uses one LSTM
// layer (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/lstm.h"
#include "nn/model.h"
#include "nn/param_pack.h"

namespace cmfl::nn {

/// A batch of fixed-length token windows, row-major: token(i, t) is
/// tokens[i * seq_len + t].
struct SeqBatch {
  std::vector<int> tokens;
  std::size_t batch = 0;
  std::size_t seq_len = 0;

  std::span<const int> row(std::size_t i) const {
    return {tokens.data() + i * seq_len, seq_len};
  }
};

struct LstmLmSpec {
  std::size_t vocab = 128;
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 32;
  std::size_t layers = 1;  // 1 or 2
};

class LstmLm {
 public:
  explicit LstmLm(const LstmLmSpec& spec);

  std::size_t vocab() const noexcept { return spec_.vocab; }

  std::size_t param_count();
  void get_params(std::span<float> out);
  void set_params(std::span<const float> in);
  void get_grads(std::span<float> out);

  void init_params(util::Rng& rng);

  /// One SGD step: forward over the windows, softmax-CE against the next
  /// token, full BPTT, update.  Returns the batch mean loss.
  double train_batch(const SeqBatch& x, std::span<const int> next_token,
                     float lr);

  /// Loss + next-token accuracy on a batch, no parameter change.
  EvalResult evaluate(const SeqBatch& x, std::span<const int> next_token);

  /// Raw next-token logits (batch × vocab), inference mode.
  tensor::Matrix predict(const SeqBatch& x);

  /// Computes gradients without updating (gradient-check hook).
  double compute_grads(const SeqBatch& x, std::span<const int> next_token);

 private:
  tensor::Matrix forward(const SeqBatch& x, bool training);
  ParamPack params();
  ParamPack grads();
  void zero_grads();

  LstmLmSpec spec_;
  Embedding embedding_;
  std::vector<Lstm> lstms_;
  Dense head_;
  // Cached per-timestep activations from the last forward pass.
  std::vector<std::vector<int>> cached_step_tokens_;
  std::vector<std::vector<tensor::Matrix>> cached_layer_inputs_;
};

}  // namespace cmfl::nn

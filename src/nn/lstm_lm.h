// Next-word-prediction language model: Embedding -> LSTM -> Dense head.
//
// Mirrors the paper's NWP workload ("a 2-layer LSTM language model ... after
// reading a fixed number of words in a sentence, predicts the next word") at
// configurable depth and width; the default reproduction scale uses one LSTM
// layer (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/lstm.h"
#include "nn/model.h"
#include "nn/param_pack.h"

namespace cmfl::nn {

/// A batch of fixed-length token windows, row-major: token(i, t) is
/// tokens[i * seq_len + t].
struct SeqBatch {
  std::vector<int> tokens;
  std::size_t batch = 0;
  std::size_t seq_len = 0;

  std::span<const int> row(std::size_t i) const {
    return {tokens.data() + i * seq_len, seq_len};
  }
};

struct LstmLmSpec {
  std::size_t vocab = 128;
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 32;
  std::size_t layers = 1;  // 1 or 2
};

class LstmLm {
 public:
  explicit LstmLm(const LstmLmSpec& spec);

  std::size_t vocab() const noexcept { return spec_.vocab; }

  std::size_t param_count();
  void get_params(std::span<float> out);
  void set_params(std::span<const float> in);
  void get_grads(std::span<float> out);

  void init_params(util::Rng& rng);

  /// One SGD step: forward over the windows, softmax-CE against the next
  /// token, full BPTT, update.  Returns the batch mean loss.
  double train_batch(const SeqBatch& x, std::span<const int> next_token,
                     float lr);

  /// Loss + next-token accuracy on a batch, no parameter change.
  EvalResult evaluate(const SeqBatch& x, std::span<const int> next_token);

  /// Raw next-token logits (batch × vocab), inference mode.
  tensor::Matrix predict(const SeqBatch& x);

  /// Computes gradients without updating (gradient-check hook).
  double compute_grads(const SeqBatch& x, std::span<const int> next_token);

 private:
  /// Forward pass into the member logits buffer; the returned reference is
  /// valid until the next forward.
  const tensor::Matrix& forward_into(const SeqBatch& x, bool training);
  ParamPack& params_pack();
  ParamPack& grads_pack();
  void zero_grads();

  std::span<const int> step_tokens(std::size_t t, std::size_t batch) const {
    return {step_tokens_.data() + t * batch, batch};
  }

  LstmLmSpec spec_;
  Embedding embedding_;
  std::vector<Lstm> lstms_;
  Dense head_;
  // Train-step workspace, sized on first use and reused across steps so a
  // steady-state step allocates nothing (the 2-layer stacking path still
  // allocates via Lstm::hidden_states()).  step_tokens_ holds the transposed
  // token batch flat (seq_len × batch); embedded_ owns the per-timestep
  // inputs the first LSTM caches pointers into.
  std::vector<int> step_tokens_;
  std::vector<tensor::Matrix> embedded_;
  std::vector<tensor::Matrix> hidden1_;  // layer-2 inputs (2-layer only)
  tensor::Matrix logits_;
  tensor::Matrix loss_grad_;
  tensor::Matrix grad_h_last_;
  // Parameter/gradient packs built once; spans point into layer heap
  // storage, which is stable across LstmLm moves.
  ParamPack params_cache_;
  ParamPack grads_cache_;
  bool packs_built_ = false;
};

}  // namespace cmfl::nn

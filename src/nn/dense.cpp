#include "nn/dense.h"

#include <stdexcept>

#include "tensor/init.h"

namespace cmfl::nn {

Dense::Dense(std::size_t in, std::size_t out)
    : in_(in),
      out_(out),
      w_(out, in),
      b_(out, 0.0f),
      gw_(out, in),
      gb_(out, 0.0f) {
  if (in == 0 || out == 0) {
    throw std::invalid_argument("Dense: dimensions must be positive");
  }
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

void Dense::forward(const tensor::Matrix& in, tensor::Matrix& out,
                    bool /*training*/) {
  if (in.cols() != in_) {
    throw std::invalid_argument("Dense::forward: input width " +
                                std::to_string(in.cols()) + ", expected " +
                                std::to_string(in_));
  }
  cached_in_ = &in;
  out.resize(in.rows(), out_);
  // Dispatches to the blocked GEMM in tensor/kernels.cpp; large batches
  // shard output rows across the kernel pool (deterministic either way).
  tensor::matmul_nt(in, w_, out);
  tensor::add_row_bias(out, b_);
}

void Dense::backward(const tensor::Matrix& grad_out,
                     tensor::Matrix& grad_in) {
  if (cached_in_ == nullptr || grad_out.cols() != out_ ||
      grad_out.rows() != cached_in_->rows()) {
    throw std::invalid_argument("Dense::backward: gradient shape mismatch");
  }
  // gW += grad_outᵀ · in   ((out×B)ᵀ-style accumulation)
  gw_batch_.resize(out_, in_);
  tensor::matmul_tn(grad_out, *cached_in_, gw_batch_);
  tensor::accumulate(gw_, gw_batch_);
  // gb += column sums of grad_out
  tensor::add_col_sums(grad_out, gb_);
  // grad_in = grad_out · W
  grad_in.resize(grad_out.rows(), in_);
  tensor::matmul(grad_out, w_, grad_in);
}

void Dense::init_params(util::Rng& rng) {
  tensor::he_normal(w_.flat(), in_, rng);
  std::fill(b_.begin(), b_.end(), 0.0f);
}

void Dense::collect_params(std::vector<std::span<float>>& out) {
  out.push_back(w_.flat());
  out.push_back(b_);
}

void Dense::collect_grads(std::vector<std::span<float>>& out) {
  out.push_back(gw_.flat());
  out.push_back(gb_);
}

void Dense::zero_grads() {
  gw_.zero();
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

}  // namespace cmfl::nn

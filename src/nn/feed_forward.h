// FeedForward: a Sequential network + softmax cross-entropy head, with the
// flat-parameter API used by the federated layer.  Covers the paper's MNIST
// CNN (via Conv2d/MaxPool layers) and any MLP workload.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace cmfl::nn {

class FeedForward {
 public:
  /// Takes ownership of a fully assembled Sequential whose final layer emits
  /// `classes` logits.
  explicit FeedForward(Sequential net);

  std::size_t param_count();
  void get_params(std::span<float> out);
  void set_params(std::span<const float> in);
  void get_grads(std::span<float> out);

  void init_params(util::Rng& rng) { net_.init_params(rng); }

  std::string summary() const { return net_.summary(); }
  std::size_t input_dim() const { return net_.in_dim(); }
  std::size_t num_classes() const { return net_.out_dim(); }

  /// One SGD step on a mini-batch: forward, softmax-CE backward, update.
  /// Returns the batch mean loss.
  double train_batch(const tensor::Matrix& x, std::span<const int> y,
                     float lr);

  /// Same, but the parameter update is delegated to `opt` (momentum, Adam,
  /// ...).  The optimizer instance must be used with this model only.
  double train_batch(const tensor::Matrix& x, std::span<const int> y,
                     Optimizer& opt, float lr);

  /// Forward + loss/accuracy without touching parameters.
  EvalResult evaluate(const tensor::Matrix& x, std::span<const int> y);

  /// Raw logits (inference mode).
  tensor::Matrix predict(const tensor::Matrix& x);

  /// Computes gradients on (x, y) without applying an update — used by
  /// gradient-checking tests and by ablations that need raw gradients.
  double compute_grads(const tensor::Matrix& x, std::span<const int> y);

  /// Direct access to the underlying network (benchmarks flip Conv2d
  /// reference mode through this).
  Sequential& net() noexcept { return net_; }

 private:
  ParamPack& params_pack();
  ParamPack& grads_pack();

  Sequential net_;
  // Train-step workspace: logits/loss-gradient buffers plus parameter and
  // gradient packs built once (spans point into layer heap storage, which is
  // stable across FeedForward moves), so a steady-state step allocates
  // nothing.
  tensor::Matrix logits_;
  tensor::Matrix loss_grad_;
  ParamPack params_cache_;
  ParamPack grads_cache_;
  bool packs_built_ = false;
};

/// Builders for the paper's two image-model scales (see DESIGN.md §5 on the
/// scaled-down substitution).
struct CnnSpec {
  std::size_t image_size = 12;  // square grayscale input
  std::size_t conv1_filters = 8;
  std::size_t conv2_filters = 16;
  std::size_t kernel = 5;
  std::size_t fc_width = 64;
  std::size_t classes = 10;
};

/// "CNN with two 5×5 convolution layers, a fully connected layer, and a
/// final output layer" (paper §V-A) at configurable scale.
FeedForward make_digits_cnn(const CnnSpec& spec, util::Rng& rng);

/// Small MLP used by fast tests and the quickstart example.
FeedForward make_mlp(std::size_t in, std::vector<std::size_t> hidden,
                     std::size_t classes, util::Rng& rng);

}  // namespace cmfl::nn

#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "tensor/init.h"

namespace cmfl::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim)
    : in_(input_dim),
      hidden_(hidden_dim),
      w_(4 * hidden_dim, input_dim),
      u_(4 * hidden_dim, hidden_dim),
      b_(4 * hidden_dim, 0.0f),
      gw_(4 * hidden_dim, input_dim),
      gu_(4 * hidden_dim, hidden_dim),
      gb_(4 * hidden_dim, 0.0f) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("Lstm: dimensions must be positive");
  }
}

tensor::Matrix Lstm::forward(const std::vector<tensor::Matrix>& inputs) {
  if (inputs.empty()) throw std::invalid_argument("Lstm::forward: no steps");
  const std::size_t batch = inputs.front().rows();
  cache_.clear();
  cache_.reserve(inputs.size());

  tensor::Matrix h(batch, hidden_);
  tensor::Matrix c(batch, hidden_);

  for (const auto& x : inputs) {
    if (x.rows() != batch || x.cols() != in_) {
      throw std::invalid_argument("Lstm::forward: inconsistent step shape");
    }
    StepCache step;
    step.x = x;
    step.h_prev = h;
    step.c_prev = c;

    // pre = x Wᵀ + h_prev Uᵀ + b, shape batch × 4H.  Both products dispatch
    // to the blocked GEMM in tensor/kernels.cpp (pool-sharded when large).
    tensor::Matrix pre(batch, 4 * hidden_);
    tensor::matmul_nt(x, w_, pre);
    tensor::Matrix rec(batch, 4 * hidden_);
    tensor::matmul_nt(h, u_, rec);
    tensor::accumulate(pre, rec);
    tensor::add_row_bias(pre, b_);

    step.i = tensor::Matrix(batch, hidden_);
    step.f = tensor::Matrix(batch, hidden_);
    step.g = tensor::Matrix(batch, hidden_);
    step.o = tensor::Matrix(batch, hidden_);
    step.c = tensor::Matrix(batch, hidden_);
    step.tanh_c = tensor::Matrix(batch, hidden_);
    tensor::Matrix h_new(batch, hidden_);

    for (std::size_t n = 0; n < batch; ++n) {
      auto p = pre.row(n);
      auto cp = c.row(n);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = sigmoid(p[j]);
        const float fv = sigmoid(p[hidden_ + j]);
        const float gv = std::tanh(p[2 * hidden_ + j]);
        const float ov = sigmoid(p[3 * hidden_ + j]);
        const float cv = fv * cp[j] + iv * gv;
        const float tc = std::tanh(cv);
        step.i.at(n, j) = iv;
        step.f.at(n, j) = fv;
        step.g.at(n, j) = gv;
        step.o.at(n, j) = ov;
        step.c.at(n, j) = cv;
        step.tanh_c.at(n, j) = tc;
        h_new.at(n, j) = ov * tc;
      }
    }

    h = h_new;
    c = step.c;
    cache_.push_back(std::move(step));
  }
  h_last_ = h;
  return h;
}

std::vector<tensor::Matrix> Lstm::hidden_states() const {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::hidden_states: forward() not called");
  }
  std::vector<tensor::Matrix> states;
  states.reserve(cache_.size());
  // h_t for t < T is the h_prev cached by step t+1; h_T is stored separately.
  for (std::size_t t = 1; t < cache_.size(); ++t) {
    states.push_back(cache_[t].h_prev);
  }
  states.push_back(h_last_);
  return states;
}

std::vector<tensor::Matrix> Lstm::backward(const tensor::Matrix& grad_h_last) {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::backward: forward() not called");
  }
  std::vector<tensor::Matrix> grad_h(cache_.size());
  const std::size_t batch = cache_.front().x.rows();
  for (std::size_t t = 0; t + 1 < cache_.size(); ++t) {
    grad_h[t] = tensor::Matrix(batch, hidden_);
  }
  grad_h.back() = grad_h_last;
  return backward_steps(grad_h);
}

std::vector<tensor::Matrix> Lstm::backward_steps(
    const std::vector<tensor::Matrix>& grad_h) {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::backward_steps: forward() not called");
  }
  if (grad_h.size() != cache_.size()) {
    throw std::invalid_argument("Lstm::backward_steps: step count mismatch");
  }
  const std::size_t batch = cache_.front().x.rows();
  for (const auto& g : grad_h) {
    if (g.rows() != batch || g.cols() != hidden_) {
      throw std::invalid_argument(
          "Lstm::backward_steps: gradient shape mismatch");
    }
  }

  std::vector<tensor::Matrix> grad_inputs(cache_.size());
  tensor::Matrix dh(batch, hidden_);        // d loss / d h_t
  tensor::Matrix dc(batch, hidden_);        // d loss / d c_t (from future)

  for (std::size_t t = cache_.size(); t-- > 0;) {
    tensor::accumulate(dh, grad_h[t]);
    const StepCache& step = cache_[t];
    // Pre-activation gate gradients, stacked batch × 4H in [i; f; g; o].
    tensor::Matrix dpre(batch, 4 * hidden_);
    for (std::size_t n = 0; n < batch; ++n) {
      auto dp = dpre.row(n);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = step.i.at(n, j);
        const float fv = step.f.at(n, j);
        const float gv = step.g.at(n, j);
        const float ov = step.o.at(n, j);
        const float tc = step.tanh_c.at(n, j);
        const float dhv = dh.at(n, j);
        // h = o ⊙ tanh(c)
        const float do_ = dhv * tc;
        float dcv = dc.at(n, j) + dhv * ov * (1.0f - tc * tc);
        const float di = dcv * gv;
        const float df = dcv * step.c_prev.at(n, j);
        const float dg = dcv * iv;
        dp[j] = di * iv * (1.0f - iv);
        dp[hidden_ + j] = df * fv * (1.0f - fv);
        dp[2 * hidden_ + j] = dg * (1.0f - gv * gv);
        dp[3 * hidden_ + j] = do_ * ov * (1.0f - ov);
        // carry to c_{t-1}
        dc.at(n, j) = dcv * fv;
      }
    }

    // Parameter gradients: gW += dpreᵀ x, gU += dpreᵀ h_prev, gb += Σ dpre.
    tensor::Matrix gw_batch(4 * hidden_, in_);
    tensor::matmul_tn(dpre, step.x, gw_batch);
    tensor::accumulate(gw_, gw_batch);
    tensor::Matrix gu_batch(4 * hidden_, hidden_);
    tensor::matmul_tn(dpre, step.h_prev, gu_batch);
    tensor::accumulate(gu_, gu_batch);
    for (std::size_t n = 0; n < batch; ++n) {
      auto dp = dpre.row(n);
      for (std::size_t j = 0; j < 4 * hidden_; ++j) gb_[j] += dp[j];
    }

    // Input and recurrent gradients: dx = dpre W, dh_prev = dpre U.
    grad_inputs[t] = tensor::Matrix(batch, in_);
    tensor::matmul(dpre, w_, grad_inputs[t]);
    tensor::Matrix dh_prev(batch, hidden_);
    tensor::matmul(dpre, u_, dh_prev);
    dh = std::move(dh_prev);
  }
  return grad_inputs;
}

void Lstm::init_params(util::Rng& rng) {
  tensor::xavier_uniform(w_.flat(), in_, hidden_, rng);
  tensor::xavier_uniform(u_.flat(), hidden_, hidden_, rng);
  std::fill(b_.begin(), b_.end(), 0.0f);
  // Forget-gate bias of 1 is the standard trick for gradient flow early in
  // training (Jozefowicz et al.).
  for (std::size_t j = 0; j < hidden_; ++j) b_[hidden_ + j] = 1.0f;
}

void Lstm::zero_grads() {
  gw_.zero();
  gu_.zero();
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void Lstm::collect_params(std::vector<std::span<float>>& out) {
  out.push_back(w_.flat());
  out.push_back(u_.flat());
  out.push_back(b_);
}

void Lstm::collect_grads(std::vector<std::span<float>>& out) {
  out.push_back(gw_.flat());
  out.push_back(gu_.flat());
  out.push_back(gb_);
}

}  // namespace cmfl::nn

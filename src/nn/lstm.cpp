#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "nn/activations.h"
#include "tensor/init.h"

namespace cmfl::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim)
    : in_(input_dim),
      hidden_(hidden_dim),
      w_(4 * hidden_dim, input_dim),
      u_(4 * hidden_dim, hidden_dim),
      b_(4 * hidden_dim, 0.0f),
      gw_(4 * hidden_dim, input_dim),
      gu_(4 * hidden_dim, hidden_dim),
      gb_(4 * hidden_dim, 0.0f) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("Lstm: dimensions must be positive");
  }
}

const tensor::Matrix& Lstm::forward(
    const std::vector<tensor::Matrix>& inputs) {
  if (inputs.empty()) throw std::invalid_argument("Lstm::forward: no steps");
  const std::size_t batch = inputs.front().rows();
  if (cache_.size() != inputs.size()) cache_.resize(inputs.size());

  // Zero initial state.  h0_/c0_ are never written elsewhere, so after the
  // resize they are all-zero (Matrix value-initializes grown storage).
  h0_.resize(batch, hidden_);
  h0_.zero();
  c0_.resize(batch, hidden_);
  c0_.zero();
  const tensor::Matrix* h = &h0_;
  const tensor::Matrix* c = &c0_;

  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const tensor::Matrix& x = inputs[t];
    if (x.rows() != batch || x.cols() != in_) {
      throw std::invalid_argument("Lstm::forward: inconsistent step shape");
    }
    StepCache& step = cache_[t];
    step.x = &x;

    // pre = x Wᵀ + h_prev Uᵀ + b, shape batch × 4H.  Both products dispatch
    // to the blocked GEMM in tensor/kernels.cpp (pool-sharded when large).
    pre_.resize(batch, 4 * hidden_);
    tensor::matmul_nt(x, w_, pre_);
    rec_.resize(batch, 4 * hidden_);
    tensor::matmul_nt(*h, u_, rec_);
    tensor::accumulate(pre_, rec_);
    tensor::add_row_bias(pre_, b_);

    step.i.resize(batch, hidden_);
    step.f.resize(batch, hidden_);
    step.g.resize(batch, hidden_);
    step.o.resize(batch, hidden_);
    step.c.resize(batch, hidden_);
    step.tanh_c.resize(batch, hidden_);
    step.h.resize(batch, hidden_);

    for (std::size_t n = 0; n < batch; ++n) {
      auto p = pre_.row(n);
      auto cp = c->row(n);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = sigmoid(p[j]);
        const float fv = sigmoid(p[hidden_ + j]);
        const float gv = std::tanh(p[2 * hidden_ + j]);
        const float ov = sigmoid(p[3 * hidden_ + j]);
        const float cv = fv * cp[j] + iv * gv;
        const float tc = std::tanh(cv);
        step.i.at(n, j) = iv;
        step.f.at(n, j) = fv;
        step.g.at(n, j) = gv;
        step.o.at(n, j) = ov;
        step.c.at(n, j) = cv;
        step.tanh_c.at(n, j) = tc;
        step.h.at(n, j) = ov * tc;
      }
    }

    h = &step.h;
    c = &step.c;
  }
  return cache_.back().h;
}

std::vector<tensor::Matrix> Lstm::hidden_states() const {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::hidden_states: forward() not called");
  }
  std::vector<tensor::Matrix> states;
  states.reserve(cache_.size());
  for (const StepCache& step : cache_) states.push_back(step.h);
  return states;
}

const std::vector<tensor::Matrix>& Lstm::backward(
    const tensor::Matrix& grad_h_last) {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::backward: forward() not called");
  }
  const std::size_t batch = cache_.front().x->rows();
  if (grad_h_last.rows() != batch || grad_h_last.cols() != hidden_) {
    throw std::invalid_argument("Lstm::backward_steps: gradient shape mismatch");
  }
  // Zero gradient (nullptr) on every step but the last.
  ghp_.assign(cache_.size(), nullptr);
  ghp_.back() = &grad_h_last;
  return run_bptt(ghp_.data());
}

const std::vector<tensor::Matrix>& Lstm::backward_steps(
    const std::vector<tensor::Matrix>& grad_h) {
  if (cache_.empty()) {
    throw std::logic_error("Lstm::backward_steps: forward() not called");
  }
  if (grad_h.size() != cache_.size()) {
    throw std::invalid_argument("Lstm::backward_steps: step count mismatch");
  }
  const std::size_t batch = cache_.front().x->rows();
  for (const auto& g : grad_h) {
    if (g.rows() != batch || g.cols() != hidden_) {
      throw std::invalid_argument(
          "Lstm::backward_steps: gradient shape mismatch");
    }
  }
  ghp_.resize(grad_h.size());
  for (std::size_t t = 0; t < grad_h.size(); ++t) ghp_[t] = &grad_h[t];
  return run_bptt(ghp_.data());
}

const std::vector<tensor::Matrix>& Lstm::run_bptt(
    const tensor::Matrix* const* grad_h) {
  const std::size_t batch = cache_.front().x->rows();
  if (grad_inputs_.size() != cache_.size()) grad_inputs_.resize(cache_.size());
  dh_.resize(batch, hidden_);
  dh_.zero();
  dc_.resize(batch, hidden_);
  dc_.zero();

  for (std::size_t t = cache_.size(); t-- > 0;) {
    if (grad_h[t] != nullptr) tensor::accumulate(dh_, *grad_h[t]);
    const StepCache& step = cache_[t];
    const tensor::Matrix& cprev = c_prev(t);
    // Pre-activation gate gradients, stacked batch × 4H in [i; f; g; o].
    dpre_.resize(batch, 4 * hidden_);
    for (std::size_t n = 0; n < batch; ++n) {
      auto dp = dpre_.row(n);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = step.i.at(n, j);
        const float fv = step.f.at(n, j);
        const float gv = step.g.at(n, j);
        const float ov = step.o.at(n, j);
        const float tc = step.tanh_c.at(n, j);
        const float dhv = dh_.at(n, j);
        // h = o ⊙ tanh(c)
        const float do_ = dhv * tc;
        float dcv = dc_.at(n, j) + dhv * ov * (1.0f - tc * tc);
        const float di = dcv * gv;
        const float df = dcv * cprev.at(n, j);
        const float dg = dcv * iv;
        dp[j] = di * iv * (1.0f - iv);
        dp[hidden_ + j] = df * fv * (1.0f - fv);
        dp[2 * hidden_ + j] = dg * (1.0f - gv * gv);
        dp[3 * hidden_ + j] = do_ * ov * (1.0f - ov);
        // carry to c_{t-1}
        dc_.at(n, j) = dcv * fv;
      }
    }

    // Parameter gradients: gW += dpreᵀ x, gU += dpreᵀ h_prev, gb += Σ dpre.
    gwb_.resize(4 * hidden_, in_);
    tensor::matmul_tn(dpre_, *step.x, gwb_);
    tensor::accumulate(gw_, gwb_);
    gub_.resize(4 * hidden_, hidden_);
    tensor::matmul_tn(dpre_, h_prev(t), gub_);
    tensor::accumulate(gu_, gub_);
    tensor::add_col_sums(dpre_, gb_);

    // Input and recurrent gradients: dx = dpre W, dh_prev = dpre U (written
    // straight into dh_ for the next-older step — dh_ is not an input of
    // this product).
    grad_inputs_[t].resize(batch, in_);
    tensor::matmul(dpre_, w_, grad_inputs_[t]);
    tensor::matmul(dpre_, u_, dh_);
  }
  return grad_inputs_;
}

void Lstm::init_params(util::Rng& rng) {
  tensor::xavier_uniform(w_.flat(), in_, hidden_, rng);
  tensor::xavier_uniform(u_.flat(), hidden_, hidden_, rng);
  std::fill(b_.begin(), b_.end(), 0.0f);
  // Forget-gate bias of 1 is the standard trick for gradient flow early in
  // training (Jozefowicz et al.).
  for (std::size_t j = 0; j < hidden_; ++j) b_[hidden_ + j] = 1.0f;
}

void Lstm::zero_grads() {
  gw_.zero();
  gu_.zero();
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void Lstm::collect_params(std::vector<std::span<float>>& out) {
  out.push_back(w_.flat());
  out.push_back(u_.flat());
  out.push_back(b_);
}

void Lstm::collect_grads(std::vector<std::span<float>>& out) {
  out.push_back(gw_.flat());
  out.push_back(gu_.flat());
  out.push_back(gb_);
}

}  // namespace cmfl::nn

#include "nn/embedding.h"

#include <stdexcept>

#include "tensor/init.h"

namespace cmfl::nn {

Embedding::Embedding(std::size_t vocab, std::size_t dim)
    : vocab_(vocab), dim_(dim), table_(vocab, dim), grad_table_(vocab, dim) {
  if (vocab == 0 || dim == 0) {
    throw std::invalid_argument("Embedding: dimensions must be positive");
  }
}

tensor::Matrix Embedding::lookup(std::span<const int> tokens) const {
  tensor::Matrix out;
  lookup_into(tokens, out);
  return out;
}

void Embedding::lookup_into(std::span<const int> tokens,
                            tensor::Matrix& out) const {
  out.resize(tokens.size(), dim_);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const int t = tokens[i];
    if (t < 0 || static_cast<std::size_t>(t) >= vocab_) {
      throw std::invalid_argument("Embedding::lookup: token " +
                                  std::to_string(t) + " out of range");
    }
    auto src = table_.row(static_cast<std::size_t>(t));
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void Embedding::accumulate_grad(std::span<const int> tokens,
                                const tensor::Matrix& grad) {
  if (grad.rows() != tokens.size() || grad.cols() != dim_) {
    throw std::invalid_argument("Embedding::accumulate_grad: shape mismatch");
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const int t = tokens[i];
    if (t < 0 || static_cast<std::size_t>(t) >= vocab_) {
      throw std::invalid_argument("Embedding::accumulate_grad: token " +
                                  std::to_string(t) + " out of range");
    }
    auto dst = grad_table_.row(static_cast<std::size_t>(t));
    auto src = grad.row(i);
    for (std::size_t j = 0; j < dim_; ++j) dst[j] += src[j];
  }
}

void Embedding::init_params(util::Rng& rng) {
  // Modest scale keeps early LSTM activations in the linear region.
  tensor::gaussian(table_.flat(), 0.1f, rng);
}

void Embedding::zero_grads() { grad_table_.zero(); }

}  // namespace cmfl::nn

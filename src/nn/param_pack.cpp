#include "nn/param_pack.h"

#include <algorithm>
#include <stdexcept>

namespace cmfl::nn {

ParamPack::ParamPack(std::vector<std::span<float>> views)
    : views_(std::move(views)) {
  for (const auto& v : views_) total_ += v.size();
}

void ParamPack::copy_to(std::span<float> out) const {
  if (out.size() != total_) {
    throw std::invalid_argument("ParamPack::copy_to: size mismatch");
  }
  std::size_t offset = 0;
  for (const auto& v : views_) {
    std::copy(v.begin(), v.end(), out.begin() + offset);
    offset += v.size();
  }
}

void ParamPack::copy_from(std::span<const float> in) {
  if (in.size() != total_) {
    throw std::invalid_argument("ParamPack::copy_from: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& v : views_) {
    std::copy(in.begin() + offset, in.begin() + offset + v.size(), v.begin());
    offset += v.size();
  }
}

std::vector<float> ParamPack::to_vector() const {
  std::vector<float> out(total_);
  copy_to(out);
  return out;
}

void ParamPack::axpy_from(float alpha, std::span<const float> src) {
  if (src.size() != total_) {
    throw std::invalid_argument("ParamPack::axpy_from: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& v : views_) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += alpha * src[offset + i];
    offset += v.size();
  }
}

void ParamPack::axpy_from(float alpha, const ParamPack& src) {
  if (src.total_ != total_ || src.views_.size() != views_.size()) {
    throw std::invalid_argument("ParamPack::axpy_from: segmentation mismatch");
  }
  for (std::size_t s = 0; s < views_.size(); ++s) {
    auto& dst = views_[s];
    const auto& from = src.views_[s];
    if (dst.size() != from.size()) {
      throw std::invalid_argument(
          "ParamPack::axpy_from: segmentation mismatch");
    }
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += alpha * from[i];
  }
}

void ParamPack::zero() {
  for (auto& v : views_) std::fill(v.begin(), v.end(), 0.0f);
}

}  // namespace cmfl::nn

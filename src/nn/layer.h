// Layer interface for the feed-forward stack.
//
// Activations are batches: a tensor::Matrix whose rows are flattened samples.
// Convolutional layers carry their own (c, h, w) interpretation of the flat
// row.  Layers own their parameters and gradient buffers and expose both as
// spans so models can be flattened into the single update vector that the
// CMFL core operates on.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace cmfl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Flattened input/output widths; Sequential validates chaining.
  virtual std::size_t in_dim() const noexcept = 0;
  virtual std::size_t out_dim() const noexcept = 0;

  /// Human-readable layer kind, for model summaries.
  virtual std::string name() const = 0;

  /// Computes `out` from `in` (resizing `out` as needed) and caches whatever
  /// backward() will need.  `training` toggles stochastic behaviour
  /// (dropout); inference paths pass false.
  ///
  /// Lifetime contract (zero-allocation hot path): layers cache *pointers*
  /// to `in` (and may reference `out`) instead of deep-copying, so both
  /// matrices must stay alive and unmodified until the matching backward()
  /// completes.  Sequential owns the inter-layer activation buffers and
  /// guarantees this for the stack; direct callers (LstmLm's head, tests)
  /// must keep their activations alive themselves.
  virtual void forward(const tensor::Matrix& in, tensor::Matrix& out,
                       bool training) = 0;

  /// Given d(loss)/d(out), accumulates parameter gradients and writes
  /// d(loss)/d(in) into grad_in (resizing as needed; grad_in must not alias
  /// grad_out).  Must be called after a matching forward().
  virtual void backward(const tensor::Matrix& grad_out,
                        tensor::Matrix& grad_in) = 0;

  /// Randomizes parameters (no-op for parameterless layers).
  virtual void init_params(util::Rng& rng) { (void)rng; }

  /// Appends views over this layer's parameters / gradients.  The order must
  /// be identical between the two calls and stable across the layer's
  /// lifetime.
  virtual void collect_params(std::vector<std::span<float>>& out) {
    (void)out;
  }
  virtual void collect_grads(std::vector<std::span<float>>& out) { (void)out; }

  /// Zeroes gradient accumulators.
  virtual void zero_grads() {}
};

}  // namespace cmfl::nn

// Loss functions.  Each returns the mean loss over the batch and writes the
// gradient with respect to the raw model output (logits / predictions),
// already divided by the batch size.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace cmfl::nn {

/// Softmax + cross-entropy over integer class labels.
/// logits: (batch × classes); labels: batch entries in [0, classes).
/// Throws std::invalid_argument on shape/label violations.
double softmax_cross_entropy(const tensor::Matrix& logits,
                             std::span<const int> labels,
                             tensor::Matrix& grad);

/// Row-wise softmax probabilities (numerically stabilized); used by
/// evaluation paths that need calibrated scores.
tensor::Matrix softmax(const tensor::Matrix& logits);

/// Allocation-free form: writes the row-wise softmax of `logits` into
/// `probs` (resized to match; may not alias logits).  Same op sequence as
/// softmax().
void softmax_into(const tensor::Matrix& logits, tensor::Matrix& probs);

/// Index of the max logit per row.
std::vector<int> argmax_rows(const tensor::Matrix& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const tensor::Matrix& logits, std::span<const int> labels);

/// Mean squared error against a dense target matrix (same shape).
double mse(const tensor::Matrix& pred, const tensor::Matrix& target,
           tensor::Matrix& grad);

/// Binary hinge loss for labels in {-1, +1} given scalar scores
/// (batch × 1).  Used by the MOCHA linear SVM substrate.
double hinge(std::span<const float> scores, std::span<const int> labels,
             std::span<float> grad);

}  // namespace cmfl::nn

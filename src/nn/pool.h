// Max pooling (window = stride, no padding): the classic 2×2 downsampling
// stage between the convolution blocks.
#pragma once

#include "nn/layer.h"

namespace cmfl::nn {

struct Pool2dSpec {
  std::size_t channels = 1;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t window = 2;  // also the stride
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(const Pool2dSpec& spec);

  std::size_t in_dim() const noexcept override;
  std::size_t out_dim() const noexcept override;
  std::string name() const override;

  std::size_t out_height() const noexcept { return out_h_; }
  std::size_t out_width() const noexcept { return out_w_; }

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

 private:
  Pool2dSpec spec_;
  std::size_t out_h_;
  std::size_t out_w_;
  // argmax_[n * out_dim() + flat output index] = flat input index of the
  // winning element (flat buffer, reused across steps without reallocating)
  std::vector<std::size_t> argmax_;
  std::size_t cached_batch_ = 0;
};

}  // namespace cmfl::nn

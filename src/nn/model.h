// Common model vocabulary shared by the two trainable model families
// (FeedForward over dense feature rows, LstmLm over token sequences).
//
// Both expose the same flat-parameter API — param_count / get_params /
// set_params / get_grads — which is all the federated layer needs: a client
// update is `local_params_after_training - global_params`, a flat
// std::vector<float>.
#pragma once

#include <cstddef>
#include <span>

namespace cmfl::nn {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t samples = 0;
};

/// Merges two partial evaluations (weighted by sample counts).
EvalResult merge(const EvalResult& a, const EvalResult& b) noexcept;

}  // namespace cmfl::nn

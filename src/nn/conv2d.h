// 2-D convolution over flattened NCHW rows, stride 1, symmetric zero
// padding.  The paper's MNIST model is "a CNN with two 5×5 convolution
// layers, a fully connected layer, and a final output layer"; Conv2D is the
// workhorse for that architecture.
#pragma once

#include "nn/layer.h"
#include "tensor/tensor4.h"

namespace cmfl::nn {

struct Conv2dSpec {
  std::size_t in_channels = 1;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t out_channels = 1;
  std::size_t kernel = 5;
  std::size_t padding = 2;  // `same` for kernel 5
};

class Conv2d final : public Layer {
 public:
  explicit Conv2d(const Conv2dSpec& spec);

  std::size_t in_dim() const noexcept override;
  std::size_t out_dim() const noexcept override;
  std::string name() const override;

  std::size_t out_height() const noexcept { return out_h_; }
  std::size_t out_width() const noexcept { return out_w_; }
  std::size_t out_channels() const noexcept { return spec_.out_channels; }

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

  void init_params(util::Rng& rng) override;
  void collect_params(std::vector<std::span<float>>& out) override;
  void collect_grads(std::vector<std::span<float>>& out) override;
  void zero_grads() override;

 private:
  float& weight(std::size_t oc, std::size_t ic, std::size_t kh,
                std::size_t kw) noexcept;
  float weight(std::size_t oc, std::size_t ic, std::size_t kh,
               std::size_t kw) const noexcept;

  Conv2dSpec spec_;
  std::size_t out_h_;
  std::size_t out_w_;
  std::vector<float> w_;   // [out_c][in_c][k][k]
  std::vector<float> b_;   // [out_c]
  std::vector<float> gw_;
  std::vector<float> gb_;
  tensor::Matrix cached_in_;
};

}  // namespace cmfl::nn

// 2-D convolution over flattened NCHW rows, stride 1, symmetric zero
// padding.  The paper's MNIST model is "a CNN with two 5×5 convolution
// layers, a fully connected layer, and a final output layer"; Conv2D is the
// workhorse for that architecture.
//
// The default forward lowers to im2col over a cached per-layer workspace and
// dispatches to the blocked GEMM kernels in tensor/kernels.h; the backward
// keeps the naive nonzero-skipping scatter (in training the incoming
// gradient has passed ReLU and MaxPool backward, so 50–90% of its entries
// are exact zeros — a dense col2im/GEMM formulation pays full MACs for them
// and measures slower end to end).  The original 7-deep naive loops are
// retained behind set_reference_impl(true) (the *_ref convention of
// tensor/kernels.h) for equivalence tests and the old-vs-new training
// benchmark.  Both paths are bit-identical: the forward GEMM preserves the
// naive per-output-element accumulation order (bias first, then taps with
// (ic, kh, kw) increasing) and the explicit zeros im2col writes for padding
// taps are ±0-safe no-ops; the backward shares the naive loop order
// outright, with the bias gradient hoisted into tensor::add_col_sums (whose
// extra zero-gradient terms are the same ±0 no-ops).
#pragma once

#include "nn/layer.h"
#include "tensor/tensor4.h"

namespace cmfl::nn {

struct Conv2dSpec {
  std::size_t in_channels = 1;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t out_channels = 1;
  std::size_t kernel = 5;
  std::size_t padding = 2;  // `same` for kernel 5
};

class Conv2d final : public Layer {
 public:
  explicit Conv2d(const Conv2dSpec& spec);

  std::size_t in_dim() const noexcept override;
  std::size_t out_dim() const noexcept override;
  std::string name() const override;

  std::size_t out_height() const noexcept { return out_h_; }
  std::size_t out_width() const noexcept { return out_w_; }
  std::size_t out_channels() const noexcept { return spec_.out_channels; }

  /// Switches to the retained naive loops (per-step allocating, no GEMM).
  /// Used by equivalence tests and bench_train's pre-PR baseline.
  void set_reference_impl(bool ref) noexcept { ref_mode_ = ref; }
  bool reference_impl() const noexcept { return ref_mode_; }

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

  void init_params(util::Rng& rng) override;
  void collect_params(std::vector<std::span<float>>& out) override;
  void collect_grads(std::vector<std::span<float>>& out) override;
  void zero_grads() override;

 private:
  float& weight(std::size_t oc, std::size_t ic, std::size_t kh,
                std::size_t kw) noexcept;
  float weight(std::size_t oc, std::size_t ic, std::size_t kh,
               std::size_t kw) const noexcept;

  void forward_ref(const tensor::Matrix& in, tensor::Matrix& out);
  void backward_ref(const tensor::Matrix& grad_out, tensor::Matrix& grad_in);

  /// Writes sample row `x` as a (K × P) column matrix into `col`
  /// (K = in_c·k·k patch taps, P = out_h·out_w output pixels); padding taps
  /// become explicit zeros.
  void im2col_row(std::span<const float> x, float* col) const;

  /// Sparsity-aware gW/gX accumulation for one sample: walks nonzero
  /// gradient entries in the naive (oc, oh, ow) order and scatters their
  /// weight/input taps, skipping the ~50–90% of entries the upstream
  /// ReLU/MaxPool backward zeroed.  `gx` must be pre-zeroed.
  void scatter_grads_row(std::span<const float> x, std::span<const float> gy,
                         std::span<float> gx);

  Conv2dSpec spec_;
  std::size_t out_h_;
  std::size_t out_w_;
  std::vector<float> w_;   // [out_c][in_c][k][k]
  std::vector<float> b_;   // [out_c]
  std::vector<float> gw_;
  std::vector<float> gb_;
  bool ref_mode_ = false;
  std::size_t cached_batch_ = 0;
  tensor::Matrix cached_in_;        // reference mode only (seed deep-copy)
  const tensor::Matrix* in_ptr_ = nullptr;  // hot path: caller-owned input
  // im2col workspace, sized on first use and reused across steps:
  tensor::Matrix col_;  // batch × (K·P): per-sample patch matrix
};

}  // namespace cmfl::nn

// Fully connected layer: out = in · Wᵀ + b.
#pragma once

#include "nn/layer.h"

namespace cmfl::nn {

class Dense final : public Layer {
 public:
  /// W is (out × in), b has `out` entries.  He-initialized by default (the
  /// nets here use ReLU hidden layers); callers can re-init.
  Dense(std::size_t in, std::size_t out);

  std::size_t in_dim() const noexcept override { return in_; }
  std::size_t out_dim() const noexcept override { return out_; }
  std::string name() const override;

  void forward(const tensor::Matrix& in, tensor::Matrix& out,
               bool training) override;
  void backward(const tensor::Matrix& grad_out,
                tensor::Matrix& grad_in) override;

  void init_params(util::Rng& rng) override;
  void collect_params(std::vector<std::span<float>>& out) override;
  void collect_grads(std::vector<std::span<float>>& out) override;
  void zero_grads() override;

  const tensor::Matrix& weights() const noexcept { return w_; }

 private:
  std::size_t in_;
  std::size_t out_;
  tensor::Matrix w_;       // out × in
  std::vector<float> b_;   // out
  tensor::Matrix gw_;
  std::vector<float> gb_;
  const tensor::Matrix* cached_in_ = nullptr;  // forward input (see Layer)
  tensor::Matrix gw_batch_;  // persistent per-step scratch for gW
};

}  // namespace cmfl::nn

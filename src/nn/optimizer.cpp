#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::nn {

namespace {
void check_sizes(std::size_t params, std::size_t grads, const char* who) {
  if (params != grads) {
    throw std::invalid_argument(std::string(who) +
                                ": parameter/gradient size mismatch");
  }
}

void ensure_state(std::vector<float>& state, std::size_t n,
                  const char* who) {
  if (state.empty()) {
    state.assign(n, 0.0f);
  } else if (state.size() != n) {
    throw std::invalid_argument(std::string(who) +
                                ": pack size changed between steps");
  }
}
}  // namespace

void Sgd::step(ParamPack& params, const ParamPack& grads, float lr) {
  check_sizes(params.total_size(), grads.total_size(), "Sgd");
  params.axpy_from(-lr, grads);
}

MomentumSgd::MomentumSgd(float momentum) : momentum_(momentum) {
  if (momentum < 0.0f || momentum >= 1.0f) {
    throw std::invalid_argument("MomentumSgd: momentum must be in [0, 1)");
  }
}

std::string MomentumSgd::name() const {
  return "momentum:" + std::to_string(momentum_);
}

void MomentumSgd::step(ParamPack& params, const ParamPack& grads, float lr) {
  check_sizes(params.total_size(), grads.total_size(), "MomentumSgd");
  const std::size_t n = params.total_size();
  ensure_state(velocity_, n, "MomentumSgd");
  const std::vector<float> g = grads.to_vector();
  for (std::size_t i = 0; i < n; ++i) {
    velocity_[i] = momentum_ * velocity_[i] + g[i];
  }
  params.axpy_from(-lr, velocity_);
}

void MomentumSgd::reset() { velocity_.clear(); }

Adam::Adam(float beta1, float beta2, float eps)
    : beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (beta1 < 0.0f || beta1 >= 1.0f || beta2 < 0.0f || beta2 >= 1.0f ||
      eps <= 0.0f) {
    throw std::invalid_argument("Adam: invalid hyper-parameters");
  }
}

void Adam::step(ParamPack& params, const ParamPack& grads, float lr) {
  check_sizes(params.total_size(), grads.total_size(), "Adam");
  const std::size_t n = params.total_size();
  ensure_state(m_, n, "Adam");
  ensure_state(v_, n, "Adam");
  ++t_;
  const std::vector<float> g = grads.to_vector();
  std::vector<float> delta(n);
  const double bc1 = 1.0 - std::pow(static_cast<double>(beta1_), t_);
  const double bc2 = 1.0 - std::pow(static_cast<double>(beta2_), t_);
  for (std::size_t i = 0; i < n; ++i) {
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g[i];
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g[i] * g[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    delta[i] =
        static_cast<float>(m_hat / (std::sqrt(v_hat) + eps_));
  }
  params.axpy_from(-lr, delta);
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& spec) {
  if (spec == "sgd") return std::make_unique<Sgd>();
  if (spec == "adam") return std::make_unique<Adam>();
  if (spec == "momentum") return std::make_unique<MomentumSgd>();
  const auto colon = spec.find(':');
  if (colon != std::string::npos && spec.substr(0, colon) == "momentum") {
    return std::make_unique<MomentumSgd>(
        std::stof(spec.substr(colon + 1)));
  }
  throw std::invalid_argument("make_optimizer: unknown spec '" + spec + "'");
}

}  // namespace cmfl::nn

#include "data/dataset.h"

#include <numeric>
#include <stdexcept>

namespace cmfl::data {

void DenseDataset::validate() const {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("DenseDataset: row/label count mismatch");
  }
}

void DenseDataset::gather(std::span<const std::size_t> indices,
                          tensor::Matrix& bx, std::vector<int>& by) const {
  bx = tensor::Matrix(indices.size(), x.cols());
  by.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= size()) {
      throw std::out_of_range("DenseDataset::gather: index out of range");
    }
    auto src = x.row(indices[i]);
    auto dst = bx.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    by[i] = y[indices[i]];
  }
}

void SequenceDataset::validate() const {
  if (seq_len == 0) {
    throw std::invalid_argument("SequenceDataset: seq_len must be positive");
  }
  if (tokens.size() != next_token.size() * seq_len) {
    throw std::invalid_argument("SequenceDataset: token buffer size mismatch");
  }
  for (int t : tokens) {
    if (t < 0 || static_cast<std::size_t>(t) >= vocab) {
      throw std::invalid_argument("SequenceDataset: token out of vocab range");
    }
  }
  for (int t : next_token) {
    if (t < 0 || static_cast<std::size_t>(t) >= vocab) {
      throw std::invalid_argument("SequenceDataset: label out of vocab range");
    }
  }
}

void SequenceDataset::gather(std::span<const std::size_t> indices,
                             nn::SeqBatch& bx, std::vector<int>& by) const {
  bx.batch = indices.size();
  bx.seq_len = seq_len;
  bx.tokens.resize(indices.size() * seq_len);
  by.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= size()) {
      throw std::out_of_range("SequenceDataset::gather: index out of range");
    }
    std::copy(tokens.begin() + static_cast<std::ptrdiff_t>(indices[i] * seq_len),
              tokens.begin() +
                  static_cast<std::ptrdiff_t>((indices[i] + 1) * seq_len),
              bx.tokens.begin() + static_cast<std::ptrdiff_t>(i * seq_len));
    by[i] = next_token[indices[i]];
  }
}

std::size_t Partition::total_samples() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : client_indices) total += shard.size();
  return total;
}

Split split_indices(std::size_t count, double train_fraction, util::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("split_indices: train_fraction out of (0,1]");
  }
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(count));
  Split split;
  split.train.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(cut));
  split.test.assign(order.begin() + static_cast<std::ptrdiff_t>(cut), order.end());
  return split;
}

}  // namespace cmfl::data

// Procedurally rendered digit images.
//
// Substitute for MNIST (unavailable offline): each sample renders the
// digit's seven-segment glyph onto an S×S grayscale canvas with random
// translation, per-pixel Gaussian noise, and random stroke intensity.  The
// class structure (10 digits, visually confusable pairs like 8/9/3) is what
// the federated experiments need; pixel realism is not (DESIGN.md §5).
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "util/rng.h"

namespace cmfl::data {

struct SynthDigitsSpec {
  std::size_t samples = 6000;
  std::size_t image_size = 12;  // square canvas; >= 8
  float noise_stddev = 0.15f;   // additive pixel noise (where applied)
  /// Fraction of pixels receiving additive noise.  Values < 1 keep the
  /// background *exactly* zero elsewhere — like MNIST's black background —
  /// which makes client gradients sparse under ReLU nets.  That sparsity is
  /// what gives the CMFL relevance measure its discriminating power (clients
  /// whose glyph support misses a region produce exact-zero updates there).
  float noise_density = 0.15f;
  int max_shift = 1;            // uniform translation in [-max_shift, +max_shift]
  std::size_t classes = 10;
};

/// Generates `spec.samples` images with uniformly distributed labels.
/// Pixels are in [0, 1].  Throws std::invalid_argument on bad spec.
DenseDataset make_synth_digits(const SynthDigitsSpec& spec, util::Rng& rng);

/// Renders one clean (noise-free, centered) glyph — exposed for tests.
void render_digit_glyph(int digit, std::size_t image_size,
                        std::span<float> out);

}  // namespace cmfl::data

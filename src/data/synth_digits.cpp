#include "data/synth_digits.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace cmfl::data {

namespace {
// Seven-segment encoding per digit: top, top-left, top-right, middle,
// bottom-left, bottom-right, bottom.
constexpr std::array<std::array<bool, 7>, 10> kSegments = {{
    {true, true, true, false, true, true, true},      // 0
    {false, false, true, false, false, true, false},  // 1
    {true, false, true, true, true, false, true},     // 2
    {true, false, true, true, false, true, true},     // 3
    {false, true, true, true, false, true, false},    // 4
    {true, true, false, true, false, true, true},     // 5
    {true, true, false, true, true, true, true},      // 6
    {true, false, true, false, false, true, false},   // 7
    {true, true, true, true, true, true, true},       // 8
    {true, true, true, true, false, true, true},      // 9
}};
}  // namespace

void render_digit_glyph(int digit, std::size_t image_size,
                        std::span<float> out) {
  if (digit < 0 || digit > 9) {
    throw std::invalid_argument("render_digit_glyph: digit out of range");
  }
  if (image_size < 8) {
    throw std::invalid_argument("render_digit_glyph: image_size must be >= 8");
  }
  if (out.size() != image_size * image_size) {
    throw std::invalid_argument("render_digit_glyph: buffer size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0f);
  const auto& seg = kSegments[static_cast<std::size_t>(digit)];
  // Glyph box: rows [1, S-2], cols [2, S-3]; middle row at the midpoint.
  const std::size_t s = image_size;
  const std::size_t top = 1, bottom = s - 2, left = 2, right = s - 3;
  const std::size_t mid = (top + bottom) / 2;
  auto set = [&](std::size_t r, std::size_t c) { out[r * s + c] = 1.0f; };
  auto hline = [&](std::size_t r) {
    for (std::size_t c = left; c <= right; ++c) set(r, c);
  };
  auto vline = [&](std::size_t c, std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r <= r1; ++r) set(r, c);
  };
  if (seg[0]) hline(top);
  if (seg[1]) vline(left, top, mid);
  if (seg[2]) vline(right, top, mid);
  if (seg[3]) hline(mid);
  if (seg[4]) vline(left, mid, bottom);
  if (seg[5]) vline(right, mid, bottom);
  if (seg[6]) hline(bottom);
}

DenseDataset make_synth_digits(const SynthDigitsSpec& spec, util::Rng& rng) {
  if (spec.samples == 0) {
    throw std::invalid_argument("make_synth_digits: samples must be positive");
  }
  if (spec.classes == 0 || spec.classes > 10) {
    throw std::invalid_argument("make_synth_digits: classes must be in [1,10]");
  }
  const std::size_t s = spec.image_size;
  DenseDataset ds;
  ds.x = tensor::Matrix(spec.samples, s * s);
  ds.y.resize(spec.samples);

  std::vector<float> glyph(s * s);
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const int digit =
        static_cast<int>(rng.uniform_index(spec.classes));
    ds.y[i] = digit;
    render_digit_glyph(digit, s, glyph);

    const int dr = static_cast<int>(
        rng.uniform_int(-spec.max_shift, spec.max_shift));
    const int dc = static_cast<int>(
        rng.uniform_int(-spec.max_shift, spec.max_shift));
    const float intensity = rng.uniform_f(0.7f, 1.0f);

    auto row = ds.x.row(i);
    for (std::size_t r = 0; r < s; ++r) {
      for (std::size_t c = 0; c < s; ++c) {
        const int sr = static_cast<int>(r) - dr;
        const int sc = static_cast<int>(c) - dc;
        float v = 0.0f;
        if (sr >= 0 && sr < static_cast<int>(s) && sc >= 0 &&
            sc < static_cast<int>(s)) {
          v = glyph[static_cast<std::size_t>(sr) * s +
                    static_cast<std::size_t>(sc)] *
              intensity;
        }
        if (rng.bernoulli(spec.noise_density)) {
          v += rng.normal_f(0.0f, spec.noise_stddev);
        }
        row[r * s + c] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  ds.validate();
  return ds;
}

}  // namespace cmfl::data

// Mini-batch iteration over a shard (index list) of a dataset.
//
// The paper's clients run E passes over their local data with mini-batch
// size B; Batcher produces one epoch's worth of shuffled batches at a time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace cmfl::data {

class Batcher {
 public:
  /// `shard` is a view into the client's sample indices; the Batcher copies
  /// it so the shard may be a temporary.
  Batcher(std::span<const std::size_t> shard, std::size_t batch_size);

  std::size_t batch_size() const noexcept { return batch_size_; }
  std::size_t samples() const noexcept { return order_.size(); }
  std::size_t batches_per_epoch() const noexcept;

  /// Reshuffles and returns the epoch's batches (each a span-able index
  /// vector; the final batch may be smaller).
  std::vector<std::vector<std::size_t>> epoch(util::Rng& rng);

 private:
  std::vector<std::size_t> order_;
  std::size_t batch_size_;
};

}  // namespace cmfl::data

// Synthetic Semeion-style handwritten digits: 16×16 *binary* images
// (substitute for the UCI Semeion dataset; DESIGN.md §5).  Binary task:
// "zero vs other numbers", matching the paper's MOCHA setup.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "util/rng.h"

namespace cmfl::data {

struct SynthSemeionSpec {
  std::size_t samples = 1593;
  std::size_t image_size = 16;
  double flip_probability = 0.08;  // Bernoulli pixel noise after thresholding
  int max_shift = 1;
};

/// Labels: 1 if the underlying glyph is a zero, else 0.
DenseDataset make_synth_semeion(const SynthSemeionSpec& spec, util::Rng& rng);

}  // namespace cmfl::data

// Synthetic Human Activity Recognition features (substitute for the UCI HAR
// dataset; DESIGN.md §5).
//
// Binary task, "sitting vs other activities".  Each class has a global
// prototype in feature space; each client adds its own sensor-bias vector
// (people wear phones differently) and a client-specific class mix.  A
// configurable minority of clients are generated as *outliers* with a much
// larger bias and partially swapped class structure — the population Fig. 6
// of the paper detects via frequent CMFL eliminations.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace cmfl::data {

struct SynthHarSpec {
  std::size_t clients = 142;
  std::size_t min_samples = 10;
  std::size_t max_samples = 100;
  std::size_t features = 561;
  double class_separation = 1.2;   // distance between class prototypes
  double client_bias_stddev = 0.3; // per-client sensor shift
  double sample_noise_stddev = 0.6;
  double outlier_fraction = 0.25;  // fraction of clients that are outliers
  double outlier_bias_stddev = 1.8;
  double outlier_label_flip = 0.35;  // fraction of flipped labels at outliers
};

struct HarData {
  DenseDataset dataset;   // labels in {0, 1}
  Partition partition;    // per-client shards
  std::vector<bool> is_outlier;  // ground truth per client (for Fig. 6)
};

HarData make_synth_har(const SynthHarSpec& spec, util::Rng& rng);

}  // namespace cmfl::data

// Role-conditioned synthetic dialogue corpus for next-word prediction.
//
// Substitute for the Shakespeare corpus (DESIGN.md §5).  The generator
// builds a vocabulary of `topics × words_per_topic` topic words plus a pool
// of shared function words.  Each speaking role draws a heavily skewed
// preference over topics (one or two dominant topics), and its dialogue is
// produced by a role-specific Markov process: alternate function words and
// topic words, with within-topic bigram structure.  The result is exactly
// what the NWP experiment needs: per-client corpora whose token
// distributions are strongly non-IID while remaining learnable.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace cmfl::data {

struct SynthTextSpec {
  std::size_t roles = 100;           // one client per speaking role
  std::size_t words_per_role = 80;   // dialogue length per role (tokens)
  std::size_t seq_len = 6;           // window length fed to the LSTM
  std::size_t topics = 10;
  std::size_t words_per_topic = 10;
  std::size_t function_words = 20;   // shared high-frequency words
  double dominant_topic_weight = 8.0;  // skew of a role's topic preference
  /// Fraction of roles that are *outliers*: their dialogue follows an
  /// inverted within-topic bigram (word-1 instead of word+1) and an
  /// inverted function-word habit.  Their data is self-consistent but
  /// anti-correlated with the population — the "biased updates [that] are
  /// simply outliers" the paper's intuition section describes.
  double outlier_fraction = 0.0;
};

struct RoleCorpus {
  /// Window start offsets are contiguous per role, so a role's windows form
  /// one contiguous index range inside the SequenceDataset.
  SequenceDataset dataset;
  /// windows_of_role[k] = indices of role k's windows in `dataset`.
  std::vector<std::vector<std::size_t>> windows_of_role;
  /// Ground truth per role (true = inverted-structure outlier).
  std::vector<bool> is_outlier;
};

/// Generates the corpus and slices it into per-role next-word-prediction
/// windows.  vocab = topics*words_per_topic + function_words.
RoleCorpus make_synth_text(const SynthTextSpec& spec, util::Rng& rng);

}  // namespace cmfl::data

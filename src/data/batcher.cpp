#include "data/batcher.h"

#include <stdexcept>

namespace cmfl::data {

Batcher::Batcher(std::span<const std::size_t> shard, std::size_t batch_size)
    : order_(shard.begin(), shard.end()), batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("Batcher: batch_size must be positive");
  }
  if (order_.empty()) {
    throw std::invalid_argument("Batcher: shard must not be empty");
  }
}

std::size_t Batcher::batches_per_epoch() const noexcept {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<std::vector<std::size_t>> Batcher::epoch(util::Rng& rng) {
  rng.shuffle(order_);
  std::vector<std::vector<std::size_t>> batches;
  batches.reserve(batches_per_epoch());
  for (std::size_t begin = 0; begin < order_.size(); begin += batch_size_) {
    const std::size_t end = std::min(begin + batch_size_, order_.size());
    batches.emplace_back(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                         order_.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace cmfl::data

#include "data/synth_har.h"

#include <cmath>
#include <stdexcept>

namespace cmfl::data {

HarData make_synth_har(const SynthHarSpec& spec, util::Rng& rng) {
  if (spec.clients == 0 || spec.features == 0 ||
      spec.min_samples == 0 || spec.max_samples < spec.min_samples) {
    throw std::invalid_argument("make_synth_har: malformed spec");
  }
  // Class prototypes: only a subset of features are discriminative, the rest
  // are background — mirrors real HAR features where many are redundant.
  const std::size_t informative = std::max<std::size_t>(8, spec.features / 8);
  std::vector<float> proto0(spec.features, 0.0f);
  std::vector<float> proto1(spec.features, 0.0f);
  for (std::size_t j = 0; j < spec.features; ++j) {
    const float base = rng.normal_f(0.0f, 0.5f);
    proto0[j] = base;
    proto1[j] = base;
    if (j < informative) {
      const auto sep = static_cast<float>(spec.class_separation);
      proto0[j] -= sep / 2.0f;
      proto1[j] += sep / 2.0f;
    }
  }

  HarData out;
  out.is_outlier.resize(spec.clients);
  out.partition.client_indices.resize(spec.clients);

  // Decide client sizes first so total storage can be allocated once.
  std::vector<std::size_t> sizes(spec.clients);
  std::size_t total = 0;
  for (std::size_t k = 0; k < spec.clients; ++k) {
    sizes[k] = spec.min_samples +
               rng.uniform_index(spec.max_samples - spec.min_samples + 1);
    total += sizes[k];
  }
  out.dataset.x = tensor::Matrix(total, spec.features);
  out.dataset.y.resize(total);

  std::size_t row = 0;
  for (std::size_t k = 0; k < spec.clients; ++k) {
    const bool outlier = rng.uniform() < spec.outlier_fraction;
    out.is_outlier[k] = outlier;
    const double bias_sd =
        outlier ? spec.outlier_bias_stddev : spec.client_bias_stddev;
    std::vector<float> bias(spec.features);
    for (float& b : bias) b = rng.normal_f(0.0f, static_cast<float>(bias_sd));

    for (std::size_t i = 0; i < sizes[k]; ++i, ++row) {
      int label = rng.bernoulli(0.5) ? 1 : 0;
      const auto& proto = label == 1 ? proto1 : proto0;
      auto dst = out.dataset.x.row(row);
      for (std::size_t j = 0; j < spec.features; ++j) {
        dst[j] = proto[j] + bias[j] +
                 rng.normal_f(0.0f,
                              static_cast<float>(spec.sample_noise_stddev));
      }
      if (outlier && rng.uniform() < spec.outlier_label_flip) label = 1 - label;
      out.dataset.y[row] = label;
      out.partition.client_indices[k].push_back(row);
    }
  }
  out.dataset.validate();
  return out;
}

}  // namespace cmfl::data

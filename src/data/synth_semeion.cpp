#include "data/synth_semeion.h"

#include <stdexcept>
#include <vector>

#include "data/synth_digits.h"

namespace cmfl::data {

DenseDataset make_synth_semeion(const SynthSemeionSpec& spec, util::Rng& rng) {
  if (spec.samples == 0 || spec.image_size < 8) {
    throw std::invalid_argument("make_synth_semeion: malformed spec");
  }
  const std::size_t s = spec.image_size;
  DenseDataset ds;
  ds.x = tensor::Matrix(spec.samples, s * s);
  ds.y.resize(spec.samples);

  std::vector<float> glyph(s * s);
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const int digit = static_cast<int>(rng.uniform_index(10));
    ds.y[i] = digit == 0 ? 1 : 0;
    render_digit_glyph(digit, s, glyph);
    const int dr = static_cast<int>(rng.uniform_int(-spec.max_shift,
                                                    spec.max_shift));
    const int dc = static_cast<int>(rng.uniform_int(-spec.max_shift,
                                                    spec.max_shift));
    auto row = ds.x.row(i);
    for (std::size_t r = 0; r < s; ++r) {
      for (std::size_t c = 0; c < s; ++c) {
        const int sr = static_cast<int>(r) - dr;
        const int sc = static_cast<int>(c) - dc;
        bool on = false;
        if (sr >= 0 && sr < static_cast<int>(s) && sc >= 0 &&
            sc < static_cast<int>(s)) {
          on = glyph[static_cast<std::size_t>(sr) * s +
                     static_cast<std::size_t>(sc)] > 0.5f;
        }
        if (rng.bernoulli(spec.flip_probability)) on = !on;
        row[r * s + c] = on ? 1.0f : 0.0f;
      }
    }
  }
  ds.validate();
  return ds;
}

}  // namespace cmfl::data

// Dataset containers.
//
// Two sample families cover all four workloads:
//  * DenseDataset — fixed-width feature rows + integer labels (digit images,
//    HAR feature vectors, Semeion bitmaps).
//  * SequenceDataset — fixed-length token windows + next-token labels (the
//    next-word-prediction workload).
// A Partition is a per-client index list into a shared dataset; shards never
// copy sample storage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/lstm_lm.h"
#include "tensor/matrix.h"

namespace cmfl::data {

struct DenseDataset {
  tensor::Matrix x;       // samples × features
  std::vector<int> y;     // class labels

  std::size_t size() const noexcept { return y.size(); }
  std::size_t features() const noexcept { return x.cols(); }

  /// Throws std::invalid_argument if x/y row counts disagree.
  void validate() const;

  /// Materializes the subset selected by `indices` as a batch.
  void gather(std::span<const std::size_t> indices, tensor::Matrix& bx,
              std::vector<int>& by) const;
};

struct SequenceDataset {
  std::vector<int> tokens;      // windows × seq_len, row-major
  std::vector<int> next_token;  // label per window
  std::size_t seq_len = 0;
  std::size_t vocab = 0;

  std::size_t size() const noexcept { return next_token.size(); }

  void validate() const;

  void gather(std::span<const std::size_t> indices, nn::SeqBatch& bx,
              std::vector<int>& by) const;
};

/// Per-client shard: indices into the shared dataset.
struct Partition {
  std::vector<std::vector<std::size_t>> client_indices;

  std::size_t clients() const noexcept { return client_indices.size(); }
  std::size_t total_samples() const noexcept;
};

/// Train/test split: the first `train_fraction` of a shuffled index range.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

Split split_indices(std::size_t count, double train_fraction, util::Rng& rng);

}  // namespace cmfl::data

#include "data/synth_text.h"

#include <stdexcept>

namespace cmfl::data {

RoleCorpus make_synth_text(const SynthTextSpec& spec, util::Rng& rng) {
  if (spec.roles == 0 || spec.words_per_role <= spec.seq_len ||
      spec.seq_len == 0 || spec.topics == 0 || spec.words_per_topic == 0) {
    throw std::invalid_argument("make_synth_text: malformed spec");
  }
  const std::size_t vocab =
      spec.topics * spec.words_per_topic + spec.function_words;
  const int function_base =
      static_cast<int>(spec.topics * spec.words_per_topic);

  RoleCorpus corpus;
  corpus.dataset.seq_len = spec.seq_len;
  corpus.dataset.vocab = vocab;
  corpus.windows_of_role.resize(spec.roles);
  corpus.is_outlier.resize(spec.roles);

  for (std::size_t role = 0; role < spec.roles; ++role) {
    const bool outlier = rng.uniform() < spec.outlier_fraction;
    corpus.is_outlier[role] = outlier;
    // Skewed topic preference: one dominant topic (role-determined), one
    // secondary topic (random), uniform residue.
    std::vector<double> topic_weight(spec.topics, 1.0);
    topic_weight[role % spec.topics] = spec.dominant_topic_weight;
    topic_weight[rng.uniform_index(spec.topics)] +=
        spec.dominant_topic_weight / 2.0;

    // Role-specific function-word habit: each role favours a small subset;
    // outlier roles concentrate on the tail of the function vocabulary.
    std::vector<double> func_weight(spec.function_words, 1.0);
    if (spec.function_words > 0) {
      for (int rep = 0; rep < 3; ++rep) {
        const std::size_t pick = rng.uniform_index(spec.function_words);
        func_weight[outlier ? spec.function_words - 1 - pick : pick] += 4.0;
      }
    }

    // Generate the role's token stream: function word, then a short run of
    // words from one topic with +1 bigram chaining inside the topic.
    std::vector<int> stream;
    stream.reserve(spec.words_per_role);
    while (stream.size() < spec.words_per_role) {
      if (spec.function_words > 0) {
        stream.push_back(function_base +
                         static_cast<int>(rng.categorical(func_weight)));
      }
      const std::size_t topic = rng.categorical(topic_weight);
      std::size_t word = rng.uniform_index(spec.words_per_topic);
      const std::size_t run = 1 + rng.uniform_index(3);
      for (std::size_t r = 0; r < run && stream.size() < spec.words_per_role;
           ++r) {
        stream.push_back(
            static_cast<int>(topic * spec.words_per_topic + word));
        // Within-topic bigram: usually advance cyclically (outlier roles
        // walk the chain in the *opposite* direction), occasionally jump.
        if (rng.bernoulli(0.8)) {
          word = outlier ? (word + spec.words_per_topic - 1) %
                               spec.words_per_topic
                         : (word + 1) % spec.words_per_topic;
        } else {
          word = rng.uniform_index(spec.words_per_topic);
        }
      }
    }
    stream.resize(spec.words_per_role);

    // Slice into (window, next-token) samples.
    for (std::size_t start = 0; start + spec.seq_len < stream.size();
         ++start) {
      corpus.windows_of_role[role].push_back(corpus.dataset.size());
      corpus.dataset.tokens.insert(
          corpus.dataset.tokens.end(), stream.begin() + static_cast<std::ptrdiff_t>(start),
          stream.begin() + static_cast<std::ptrdiff_t>(start + spec.seq_len));
      corpus.dataset.next_token.push_back(stream[start + spec.seq_len]);
    }
  }

  corpus.dataset.validate();
  return corpus;
}

}  // namespace cmfl::data

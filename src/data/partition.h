// Non-IID partitioners: how samples are assigned to federated clients.
//
// The paper's MNIST protocol is reproduced exactly by
// label_sorted_partition: "sort these samples by their digit labels and then
// divide them into 100 clients" — each client ends up holding 1–2 classes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace cmfl::data {

/// Sorts sample indices by label, then splits them into `clients` contiguous
/// shards of (near-)equal size.  Produces the paper's pathological non-IID
/// distribution.  Throws std::invalid_argument if clients == 0 or
/// clients > labels.size().
Partition label_sorted_partition(std::span<const int> labels,
                                 std::size_t clients);

/// FedAvg-style "shards" protocol: sort by label, cut into
/// clients*shards_per_client shards, deal shards_per_client random shards to
/// each client.  shards_per_client = 2 gives each client ~2 classes.
Partition sharded_partition(std::span<const int> labels, std::size_t clients,
                            std::size_t shards_per_client, util::Rng& rng);

/// IID control: random equal split (for ablations).
Partition iid_partition(std::size_t samples, std::size_t clients,
                        util::Rng& rng);

/// Randomly sized shards of `samples`: each client draws a size uniformly in
/// [min_samples, max_samples] (capped so all samples can be assigned), used
/// by the MOCHA workloads ("randomly divided into 15 clients each with 10 to
/// 200 samples").
Partition random_sized_partition(std::size_t samples, std::size_t clients,
                                 std::size_t min_samples,
                                 std::size_t max_samples, util::Rng& rng);

/// Sanity-check: every shard index is in range and no index is duplicated
/// across shards.  Throws std::logic_error on violation.
void validate_partition(const Partition& partition, std::size_t samples);

}  // namespace cmfl::data

#include "data/partition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace cmfl::data {

namespace {
std::vector<std::size_t> indices_sorted_by_label(std::span<const int> labels) {
  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return labels[a] < labels[b];
                   });
  return order;
}
}  // namespace

Partition label_sorted_partition(std::span<const int> labels,
                                 std::size_t clients) {
  if (clients == 0 || clients > labels.size()) {
    throw std::invalid_argument("label_sorted_partition: bad client count");
  }
  const auto order = indices_sorted_by_label(labels);
  Partition p;
  p.client_indices.resize(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    const std::size_t begin = k * order.size() / clients;
    const std::size_t end = (k + 1) * order.size() / clients;
    p.client_indices[k].assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                               order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return p;
}

Partition sharded_partition(std::span<const int> labels, std::size_t clients,
                            std::size_t shards_per_client, util::Rng& rng) {
  if (clients == 0 || shards_per_client == 0) {
    throw std::invalid_argument("sharded_partition: bad parameters");
  }
  const std::size_t num_shards = clients * shards_per_client;
  if (num_shards > labels.size()) {
    throw std::invalid_argument("sharded_partition: more shards than samples");
  }
  const auto order = indices_sorted_by_label(labels);
  std::vector<std::size_t> shard_ids(num_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng.shuffle(shard_ids);

  Partition p;
  p.client_indices.resize(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    for (std::size_t s = 0; s < shards_per_client; ++s) {
      const std::size_t shard = shard_ids[k * shards_per_client + s];
      const std::size_t begin = shard * order.size() / num_shards;
      const std::size_t end = (shard + 1) * order.size() / num_shards;
      p.client_indices[k].insert(p.client_indices[k].end(),
                                 order.begin() + static_cast<std::ptrdiff_t>(begin),
                                 order.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return p;
}

Partition iid_partition(std::size_t samples, std::size_t clients,
                        util::Rng& rng) {
  if (clients == 0 || clients > samples) {
    throw std::invalid_argument("iid_partition: bad client count");
  }
  std::vector<std::size_t> order(samples);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Partition p;
  p.client_indices.resize(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    const std::size_t begin = k * samples / clients;
    const std::size_t end = (k + 1) * samples / clients;
    p.client_indices[k].assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                               order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return p;
}

Partition random_sized_partition(std::size_t samples, std::size_t clients,
                                 std::size_t min_samples,
                                 std::size_t max_samples, util::Rng& rng) {
  if (clients == 0 || min_samples == 0 || max_samples < min_samples) {
    throw std::invalid_argument("random_sized_partition: bad parameters");
  }
  if (clients * min_samples > samples) {
    throw std::invalid_argument(
        "random_sized_partition: not enough samples for the minimum shard "
        "sizes");
  }
  std::vector<std::size_t> order(samples);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  Partition p;
  p.client_indices.resize(clients);
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < clients; ++k) {
    const std::size_t remaining_clients = clients - k - 1;
    const std::size_t remaining = samples - cursor;
    // Leave enough for every later client to get at least min_samples.
    const std::size_t reserve = remaining_clients * min_samples;
    const std::size_t hi =
        std::min(max_samples, remaining > reserve ? remaining - reserve
                                                  : min_samples);
    const std::size_t lo = std::min(min_samples, hi);
    const std::size_t take = lo + rng.uniform_index(hi - lo + 1);
    p.client_indices[k].assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                               order.begin() + static_cast<std::ptrdiff_t>(cursor + take));
    cursor += take;
  }
  return p;
}

void validate_partition(const Partition& partition, std::size_t samples) {
  std::vector<bool> seen(samples, false);
  for (const auto& shard : partition.client_indices) {
    for (std::size_t idx : shard) {
      if (idx >= samples) {
        throw std::logic_error("validate_partition: index out of range");
      }
      if (seen[idx]) {
        throw std::logic_error("validate_partition: duplicated index");
      }
      seen[idx] = true;
    }
  }
}

}  // namespace cmfl::data

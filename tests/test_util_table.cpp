#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cmfl::util {
namespace {

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"scheme", "rounds"});
  t.add_row({"CMFL", "145"});
  t.add_row({"vanilla", "500"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| scheme  | rounds |"), std::string::npos);
  EXPECT_NE(out.find("| CMFL    | 145    |"), std::string::npos);
  EXPECT_NE(out.find("| vanilla | 500    |"), std::string::npos);
}

TEST(Table, PrintCsv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(40200), "40,200");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-56600), "-56,600");
}

}  // namespace
}  // namespace cmfl::util

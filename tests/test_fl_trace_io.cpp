#include "fl/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cmfl::fl {
namespace {

SimulationResult sample_result() {
  SimulationResult r;
  for (std::size_t t = 1; t <= 5; ++t) {
    IterationRecord rec;
    rec.iteration = t;
    rec.uploads = 10 - t;
    rec.participants = 12 - t;
    rec.rejected = t % 2;
    rec.cumulative_rounds = t * 9;
    rec.cumulative_upload_bytes = t * 4096;
    rec.mean_score = 0.5 + 0.01 * static_cast<double>(t);
    rec.mean_train_loss = 2.0 / static_cast<double>(t);
    rec.delta_update = 0.1 * static_cast<double>(t);
    rec.staleness_mean = 0.25 * static_cast<double>(t);
    rec.staleness_max = t + 1;
    if (t % 2 == 0) {
      rec.accuracy = 0.1 * static_cast<double>(t);
      rec.loss = 1.0 / static_cast<double>(t);
    }
    r.history.push_back(rec);
  }
  r.total_rounds = r.history.back().cumulative_rounds;
  r.uploaded_bytes = r.history.back().cumulative_upload_bytes;
  r.final_accuracy = 0.4;
  r.uploads_per_client = {4, 0, 9};
  r.eliminations_per_client = {1, 5, 0};
  return r;
}

TEST(TraceIo, RoundTripPreservesHistory) {
  const SimulationResult original = sample_result();
  std::stringstream ss;
  write_trace_csv(ss, original);
  const SimulationResult loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.history.size(), original.history.size());
  for (std::size_t i = 0; i < original.history.size(); ++i) {
    const auto& a = original.history[i];
    const auto& b = loaded.history[i];
    EXPECT_EQ(b.iteration, a.iteration);
    EXPECT_EQ(b.uploads, a.uploads);
    EXPECT_EQ(b.cumulative_rounds, a.cumulative_rounds);
    EXPECT_NEAR(b.mean_score, a.mean_score, 1e-9);
    EXPECT_NEAR(b.delta_update, a.delta_update, 1e-9);
    EXPECT_EQ(b.evaluated(), a.evaluated());
    if (a.evaluated()) {
      EXPECT_NEAR(b.accuracy, a.accuracy, 1e-9);
      EXPECT_NEAR(b.loss, a.loss, 1e-9);
    }
  }
  EXPECT_EQ(loaded.total_rounds, original.total_rounds);
  EXPECT_NEAR(loaded.final_accuracy, original.final_accuracy, 1e-9);
}

TEST(TraceIo, V2RoundTripPreservesNewFields) {
  const SimulationResult original = sample_result();
  std::stringstream ss;
  write_trace_csv(ss, original);
  const SimulationResult loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.history.size(), original.history.size());
  for (std::size_t i = 0; i < original.history.size(); ++i) {
    const auto& a = original.history[i];
    const auto& b = loaded.history[i];
    EXPECT_EQ(b.participants, a.participants);
    EXPECT_EQ(b.rejected, a.rejected);
    EXPECT_EQ(b.cumulative_upload_bytes, a.cumulative_upload_bytes);
    EXPECT_NEAR(b.staleness_mean, a.staleness_mean, 1e-9);
    EXPECT_EQ(b.staleness_max, a.staleness_max);
  }
  EXPECT_EQ(loaded.uploaded_bytes, original.uploaded_bytes);
  EXPECT_EQ(loaded.uploads_per_client, original.uploads_per_client);
  EXPECT_EQ(loaded.eliminations_per_client,
            original.eliminations_per_client);
}

TEST(TraceIo, ReadsLegacyV1Traces) {
  // A v1 trace as the previous revision wrote it: no version sentinel,
  // 8 columns, no per-client rows.
  const std::string v1 =
      "iteration,uploads,cumulative_rounds,mean_score,mean_train_loss,"
      "delta_update,accuracy,loss\n"
      "1,9,9,0.51,2,0.1,,\n"
      "2,8,17,0.52,1,0.2,0.2,0.5\n";
  std::stringstream ss(v1);
  const SimulationResult loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.history.size(), 2u);
  EXPECT_EQ(loaded.history[0].iteration, 1u);
  EXPECT_EQ(loaded.history[1].uploads, 8u);
  EXPECT_EQ(loaded.history[1].cumulative_rounds, 17u);
  EXPECT_NEAR(loaded.history[1].accuracy, 0.2, 1e-12);
  // v2-only fields default to zero on a v1 trace.
  EXPECT_EQ(loaded.history[1].participants, 0u);
  EXPECT_EQ(loaded.history[1].cumulative_upload_bytes, 0u);
  EXPECT_TRUE(loaded.uploads_per_client.empty());
  EXPECT_EQ(loaded.total_rounds, 17u);
  EXPECT_NEAR(loaded.final_accuracy, 0.2, 1e-12);
}

TEST(TraceIo, RejectsMalformedClientRow) {
  std::stringstream ss;
  write_trace_csv(ss, sample_result());
  std::string data = ss.str();
  data += "client,7,oops,0\n";
  std::stringstream broken(data);
  EXPECT_THROW(read_trace_csv(broken), std::runtime_error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream ss("nope,nope\n1,2\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream ss;
  write_trace_csv(ss, sample_result());
  std::string data = ss.str();
  data += "not,a,valid,row\n";
  std::stringstream broken(data);
  EXPECT_THROW(read_trace_csv(broken), std::runtime_error);
  std::stringstream garbage_cells(
      std::string("iteration,uploads,cumulative_rounds,mean_score,"
                  "mean_train_loss,delta_update,accuracy,loss\n") +
      "x,1,2,3,4,5,,\n");
  EXPECT_THROW(read_trace_csv(garbage_cells), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cmfl_trace.csv";
  write_trace_csv_file(path, sample_result());
  const SimulationResult loaded = read_trace_csv_file(path);
  EXPECT_EQ(loaded.history.size(), 5u);
  EXPECT_THROW(read_trace_csv_file(path + ".missing"), std::runtime_error);
}

TEST(TraceIo, EmptyHistoryRoundTrips) {
  SimulationResult empty;
  std::stringstream ss;
  write_trace_csv(ss, empty);
  const SimulationResult loaded = read_trace_csv(ss);
  EXPECT_TRUE(loaded.history.empty());
  EXPECT_EQ(loaded.total_rounds, 0u);
}

}  // namespace
}  // namespace cmfl::fl

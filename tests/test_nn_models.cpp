// Model-level tests: parameter round-trips, training actually reduces loss,
// serialization, evaluation bookkeeping.
#include <gtest/gtest.h>

#include <sstream>

#include "nn/feed_forward.h"
#include "nn/lstm_lm.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

TEST(FeedForward, ParamRoundTrip) {
  util::Rng rng(1);
  FeedForward model = make_mlp(4, {6}, 3, rng);
  const std::size_t n = model.param_count();
  EXPECT_EQ(n, 4u * 6 + 6 + 6 * 3 + 3);
  std::vector<float> params(n);
  model.get_params(params);
  std::vector<float> modified = params;
  for (auto& v : modified) v += 1.0f;
  model.set_params(modified);
  std::vector<float> read_back(n);
  model.get_params(read_back);
  EXPECT_EQ(read_back, modified);
}

TEST(FeedForward, TrainingReducesLossOnFixedBatch) {
  util::Rng rng(2);
  FeedForward model = make_mlp(6, {12}, 2, rng);
  tensor::Matrix x(16, 6);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < 16; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < 6; ++j) {
      x.at(i, j) = (y[i] ? 1.0f : -1.0f) + rng.normal_f(0.0f, 0.3f);
    }
  }
  const double before = model.evaluate(x, y).loss;
  for (int step = 0; step < 50; ++step) model.train_batch(x, y, 0.1f);
  const double after = model.evaluate(x, y).loss;
  EXPECT_LT(after, before * 0.5);
  EXPECT_GT(model.evaluate(x, y).accuracy, 0.9);
}

TEST(FeedForward, EvaluateDoesNotMutateParams) {
  util::Rng rng(3);
  FeedForward model = make_mlp(4, {}, 2, rng);
  std::vector<float> before(model.param_count());
  model.get_params(before);
  tensor::Matrix x(3, 4);
  std::vector<int> y = {0, 1, 0};
  model.evaluate(x, y);
  std::vector<float> after(model.param_count());
  model.get_params(after);
  EXPECT_EQ(before, after);
}

TEST(FeedForward, DigitsCnnShapes) {
  util::Rng rng(4);
  CnnSpec spec;
  spec.image_size = 12;
  FeedForward model = make_digits_cnn(spec, rng);
  EXPECT_EQ(model.input_dim(), 144u);
  EXPECT_EQ(model.num_classes(), 10u);
  EXPECT_GT(model.param_count(), 1000u);
  EXPECT_THROW(
      [] {
        util::Rng r(1);
        CnnSpec bad;
        bad.image_size = 10;  // not divisible by 4
        return make_digits_cnn(bad, r);
      }(),
      std::invalid_argument);
}

TEST(FeedForward, PredictReturnsLogitsPerClass) {
  util::Rng rng(5);
  FeedForward model = make_mlp(4, {}, 3, rng);
  tensor::Matrix x(2, 4);
  const tensor::Matrix logits = model.predict(x);
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(LstmLm, ParamRoundTripAndCount) {
  LstmLmSpec spec;
  spec.vocab = 20;
  spec.embed_dim = 4;
  spec.hidden_dim = 6;
  spec.layers = 1;
  LstmLm model(spec);
  util::Rng rng(6);
  model.init_params(rng);
  const std::size_t expected = 20 * 4                      // embedding
                               + 4 * 6 * 4 + 4 * 6 * 6 + 4 * 6  // lstm
                               + 6 * 20 + 20;              // head
  EXPECT_EQ(model.param_count(), expected);
  std::vector<float> params(model.param_count());
  model.get_params(params);
  for (auto& v : params) v *= 0.5f;
  model.set_params(params);
  std::vector<float> back(model.param_count());
  model.get_params(back);
  EXPECT_EQ(back, params);
}

TEST(LstmLm, RejectsBadLayerCount) {
  LstmLmSpec spec;
  spec.layers = 3;
  EXPECT_THROW(LstmLm{spec}, std::invalid_argument);
  spec.layers = 0;
  EXPECT_THROW(LstmLm{spec}, std::invalid_argument);
}

TEST(LstmLm, TrainingLearnsDeterministicSequence) {
  // Token i is always followed by token (i+1) mod V — the model should
  // learn this transition nearly perfectly.
  LstmLmSpec spec;
  spec.vocab = 6;
  spec.embed_dim = 8;
  spec.hidden_dim = 16;
  LstmLm model(spec);
  util::Rng rng(7);
  model.init_params(rng);

  SeqBatch x;
  x.batch = 12;
  x.seq_len = 4;
  x.tokens.resize(x.batch * x.seq_len);
  std::vector<int> y(x.batch);
  for (std::size_t i = 0; i < x.batch; ++i) {
    const int start = static_cast<int>(i % 6);
    for (std::size_t t = 0; t < x.seq_len; ++t) {
      x.tokens[i * x.seq_len + t] = (start + static_cast<int>(t)) % 6;
    }
    y[i] = (start + static_cast<int>(x.seq_len)) % 6;
  }
  const double before = model.evaluate(x, y).loss;
  for (int step = 0; step < 150; ++step) model.train_batch(x, y, 0.3f);
  const EvalResult after = model.evaluate(x, y);
  EXPECT_LT(after.loss, before * 0.3);
  EXPECT_GT(after.accuracy, 0.9);
}

TEST(LstmLm, MalformedBatchRejected) {
  LstmLmSpec spec;
  spec.vocab = 5;
  LstmLm model(spec);
  util::Rng rng(8);
  model.init_params(rng);
  SeqBatch x;
  x.batch = 2;
  x.seq_len = 3;
  x.tokens.resize(5);  // wrong size
  std::vector<int> y = {0, 1};
  EXPECT_THROW(model.evaluate(x, y), std::invalid_argument);
}

TEST(EvalResult, MergeIsWeighted) {
  EvalResult a{1.0, 0.5, 10};
  EvalResult b{3.0, 1.0, 30};
  const EvalResult m = merge(a, b);
  EXPECT_EQ(m.samples, 40u);
  EXPECT_NEAR(m.loss, 2.5, 1e-9);
  EXPECT_NEAR(m.accuracy, 0.875, 1e-9);
  const EvalResult empty;
  const EvalResult same = merge(empty, a);
  EXPECT_NEAR(same.accuracy, 0.5, 1e-12);
}

TEST(Serialize, RoundTripStream) {
  std::vector<float> params = {1.5f, -2.25f, 0.0f, 3.75f};
  std::stringstream ss;
  save_params(ss, params);
  const auto loaded = load_params(ss);
  EXPECT_EQ(loaded, params);
}

TEST(Serialize, RejectsBadMagicAndTruncation) {
  std::stringstream bad("XXXXgarbage");
  EXPECT_THROW(load_params(bad), std::runtime_error);

  std::vector<float> params = {1.0f, 2.0f};
  std::stringstream ss;
  save_params(ss, params);
  std::string data = ss.str();
  data.resize(data.size() - 3);  // truncate
  std::stringstream truncated(data);
  EXPECT_THROW(load_params(truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(9);
  std::vector<float> params(100);
  for (auto& v : params) v = rng.uniform_f(-1.0f, 1.0f);
  const std::string path = ::testing::TempDir() + "/cmfl_params.bin";
  save_params_file(path, params);
  EXPECT_EQ(load_params_file(path), params);
  EXPECT_THROW(load_params_file(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace cmfl::nn

// The codec subsystem's behavioral contract: wire-size formulas,
// reconstruction semantics, error-feedback accumulation, refresh cadence,
// per-seed determinism, and bit-identical continuation from checkpointed
// mutable state.  The exhaustive malformed-payload matrices live in
// test_codec_malformed.cpp.
#include "codec/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace cmfl::codec {
namespace {

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-0.5f, 0.5f);
  return v;
}

// ------------------------------------------------------------------- sign

TEST(SignCodec, WireSizeIsOneBitPerCoordinatePlusHeader) {
  SignCodec c(256);
  const auto enc = c.encode(random_update(4096, 1));
  // [u64 dim][u32 chunk][f32 x 16 scales][u64 x 64 sign words].
  EXPECT_EQ(enc.wire_bytes(), 8u + 4 + 16 * 4 + 64 * 8);
  // The acceptance shape: ~dim/8 bytes of signs, header amortized away.
  EXPECT_LT(enc.wire_bytes(), 4096u / 8 + 100);
}

TEST(SignCodec, DecodesToPerChunkScaleWithOriginalSigns) {
  SignCodec c(2);
  const std::vector<float> u = {1.0f, -2.0f, 3.0f, -4.0f};
  const auto dec = c.decode(c.encode(u).payload);
  ASSERT_EQ(dec.size(), 4u);
  EXPECT_FLOAT_EQ(dec[0], 1.5f);   // chunk 0 mean |v| = 1.5
  EXPECT_FLOAT_EQ(dec[1], -1.5f);
  EXPECT_FLOAT_EQ(dec[2], 3.5f);   // chunk 1 mean |v| = 3.5
  EXPECT_FLOAT_EQ(dec[3], -3.5f);
}

TEST(SignCodec, ZeroDecodesPositive) {
  SignCodec c(4);
  const std::vector<float> u = {0.0f, -1.0f, 2.0f, 1.0f};
  const auto dec = c.decode(c.encode(u).payload);
  EXPECT_GT(dec[0], 0.0f);
}

TEST(SignCodec, RejectsZeroChunk) {
  EXPECT_THROW(SignCodec(0), std::invalid_argument);
}

// ------------------------------------------------------------------ quant

TEST(QuantCodec, SupportedBitWidthsRoundTripWithinOneStep) {
  const auto u = random_update(1000, 2);
  for (const int bits : {2, 4, 8}) {
    QuantCodec c(bits, 7);
    const auto enc = c.encode(u);
    // [u64 dim][u8 bits][f32 lo][f32 hi][packed levels].
    const std::size_t packed = (1000u * static_cast<std::size_t>(bits) + 7) / 8;
    EXPECT_EQ(enc.wire_bytes(), 8u + 1 + 4 + 4 + packed) << "bits=" << bits;
    const auto dec = c.decode(enc.payload);
    const float step = 1.0f / static_cast<float>((1 << bits) - 1);
    for (std::size_t i = 0; i < u.size(); ++i) {
      ASSERT_NEAR(dec[i], u[i], step * 1.5f) << "bits=" << bits;
    }
  }
}

TEST(QuantCodec, RejectsUnsupportedBitWidths) {
  for (const int bits : {0, 1, 3, 5, 6, 7, 16}) {
    EXPECT_THROW(QuantCodec(bits, 1), std::invalid_argument) << bits;
  }
}

TEST(QuantCodec, RestoredStateContinuesTheExactRngStream) {
  const auto u1 = random_update(64, 3);
  const auto u2 = random_update(64, 4);
  QuantCodec c1(4, 11);
  c1.encode(u1);  // advance the rounding stream
  const auto snapshot = c1.mutable_state();
  const auto a = c1.encode(u2);
  QuantCodec c2(4, 999);  // different seed: the restored state must win
  c2.restore_mutable_state(snapshot);
  const auto b = c2.encode(u2);
  EXPECT_EQ(a.payload, b.payload);
}

// ------------------------------------------------------------------- topk

TEST(TopKCodec, AbsoluteKKeepsExactlyKCoordinates) {
  TopKCodec c(5.0);
  const auto u = random_update(100, 5);
  const auto dec = c.decode(c.encode(u).payload);
  std::size_t nonzero = 0;
  for (const float v : dec) nonzero += v != 0.0f;
  EXPECT_EQ(nonzero, 5u);
}

TEST(TopKCodec, FractionFormScalesWithDimension) {
  TopKCodec c(0.1);
  const auto dec = c.decode(c.encode(random_update(50, 6)).payload);
  std::size_t nonzero = 0;
  for (const float v : dec) nonzero += v != 0.0f;
  EXPECT_EQ(nonzero, 5u);
}

TEST(TopKCodec, ErrorFeedbackDelaysUnsentMass) {
  TopKCodec c(1.0);
  const std::vector<float> u = {1.0f, 0.5f, 0.0f, 0.0f};
  const auto first = c.decode(c.encode(u).payload);
  EXPECT_FLOAT_EQ(first[0], 1.0f);  // largest magnitude goes out first
  EXPECT_FLOAT_EQ(first[1], 0.0f);
  // A zero update now carries the residual: the unsent 0.5 reappears.
  const std::vector<float> zeros(4, 0.0f);
  const auto second = c.decode(c.encode(zeros).payload);
  EXPECT_FLOAT_EQ(second[0], 0.0f);  // already delivered, residual cleared
  EXPECT_FLOAT_EQ(second[1], 0.5f);
}

TEST(TopKCodec, NothingIsPermanentlyDropped) {
  // Sum of everything decoded over enough rounds of zero updates equals the
  // original update exactly: error feedback only delays, never drops.
  TopKCodec c(2.0);
  const std::vector<float> u = {0.4f, -0.3f, 0.2f, -0.1f, 0.05f, 0.01f};
  std::vector<float> total(u.size(), 0.0f);
  auto add = [&](const std::vector<float>& d) {
    for (std::size_t i = 0; i < d.size(); ++i) total[i] += d[i];
  };
  add(c.decode(c.encode(u).payload));
  const std::vector<float> zeros(u.size(), 0.0f);
  for (int round = 0; round < 3; ++round) {
    add(c.decode(c.encode(zeros).payload));
  }
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_FLOAT_EQ(total[i], u[i]);
}

TEST(TopKCodec, DimensionChangeMidStreamThrows) {
  TopKCodec c(2.0);
  c.encode(random_update(16, 7));
  EXPECT_THROW(c.encode(random_update(17, 7)), std::invalid_argument);
}

TEST(TopKCodec, RejectsBadParams) {
  EXPECT_THROW(TopKCodec(0.0), std::invalid_argument);
  EXPECT_THROW(TopKCodec(-1.0), std::invalid_argument);
  EXPECT_THROW(TopKCodec(2.5), std::invalid_argument);  // non-integer k
}

TEST(TopKCodec, RestoredResidualContinuesBitIdentically) {
  const auto u1 = random_update(64, 8);
  const auto u2 = random_update(64, 9);
  TopKCodec c1(0.1);
  c1.encode(u1);  // leaves a nonzero residual behind
  const auto snapshot = c1.mutable_state();
  const auto a = c1.encode(u2);
  TopKCodec c2(0.1);
  c2.restore_mutable_state(snapshot);
  const auto b = c2.encode(u2);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(TopKCodec, RejectsMalformedStateBlob) {
  TopKCodec c(2.0);
  c.encode(random_update(8, 10));
  auto state = c.mutable_state();
  state.push_back(0);  // trailing words must be rejected
  EXPECT_THROW(c.restore_mutable_state(state), std::invalid_argument);
}

// --------------------------------------------------------------- codebook

TEST(CodebookCodec, ShipsTheCodebookOnlyOnRefreshRounds) {
  CodebookCodec c(4, 3);
  const auto u = random_update(128, 11);
  // Layout: [u64 dim][u8 index_bits][u8 has_codebook]...; the flag byte
  // sits at offset 9.
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 7; ++i) {
    const auto enc = c.encode(u);
    const bool has_codebook = enc.payload[9] == std::byte{1};
    EXPECT_EQ(has_codebook, i % 3 == 0) << "encode #" << i;
    sizes.push_back(enc.wire_bytes());
  }
  // Refresh payloads carry 1 + 4k extra bytes over the pure index stream.
  EXPECT_EQ(sizes[0], sizes[1] + 1 + 4 * 4);
}

TEST(CodebookCodec, DecoderCachesTheCodebookAcrossPayloads) {
  CodebookCodec enc(4, 4);
  const auto u = random_update(64, 12);
  const auto refresh = enc.encode(u);
  const auto index_only = enc.encode(u);

  CodebookCodec dec(4, 4);
  const auto d1 = dec.decode(refresh.payload);
  const auto d2 = dec.decode(index_only.payload);  // uses the cached centers
  EXPECT_EQ(d1, d2);  // same input, same codebook, same reconstruction

  CodebookCodec cold(4, 4);
  EXPECT_THROW(cold.decode(index_only.payload), std::runtime_error);
}

TEST(CodebookCodec, ReconstructionUsesNearestCenter) {
  CodebookCodec c(2, 1);
  const std::vector<float> u = {0.0f, 0.0f, 1.0f, 1.0f, 0.1f, 0.9f};
  const auto dec = c.decode(c.encode(u).payload);
  // Two centers near 0 and 1; every coordinate snaps to the closer one.
  EXPECT_NEAR(dec[0], dec[4], 0.11);
  EXPECT_NEAR(dec[2], dec[5], 0.11);
  EXPECT_GT(dec[2] - dec[0], 0.5f);
}

TEST(CodebookCodec, RestoredStateKeepsTheRefreshPhase) {
  const auto u1 = random_update(64, 13);
  const auto u2 = random_update(64, 14);
  CodebookCodec c1(8, 4);
  c1.encode(u1);
  c1.encode(u1);  // encodes_ = 2, codebook cached
  const auto snapshot = c1.mutable_state();
  const auto a = c1.encode(u2);
  CodebookCodec c2(8, 4);
  c2.restore_mutable_state(snapshot);
  const auto b = c2.encode(u2);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.payload[9], std::byte{0});  // mid-cycle: no refresh yet
}

TEST(CodebookCodec, RejectsBadParamsAndStateBlobs) {
  EXPECT_THROW(CodebookCodec(1, 4), std::invalid_argument);
  EXPECT_THROW(CodebookCodec(300, 4), std::invalid_argument);
  EXPECT_THROW(CodebookCodec(4, 0), std::invalid_argument);
  CodebookCodec c(4, 4);
  EXPECT_THROW(c.restore_mutable_state({}), std::invalid_argument);
  CodebookCodec other(8, 4);
  other.encode(random_update(32, 15));
  const auto state = other.mutable_state();
  EXPECT_THROW(c.restore_mutable_state(state), std::invalid_argument);  // k=8
}

// ------------------------------------------------- subsample / structured

TEST(SubsampleCodec, RestoredStateContinuesTheExactRngStream) {
  const auto u = random_update(64, 16);
  SubsampleCodec c1(0.5, 21);
  c1.encode(u);
  const auto snapshot = c1.mutable_state();
  const auto a = c1.encode(u);
  SubsampleCodec c2(0.5, 777);
  c2.restore_mutable_state(snapshot);
  const auto b = c2.encode(u);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(StructuredMaskCodec, RestoredStateContinuesTheExactRngStream) {
  const auto u = random_update(64, 17);
  StructuredMaskCodec c1(0.25, 22);
  c1.encode(u);
  const auto snapshot = c1.mutable_state();
  const auto a = c1.encode(u);
  StructuredMaskCodec c2(0.25, 888);
  c2.restore_mutable_state(snapshot);
  const auto b = c2.encode(u);
  EXPECT_EQ(a.payload, b.payload);
}

// ---------------------------------------------------------------- factory

TEST(MakeUpdateCodec, ParameterizedSpecs) {
  EXPECT_EQ(make_update_codec("sign", 1)->name(), "sign:256");
  EXPECT_EQ(make_update_codec("sign:128", 1)->name(), "sign:128");
  EXPECT_EQ(make_update_codec("quant:4", 1)->name(), "quant:4");
  EXPECT_EQ(make_update_codec("topk:0.05", 1)->name(), "topk:0.0500");
  EXPECT_EQ(make_update_codec("topk:32", 1)->name(), "topk:32");
  EXPECT_EQ(make_update_codec("codebook:16", 1)->name(), "codebook:16,16");
  EXPECT_EQ(make_update_codec("codebook:16,8", 1)->name(), "codebook:16,8");
  EXPECT_THROW(make_update_codec("quant:3", 1), std::invalid_argument);
  EXPECT_THROW(make_update_codec("sign:0", 1), std::invalid_argument);
  EXPECT_THROW(make_update_codec("topk:junk", 1), std::invalid_argument);
  EXPECT_THROW(make_update_codec("codebook:16,", 1), std::invalid_argument);
}

TEST(MakeUpdateCodec, WireIdsAndVersionsAreStable) {
  const struct {
    const char* spec;
    std::uint8_t id;
    bool stateful_decode;
  } cases[] = {
      {"dense", kCodecDense, false},     {"sign", kCodecSign, false},
      {"quant:8", kCodecQuant, false},   {"topk:0.1", kCodecTopK, false},
      {"codebook:8", kCodecCodebook, true},
      {"subsample:0.5", kCodecSubsample, false},
      {"structured:0.5", kCodecStructured, false},
  };
  const auto u = random_update(32, 18);
  for (const auto& t : cases) {
    auto c = make_update_codec(t.spec, 5);
    EXPECT_EQ(c->id(), t.id) << t.spec;
    EXPECT_EQ(c->version(), 1) << t.spec;
    EXPECT_EQ(c->stateful_decode(), t.stateful_decode) << t.spec;
    const auto enc = c->encode(u);
    EXPECT_EQ(enc.codec_id, t.id) << t.spec;
    EXPECT_EQ(enc.wire_bytes(), enc.payload.size()) << t.spec;
  }
}

TEST(MakeUpdateCodec, SameSeedSameSpecIsDeterministic) {
  const auto u1 = random_update(128, 19);
  const auto u2 = random_update(128, 20);
  for (const char* spec : {"dense", "sign", "quant:4", "topk:0.1",
                           "codebook:8,2", "subsample:0.5",
                           "structured:0.5"}) {
    auto a = make_update_codec(spec, 42);
    auto b = make_update_codec(spec, 42);
    EXPECT_EQ(a->encode(u1).payload, b->encode(u1).payload) << spec;
    EXPECT_EQ(a->encode(u2).payload, b->encode(u2).payload) << spec;
  }
}

TEST(MakeUpdateCodec, StatelessCodecsRejectNonEmptyStateBlobs) {
  const std::vector<std::uint64_t> blob = {1, 2, 3};
  EXPECT_THROW(make_update_codec("dense", 1)->restore_mutable_state(blob),
               std::invalid_argument);
  EXPECT_THROW(make_update_codec("sign", 1)->restore_mutable_state(blob),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::codec

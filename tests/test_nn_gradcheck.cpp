// Finite-difference gradient checks for every layer and both model families.
//
// For each parameter θ_i (and input x_i), the analytic gradient from
// backward() must match (L(θ+h) − L(θ−h)) / 2h.  This is the ground-truth
// test for the hand-written backprop that all experiments rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/feed_forward.h"
#include "nn/loss.h"
#include "nn/lstm_lm.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

constexpr double kStep = 1e-3;
constexpr double kTol = 2e-2;
// Central differences through a float32 forward pass carry roughly
// eps_f32 · |loss| / (2h) ≈ 5e-5 of absolute noise; the acceptance
// criterion combines that absolute allowance with a relative tolerance
// (the standard gradient-check recipe).
constexpr double kAbsNoise = 6e-5;

/// Returns 0 when the pair passes |a−n| ≤ kAbsNoise + kTol·max(|a|,|n|),
/// else the relative error (reported in the failure message).
double rel_err(double analytic, double numeric) {
  const double scale = std::max(std::fabs(analytic), std::fabs(numeric));
  const double diff = std::fabs(analytic - numeric);
  if (diff <= kAbsNoise + kTol * scale) return 0.0;
  return diff / std::max(scale, 1e-12);
}

/// Checks d(loss)/d(params) for a FeedForward on a random batch.
void check_feed_forward(FeedForward& model, std::size_t batch,
                        util::Rng& rng) {
  tensor::Matrix x(batch, model.input_dim());
  for (float& v : x.flat()) v = rng.uniform_f(-1.0f, 1.0f);
  std::vector<int> y(batch);
  for (auto& label : y) {
    label = static_cast<int>(rng.uniform_index(model.num_classes()));
  }

  const std::size_t n = model.param_count();
  std::vector<float> params(n), grads(n);
  model.get_params(params);
  model.compute_grads(x, y);
  model.get_grads(grads);

  // Probe a deterministic subset of parameters (checking all is O(n²)).
  const std::size_t probes = std::min<std::size_t>(n, 60);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t i = (p * 2654435761u) % n;
    const float saved = params[i];
    params[i] = saved + static_cast<float>(kStep);
    model.set_params(params);
    const double up = model.evaluate(x, y).loss;
    params[i] = saved - static_cast<float>(kStep);
    model.set_params(params);
    const double down = model.evaluate(x, y).loss;
    params[i] = saved;
    model.set_params(params);
    const double numeric = (up - down) / (2.0 * kStep);
    EXPECT_LT(rel_err(grads[i], numeric), kTol)
        << "param " << i << ": analytic " << grads[i] << " numeric "
        << numeric;
  }
}

TEST(GradCheck, DenseOnly) {
  util::Rng rng(1);
  FeedForward model = make_mlp(6, {}, 3, rng);
  check_feed_forward(model, 4, rng);
}

TEST(GradCheck, MlpWithReluHidden) {
  util::Rng rng(2);
  FeedForward model = make_mlp(8, {10, 7}, 4, rng);
  check_feed_forward(model, 5, rng);
}

TEST(GradCheck, TanhLayer) {
  util::Rng rng(3);
  Sequential net;
  net.add(std::make_unique<Dense>(5, 6));
  net.add(std::make_unique<Tanh>(6));
  net.add(std::make_unique<Dense>(6, 3));
  FeedForward model(std::move(net));
  model.init_params(rng);
  check_feed_forward(model, 4, rng);
}

TEST(GradCheck, Conv2dSamePadding) {
  util::Rng rng(4);
  Sequential net;
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = spec.in_width = 6;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.padding = 1;
  auto conv = std::make_unique<Conv2d>(spec);
  const std::size_t out = conv->out_dim();
  net.add(std::move(conv));
  net.add(std::make_unique<ReLU>(out));
  net.add(std::make_unique<Dense>(out, 2));
  FeedForward model(std::move(net));
  model.init_params(rng);
  check_feed_forward(model, 3, rng);
}

TEST(GradCheck, Conv2dValidPaddingMultiChannel) {
  util::Rng rng(5);
  Sequential net;
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.in_height = spec.in_width = 5;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.padding = 0;
  auto conv = std::make_unique<Conv2d>(spec);
  const std::size_t out = conv->out_dim();
  net.add(std::move(conv));
  net.add(std::make_unique<Dense>(out, 3));
  FeedForward model(std::move(net));
  model.init_params(rng);
  check_feed_forward(model, 2, rng);
}

TEST(GradCheck, MaxPoolInStack) {
  util::Rng rng(6);
  Sequential net;
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = spec.in_width = 8;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.padding = 1;
  auto conv = std::make_unique<Conv2d>(spec);
  net.add(std::move(conv));
  net.add(std::make_unique<ReLU>(2 * 8 * 8));
  Pool2dSpec pool{2, 8, 8, 2};
  net.add(std::make_unique<MaxPool2d>(pool));
  net.add(std::make_unique<Dense>(2 * 4 * 4, 3));
  FeedForward model(std::move(net));
  model.init_params(rng);
  check_feed_forward(model, 3, rng);
}

TEST(GradCheck, FullDigitsCnn) {
  util::Rng rng(7);
  CnnSpec spec;
  spec.image_size = 8;
  spec.conv1_filters = 2;
  spec.conv2_filters = 3;
  spec.kernel = 3;
  spec.fc_width = 8;
  spec.classes = 4;
  FeedForward model = make_digits_cnn(spec, rng);
  check_feed_forward(model, 2, rng);
}

void check_lstm_lm(LstmLm& model, std::size_t batch, std::size_t seq_len,
                   util::Rng& rng) {
  SeqBatch x;
  x.batch = batch;
  x.seq_len = seq_len;
  x.tokens.resize(batch * seq_len);
  for (auto& t : x.tokens) {
    t = static_cast<int>(rng.uniform_index(model.vocab()));
  }
  std::vector<int> y(batch);
  for (auto& label : y) {
    label = static_cast<int>(rng.uniform_index(model.vocab()));
  }

  const std::size_t n = model.param_count();
  std::vector<float> params(n), grads(n);
  model.get_params(params);
  model.compute_grads(x, y);
  model.get_grads(grads);

  const std::size_t probes = std::min<std::size_t>(n, 60);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t i = (p * 2654435761u) % n;
    const float saved = params[i];
    params[i] = saved + static_cast<float>(kStep);
    model.set_params(params);
    const double up = model.evaluate(x, y).loss;
    params[i] = saved - static_cast<float>(kStep);
    model.set_params(params);
    const double down = model.evaluate(x, y).loss;
    params[i] = saved;
    model.set_params(params);
    const double numeric = (up - down) / (2.0 * kStep);
    EXPECT_LT(rel_err(grads[i], numeric), kTol)
        << "param " << i << ": analytic " << grads[i] << " numeric "
        << numeric;
  }
}

TEST(GradCheck, LstmLmOneLayer) {
  util::Rng rng(8);
  LstmLmSpec spec;
  spec.vocab = 12;
  spec.embed_dim = 5;
  spec.hidden_dim = 6;
  spec.layers = 1;
  LstmLm model(spec);
  model.init_params(rng);
  check_lstm_lm(model, 3, 4, rng);
}

TEST(GradCheck, LstmLmTwoLayers) {
  util::Rng rng(9);
  LstmLmSpec spec;
  spec.vocab = 10;
  spec.embed_dim = 4;
  spec.hidden_dim = 5;
  spec.layers = 2;
  LstmLm model(spec);
  model.init_params(rng);
  check_lstm_lm(model, 2, 5, rng);
}

TEST(GradCheck, LstmLmLongSequence) {
  util::Rng rng(10);
  LstmLmSpec spec;
  spec.vocab = 8;
  spec.embed_dim = 4;
  spec.hidden_dim = 4;
  spec.layers = 1;
  LstmLm model(spec);
  model.init_params(rng);
  check_lstm_lm(model, 2, 10, rng);
}

}  // namespace
}  // namespace cmfl::nn

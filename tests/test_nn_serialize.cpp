// Corruption-hardened parameter serialization (S1) and the sealed-blob
// file framing checkpoints build on: round trips, truncation at every byte,
// header bit-flips, CRC detection, atomic overwrite.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/serialize.h"

namespace cmfl::nn {
namespace {

std::vector<float> sample_params() {
  std::vector<float> p;
  for (int i = 0; i < 17; ++i) p.push_back(0.25f * static_cast<float>(i) - 2);
  return p;
}

std::string serialized(const std::vector<float>& params) {
  std::ostringstream os(std::ios::binary);
  save_params(os, params);
  return os.str();
}

TEST(Serialize, RoundTrip) {
  const std::vector<float> params = sample_params();
  std::istringstream is(serialized(params), std::ios::binary);
  EXPECT_EQ(load_params(is), params);
}

TEST(Serialize, EmptyVectorRoundTrips) {
  std::istringstream is(serialized({}), std::ios::binary);
  EXPECT_TRUE(load_params(is).empty());
}

TEST(Serialize, TruncationAtEveryByteThrows) {
  const std::string bytes = serialized(sample_params());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream is(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(load_params(is), std::runtime_error) << "cut at " << cut;
  }
}

TEST(Serialize, HeaderBitFlipsFailCleanly) {
  // Flip every bit of the 16-byte header (magic, version, count).  Each
  // corruption must either throw a clean error or — when a count-field flip
  // lowers the declared count — return a shorter prefix.  Crucially, a flip
  // that inflates the count must never trigger a giant allocation: the
  // loader bounds the count by the bytes actually present first.
  const std::vector<float> params = sample_params();
  const std::string bytes = serialized(params);
  for (std::size_t byte = 0; byte < 16; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      std::istringstream is(corrupted, std::ios::binary);
      try {
        const std::vector<float> out = load_params(is);
        // Only a count-lowering flip can succeed, and only with fewer
        // elements than were written.
        EXPECT_GE(byte, 8u) << "magic/version corruption must throw";
        EXPECT_LT(out.size(), params.size());
      } catch (const std::runtime_error&) {
        // Clean rejection — always acceptable.
      }
    }
  }
}

TEST(Serialize, InflatedCountOnUnseekableStreamThrows) {
  // An unseekable stream cannot pre-check the remaining size; the chunked
  // reader must still fail on truncation instead of allocating up front.
  std::string bytes = serialized(sample_params());
  bytes[8] = '\xff';  // count LSB: 17 -> huge
  bytes[9] = '\xff';
  std::stringstream is(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(load_params(is), std::runtime_error);
}

class BlobFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "blob_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  static std::vector<std::byte> payload(std::size_t n, int salt) {
    std::vector<std::byte> p(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<std::byte>((i * 31 + salt) & 0xff);
    }
    return p;
  }

  std::string path_;
  const std::array<char, 4> magic_ = {'T', 'E', 'S', 'T'};
};

TEST_F(BlobFileTest, RoundTrip) {
  const auto data = payload(257, 3);
  save_blob_file(path_, magic_, 7, data);
  EXPECT_EQ(load_blob_file(path_, magic_, 7), data);
  // The temporary staging file must not survive a successful save.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(BlobFileTest, WrongMagicOrVersionThrows) {
  save_blob_file(path_, magic_, 7, payload(64, 1));
  EXPECT_THROW(load_blob_file(path_, {'N', 'O', 'P', 'E'}, 7),
               std::runtime_error);
  EXPECT_THROW(load_blob_file(path_, magic_, 8), std::runtime_error);
}

TEST_F(BlobFileTest, PayloadCorruptionIsDetectedByCrc) {
  const auto data = payload(128, 5);
  save_blob_file(path_, magic_, 1, data);
  // Flip one bit in the middle of the payload region (after the 16-byte
  // header).
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(16 + 60);
  char c;
  f.seekg(16 + 60);
  f.get(c);
  f.seekp(16 + 60);
  f.put(static_cast<char>(c ^ 0x10));
  f.close();
  EXPECT_THROW(load_blob_file(path_, magic_, 1), std::runtime_error);
}

TEST_F(BlobFileTest, TruncatedFileThrows) {
  save_blob_file(path_, magic_, 1, payload(128, 9));
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t keep : {0u, 3u, 4u, 8u, 15u, 16u, 70u}) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(load_blob_file(path_, magic_, 1), std::runtime_error)
        << "truncated to " << keep;
  }
}

TEST_F(BlobFileTest, OverwriteIsAtomicReplacement) {
  save_blob_file(path_, magic_, 1, payload(64, 1));
  const auto second = payload(96, 2);
  save_blob_file(path_, magic_, 1, second);
  EXPECT_EQ(load_blob_file(path_, magic_, 1), second);
}

}  // namespace
}  // namespace cmfl::nn

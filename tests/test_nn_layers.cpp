// Behavioural (non-gradient) layer tests: shapes, validation, forward
// semantics, parameter bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/param_pack.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  Dense dense(2, 2);
  std::vector<std::span<float>> params;
  dense.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  // W = [[1, 2], [3, 4]], b = [10, 20]
  params[0][0] = 1; params[0][1] = 2; params[0][2] = 3; params[0][3] = 4;
  params[1][0] = 10; params[1][1] = 20;
  tensor::Matrix in(1, 2, {5, 6});
  tensor::Matrix out;
  dense.forward(in, out, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1 * 5 + 2 * 6 + 10);
  EXPECT_FLOAT_EQ(out.at(0, 1), 3 * 5 + 4 * 6 + 20);
}

TEST(Dense, RejectsBadShapes) {
  EXPECT_THROW(Dense(0, 3), std::invalid_argument);
  Dense dense(3, 2);
  tensor::Matrix wrong(1, 4);
  tensor::Matrix out;
  EXPECT_THROW(dense.forward(wrong, out, false), std::invalid_argument);
}

TEST(ReLU, ClampsNegative) {
  ReLU relu(3);
  tensor::Matrix in(1, 3, {-1.0f, 0.0f, 2.0f});
  tensor::Matrix out;
  relu.forward(in, out, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 2.0f);
}

TEST(ReLU, BackwardMasksByInput) {
  ReLU relu(2);
  tensor::Matrix in(1, 2, {-1.0f, 1.0f});
  tensor::Matrix out;
  relu.forward(in, out, true);
  tensor::Matrix grad_out(1, 2, {5.0f, 7.0f});
  tensor::Matrix grad_in;
  relu.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 1), 7.0f);
}

TEST(Tanh, Saturates) {
  Tanh tanh_layer(1);
  tensor::Matrix in(1, 1, {100.0f});
  tensor::Matrix out;
  tanh_layer.forward(in, out, false);
  EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-5);
}

TEST(Sigmoid, KnownValues) {
  EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6);
}

TEST(Conv2d, OutputDimsSameAndValid) {
  Conv2dSpec same{1, 8, 8, 4, 5, 2};
  Conv2d conv_same(same);
  EXPECT_EQ(conv_same.out_height(), 8u);
  EXPECT_EQ(conv_same.out_width(), 8u);
  Conv2dSpec valid{1, 8, 8, 4, 5, 0};
  Conv2d conv_valid(valid);
  EXPECT_EQ(conv_valid.out_height(), 4u);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1: output == input.
  Conv2dSpec spec{1, 4, 4, 1, 1, 0};
  Conv2d conv(spec);
  std::vector<std::span<float>> params;
  conv.collect_params(params);
  params[0][0] = 1.0f;  // single weight
  tensor::Matrix in(1, 16);
  for (std::size_t i = 0; i < 16; ++i) in.flat()[i] = static_cast<float>(i);
  tensor::Matrix out;
  conv.forward(in, out, false);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(out.flat()[i], static_cast<float>(i));
  }
}

TEST(Conv2d, RejectsOversizedKernel) {
  Conv2dSpec spec{1, 3, 3, 1, 7, 0};
  EXPECT_THROW(Conv2d{spec}, std::invalid_argument);
}

TEST(MaxPool2d, PicksWindowMaximum) {
  Pool2dSpec spec{1, 4, 4, 2};
  MaxPool2d pool(spec);
  tensor::Matrix in(1, 16);
  for (std::size_t i = 0; i < 16; ++i) in.flat()[i] = static_cast<float>(i);
  tensor::Matrix out;
  pool.forward(in, out, false);
  ASSERT_EQ(out.cols(), 4u);
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 13.0f);
  EXPECT_FLOAT_EQ(out.at(0, 3), 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  Pool2dSpec spec{1, 2, 2, 2};
  MaxPool2d pool(spec);
  tensor::Matrix in(1, 4, {1.0f, 9.0f, 3.0f, 2.0f});
  tensor::Matrix out;
  pool.forward(in, out, false);
  tensor::Matrix grad_out(1, 1, {4.0f});
  tensor::Matrix grad_in;
  pool.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 2), 0.0f);
}

TEST(MaxPool2d, RejectsIndivisibleDims) {
  Pool2dSpec spec{1, 5, 4, 2};
  EXPECT_THROW(MaxPool2d{spec}, std::invalid_argument);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop(4, 0.5f);
  tensor::Matrix in(2, 4);
  for (float& v : in.flat()) v = 3.0f;
  tensor::Matrix out;
  drop.forward(in, out, /*training=*/false);
  for (float v : out.flat()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(Dropout, TrainingZeroesRoughlyRateFraction) {
  Dropout drop(1000, 0.3f, 99);
  tensor::Matrix in(1, 1000);
  for (float& v : in.flat()) v = 1.0f;
  tensor::Matrix out;
  drop.forward(in, out, /*training=*/true);
  int zeros = 0;
  for (float v : out.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.3, 0.05);
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(4, 1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(4, -0.1f), std::invalid_argument);
}

TEST(Embedding, LookupGathersRows) {
  Embedding emb(4, 2);
  auto table = emb.params();
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i);
  }
  std::vector<int> tokens = {2, 0};
  const tensor::Matrix out = emb.lookup(tokens);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
}

TEST(Embedding, RejectsOutOfRangeTokens) {
  Embedding emb(4, 2);
  std::vector<int> bad = {4};
  EXPECT_THROW(emb.lookup(bad), std::invalid_argument);
  std::vector<int> negative = {-1};
  EXPECT_THROW(emb.lookup(negative), std::invalid_argument);
}

TEST(Embedding, GradAccumulatesRepeatedTokens) {
  Embedding emb(3, 1);
  std::vector<int> tokens = {1, 1};
  tensor::Matrix grad(2, 1, {2.0f, 3.0f});
  emb.accumulate_grad(tokens, grad);
  EXPECT_FLOAT_EQ(emb.grads()[1], 5.0f);
}

TEST(Sequential, ValidatesChaining) {
  Sequential net;
  net.add(std::make_unique<Dense>(4, 8));
  EXPECT_THROW(net.add(std::make_unique<Dense>(9, 2)), std::invalid_argument);
  net.add(std::make_unique<ReLU>(8));
  EXPECT_EQ(net.in_dim(), 4u);
  EXPECT_EQ(net.out_dim(), 8u);
}

TEST(Sequential, SummaryListsLayers) {
  Sequential net;
  net.add(std::make_unique<Dense>(4, 8));
  net.add(std::make_unique<ReLU>(8));
  const std::string s = net.summary();
  EXPECT_NE(s.find("Dense(4->8)"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
}

TEST(ParamPack, RoundTripAndAxpy) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {4, 5};
  ParamPack pack({std::span<float>(a), std::span<float>(b)});
  EXPECT_EQ(pack.total_size(), 5u);
  auto flat = pack.to_vector();
  EXPECT_FLOAT_EQ(flat[3], 4.0f);
  std::vector<float> replacement = {10, 20, 30, 40, 50};
  pack.copy_from(replacement);
  EXPECT_FLOAT_EQ(a[2], 30.0f);
  EXPECT_FLOAT_EQ(b[1], 50.0f);
  std::vector<float> delta = {1, 1, 1, 1, 1};
  pack.axpy_from(-2.0f, delta);
  EXPECT_FLOAT_EQ(a[0], 8.0f);
  std::vector<float> wrong(3);
  EXPECT_THROW(pack.copy_from(wrong), std::invalid_argument);
}

TEST(ParamPack, PackToPackAxpyChecksSegmentation) {
  std::vector<float> a = {1, 2};
  std::vector<float> ga = {10, 10};
  ParamPack p({std::span<float>(a)});
  ParamPack g({std::span<float>(ga)});
  p.axpy_from(0.5f, g);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  std::vector<float> b = {1.0f};
  ParamPack wrong({std::span<float>(b)});
  EXPECT_THROW(p.axpy_from(1.0f, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::nn
